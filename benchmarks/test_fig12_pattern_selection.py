"""Fig. 12 -- pattern-count sweep: false-positive and false-negative
rates of sentence selection as the number of selected patterns n grows.

Paper: the bootstrapping learns patterns from policy sentences; the
sweep over a 250-positive / 250-negative validation set picks n = 230
(detection rate 88.0%, i.e. FNR 12%, at FPR 2.8%).

Reproduced shape: FNR falls steeply then flattens near the paper's
floor; FPR creeps up slowly; the sum is minimized near n = 230.
"""

from __future__ import annotations

import pytest

from repro.corpus.sentences import generate_labeled_sentences
from repro.nlp.parser import parse
from repro.policy.bootstrap import Bootstrapper, top_n_patterns
from repro.policy.patterns import match_pattern

SWEEP = (10, 50, 100, 150, 200, 230, 260, 300, 350)


@pytest.fixture(scope="module")
def sweep_data():
    train, val = generate_labeled_sentences()
    bootstrapper = Bootstrapper(train)
    scored = bootstrapper.score(bootstrapper.run())
    val_trees = [(s, parse(s.text.lower())) for s in val]

    def rates(n: int) -> tuple[float, float]:
        patterns = top_n_patterns(scored, n)
        fn = fp = pos = neg = 0
        for sentence, tree in val_trees:
            hit = any(match_pattern(p, tree) for p in patterns)
            if sentence.positive:
                pos += 1
                fn += not hit
            else:
                neg += 1
                fp += hit
        return fn / pos, fp / neg

    return scored, {n: rates(n) for n in SWEEP}


def test_fig12_sweep(benchmark, sweep_data):
    scored, curve = sweep_data

    def run_one_point():
        train, val = generate_labeled_sentences(
            n_validation_positive=50, n_validation_negative=50,
        )
        patterns = top_n_patterns(scored, 230)
        hits = 0
        for sentence in val[:50]:
            if any(match_pattern(p, parse(sentence.text.lower()))
                   for p in patterns):
                hits += 1
        return hits

    benchmark(run_one_point)

    print("\nFig. 12 -- FP/FN rate vs number of selected patterns")
    print(f"{'n':>5} {'FNR':>8} {'FPR':>8} {'sum':>8}")
    for n in SWEEP:
        fnr, fpr = curve[n]
        print(f"{n:>5} {fnr:>8.3f} {fpr:>8.3f} {fnr + fpr:>8.3f}")
    fnr230, fpr230 = curve[230]
    print(f"paper at n=230: FNR 0.120, FPR 0.028; "
          f"measured: FNR {fnr230:.3f}, FPR {fpr230:.3f}")

    # score-vs-rank decay (DESIGN.md §5): Eq. 1 scores fall away
    # smoothly, so the top-n cut is meaningful rather than arbitrary
    usable = [sp for sp in scored if sp.score != float("-inf")]
    print("\nScore(p) by rank:")
    for rank in (1, 10, 50, 100, 230, len(usable)):
        sp = usable[min(rank, len(usable)) - 1]
        print(f"  rank {rank:>4}: score {sp.score:.3f} "
              f"(pos={sp.pos}, neg={sp.neg})")
    scores = [sp.score for sp in usable]
    assert scores == sorted(scores, reverse=True)
    assert scores[0] > scores[229] > scores[-1] >= 0

    # shape assertions
    assert len(scored) >= 300, "bootstrap must learn a deep pattern list"
    # FNR decreases (weakly) along the sweep
    fnrs = [curve[n][0] for n in SWEEP]
    assert all(a >= b - 1e-9 for a, b in zip(fnrs, fnrs[1:]))
    # FPR never decreases and stays small
    fprs = [curve[n][1] for n in SWEEP]
    assert all(a <= b + 1e-9 for a, b in zip(fprs, fprs[1:]))
    assert fprs[-1] <= 0.05
    # at the paper's n the rates land in the paper's neighbourhood
    assert 0.08 <= fnr230 <= 0.20
    assert fpr230 <= 0.04
    # the knee: the sum at 230 is within 15% of the best sum anywhere
    best = min(curve[n][0] + curve[n][1] for n in SWEEP)
    assert fnr230 + fpr230 <= best + 0.03
