"""Load generator for the check service.

Drives a real in-process ``ppchecker serve`` instance (ephemeral
port, HTTP round-trips through :class:`repro.service.ServiceClient`)
with a pool of concurrent clients over a corpus slice, twice:

- **cold** -- fresh service, empty artifact caches: every request
  pays the full pipeline;
- **warm** -- the same requests again: the completed-job LRU and the
  stage caches answer without recomputation.

Emits ``BENCH_service.json`` with throughput and p50/p95/p99 request
latency for both phases, so later serving-layer PRs have a baseline.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.android.serialization import bundle_to_dict
from repro.service import ServiceClient, ServiceConfig, start_service

BENCH_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_service.json")

N_APPS = 32
CLIENT_THREADS = 8
WORKERS = 4


def percentile(latencies: list[float], q: float) -> float:
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def drive(client: ServiceClient, docs: list[dict]) -> dict:
    """Fan *docs* out over CLIENT_THREADS concurrent clients; wall
    time, throughput, and per-request latency percentiles."""
    pending = list(enumerate(docs))
    lock = threading.Lock()
    latencies: list[float] = []
    reports: dict[int, dict] = {}
    errors: list[Exception] = []

    def worker() -> None:
        while True:
            with lock:
                if not pending:
                    return
                index, doc = pending.pop()
            started = time.perf_counter()
            try:
                report = client.check(doc)
            except Exception as exc:  # pragma: no cover
                with lock:
                    errors.append(exc)
                return
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)
                reports[index] = report

    threads = [threading.Thread(target=worker)
               for _ in range(CLIENT_THREADS)]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    assert not errors, errors[0]
    assert len(reports) == len(docs)
    return {
        "seconds": wall,
        "throughput_rps": len(docs) / wall if wall else 0.0,
        "p50_ms": percentile(latencies, 0.50) * 1000,
        "p95_ms": percentile(latencies, 0.95) * 1000,
        "p99_ms": percentile(latencies, 0.99) * 1000,
        "_reports": reports,
    }


def test_service_throughput(benchmark, store):
    from repro.android.packer import unpack

    docs = []
    for app in store.apps[64:64 + N_APPS]:
        if app.bundle.apk.packed:
            unpack(app.bundle.apk)  # a wire bundle is never packed
        docs.append(bundle_to_dict(app.bundle))

    def run() -> dict:
        handle = start_service(ServiceConfig(
            port=0, workers=WORKERS, queue_size=max(64, N_APPS),
            completed_jobs=max(256, N_APPS),
            lib_policy_source=store.lib_policy,
        ))
        try:
            client = ServiceClient(port=handle.port, timeout=120.0)
            cold = drive(client, docs)
            warm = drive(client, docs)
            assert warm.pop("_reports") == cold.pop("_reports")
            metrics = handle.service.metrics
            result = {
                "n_apps": len(docs),
                "workers": WORKERS,
                "client_threads": CLIENT_THREADS,
                "cold": cold,
                "warm": warm,
                "warm_speedup": (cold["seconds"] / warm["seconds"]
                                 if warm["seconds"] else 0.0),
                "jobs_completed": metrics.jobs.value(
                    status="completed"),
                "jobs_coalesced": metrics.coalesced.value(),
                "stage_stats": handle.service.runner.stats.to_dict(),
            }
        finally:
            handle.close(deadline=10.0)
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.core.schema import versioned

    with open(BENCH_PATH, "w", encoding="utf-8") as handle:
        json.dump(versioned(result), handle, indent=2, sort_keys=True)

    print(f"\nService throughput over {result['n_apps']} apps "
          f"({result['client_threads']} clients, "
          f"{result['workers']} workers)")
    for phase in ("cold", "warm"):
        row = result[phase]
        print(f"  {phase:<5} {row['throughput_rps']:>8.1f} req/s  "
              f"p50 {row['p50_ms']:>7.1f} ms  "
              f"p95 {row['p95_ms']:>7.1f} ms  "
              f"p99 {row['p99_ms']:>7.1f} ms")
    print(f"  warm speedup {result['warm_speedup']:.1f}x")
    print(f"  wrote {BENCH_PATH}")

    # warm requests resolve from the completed-job LRU: the second
    # sweep must coalesce entirely and run no new pipeline work
    assert result["jobs_completed"] == result["n_apps"]
    assert result["jobs_coalesced"] >= result["n_apps"]
    assert result["warm_speedup"] > 1.0
