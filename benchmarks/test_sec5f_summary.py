"""Section V-F -- summary of the experimental result.

Paper: of 1,197 apps, 282 (23.6%) have at least one problem: 222
incomplete policies (64 via description, 180 via code), 4 incorrect
(2 via description, 4 via code), and 75 inconsistent.
"""

from __future__ import annotations

import pytest

from repro.core.study import run_study

PAPER_SUMMARY = {
    "apps": 1197,
    "problem_apps": 282,
    "incomplete_apps": 222,
    "incomplete_via_description": 64,
    "incomplete_via_code": 180,
    "incorrect_apps": 4,
    "incorrect_via_description": 2,
    "incorrect_via_code": 4,
    "inconsistent_apps": 75,
}


def test_sec5f_summary(benchmark, store, checker, study):
    # benchmark the full end-to-end study over a 120-app slice
    sample = store.apps[:120]

    def run_slice():
        reports = [checker.check(app.bundle) for app in sample]
        return sum(1 for r in reports if r.has_problem)

    benchmark(run_slice)

    summary = study.summary()
    print("\nSection V-F -- study summary")
    print(f"{'metric':<30} {'paper':>7} {'measured':>9}")
    for key, paper_value in PAPER_SUMMARY.items():
        print(f"{key:<30} {paper_value:>7} {summary[key]:>9}")
    print(f"{'problem fraction':<30} {'23.6%':>7} "
          f"{summary['problem_fraction'] * 100:>8.1f}%")

    for key, paper_value in PAPER_SUMMARY.items():
        assert summary[key] == paper_value, key
    assert summary["problem_fraction"] == pytest.approx(0.236,
                                                        abs=0.002)
