"""Section V-D -- discovering incorrect privacy policies.

Paper: 2 apps found via descriptions (com.marcow.birthdaylist,
com.herman.ringtone), the same 2 via code (NotCollect vs Collect_code)
plus another 2 via retention (NotRetain vs Retain_code:
com.easyxapp.secret, hko.MyObservatory), and 2 context false
positives (the com.zoho.mail case).
"""

from __future__ import annotations

from repro.core.incorrect import detect_incorrect_via_code
from repro.core.matching import InfoMatcher
from repro.corpus.plans import INCORRECT_FP, INCORRECT_TP


def test_sec5d_incorrect(benchmark, store, checker, study):
    matcher = InfoMatcher()
    sample = [store.apps[i] for i in
              list(INCORRECT_TP) + list(INCORRECT_FP)]

    def run_incorrect_detector():
        hits = 0
        for app in sample:
            policy = checker.analyze_policy(app.bundle)
            static = checker.analyze_code(app.bundle)
            if detect_incorrect_via_code(policy, static, matcher):
                hits += 1
        return hits

    benchmark(run_incorrect_detector)

    tp, fp = study.incorrect_confusion()
    via_desc = len(study.incorrect_apps("description"))
    via_code = len(study.incorrect_apps("code"))

    print("\nSection V-D -- incorrect privacy policies")
    print(f"{'metric':<28} {'paper':>6} {'measured':>9}")
    print(f"{'verified incorrect apps':<28} {4:>6} {tp:>9}")
    print(f"{'via description':<28} {2:>6} "
          f"{study.summary()['incorrect_via_description']:>9}")
    print(f"{'via code':<28} {4:>6} "
          f"{study.summary()['incorrect_via_code']:>9}")
    print(f"{'context false positives':<28} {2:>6} {fp:>9}")

    assert tp == 4
    assert fp == 2
    assert study.summary()["incorrect_via_description"] == 2
    assert study.summary()["incorrect_via_code"] == 4
    assert via_desc >= 2 and via_code >= 4
