"""Brownout goodput benchmark for the resilient cluster front.

Drives the same request sweep against two fresh 3-shard clusters:

- **healthy** -- no faults anywhere;
- **browned** -- shard-0 runs a fault plan that slows every
  ``policy_analysis`` stage by ``SLOW_S`` seconds (correct answers,
  late -- the brownout shape).

The front's resilience stack (hedged ``/v1/check`` requests plus the
per-shard latency circuit breaker) must keep *goodput* -- successful
checks per second with byte-identical reports -- from collapsing:
the gated ``brownout_goodput_ratio`` (browned rps over healthy rps)
must stay at or above ``GOODPUT_FLOOR``.  Without the stack, every
shard-0-owned request eats the full brownout delay; with it, a slow
primary is raced against a healthy peer after the hedge delay and
the breaker eventually diverts shard-0's traffic outright.  Every
sizing knob and the front's hedge/breaker counters land in
``BENCH_resilience.json`` next to the numbers.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.android.packer import unpack
from repro.android.serialization import bundle_to_dict
from repro.service import ServiceClient
from repro.service.cluster import ClusterConfig, start_cluster

BENCH_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_resilience.json")

N_APPS = 24
CLIENT_THREADS = 4
SHARDS = 3
WORKERS_PER_SHARD = 1
#: brownout delay injected into shard-0's policy_analysis stage;
#: every corpus package starts with ``com.example`` so the plan
#: matches the whole sweep
SLOW_S = 0.8
#: cold-start hedge delay; the front's latency tracker adapts it to
#: the observed p95 once enough samples arrive.  The synthetic-corpus
#: checks answer in tens of milliseconds, so the cold-start value
#: sits just above a healthy check and well under the brownout.
HEDGE_DELAY = 0.05
BREAKER_FAILURES = 2
BREAKER_LATENCY = 0.6
BREAKER_COOLOFF = 2.0
#: the gated floor: browned goodput over healthy goodput
GOODPUT_FLOOR = 0.5


def percentile(latencies: list[float], q: float) -> float:
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def drive(client: ServiceClient, docs: list[dict]) -> dict:
    """Fan *docs* out over CLIENT_THREADS concurrent clients;
    goodput (successful checks per second), latency percentiles, and
    the reports for the differential ride-along."""
    pending = list(enumerate(docs))
    lock = threading.Lock()
    latencies: list[float] = []
    reports: dict[int, dict] = {}
    failures: list[str] = []

    def worker() -> None:
        while True:
            with lock:
                if not pending:
                    return
                index, doc = pending.pop()
            started = time.perf_counter()
            try:
                report = client.check(doc)
            except Exception as exc:
                with lock:
                    failures.append(f"{doc['package']}: {exc}")
                continue
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)
                reports[index] = report

    threads = [threading.Thread(target=worker)
               for _ in range(CLIENT_THREADS)]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    return {
        "seconds": wall,
        "ok": len(reports),
        "failed": len(failures),
        "goodput_rps": len(reports) / wall if wall else 0.0,
        "p50_ms": percentile(latencies, 0.50) * 1000,
        "p95_ms": percentile(latencies, 0.95) * 1000,
        "p99_ms": percentile(latencies, 0.99) * 1000,
        "_reports": reports,
        "_failures": failures,
    }


def wait_cluster_up(client: ServiceClient, shards: int,
                    deadline: float = 120.0) -> None:
    end = time.monotonic() + deadline
    while True:
        try:
            if client.healthz()["shards_alive"] == shards:
                return
        except OSError:
            pass
        assert time.monotonic() < end, "cluster never became healthy"
        time.sleep(0.2)


def counter_samples(metrics_text: str, name: str) -> dict[str, float]:
    """Every labelled sample of one metric family, keyed by its
    label block (`` "{...}" `` or ``""`` for the bare sample)."""
    samples: dict[str, float] = {}
    for line in metrics_text.splitlines():
        if not line.startswith(name):
            continue
        rest = line[len(name):]
        if rest.startswith(" "):
            samples[""] = float(rest.split()[-1])
        elif rest.startswith("{"):
            labels, _, value = rest.partition(" ")
            samples[labels] = float(value.split()[-1])
    return samples


def sweep(docs: list[dict], fault_plan_path: str | None,
          ) -> tuple[dict, dict, dict]:
    """One fresh cluster, one cold drive; the phase row, the reports,
    and the front's hedge/breaker counters at the end."""
    handle = start_cluster(ClusterConfig(
        port=0, shards=SHARDS, workers=WORKERS_PER_SHARD,
        queue_size=max(64, N_APPS),
        shard_fault_plans=(
            {0: fault_plan_path} if fault_plan_path else {}),
        hedge=True,
        hedge_delay=HEDGE_DELAY,
        breaker_failures=BREAKER_FAILURES,
        breaker_latency=BREAKER_LATENCY,
        breaker_cooloff=BREAKER_COOLOFF,
        drain_timeout=5.0,
    ))
    try:
        client = ServiceClient(port=handle.port, timeout=120.0)
        wait_cluster_up(client, shards=SHARDS)
        row = drive(client, docs)
        metrics_text = client.metrics_text()
    finally:
        handle.close()
    reports = row.pop("_reports")
    failures = row.pop("_failures")
    assert not failures, failures[0]
    counters = {
        "hedges": counter_samples(
            metrics_text, "ppchecker_hedges_total"),
        "breaker_transitions": counter_samples(
            metrics_text, "ppchecker_breaker_transitions_total"),
    }
    return row, reports, counters


def test_brownout_goodput(benchmark, store, tmp_path):
    docs = []
    for app in store.apps[:N_APPS]:
        if app.bundle.apk.packed:
            unpack(app.bundle.apk)  # a wire bundle is never packed
        docs.append(bundle_to_dict(app.bundle))

    plan_path = tmp_path / "brownout-plan.json"
    plan_path.write_text(json.dumps({"faults": [{
        "stage": "policy_analysis",
        "match": "com.example",
        "kind": "slow",
        "delay_seconds": SLOW_S,
    }]}))

    def run() -> dict:
        healthy, healthy_reports, _ = sweep(docs, None)
        browned, browned_reports, counters = sweep(
            docs, str(plan_path))
        # differential ride-along: the brownout delays answers, it
        # never changes them
        assert browned_reports == healthy_reports
        return {
            "n_apps": len(docs),
            "shards": SHARDS,
            "client_threads": CLIENT_THREADS,
            "knobs": {
                "workers_per_shard": WORKERS_PER_SHARD,
                "slow_s": SLOW_S,
                "hedge_delay": HEDGE_DELAY,
                "breaker_failures": BREAKER_FAILURES,
                "breaker_latency": BREAKER_LATENCY,
                "breaker_cooloff": BREAKER_COOLOFF,
            },
            "healthy": healthy,
            "browned": browned,
            "browned_counters": counters,
            "brownout_goodput_ratio": (
                browned["goodput_rps"] / healthy["goodput_rps"]
                if healthy["goodput_rps"] else 0.0),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.core.schema import versioned

    with open(BENCH_PATH, "w", encoding="utf-8") as handle:
        json.dump(versioned(result), handle, indent=2, sort_keys=True)

    print(f"\nBrownout goodput over {result['n_apps']} apps "
          f"({result['client_threads']} clients, {SHARDS} shards, "
          f"shard-0 browned by {SLOW_S:g}s)")
    for phase in ("healthy", "browned"):
        row = result[phase]
        print(f"  {phase:<8} {row['goodput_rps']:>8.1f} req/s  "
              f"p50 {row['p50_ms']:>7.1f} ms  "
              f"p95 {row['p95_ms']:>7.1f} ms  "
              f"({row['ok']}/{result['n_apps']} ok)")
    print(f"  goodput ratio {result['brownout_goodput_ratio']:.2f} "
          f"(floor {GOODPUT_FLOOR:g})")
    print(f"  hedges {result['browned_counters']['hedges']}")
    print(f"  wrote {BENCH_PATH}")

    # the resilience stack must hold goodput: hedges mask the slow
    # primary and the breaker diverts shard-0 once its latency trips
    assert result["browned"]["failed"] == 0
    assert result["brownout_goodput_ratio"] >= GOODPUT_FLOOR, (
        f"browned goodput only "
        f"{result['brownout_goodput_ratio']:.2f}x healthy "
        f"(floor {GOODPUT_FLOOR}x)")
