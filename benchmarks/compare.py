"""Benchmark-regression gate.

Compares the freshly-emitted ``BENCH_*.json`` files against the
committed baselines in ``benchmarks/baselines/`` and fails when a
gated metric regresses beyond the tolerance band.

Speedup ratios (warm vs. cold, serial vs. parallel) are
machine-portable and gate the run; absolute throughput rows are
printed for context but never fail it.  CI runs this as a
non-blocking step (``continue-on-error``) so a slow runner produces a
visible delta table instead of a red build; the hard floor
(``warm_speedup >= 3`` in ``test_nlp_hotpath``) lives in the
benchmark itself.

Usage::

    python benchmarks/compare.py [--baseline DIR] [--current DIR]
                                 [--tolerance 0.25]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.core.schema import validate_versioned  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_DIR = os.path.join(REPO_ROOT, "benchmarks", "baselines")

#: (file, dotted metric path, gated?).  All metrics are
#: higher-is-better; gated ones fail the run when the current value
#: drops more than ``--tolerance`` below the baseline.
METRICS: list[tuple[str, str, bool]] = [
    ("BENCH_nlp.json", "warm_speedup", True),
    ("BENCH_nlp.json", "cold_speedup", True),
    ("BENCH_nlp.json", "vectorized_cold_speedup", True),
    ("BENCH_nlp.json", "warm.pairs_per_second", False),
    ("BENCH_nlp.json", "vectorized_cold.pairs_per_second", False),
    ("BENCH_pipeline.json", "warm_speedup", True),
    ("BENCH_pipeline.json", "parallel_speedup", False),
    ("BENCH_service.json", "warm_speedup", True),
    ("BENCH_service.json", "warm.throughput_rps", False),
    ("BENCH_cluster.json", "shard_speedup", True),
    ("BENCH_cluster.json", "cluster.warm.throughput_rps", False),
    ("BENCH_resilience.json", "brownout_goodput_ratio", True),
    ("BENCH_resilience.json", "healthy.goodput_rps", False),
    ("BENCH_resilience.json", "browned.goodput_rps", False),
    ("BENCH_scale.json", "at_10k.apps_per_sec", False),
    ("BENCH_scale.json", "at_100k.apps_per_sec", False),
]


def load(path: str) -> dict | None:
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    validate_versioned(payload, source=path)
    return payload


def lookup(payload: dict, dotted: str) -> float | None:
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=BASELINE_DIR,
                        help="directory holding baseline BENCH files")
    parser.add_argument("--current", default=REPO_ROOT,
                        help="directory holding current BENCH files")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop below baseline "
                             "for gated metrics (default 0.25)")
    args = parser.parse_args(argv)

    rows = []
    regressions = []
    for filename, metric, gated in METRICS:
        baseline = load(os.path.join(args.baseline, filename))
        current = load(os.path.join(args.current, filename))
        base_value = lookup(baseline, metric) if baseline else None
        cur_value = lookup(current, metric) if current else None
        if base_value is None or cur_value is None:
            status = "skipped (missing)"
            delta = None
        else:
            delta = (cur_value - base_value) / base_value \
                if base_value else 0.0
            floor = base_value * (1.0 - args.tolerance)
            if gated and cur_value < floor:
                status = "REGRESSION"
                regressions.append((filename, metric, base_value,
                                    cur_value))
            else:
                status = "ok" if gated else "info"
        rows.append((filename, metric, base_value, cur_value, delta,
                     status))

    name_width = max(len(f"{f}:{m}") for f, m, _ in METRICS)
    print(f"Benchmark deltas (tolerance {args.tolerance:.0%}, "
          f"baseline {args.baseline})")
    print(f"  {'metric':<{name_width}}  {'baseline':>10}  "
          f"{'current':>10}  {'delta':>8}  status")
    for filename, metric, base_value, cur_value, delta, status in rows:
        name = f"{filename}:{metric}"
        base_s = f"{base_value:.2f}" if base_value is not None else "-"
        cur_s = f"{cur_value:.2f}" if cur_value is not None else "-"
        delta_s = f"{delta:+.1%}" if delta is not None else "-"
        print(f"  {name:<{name_width}}  {base_s:>10}  {cur_s:>10}  "
              f"{delta_s:>8}  {status}")

    if regressions:
        print(f"\n{len(regressions)} gated metric(s) regressed beyond "
              f"the {args.tolerance:.0%} tolerance band:")
        for filename, metric, base_value, cur_value in regressions:
            print(f"  {filename}:{metric}: {base_value:.2f} -> "
                  f"{cur_value:.2f}")
        return 1
    print("\nno gated regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
