"""ESA/NLP matching hot-path benchmark.

Drives the study-scale phrase-matching workload -- every information
surface scored against every policy resource phrase, across hundreds
of simulated apps that repeat phrases the way a real corpus does --
three times:

- **no-memo** -- :func:`repro.memo.set_memo_enabled` ``(False)`` and
  :func:`repro.memo.set_vector_enabled` ``(False)``: the original
  compute-every-pair scalar code path;
- **cold** / **warm** -- the scalar plane with memoization on
  (caches empty / primed): the historical memoized hot path;
- **vectorized-cold** -- the compiled data plane
  (merge-join vectors, per-tuple group views) with memoization on
  and caches empty: what a cold study run pays under the default
  configuration.

Emits ``BENCH_nlp.json`` (schema-versioned) with per-phase wall
time, pair throughput, and cache counters, and asserts the speedup
floors the optimization PRs promise (>= 3x warm vs. no-memo; >= 5x
vectorized-cold vs. no-memo) plus result equality across all phases
-- the fast paths must be exact, not approximate.

``benchmarks/compare.py`` gates later PRs against the committed
baseline copy of this file.
"""

from __future__ import annotations

import gc
import json
import os
import time

from repro.core.matching import InfoMatcher
from repro.corpus.mutations import ALIAS_SWAPS
from repro.description.permission_map import INFO_SURFACE
from repro.memo import (
    cache_stats,
    clear_caches,
    set_memo_enabled,
    set_vector_enabled,
)

BENCH_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_nlp.json")

#: how many policy-holding apps the workload simulates; phrase pools
#: cycle over a real corpus slice, so phrases repeat across apps the
#: way the 1,197-app study repeats them
N_SIM_APPS = 240
POOL_APPS = slice(64, 104)


def build_workload(store, checker) -> tuple[list[str], list[list[str]]]:
    """(surfaces, per-app phrase pools) for the matching sweep.

    Surfaces are every alias the matcher scores
    (:data:`INFO_SURFACE`); pools are the policy resource phrases of a
    real corpus slice, cycled over ``N_SIM_APPS`` simulated apps with
    every third app speaking in :data:`ALIAS_SWAPS` paraphrases.
    """
    surfaces = sorted({
        surface
        for aliases in INFO_SURFACE.values()
        for surface in aliases
    } | set(ALIAS_SWAPS.values()))

    base_pools = []
    for app in store.apps[POOL_APPS]:
        analysis = checker.analyze_policy(app.bundle)
        pool = sorted(analysis.all_positive() | analysis.all_negative())
        if pool:
            base_pools.append(pool)

    def swapped(pool: list[str]) -> list[str]:
        return [ALIAS_SWAPS.get(phrase, phrase) for phrase in pool]

    pools = []
    for index in range(N_SIM_APPS):
        pool = base_pools[index % len(base_pools)]
        pools.append(swapped(pool) if index % 3 == 2 else pool)
    return surfaces, pools


def sweep(matcher: InfoMatcher,
          surfaces: list[str],
          pools: list[list[str]]) -> tuple[float, list]:
    """One full matching pass; (seconds, all match decisions).

    Pending garbage is drained first so a generation-2 collection
    pause (the session heap holds the whole synthetic corpus) does
    not land inside one phase's timing window.
    """
    hits = []
    gc.collect()
    started = time.perf_counter()
    for pool in pools:
        hits.append(matcher.esa.match_sets(surfaces, pool,
                                           matcher.threshold))
    return time.perf_counter() - started, hits


def test_nlp_hotpath(benchmark, store, checker):
    matcher = InfoMatcher()
    surfaces, pools = build_workload(store, checker)
    n_pairs = sum(len(surfaces) * len(pool) for pool in pools)

    def profile() -> dict:
        # scalar reference: both the compiled plane and memoization off
        set_vector_enabled(False)
        set_memo_enabled(False)
        clear_caches()
        nomemo_s, nomemo_hits = sweep(matcher, surfaces, pools)

        # the historical memoized hot path, still on the scalar plane
        set_memo_enabled(True)
        clear_caches()
        cold_s, cold_hits = sweep(matcher, surfaces, pools)
        warm_s, warm_hits = sweep(matcher, surfaces, pools)

        # the compiled plane from empty caches: what a cold study
        # run pays under the default configuration
        set_vector_enabled(True)
        clear_caches()
        veccold_s, veccold_hits = sweep(matcher, surfaces, pools)
        caches = cache_stats()

        # the fast paths are exact: every phase agrees pair-for-pair
        assert veccold_hits == nomemo_hits
        assert cold_hits == nomemo_hits
        assert warm_hits == nomemo_hits

        def phase(seconds: float) -> dict:
            return {
                "seconds": seconds,
                "pairs_per_second": n_pairs / seconds if seconds
                else 0.0,
            }

        return {
            "n_apps": len(pools),
            "n_surfaces": len(surfaces),
            "n_pairs": n_pairs,
            "n_matches": sum(len(h) for h in nomemo_hits),
            "no_memo": phase(nomemo_s),
            "vectorized_cold": phase(veccold_s),
            "cold": phase(cold_s),
            "warm": phase(warm_s),
            "vectorized_cold_speedup":
                nomemo_s / veccold_s if veccold_s else 0.0,
            "cold_speedup": nomemo_s / cold_s if cold_s else 0.0,
            "warm_speedup": nomemo_s / warm_s if warm_s else 0.0,
            "caches": {
                name: {"hits": row["hits"], "misses": row["misses"]}
                for name, row in caches.items()
            },
        }

    try:
        result = benchmark.pedantic(profile, rounds=3, iterations=1)
    finally:
        set_memo_enabled(None)
        set_vector_enabled(None)
        clear_caches()

    from repro.core.schema import versioned

    with open(BENCH_PATH, "w", encoding="utf-8") as handle:
        json.dump(versioned(result), handle, indent=2, sort_keys=True)

    print(f"\nNLP hot path over {result['n_apps']} simulated apps "
          f"({result['n_pairs']} pairs, "
          f"{result['n_matches']} matches)")
    for phase_name in ("no_memo", "vectorized_cold", "cold", "warm"):
        row = result[phase_name]
        print(f"  {phase_name:<16} {row['seconds'] * 1000:>8.1f} ms  "
              f"{row['pairs_per_second']:>10.0f} pairs/s")
    print(f"  vectorized cold speedup "
          f"{result['vectorized_cold_speedup']:.1f}x, "
          f"cold speedup {result['cold_speedup']:.1f}x, "
          f"warm speedup {result['warm_speedup']:.1f}x")
    print(f"  wrote {BENCH_PATH}")

    # the optimization PRs' promises: the memoized hot path beats the
    # scalar compute-everything path by at least 3x on the study
    # workload, and the compiled data plane alone (no cross-call
    # memoization) by at least 5x
    assert result["warm_speedup"] >= 3.0
    assert result["cold_speedup"] > 1.0
    assert result["vectorized_cold_speedup"] >= 5.0
