"""ESA/NLP matching hot-path benchmark.

Drives the study-scale phrase-matching workload -- every information
surface scored against every policy resource phrase, across hundreds
of simulated apps that repeat phrases the way a real corpus does --
three times:

- **no-memo** -- :func:`repro.memo.set_memo_enabled` ``(False)``:
  the original compute-every-pair code path;
- **cold** -- memoization on, caches empty: distinct pairs are
  computed once, repeats hit the LRU;
- **warm** -- memoization on, caches primed: everything hits.

Emits ``BENCH_nlp.json`` (schema-versioned) with per-phase wall
time, pair throughput, and cache counters, and asserts the speedup
floor the optimization PR promises (>= 3x warm vs. no-memo) plus
result equality across all three phases -- the fast paths must be
exact, not approximate.

``benchmarks/compare.py`` gates later PRs against the committed
baseline copy of this file.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.matching import InfoMatcher
from repro.corpus.mutations import ALIAS_SWAPS
from repro.description.permission_map import INFO_SURFACE
from repro.memo import cache_stats, clear_caches, set_memo_enabled

BENCH_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_nlp.json")

#: how many policy-holding apps the workload simulates; phrase pools
#: cycle over a real corpus slice, so phrases repeat across apps the
#: way the 1,197-app study repeats them
N_SIM_APPS = 240
POOL_APPS = slice(64, 104)


def build_workload(store, checker) -> tuple[list[str], list[list[str]]]:
    """(surfaces, per-app phrase pools) for the matching sweep.

    Surfaces are every alias the matcher scores
    (:data:`INFO_SURFACE`); pools are the policy resource phrases of a
    real corpus slice, cycled over ``N_SIM_APPS`` simulated apps with
    every third app speaking in :data:`ALIAS_SWAPS` paraphrases.
    """
    surfaces = sorted({
        surface
        for aliases in INFO_SURFACE.values()
        for surface in aliases
    } | set(ALIAS_SWAPS.values()))

    base_pools = []
    for app in store.apps[POOL_APPS]:
        analysis = checker.analyze_policy(app.bundle)
        pool = sorted(analysis.all_positive() | analysis.all_negative())
        if pool:
            base_pools.append(pool)

    def swapped(pool: list[str]) -> list[str]:
        return [ALIAS_SWAPS.get(phrase, phrase) for phrase in pool]

    pools = []
    for index in range(N_SIM_APPS):
        pool = base_pools[index % len(base_pools)]
        pools.append(swapped(pool) if index % 3 == 2 else pool)
    return surfaces, pools


def sweep(matcher: InfoMatcher,
          surfaces: list[str],
          pools: list[list[str]]) -> tuple[float, list]:
    """One full matching pass; (seconds, all match decisions)."""
    hits = []
    started = time.perf_counter()
    for pool in pools:
        hits.append(matcher.esa.match_sets(surfaces, pool,
                                           matcher.threshold))
    return time.perf_counter() - started, hits


def test_nlp_hotpath(benchmark, store, checker):
    matcher = InfoMatcher()
    surfaces, pools = build_workload(store, checker)
    n_pairs = sum(len(surfaces) * len(pool) for pool in pools)

    def profile() -> dict:
        set_memo_enabled(False)
        clear_caches()
        nomemo_s, nomemo_hits = sweep(matcher, surfaces, pools)

        set_memo_enabled(True)
        clear_caches()
        cold_s, cold_hits = sweep(matcher, surfaces, pools)
        warm_s, warm_hits = sweep(matcher, surfaces, pools)
        caches = cache_stats()

        # the fast paths are exact: every phase agrees pair-for-pair
        assert cold_hits == nomemo_hits
        assert warm_hits == nomemo_hits

        def phase(seconds: float) -> dict:
            return {
                "seconds": seconds,
                "pairs_per_second": n_pairs / seconds if seconds
                else 0.0,
            }

        return {
            "n_apps": len(pools),
            "n_surfaces": len(surfaces),
            "n_pairs": n_pairs,
            "n_matches": sum(len(h) for h in nomemo_hits),
            "no_memo": phase(nomemo_s),
            "cold": phase(cold_s),
            "warm": phase(warm_s),
            "cold_speedup": nomemo_s / cold_s if cold_s else 0.0,
            "warm_speedup": nomemo_s / warm_s if warm_s else 0.0,
            "caches": {
                name: {"hits": row["hits"], "misses": row["misses"]}
                for name, row in caches.items()
            },
        }

    try:
        result = benchmark.pedantic(profile, rounds=3, iterations=1)
    finally:
        set_memo_enabled(None)
        clear_caches()

    from repro.core.schema import versioned

    with open(BENCH_PATH, "w", encoding="utf-8") as handle:
        json.dump(versioned(result), handle, indent=2, sort_keys=True)

    print(f"\nNLP hot path over {result['n_apps']} simulated apps "
          f"({result['n_pairs']} pairs, "
          f"{result['n_matches']} matches)")
    for phase_name in ("no_memo", "cold", "warm"):
        row = result[phase_name]
        print(f"  {phase_name:<8} {row['seconds'] * 1000:>8.1f} ms  "
              f"{row['pairs_per_second']:>10.0f} pairs/s")
    print(f"  cold speedup {result['cold_speedup']:.1f}x, "
          f"warm speedup {result['warm_speedup']:.1f}x")
    print(f"  wrote {BENCH_PATH}")

    # the optimization PR's promise: the memoized hot path beats the
    # compute-everything path by at least 3x on the study workload
    assert result["warm_speedup"] >= 3.0
    assert result["cold_speedup"] > 1.0
