"""Ablation benchmarks for the design choices the paper calls out.

- reachability analysis (Section III-C.2: infeasible sensitive calls
  are dropped -- the paper's advantage over Slavin et al. [49]);
- content-provider URI analysis (ditto: [49] only considers APIs);
- the third-party disclaimer rule for Alg. 5;
- the ESA threshold around the paper's 0.67;
- the semantic-drift blacklists in bootstrapping.
"""

from __future__ import annotations

import pytest

from repro.core.checker import PPChecker
from repro.core.matching import InfoMatcher
from repro.core.study import run_study
from repro.corpus.plans import DISCLAIMER_APPS
from repro.corpus.sentences import generate_labeled_sentences
from repro.policy.bootstrap import Bootstrapper
from repro.semantics.esa import default_model


def test_ablation_reachability(benchmark, store):
    """Without reachability, dead sensitive code produces extra
    incomplete-policy false positives."""
    sample = store.apps[335:435]  # background apps with dead code

    def flag_count(use_reachability):
        checker = PPChecker(lib_policy_source=store.lib_policy,
                            use_reachability=use_reachability)
        return sum(
            1 for app in sample
            if checker.check(app.bundle).incomplete_via("code")
        )

    with_reach = benchmark(lambda: flag_count(True))
    without_reach = flag_count(False)
    print(f"\nAblation: reachability analysis over {len(sample)} "
          f"clean apps")
    print(f"  flagged with reachability:    {with_reach}")
    print(f"  flagged without reachability: {without_reach}")
    assert with_reach == 0
    assert without_reach > with_reach


def test_ablation_uri_analysis(benchmark, store, checker):
    """Without URI analysis, content-provider collection (contacts,
    calendar, SMS) is invisible -- Alg. 2 misses those gaps."""
    from repro.semantics.resources import InfoType
    uri_infos = {InfoType.CONTACT, InfoType.CALENDAR, InfoType.SMS,
                 InfoType.BROWSER_HISTORY}
    sample = [
        app for app in store.apps[64:222]
        if any(info in uri_infos for info, _r in
               app.plan.gt_incomplete_code)
    ]

    def detected(use_uri):
        local = PPChecker(lib_policy_source=store.lib_policy,
                          use_uri_analysis=use_uri)
        count = 0
        for app in sample:
            report = local.check(app.bundle)
            found = {f.info for f in report.incomplete_via("code")}
            if found & uri_infos:
                count += 1
        return count

    with_uri = benchmark(lambda: detected(True))
    without_uri = detected(False)
    print(f"\nAblation: URI analysis over {len(sample)} apps with "
          "provider-based gaps")
    print(f"  detected with URI analysis:    {with_uri}")
    print(f"  detected without URI analysis: {without_uri}")
    assert with_uri == len(sample)
    assert without_uri < with_uri


def test_ablation_disclaimer(benchmark, store):
    """Honoring third-party disclaimers suppresses Alg. 5 findings on
    the disclaimed apps; switching the rule off flags all of them."""
    sample = [store.apps[i] for i in DISCLAIMER_APPS]

    def flagged(honor):
        local = PPChecker(lib_policy_source=store.lib_policy,
                          honor_disclaimer=honor)
        return sum(
            1 for app in sample
            if local.check(app.bundle).is_inconsistent
        )

    honored = benchmark(lambda: flagged(True))
    ignored = flagged(False)
    print(f"\nAblation: disclaimer rule over {len(sample)} "
          "disclaimed apps")
    print(f"  flagged honoring disclaimers:  {honored}")
    print(f"  flagged ignoring disclaimers:  {ignored}")
    assert honored == 0
    assert ignored == len(sample)


def test_ablation_esa_threshold(benchmark):
    """Sweep the similarity threshold around the paper's 0.67: too low
    conflates distinct resources, too high breaks paraphrase
    matching."""
    esa = default_model()
    same = [("location", "your precise location"),
            ("contacts", "address book"),
            ("device id", "unique device identifier"),
            ("phone number", "real phone number")]
    different = [("location", "contacts"), ("camera", "calendar"),
                 ("email address", "device id"), ("sms", "account")]

    def accuracy(threshold):
        correct = sum(
            esa.similarity(a, b) > threshold for a, b in same
        ) + sum(
            esa.similarity(a, b) <= threshold for a, b in different
        )
        return correct / (len(same) + len(different))

    benchmark(lambda: accuracy(0.67))
    print("\nAblation: ESA threshold sweep")
    print(f"{'threshold':>10} {'accuracy':>9}")
    for threshold in (0.1, 0.3, 0.5, 0.67, 0.8, 0.95):
        print(f"{threshold:>10.2f} {accuracy(threshold):>9.2f}")
    assert accuracy(0.67) == 1.0
    assert accuracy(0.95) < 1.0


def test_ablation_synonym_expansion(benchmark, store):
    """The paper's future-work fix: expanding the verb sets with
    synonyms recovers the Table IV false negatives ("display",
    "harvest", "view") without disturbing the true positives."""
    from repro.corpus.plans import INCONSISTENT_FN, INCONSISTENT_NEW
    from repro.policy.analyzer import PolicyAnalyzer
    from repro.policy.synonyms import expanded_pattern_set

    fn_apps = [store.apps[i] for i in INCONSISTENT_FN]
    tp_apps = [store.apps[i] for i in list(INCONSISTENT_NEW)[:10]]

    def detected(use_synonyms):
        analyzer = PolicyAnalyzer(
            patterns=expanded_pattern_set()
        ) if use_synonyms else PolicyAnalyzer()
        local = PPChecker(lib_policy_source=store.lib_policy,
                          policy_analyzer=analyzer)
        fn_found = sum(
            1 for app in fn_apps
            if local.check(app.bundle).is_inconsistent
        )
        tp_found = sum(
            1 for app in tp_apps
            if local.check(app.bundle).is_inconsistent
        )
        return fn_found, tp_found

    base_fn, base_tp = benchmark(lambda: detected(False))
    syn_fn, syn_tp = detected(True)
    print(f"\nAblation: verb-synonym expansion over "
          f"{len(fn_apps)} FN + {len(tp_apps)} TP apps")
    print(f"  base patterns:     FN recovered {base_fn}/{len(fn_apps)}, "
          f"TP kept {base_tp}/{len(tp_apps)}")
    print(f"  expanded patterns: FN recovered {syn_fn}/{len(fn_apps)}, "
          f"TP kept {syn_tp}/{len(tp_apps)}")
    assert base_fn == 0           # paper behaviour: all FNs missed
    assert syn_fn == len(fn_apps)  # the extension recovers them
    assert syn_tp == base_tp == len(tp_apps)


def test_ablation_obfuscation(benchmark, store):
    """Limitations, measured: ProGuard-style renaming breaks the
    name-based heuristics (app-vs-lib attribution, prefix lib
    detection) while the name-independent analyses (taint) survive."""
    import copy

    from repro.android.libs import detect_libraries
    from repro.android.obfuscation import obfuscate
    from repro.android.packer import unpack
    from repro.android.static_analysis import analyze_apk

    from repro.android.libs import LIB_REGISTRY

    def _libs_obfuscatable(plan) -> bool:
        # Play-Services-hosted SDKs sit under ProGuard keep rules and
        # survive renaming; exclude them so the measurement is clean
        return all(
            not LIB_REGISTRY[lib_id].prefix.startswith(
                "com.google.android.gms."
            )
            for lib_id in plan.lib_ids
        )

    sample = []
    for app in store.apps[64:104]:
        if app.plan.retains and app.plan.lib_ids and \
                _libs_obfuscatable(app.plan):
            sample.append(app)
    sample = sample[:10]

    def measure(do_obfuscate):
        attribution_kept = retention_kept = libs_kept = 0
        for app in sample:
            apk = copy.deepcopy(app.bundle.apk)
            if apk.packed:
                unpack(apk)
            if do_obfuscate:
                obfuscate(apk)
            result = analyze_apk(apk)
            if set(app.plan.collects) <= result.collected_infos():
                attribution_kept += 1
            if set(app.plan.retains) <= result.retained_infos():
                retention_kept += 1
            if detect_libraries(apk.dex):
                libs_kept += 1
        return attribution_kept, retention_kept, libs_kept

    base = benchmark(lambda: measure(False))
    obf = measure(True)
    print(f"\nAblation: obfuscation over {len(sample)} apps "
          "(kept / total)")
    print(f"  {'':<14} {'attribution':>12} {'retention':>10} "
          f"{'lib detect':>11}")
    print(f"  {'plain':<14} {base[0]:>12} {base[1]:>10} {base[2]:>11}")
    print(f"  {'obfuscated':<14} {obf[0]:>12} {obf[1]:>10} "
          f"{obf[2]:>11}")
    assert base[0] == base[1] == base[2] == len(sample)
    assert obf[0] == 0            # attribution heuristic collapses
    assert obf[1] == len(sample)  # taint is name-independent
    assert obf[2] == 0            # prefix lib detection collapses


def test_ablation_bootstrap_blacklists(benchmark):
    """The semantic-drift blacklists keep user-subject and
    non-personal-object patterns out of the learned set."""
    train, _val = generate_labeled_sentences()
    extra = train + [
        # drift bait: user actions phrased like collection statements
        s for s in train[:50]
    ]

    def pattern_count(use_blacklists):
        bootstrapper = Bootstrapper(train[:400],
                                    use_blacklists=use_blacklists)
        return len(bootstrapper.run())

    with_bl = benchmark(lambda: pattern_count(True))
    without_bl = pattern_count(False)
    print("\nAblation: bootstrap semantic-drift blacklists")
    print(f"  patterns with blacklists:    {with_bl}")
    print(f"  patterns without blacklists: {without_bl}")
    assert without_bl >= with_bl
