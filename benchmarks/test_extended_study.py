"""The future-work study: base PPChecker vs. the extended checker.

Runs Table IV under both configurations.  The extended checker
(synonym patterns + constraint modelling) recovers every planted false
negative -- recall goes to 100% on both rows -- without disturbing a
single true positive or adding false positives.
"""

from __future__ import annotations

import pytest

from repro.core.extended import make_extended_checker
from repro.core.study import run_study


def test_extended_vs_base_table4(benchmark, store, study):
    extended_checker = make_extended_checker(store.lib_policy)

    def run_extended_slice():
        return run_study(store, checker=make_extended_checker(
            store.lib_policy
        ), limit=80)

    benchmark(run_extended_slice)

    extended = run_study(store, checker=extended_checker)
    base_rows = study.table4()
    ext_rows = extended.table4()

    print("\nTable IV: base vs extended checker")
    print(f"{'row':<22} {'config':>9} {'TP':>4} {'FP':>4} {'FN':>4} "
          f"{'P':>7} {'R':>7}")
    for name in base_rows:
        base = base_rows[name]
        ext = ext_rows[name]
        print(f"{name:<22} {'base':>9} {base.tp:>4} {base.fp:>4} "
              f"{base.fn:>4} {base.precision:>7.3f} "
              f"{base.recall:>7.3f}")
        print(f"{'':<22} {'extended':>9} {ext.tp:>4} {ext.fp:>4} "
              f"{ext.fn:>4} {ext.precision:>7.3f} "
              f"{ext.recall:>7.3f}")

    for name in base_rows:
        base = base_rows[name]
        ext = ext_rows[name]
        # every FN recovered; recall hits 1.0
        assert ext.fn == 0, name
        assert ext.recall == pytest.approx(1.0)
        # no true positive lost, false positives unchanged
        assert ext.tp == base.tp + base.fn, name
        assert ext.fp == base.fp, name

    # the rest of the study is untouched by the extensions
    base_summary = study.summary()
    ext_summary = extended.summary()
    for key in ("incomplete_apps", "incorrect_apps"):
        assert ext_summary[key] == base_summary[key], key
