"""Load generator for the sharded cluster (``serve --shards N``).

Drives the same request sweep against two deployments built from
identical per-process resources (worker threads, completed-job LRU,
memory-tier artifact cache):

- **single** -- one ``ppchecker serve`` process (in-process handle);
- **cluster** -- a ``serve --shards N`` front with N shard
  subprocesses, jobs routed by content hash.

Each deployment is swept twice (cold, then warm).  The working set is
deliberately larger than one process's cache budget: under LRU a
cyclic sweep that overflows the cache evicts every entry before its
re-use, so the single process keeps recomputing on the warm pass,
while content-hash routing partitions the same working set into
per-shard shares that fit each shard's budget and stay resident.
The gated ``shard_speedup`` (cluster warm rps over single warm rps)
therefore measures the cluster's *aggregate cache capacity* -- the
horizontal-scaling property of the hash ring -- independent of the
runner's core count; on multi-core machines process parallelism
compounds it.  Every sizing knob lands in ``BENCH_cluster.json`` next
to the numbers.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.android.packer import unpack
from repro.android.serialization import bundle_to_dict
from repro.service import ServiceClient, ServiceConfig, start_service
from repro.service.cluster import ClusterConfig, start_cluster

BENCH_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_cluster.json")

N_APPS = 48
CLIENT_THREADS = 8
SHARDS = 4
#: per-process budgets, identical for the single service and for
#: every shard; the cluster's aggregate is SHARDS times bigger
WORKERS_PER_SHARD = 1
SINGLE_WORKERS = SHARDS * WORKERS_PER_SHARD
COMPLETED_JOBS = 16
CACHE_ENTRIES = 120
#: the gated floor: warm cluster throughput over warm single-process
#: throughput
SPEEDUP_FLOOR = 2.5


def percentile(latencies: list[float], q: float) -> float:
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def drive(client: ServiceClient, docs: list[dict]) -> dict:
    """Fan *docs* out over CLIENT_THREADS concurrent clients; wall
    time, throughput, and per-request latency percentiles."""
    pending = list(enumerate(docs))
    lock = threading.Lock()
    latencies: list[float] = []
    reports: dict[int, dict] = {}
    errors: list[Exception] = []

    def worker() -> None:
        while True:
            with lock:
                if not pending:
                    return
                index, doc = pending.pop()
            started = time.perf_counter()
            try:
                report = client.check(doc)
            except Exception as exc:  # pragma: no cover
                with lock:
                    errors.append(exc)
                return
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)
                reports[index] = report

    threads = [threading.Thread(target=worker)
               for _ in range(CLIENT_THREADS)]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    assert not errors, errors[0]
    assert len(reports) == len(docs)
    return {
        "seconds": wall,
        "throughput_rps": len(docs) / wall if wall else 0.0,
        "p50_ms": percentile(latencies, 0.50) * 1000,
        "p95_ms": percentile(latencies, 0.95) * 1000,
        "p99_ms": percentile(latencies, 0.99) * 1000,
        "_reports": reports,
    }


def wait_cluster_up(client: ServiceClient, shards: int,
                    deadline: float = 120.0) -> None:
    end = time.monotonic() + deadline
    while True:
        try:
            if client.healthz()["shards_alive"] == shards:
                return
        except OSError:
            pass
        assert time.monotonic() < end, "cluster never became healthy"
        time.sleep(0.2)


def sweep_single(docs, store) -> tuple[dict, dict, dict]:
    handle = start_service(ServiceConfig(
        port=0, workers=SINGLE_WORKERS,
        queue_size=max(64, N_APPS),
        completed_jobs=COMPLETED_JOBS,
        cache_entries=CACHE_ENTRIES,
        lib_policy_source=store.lib_policy,
    ))
    try:
        client = ServiceClient(port=handle.port, timeout=120.0)
        cold = drive(client, docs)
        warm = drive(client, docs)
    finally:
        handle.close(deadline=10.0)
    reports = cold.pop("_reports")
    assert warm.pop("_reports") == reports
    return cold, warm, reports


def sweep_cluster(docs) -> tuple[dict, dict, dict]:
    handle = start_cluster(ClusterConfig(
        port=0, shards=SHARDS, workers=WORKERS_PER_SHARD,
        queue_size=max(64, N_APPS),
        completed_jobs=COMPLETED_JOBS,
        cache_entries=CACHE_ENTRIES,
        drain_timeout=5.0,
    ))
    try:
        client = ServiceClient(port=handle.port, timeout=120.0)
        wait_cluster_up(client, shards=SHARDS)
        cold = drive(client, docs)
        warm = drive(client, docs)
    finally:
        handle.close()
    reports = cold.pop("_reports")
    assert warm.pop("_reports") == reports
    return cold, warm, reports


def test_cluster_throughput(benchmark, store):
    docs = []
    for app in store.apps[64:64 + N_APPS]:
        if app.bundle.apk.packed:
            unpack(app.bundle.apk)  # a wire bundle is never packed
        docs.append(bundle_to_dict(app.bundle))

    def run() -> dict:
        single_cold, single_warm, single_reports = \
            sweep_single(docs, store)
        cluster_cold, cluster_warm, cluster_reports = \
            sweep_cluster(docs)
        # differential ride-along: the cluster answers byte-identical
        # reports for the whole sweep
        assert cluster_reports == single_reports
        return {
            "n_apps": len(docs),
            "shards": SHARDS,
            "client_threads": CLIENT_THREADS,
            "per_process": {
                "workers": WORKERS_PER_SHARD,
                "single_workers": SINGLE_WORKERS,
                "completed_jobs": COMPLETED_JOBS,
                "cache_entries": CACHE_ENTRIES,
            },
            "single": {"cold": single_cold, "warm": single_warm},
            "cluster": {"cold": cluster_cold, "warm": cluster_warm},
            "shard_speedup": (
                cluster_warm["throughput_rps"]
                / single_warm["throughput_rps"]
                if single_warm["throughput_rps"] else 0.0),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.core.schema import versioned

    with open(BENCH_PATH, "w", encoding="utf-8") as handle:
        json.dump(versioned(result), handle, indent=2, sort_keys=True)

    print(f"\nCluster throughput over {result['n_apps']} apps "
          f"({result['client_threads']} clients, {SHARDS} shards, "
          f"per-process LRU {COMPLETED_JOBS} jobs / "
          f"{CACHE_ENTRIES} artifacts)")
    for deployment in ("single", "cluster"):
        for phase in ("cold", "warm"):
            row = result[deployment][phase]
            print(f"  {deployment:<8} {phase:<5} "
                  f"{row['throughput_rps']:>8.1f} req/s  "
                  f"p50 {row['p50_ms']:>7.1f} ms  "
                  f"p95 {row['p95_ms']:>7.1f} ms")
    print(f"  shard speedup (warm) {result['shard_speedup']:.1f}x")
    print(f"  wrote {BENCH_PATH}")

    # the working set overflows one process's budget but partitions
    # into per-shard shares that fit: the warm cluster sweep must
    # answer from its aggregate caches at >= SPEEDUP_FLOOR times the
    # thrashing single process
    assert result["shard_speedup"] >= SPEEDUP_FLOOR, (
        f"warm cluster rps only "
        f"{result['shard_speedup']:.2f}x the single process "
        f"(floor {SPEEDUP_FLOOR}x)")
