"""Table IV -- performance of inconsistent-privacy-policy detection.

Paper:
  Sents_{collect,use,retain}: TP 41, FP 5, precision 89.1%,
      recall 91.7%, F1 90.4%
  Sents_disclose:             TP 39, FP 4, precision 90.7%,
      recall 92.3%, F1 91.4%
  75 questionable apps in total after manual verification.
"""

from __future__ import annotations

import pytest

from repro.core.inconsistent import detect_inconsistent
from repro.core.matching import InfoMatcher

PAPER = {
    "collect_use_retain": dict(tp=41, fp=5, precision=0.891,
                               recall=0.917, f1=0.904),
    "disclose": dict(tp=39, fp=4, precision=0.907, recall=0.923,
                     f1=0.914),
}


def test_table4(benchmark, store, checker, study):
    matcher = InfoMatcher()
    sample = store.apps[243:299]  # the planted inconsistency group

    def run_inconsistency_detector():
        hits = 0
        for app in sample:
            policy = checker.analyze_policy(app.bundle)
            static = checker.analyze_code(app.bundle)
            libs = {
                spec.lib_id: checker._lib_policy(spec.lib_id)
                for spec in static.libraries
            }
            libs = {k: v for k, v in libs.items() if v is not None}
            if detect_inconsistent(policy, libs, matcher):
                hits += 1
        return hits

    benchmark(run_inconsistency_detector)

    rows = study.table4()
    print("\nTable IV -- inconsistency detection performance")
    print(f"{'row':<22} {'':>4} {'TP':>4} {'FP':>4} {'P':>7} "
          f"{'R':>7} {'F1':>7}")
    for name, row in rows.items():
        paper = PAPER[name]
        print(f"{name:<22} {'paper':>5} {paper['tp']:>4} "
              f"{paper['fp']:>4} {paper['precision']:>7.3f} "
              f"{paper['recall']:>7.3f} {paper['f1']:>7.3f}")
        print(f"{'':<22} {'meas.':>5} {row.tp:>4} {row.fp:>4} "
              f"{row.precision:>7.3f} {row.recall:>7.3f} "
              f"{row.f1:>7.3f}")
    print(f"questionable apps: paper 75, measured "
          f"{len(study.inconsistent_true_apps())}")

    cur = rows["collect_use_retain"]
    assert (cur.tp, cur.fp) == (41, 5)
    assert cur.precision == pytest.approx(0.891, abs=0.001)
    assert cur.recall == pytest.approx(0.917, abs=0.02)
    disclose = rows["disclose"]
    assert (disclose.tp, disclose.fp) == (39, 4)
    assert disclose.precision == pytest.approx(0.907, abs=0.001)
    assert disclose.recall == pytest.approx(0.923, abs=0.02)
    assert len(study.inconsistent_true_apps()) == 75
