"""Shared benchmark fixtures.

The full 1,197-app study is computed once per session; individual
benchmarks measure their own pipeline stage and assert the reproduced
numbers against the paper's.
"""

from __future__ import annotations

import pytest

from repro.core.checker import PPChecker
from repro.core.study import run_study
from repro.corpus.appstore import generate_app_store


@pytest.fixture(scope="session")
def store():
    return generate_app_store()


@pytest.fixture(scope="session")
def checker(store):
    return PPChecker(lib_policy_source=store.lib_policy)


@pytest.fixture(scope="session")
def study(store, checker):
    return run_study(store, checker=checker)
