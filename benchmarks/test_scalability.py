"""Scalability: end-to-end throughput of the full pipeline.

Not a paper table -- an engineering benchmark showing the study scales
linearly in corpus size and quantifying per-app cost, plus bootstrap
confidence intervals around the reproduced Table IV metrics (the
paper's point estimates sit inside them).
"""

from __future__ import annotations

import time

import pytest

from repro.core.checker import PPChecker
from repro.core.metrics import bootstrap_interval, wilson_interval
from repro.core.study import run_study
from repro.corpus.appstore import generate_app_store


def test_throughput_scaling(benchmark, store):
    checker = PPChecker(lib_policy_source=store.lib_policy)

    def run_100():
        return run_study(store, checker=PPChecker(
            lib_policy_source=store.lib_policy
        ), limit=100)

    benchmark(run_100)

    print("\nScalability: study wall time by corpus size")
    print(f"{'apps':>6} {'seconds':>9} {'apps/sec':>9}")
    timings = []
    for size in (100, 300, 600, 1197):
        local = PPChecker(lib_policy_source=store.lib_policy)
        start = time.perf_counter()
        run_study(store, checker=local, limit=size)
        elapsed = time.perf_counter() - start
        timings.append((size, elapsed))
        print(f"{size:>6} {elapsed:>9.2f} {size / elapsed:>9.0f}")

    # roughly linear: doubling size should not much more than double
    # the time (allow 3x headroom for noise)
    per_app = [elapsed / size for size, elapsed in timings]
    assert max(per_app) <= 3 * min(per_app)


def test_confidence_intervals(benchmark, study):
    """Bootstrap CIs around Table IV; paper values must fall inside."""
    rows = study.table4()
    sample_outcomes = [(True, True)] * 41 + [(True, False)] * 5
    benchmark(lambda: bootstrap_interval(sample_outcomes,
                                         metric="precision"))

    print("\nTable IV with 95% bootstrap confidence intervals")
    paper = {
        "collect_use_retain": {"precision": 0.891, "recall": 0.917},
        "disclose": {"precision": 0.907, "recall": 0.923},
    }
    for name, row in rows.items():
        outcomes = (
            [(True, True)] * row.tp + [(True, False)] * row.fp
            + [(False, True)] * row.fn
        )
        for metric in ("precision", "recall"):
            interval = bootstrap_interval(outcomes, metric=metric)
            inside = interval.contains(paper[name][metric])
            print(f"  {name:<20} {metric:<10} {interval}   "
                  f"paper {paper[name][metric]:.3f} "
                  f"{'inside' if inside else 'OUTSIDE'}")
            assert inside, (name, metric)

    fraction = wilson_interval(
        study.summary()["problem_apps"], study.summary()["apps"]
    )
    print(f"  problem fraction {fraction} (paper 0.236)")
    assert fraction.contains(0.236)
