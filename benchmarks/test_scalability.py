"""Scalability: end-to-end throughput of the full pipeline.

Not a paper table -- an engineering benchmark showing the study scales
linearly in corpus size and quantifying per-app cost, plus bootstrap
confidence intervals around the reproduced Table IV metrics (the
paper's point estimates sit inside them).

``test_streaming_scale`` additionally emits ``BENCH_scale.json``: the
streaming study at 10k and 100k apps, recording apps/sec and peak
memory, and asserting the bounded-memory contract (peak at 100k stays
within 2x peak at 10k -- the window and the fold are constant-size,
the memo caches capacity-bounded).
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc

import pytest

from repro.core.checker import PPChecker
from repro.core.metrics import bootstrap_interval, wilson_interval
from repro.core.study import run_study, run_study_streaming
from repro.corpus.appstore import CorpusSpec, generate_app_store


def test_throughput_scaling(benchmark, store):
    checker = PPChecker(lib_policy_source=store.lib_policy)

    def run_100():
        return run_study(store, checker=PPChecker(
            lib_policy_source=store.lib_policy
        ), limit=100)

    benchmark(run_100)

    print("\nScalability: study wall time by corpus size")
    print(f"{'apps':>6} {'seconds':>9} {'apps/sec':>9}")
    timings = []
    for size in (100, 300, 600, 1197):
        local = PPChecker(lib_policy_source=store.lib_policy)
        start = time.perf_counter()
        run_study(store, checker=local, limit=size)
        elapsed = time.perf_counter() - start
        timings.append((size, elapsed))
        print(f"{size:>6} {elapsed:>9.2f} {size / elapsed:>9.0f}")

    # roughly linear: doubling size should not much more than double
    # the time (allow 3x headroom for noise)
    per_app = [elapsed / size for size, elapsed in timings]
    assert max(per_app) <= 3 * min(per_app)


BENCH_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_scale.json")

SCALE_SIZES = (10_000, 100_000)


def test_streaming_scale():
    """Streaming study at 10k/100k apps: throughput + peak memory.

    Peak memory is tracemalloc's high-water mark of Python-heap
    allocations during the run -- unlike ``ru_maxrss`` it is not
    monotone across phases of one process, so the 100k figure is a
    real measurement, not an echo of the 10k one.

    An untraced full-size pass runs first so the capacity-bounded memo
    caches (dep-tree parse, ESA similarity) are at steady state before
    either measurement; otherwise the larger run pays the remaining
    cache fill and the ratio measures saturation, not streaming growth.
    """
    spec = CorpusSpec(n_apps=max(SCALE_SIZES))
    checker = PPChecker(lib_policy_source=spec.lib_policy)
    warm = run_study_streaming(spec, checker=checker,
                               limit=max(SCALE_SIZES))
    assert warm.n_apps == max(SCALE_SIZES)
    result: dict = {"window": 4, "sizes": list(SCALE_SIZES)}

    print("\nStreaming scale: apps/sec and peak memory by corpus size")
    print(f"{'apps':>8} {'seconds':>9} {'apps/sec':>9} "
          f"{'peak MB':>8}")
    for size in SCALE_SIZES:
        tracemalloc.start()
        start = time.perf_counter()
        aggregate = run_study_streaming(spec, checker=checker,
                                        limit=size)
        elapsed = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert aggregate.n_apps == size
        result[f"at_{size // 1000}k"] = {
            "apps": size,
            "seconds": elapsed,
            "apps_per_sec": size / elapsed,
            "peak_tracemalloc_bytes": peak,
            "peak_rss_kb": aggregate.telemetry["peak_rss_kb"],
        }
        print(f"{size:>8} {elapsed:>9.1f} {size / elapsed:>9.0f} "
              f"{peak / 1e6:>8.1f}")

    small = result[f"at_{SCALE_SIZES[0] // 1000}k"]
    large = result[f"at_{SCALE_SIZES[1] // 1000}k"]
    ratio = large["peak_tracemalloc_bytes"] \
        / small["peak_tracemalloc_bytes"]
    result["peak_memory_ratio"] = ratio
    # the bounded-memory contract: 10x the corpus, <= 2x the memory
    assert ratio <= 2.0, (
        f"peak memory at {SCALE_SIZES[1]} apps is {ratio:.2f}x the "
        f"{SCALE_SIZES[0]}-app peak (bound: 2x)")

    from repro.core.schema import versioned

    with open(BENCH_PATH, "w", encoding="utf-8") as handle:
        json.dump(versioned(result), handle, indent=2, sort_keys=True)
    print(f"  wrote {BENCH_PATH}")


def test_confidence_intervals(benchmark, study):
    """Bootstrap CIs around Table IV; paper values must fall inside."""
    rows = study.table4()
    sample_outcomes = [(True, True)] * 41 + [(True, False)] * 5
    benchmark(lambda: bootstrap_interval(sample_outcomes,
                                         metric="precision"))

    print("\nTable IV with 95% bootstrap confidence intervals")
    paper = {
        "collect_use_retain": {"precision": 0.891, "recall": 0.917},
        "disclose": {"precision": 0.907, "recall": 0.923},
    }
    for name, row in rows.items():
        outcomes = (
            [(True, True)] * row.tp + [(True, False)] * row.fp
            + [(False, True)] * row.fn
        )
        for metric in ("precision", "recall"):
            interval = bootstrap_interval(outcomes, metric=metric)
            inside = interval.contains(paper[name][metric])
            print(f"  {name:<20} {metric:<10} {interval}   "
                  f"paper {paper[name][metric]:.3f} "
                  f"{'inside' if inside else 'OUTSIDE'}")
            assert inside, (name, metric)

    fraction = wilson_interval(
        study.summary()["problem_apps"], study.summary()["apps"]
    )
    print(f"  problem fraction {fraction} (paper 0.236)")
    assert fraction.contains(0.236)
