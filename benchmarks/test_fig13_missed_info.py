"""Fig. 13 -- distribution of information missed by incomplete
privacy policies (code path, Alg. 2).

Paper: 195 apps flagged through bytecode analysis; manual checking
confirms 180 (15 false positives).  Within the 180 true positives
there are 234 missed-information records, 32 of them retention
records; location is the most commonly missed information.
"""

from __future__ import annotations

from repro.core.incomplete import detect_incomplete_via_code
from repro.core.matching import InfoMatcher


def test_fig13(benchmark, store, checker, study):
    matcher = InfoMatcher()
    sample = store.apps[64:128]  # code-incomplete group slice

    def run_code_detector():
        flagged = 0
        for app in sample:
            policy = checker.analyze_policy(app.bundle)
            static = checker.analyze_code(app.bundle)
            if detect_incomplete_via_code(policy, static, matcher):
                flagged += 1
        return flagged

    benchmark(run_code_detector)

    tp, fp = study.incomplete_code_confusion()
    dist, retained = study.fig13()

    print("\nFig. 13 -- missed information distribution (true positives)")
    print(f"{'information':<18} {'records':>8}")
    for info, count in dist.most_common():
        print(f"{info.value:<18} {count:>8}")
    print(f"{'total':<18} {sum(dist.values()):>8}   (paper: 234)")
    print(f"{'retained':<18} {retained:>8}   (paper: 32)")
    print(f"flagged {len(study.incomplete_code_apps())} apps "
          f"(paper 195), verified {tp} (paper 180), "
          f"false positives {fp} (paper 15)")

    assert len(study.incomplete_code_apps()) == 195
    assert (tp, fp) == (180, 15)
    assert sum(dist.values()) == 234
    assert retained == 32
    assert dist.most_common(1)[0][0].value == "location"
