"""Per-stage latency profile of the pipeline.

Engineering benchmark: where does the per-app time go?  Policy
analysis (parsing-dominated), static analysis (graph construction +
taint), description analysis, and detection are measured separately
over the same 60-app slice.
"""

from __future__ import annotations

import time

from repro.core.checker import PPChecker
from repro.core.incomplete import (
    detect_incomplete_via_code,
    detect_incomplete_via_description,
)
from repro.core.inconsistent import detect_inconsistent
from repro.core.incorrect import (
    detect_incorrect_via_code,
    detect_incorrect_via_description,
)
from repro.core.matching import InfoMatcher


def test_stage_profile(benchmark, store, checker):
    sample = store.apps[64:124]
    matcher = InfoMatcher()

    def profile():
        timings = {"policy": 0.0, "static": 0.0, "description": 0.0,
                   "detect": 0.0}
        fresh = PPChecker(lib_policy_source=store.lib_policy)
        for app in sample:
            t0 = time.perf_counter()
            policy = fresh.analyze_policy(app.bundle)
            timings["policy"] += time.perf_counter() - t0

            t0 = time.perf_counter()
            static = fresh.analyze_code(app.bundle)
            timings["static"] += time.perf_counter() - t0

            t0 = time.perf_counter()
            permissions = fresh.autocog.infer_permissions(
                app.bundle.description
            ) & app.bundle.apk.manifest.permissions
            timings["description"] += time.perf_counter() - t0

            t0 = time.perf_counter()
            detect_incomplete_via_description(policy, permissions,
                                              matcher)
            detect_incomplete_via_code(policy, static, matcher)
            detect_incorrect_via_description(policy, permissions,
                                             matcher)
            detect_incorrect_via_code(policy, static, matcher)
            libs = {
                spec.lib_id: analysis
                for spec in static.libraries
                if (analysis := fresh._lib_policy(spec.lib_id))
                is not None
            }
            detect_inconsistent(policy, libs, matcher)
            timings["detect"] += time.perf_counter() - t0
        return timings

    timings = benchmark.pedantic(profile, rounds=3, iterations=1)
    total = sum(timings.values())
    print(f"\nPer-stage profile over {len(sample)} apps "
          f"(total {total * 1000:.0f} ms)")
    for stage, elapsed in sorted(timings.items(), key=lambda kv: -kv[1]):
        print(f"  {stage:<12} {elapsed * 1000:>8.1f} ms "
              f"({elapsed / total * 100:>5.1f}%)")
    assert total > 0
    # policy analysis (NLP) dominates, as in the paper's setting
    assert timings["policy"] >= timings["description"]
