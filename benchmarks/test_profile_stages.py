"""Per-stage latency profile of the pipeline.

Engineering benchmark: where does the per-app time go?  Policy
analysis (parsing-dominated), static analysis (graph construction +
taint), description analysis, and detection are measured separately
over the same 60-app slice.

``test_pipeline_profile`` additionally drives the staged pipeline in
serial-cold, warm-cache, and parallel modes and emits
``BENCH_pipeline.json`` (per-stage wall time, cache hit rate,
serial-vs-parallel speedup) so later PRs have a perf trajectory to
compare against.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.checker import PPChecker
from repro.core.incomplete import (
    detect_incomplete_via_code,
    detect_incomplete_via_description,
)
from repro.core.inconsistent import detect_inconsistent
from repro.core.incorrect import (
    detect_incorrect_via_code,
    detect_incorrect_via_description,
)
from repro.core.matching import InfoMatcher


def test_stage_profile(benchmark, store, checker):
    sample = store.apps[64:124]
    matcher = InfoMatcher()

    def profile():
        timings = {"policy": 0.0, "static": 0.0, "description": 0.0,
                   "detect": 0.0}
        fresh = PPChecker(lib_policy_source=store.lib_policy)
        for app in sample:
            t0 = time.perf_counter()
            policy = fresh.analyze_policy(app.bundle)
            timings["policy"] += time.perf_counter() - t0

            t0 = time.perf_counter()
            static = fresh.analyze_code(app.bundle)
            timings["static"] += time.perf_counter() - t0

            t0 = time.perf_counter()
            permissions = fresh.autocog.infer_permissions(
                app.bundle.description
            ) & app.bundle.apk.manifest.permissions
            timings["description"] += time.perf_counter() - t0

            t0 = time.perf_counter()
            detect_incomplete_via_description(policy, permissions,
                                              matcher)
            detect_incomplete_via_code(policy, static, matcher)
            detect_incorrect_via_description(policy, permissions,
                                             matcher)
            detect_incorrect_via_code(policy, static, matcher)
            libs = {
                spec.lib_id: analysis
                for spec in static.libraries
                if (analysis := fresh._lib_policy(spec.lib_id))
                is not None
            }
            detect_inconsistent(policy, libs, matcher)
            timings["detect"] += time.perf_counter() - t0
        return timings

    timings = benchmark.pedantic(profile, rounds=3, iterations=1)
    total = sum(timings.values())
    print(f"\nPer-stage profile over {len(sample)} apps "
          f"(total {total * 1000:.0f} ms)")
    for stage, elapsed in sorted(timings.items(), key=lambda kv: -kv[1]):
        print(f"  {stage:<12} {elapsed * 1000:>8.1f} ms "
              f"({elapsed / total * 100:>5.1f}%)")
    assert total > 0
    # policy analysis (NLP) dominates, as in the paper's setting
    assert timings["policy"] >= timings["description"]


BENCH_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_pipeline.json")


def test_pipeline_profile(benchmark, store):
    """Staged pipeline: cold vs. warm vs. parallel, with counters."""
    sample = [app.bundle for app in store.apps[64:124]]
    workers = 4

    def profile():
        serial = PPChecker(lib_policy_source=store.lib_policy)
        t0 = time.perf_counter()
        serial.check_batch(sample)
        serial_s = time.perf_counter() - t0
        cold = serial.stats.snapshot()

        t0 = time.perf_counter()
        serial.check_batch(sample)
        warm_s = time.perf_counter() - t0
        warm = serial.stats.snapshot()

        fresh = PPChecker(lib_policy_source=store.lib_policy)
        t0 = time.perf_counter()
        fresh.check_batch(sample, workers=workers)
        parallel_s = time.perf_counter() - t0

        warm_hits = {
            stage: warm[stage]["cache_hits"] - cold[stage]["cache_hits"]
            for stage in cold
        }
        warm_requests = {
            stage: (warm[stage]["executions"] + warm[stage]["cache_hits"]
                    - cold[stage]["executions"]
                    - cold[stage]["cache_hits"])
            for stage in cold
        }
        return {
            "n_apps": len(sample),
            "workers": workers,
            "serial_seconds": serial_s,
            "warm_seconds": warm_s,
            "parallel_seconds": parallel_s,
            "warm_speedup": serial_s / warm_s if warm_s else 0.0,
            "parallel_speedup": serial_s / parallel_s
            if parallel_s else 0.0,
            "stages": cold,
            "warm_hit_rate": {
                stage: warm_hits[stage] / warm_requests[stage]
                for stage in cold if warm_requests[stage]
            },
        }

    result = benchmark.pedantic(profile, rounds=3, iterations=1)
    from repro.core.schema import versioned

    with open(BENCH_PATH, "w", encoding="utf-8") as handle:
        json.dump(versioned(result), handle, indent=2, sort_keys=True)

    print(f"\nPipeline profile over {result['n_apps']} apps")
    print(f"  serial   {result['serial_seconds'] * 1000:>8.1f} ms")
    print(f"  warm     {result['warm_seconds'] * 1000:>8.1f} ms "
          f"({result['warm_speedup']:.1f}x)")
    print(f"  parallel {result['parallel_seconds'] * 1000:>8.1f} ms "
          f"({result['parallel_speedup']:.2f}x, "
          f"{result['workers']} workers)")
    print(f"  wrote {BENCH_PATH}")

    # a warm rerun must skip (nearly) every policy/static execution
    for stage in ("policy_analysis", "static_analysis"):
        assert result["warm_hit_rate"][stage] >= 0.9, stage
    assert result["warm_speedup"] > 1.0
