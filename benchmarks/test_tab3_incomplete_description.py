"""Table III -- permissions leading to incomplete privacy policies
(description path, Alg. 1) and the number of affected apps.

Paper:  ACCESS_FINE_LOCATION 19, ACCESS_COARSE_LOCATION 14,
READ_CONTACTS 12, GET_ACCOUNTS 11, CAMERA 6, READ_CALENDAR 2,
WRITE_CONTACTS 1 -- 64 questionable apps in total, location-related
permissions dominating.
"""

from __future__ import annotations

from repro.core.incomplete import detect_incomplete_via_description
from repro.core.matching import InfoMatcher

PAPER_TABLE3 = {
    "android.permission.ACCESS_FINE_LOCATION": 19,
    "android.permission.ACCESS_COARSE_LOCATION": 14,
    "android.permission.READ_CONTACTS": 12,
    "android.permission.GET_ACCOUNTS": 11,
    "android.permission.CAMERA": 6,
    "android.permission.READ_CALENDAR": 2,
    "android.permission.WRITE_CONTACTS": 1,
}


def test_table3(benchmark, store, checker, study):
    matcher = InfoMatcher()
    sample = store.apps[:64]

    def run_description_detector():
        flagged = 0
        for app in sample:
            policy = checker.analyze_policy(app.bundle)
            permissions = checker.autocog.infer_permissions(
                app.bundle.description
            ) & app.bundle.apk.manifest.permissions
            if detect_incomplete_via_description(policy, permissions,
                                                 matcher):
                flagged += 1
        return flagged

    benchmark(run_description_detector)

    table = study.table3()
    print("\nTable III -- permissions leading to incomplete policies")
    print(f"{'permission':<50} {'paper':>6} {'measured':>9}")
    for permission, paper_count in PAPER_TABLE3.items():
        print(f"{permission:<50} {paper_count:>6} "
              f"{table.get(permission, 0):>9}")
    total = len(study.incomplete_desc_apps())
    print(f"{'total questionable apps':<50} {64:>6} {total:>9}")

    assert table == PAPER_TABLE3
    assert total == 64
