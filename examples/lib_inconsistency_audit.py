#!/usr/bin/env python3
"""Third-party-library inconsistency audit (Section IV-C, Table IV).

Recreates the paper's Temple-Run-2 scenario -- an app whose policy
denies collecting location while its bundled Unity3d engine declares
it will receive it -- then audits a batch of generated apps and breaks
the findings down by library and verb category.

Run:  python examples/lib_inconsistency_audit.py
"""

from collections import Counter

from repro import AndroidManifest, Apk, AppBundle, Component, PPChecker
from repro.android.dex import DexClass, DexFile
from repro.core.checker import PPChecker
from repro.corpus.appstore import generate_app_store


def temple_run_demo() -> None:
    print("== single-app demo: the Temple Run 2 case (Fig. 3) ==\n")
    dex = DexFile()
    dex.add_class(DexClass(name="com.imangi.templerun2.Main",
                           superclass="android.app.Activity"))
    dex.add_class(DexClass(name="com.unity3d.player.UnityPlayer"))
    manifest = AndroidManifest(package="com.imangi.templerun2")
    manifest.add_component(Component(name="com.imangi.templerun2.Main",
                                     kind="activity"))

    lib_policies = {
        "unity3d": "We may receive your location information. "
                   "We may collect your device identifiers.",
    }
    checker = PPChecker(lib_policy_source=lib_policies.get)
    report = checker.check(AppBundle(
        package="com.imangi.templerun2",
        apk=Apk(manifest=manifest, dex=dex),
        policy="We do not collect your location information. "
               "We may collect anonymous gameplay statistics.",
        description="Run for your life in this endless runner.",
    ))
    print(report.summary())


def market_audit() -> None:
    print("\n== market audit: inconsistencies across 360 apps ==\n")
    store = generate_app_store(n_apps=360)
    checker = PPChecker(lib_policy_source=store.lib_policy)

    by_lib: Counter[str] = Counter()
    by_category: Counter[str] = Counter()
    flagged = 0
    for app in store.apps:
        report = checker.check(app.bundle)
        if not report.is_inconsistent:
            continue
        flagged += 1
        for finding in report.inconsistent:
            by_lib[finding.lib_id] += 1
            by_category[str(finding.category)] += 1

    print(f"apps with at least one inconsistency: {flagged}")
    print("\nfindings per library:")
    for lib, count in by_lib.most_common(10):
        print(f"  {lib:<18} {count}")
    print("\nfindings per verb category:")
    for category, count in by_category.most_common():
        print(f"  {category:<10} {count}")


if __name__ == "__main__":
    temple_run_demo()
    market_audit()
