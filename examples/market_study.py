#!/usr/bin/env python3
"""Reproduce the paper's 1,197-app market study (Section V).

Generates the synthetic app store, runs PPChecker over every app, and
prints every table and figure of the evaluation section side by side
with the paper's published numbers.

Run:  python examples/market_study.py [n_apps]
"""

import sys
import time

from repro.core.checker import PPChecker
from repro.core.study import run_study
from repro.corpus.appstore import generate_app_store

PAPER = {
    "problem_apps": 282, "incomplete_apps": 222,
    "incomplete_via_description": 64, "incomplete_via_code": 180,
    "incorrect_apps": 4, "inconsistent_apps": 75,
}


def main() -> None:
    n_apps = int(sys.argv[1]) if len(sys.argv) > 1 else 1197

    t0 = time.time()
    store = generate_app_store(n_apps=n_apps)
    print(f"generated {len(store)} apps in {time.time() - t0:.1f}s")

    t0 = time.time()
    checker = PPChecker(lib_policy_source=store.lib_policy)
    result = run_study(store, checker=checker)
    print(f"checked {len(store)} apps in {time.time() - t0:.1f}s\n")

    summary = result.summary()
    print("== Section V-F: summary ==")
    for key, value in summary.items():
        paper = PAPER.get(key)
        suffix = f"   (paper: {paper})" if paper is not None else ""
        if isinstance(value, float):
            print(f"  {key:<28} {value:.3f}{suffix}")
        else:
            print(f"  {key:<28} {value}{suffix}")

    print("\n== Table III: permissions behind description gaps ==")
    for permission, count in sorted(result.table3().items(),
                                    key=lambda kv: -kv[1]):
        print(f"  {permission:<50} {count}")

    print("\n== Fig. 13: missed information (code path) ==")
    dist, retained = result.fig13()
    for info, count in dist.most_common():
        print(f"  {info.value:<20} {count}")
    print(f"  total records: {sum(dist.values())}, retained: {retained}")

    print("\n== Table IV: inconsistency detection ==")
    for name, row in result.table4().items():
        print(f"  {name:<20} TP={row.tp} FP={row.fp} "
              f"P={row.precision:.3f} R={row.recall:.3f} "
              f"F1={row.f1:.3f}")

    print("\n== sample findings ==")
    shown = 0
    for package, report in result.reports.items():
        if report.has_problem and shown < 3:
            print()
            print(report.summary())
            shown += 1


if __name__ == "__main__":
    main()
