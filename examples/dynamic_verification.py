#!/usr/bin/env python3
"""Dynamic verification and policy generation (the paper's Discussion).

1. Builds an app with a live leak (location -> log) and dead sensitive
   code, runs the static analysis, then *executes* the app with the
   dynamic-analysis simulator and cross-checks the two result sets --
   the verification step the paper proposes as future work.
2. Feeds the confirmed facts into the AutoPPG-style policy generator
   and shows that PPChecker finds no problems in the generated policy.

Run:  python examples/dynamic_verification.py
"""

from repro import AndroidManifest, Apk, AppBundle, Component, PPChecker
from repro.android.dex import DexClass, DexFile, Instruction, Method
from repro.android.dynamic import DynamicAnalyzer, verify_static
from repro.android.static_analysis import analyze_apk
from repro.policy.autoppg import generate_policy

PACKAGE = "com.example.verified"


def build_apk() -> Apk:
    dex = DexFile()
    activity = DexClass(name=f"{PACKAGE}.MainActivity",
                        superclass="android.app.Activity")
    on_create = Method(class_name=f"{PACKAGE}.MainActivity",
                       name="onCreate", params=("bundle",))
    on_create.instructions = [
        Instruction(op="invoke", dest="v0",
                    target="android.location.Location->getLatitude()"),
        Instruction(op="const-string", dest="v1", literal="TAG"),
        Instruction(op="invoke", target="android.util.Log->i(tag,msg)",
                    args=("v1", "v0")),
        Instruction(op="return"),
    ]
    activity.add_method(on_create)
    dex.add_class(activity)

    # dead code: queries contacts but is never called
    dead = DexClass(name=f"{PACKAGE}.Legacy")
    never = Method(class_name=f"{PACKAGE}.Legacy", name="never")
    never.instructions = [
        Instruction(op="const-string", dest="v0",
                    literal="content://contacts"),
        Instruction(op="invoke", dest="v1",
                    target="android.net.Uri->parse(uriString)",
                    args=("v0",)),
        Instruction(op="invoke", dest="v2",
                    target="android.content.ContentResolver->query(uri,"
                           "projection,selection,selectionArgs,sortOrder)",
                    args=("v1",)),
    ]
    dead.add_method(never)
    dex.add_class(dead)

    manifest = AndroidManifest(package=PACKAGE, permissions={
        "android.permission.ACCESS_FINE_LOCATION",
        "android.permission.READ_CONTACTS",
    })
    manifest.add_component(Component(name=f"{PACKAGE}.MainActivity",
                                     kind="activity"))
    return Apk(manifest=manifest, dex=dex)


def main() -> None:
    apk = build_apk()

    print("== static analysis ==")
    static = analyze_apk(apk)
    print("collected:", sorted(str(i) for i in static.collected_infos()))
    print("retained: ", sorted(str(i) for i in static.retained_infos()))

    print("\n== static without reachability (over-approximation) ==")
    loose = analyze_apk(apk, use_reachability=False)
    print("collected:", sorted(str(i) for i in loose.collected_infos()))

    print("\n== dynamic execution ==")
    observation = DynamicAnalyzer(apk).run()
    print("executed methods:", len(observation.executed_methods))
    print("observed collection:",
          sorted(str(i) for i in observation.collected_infos()))
    print("observed retention: ",
          sorted(str(i) for i in observation.retained_infos()))

    print("\n== verification (static vs dynamic) ==")
    report = verify_static(apk, loose, observation)
    print("confirmed collected:  ",
          sorted(str(i) for i in report.confirmed_collected))
    print("unconfirmed collected:",
          sorted(str(i) for i in report.unconfirmed_collected),
          "(the dead-code contacts query -- a static FP the dynamic",
          "run refutes)")
    print("static sound:", report.static_is_sound)

    print("\n== AutoPPG: generate a covering policy ==")
    policy = generate_policy(apk, static)
    print(policy)

    print("\n== PPChecker on the generated policy ==")
    check = PPChecker().check(AppBundle(
        package=PACKAGE, apk=apk, policy=policy,
        description="A sample app.",
    ))
    print(check.summary())


if __name__ == "__main__":
    main()
