#!/usr/bin/env python3
"""Replay every app the paper names, side by side with the paper.

Eleven concrete apps appear in the paper's narrative -- the running
examples of Section II, the incorrect-policy cases of Section V-D, and
the error-mode cases of Section V-E.  All are reconstructed in
``repro.corpus.named``; this script checks each one and prints the
verdict next to what the paper reports, including the two documented
false positives and the false negative.

Run:  python examples/paper_named_cases.py
"""

from repro.core.checker import PPChecker
from repro.corpus.named import (
    EXPECTED,
    build_named_apps,
    named_lib_policy,
)


def verdict(report) -> str:
    kinds = sorted(report.problem_kinds())
    return ", ".join(kinds) if kinds else "clean"


def expected_verdict(expectation) -> str:
    kinds = []
    if expectation.incomplete:
        kinds.append("incomplete")
    if expectation.incorrect:
        kinds.append("incorrect")
    if expectation.inconsistent:
        kinds.append("inconsistent")
    return ", ".join(kinds) if kinds else "clean"


def main() -> None:
    checker = PPChecker(lib_policy_source=named_lib_policy)
    apps = build_named_apps()

    print(f"{'package':<36} {'paper':<24} {'reproduced':<24} match")
    print("-" * 96)
    matches = 0
    for package in sorted(apps):
        report = checker.check(apps[package])
        expectation = EXPECTED[package]
        got = verdict(report)
        want = expected_verdict(expectation)
        ok = got == want
        matches += ok
        print(f"{package:<36} {want:<24} {got:<24} "
              f"{'yes' if ok else 'NO'}")
    print("-" * 96)
    print(f"{matches}/{len(apps)} named cases reproduce the paper's "
          "outcome.\n")

    print("Notes on the deliberate error modes:")
    for package, expectation in sorted(EXPECTED.items()):
        if "FALSE" in expectation.note:
            print(f"  {package}: {expectation.note}")

    print("\nDetailed report for the Fig. 2 running example:")
    print(checker.check(apps["com.dooing.dooing"]).summary())


if __name__ == "__main__":
    main()
