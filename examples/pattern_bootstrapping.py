#!/usr/bin/env python3
"""Pattern bootstrapping walkthrough (Section III-B Step 3, Fig. 7/12).

Trains the enhanced bootstrapping on a labelled policy-sentence
corpus, shows the learned dependency-chain patterns with their Eq. 1
scores, and sweeps the pattern count n to reproduce the Fig. 12
trade-off between false negatives and false positives.

Run:  python examples/pattern_bootstrapping.py
"""

from repro.corpus.sentences import generate_labeled_sentences
from repro.nlp.parser import parse
from repro.policy.bootstrap import Bootstrapper, top_n_patterns
from repro.policy.patterns import match_pattern


def main() -> None:
    train, validation = generate_labeled_sentences()
    print(f"training corpus: {len(train)} labelled sentences")
    print(f"validation:      {len(validation)} sentences "
          "(250 positive / 250 negative)\n")

    bootstrapper = Bootstrapper(train)
    patterns = bootstrapper.run()
    scored = bootstrapper.score(patterns)
    print(f"bootstrapping converged with {len(patterns)} patterns\n")

    print("top 10 patterns by Score(p) = conf(p) * log(pos(p)):")
    print(f"  {'chain':<28} {'pos':>4} {'neg':>4} {'acc':>6} "
          f"{'conf':>6} {'score':>6}")
    for sp in scored[:10]:
        chain = ">".join(sp.pattern.chain)
        print(f"  {chain:<28} {sp.pos:>4} {sp.neg:>4} "
              f"{sp.accuracy:>6.2f} {sp.confidence:>6.2f} "
              f"{sp.score:>6.2f}")

    # the Fig. 7 example: a control-verb chain learned from data
    learned_chains = {sp.pattern.chain for sp in scored}
    fig7 = [c for c in learned_chains if len(c) == 2 and c[0] == "allow"]
    print(f"\nFig. 7-style learned chains (subject-allowed-V-object): "
          f"{sorted(fig7)[:5]}")

    print("\nFig. 12 sweep (validation FNR / FPR by pattern count):")
    trees = [(s, parse(s.text.lower())) for s in validation]
    print(f"  {'n':>5} {'FNR':>7} {'FPR':>7}")
    for n in (10, 50, 100, 150, 200, 230, 260, 300):
        top = top_n_patterns(scored, n)
        fn = fp = 0
        for sentence, tree in trees:
            hit = any(match_pattern(p, tree) for p in top)
            if sentence.positive and not hit:
                fn += 1
            elif not sentence.positive and hit:
                fp += 1
        print(f"  {n:>5} {fn / 250:>7.3f} {fp / 250:>7.3f}")
    print("\npaper's operating point: n=230 with FNR 12.0%, FPR 2.8%")


if __name__ == "__main__":
    main()
