#!/usr/bin/env python3
"""Quickstart: check one app's privacy policy with PPChecker.

Builds a small app in memory -- an activity that reads GPS coordinates
and logs the contact list -- pairs it with a privacy policy and a
Play-store description, and runs all three detectors.

Run:  python examples/quickstart.py
"""

from repro import AndroidManifest, Apk, AppBundle, Component, PPChecker
from repro.android.dex import DexClass, DexFile, Instruction, Method

PACKAGE = "com.example.quickstart"

POLICY = """
<html><body>
<h1>Privacy Policy</h1>
<p>When you use the app, we may collect your email address.</p>
<p>We may share anonymous usage statistics with our partners.</p>
<p>We will not store your contacts.</p>
</body></html>
"""

DESCRIPTION = (
    "The app uses gps to tag every note with your position. "
    "Syncs seamlessly across devices."
)


def build_apk() -> Apk:
    """An app that collects location and writes contacts to the log."""
    dex = DexFile()

    activity = DexClass(name=f"{PACKAGE}.MainActivity",
                        superclass="android.app.Activity")
    on_create = Method(class_name=f"{PACKAGE}.MainActivity",
                       name="onCreate", params=("savedInstanceState",))
    on_create.instructions = [
        # collect precise location
        Instruction(op="invoke", dest="v0",
                    target="android.location.Location->getLatitude()"),
        # query the contacts provider ...
        Instruction(op="const-string", dest="v1",
                    literal="content://contacts"),
        Instruction(op="invoke", dest="v2",
                    target="android.net.Uri->parse(uriString)",
                    args=("v1",)),
        Instruction(op="invoke", dest="v3",
                    target="android.content.ContentResolver->query(uri,"
                           "projection,selection,selectionArgs,sortOrder)",
                    args=("v2",)),
        # ... and retain the result in the log
        Instruction(op="const-string", dest="v4", literal="TAG"),
        Instruction(op="invoke",
                    target="android.util.Log->i(tag,msg)",
                    args=("v4", "v3")),
        Instruction(op="return"),
    ]
    activity.add_method(on_create)
    dex.add_class(activity)

    manifest = AndroidManifest(
        package=PACKAGE,
        permissions={
            "android.permission.ACCESS_FINE_LOCATION",
            "android.permission.READ_CONTACTS",
            "android.permission.INTERNET",
        },
    )
    manifest.add_component(Component(name=f"{PACKAGE}.MainActivity",
                                     kind="activity"))
    return Apk(manifest=manifest, dex=dex)


def main() -> None:
    checker = PPChecker()
    bundle = AppBundle(
        package=PACKAGE,
        apk=build_apk(),
        policy=POLICY,
        description=DESCRIPTION,
        policy_is_html=True,
    )
    report = checker.check(bundle)

    print(report.summary())
    print()
    print("Expected findings:")
    print(" - INCOMPLETE: the policy never mentions location, although")
    print("   both the description ('uses gps') and the bytecode")
    print("   (getLatitude) show the app collects it.")
    print(" - INCOMPLETE (retained): contacts are queried and logged,")
    print("   but only denied -- never positively covered.")
    print(" - INCORRECT: the policy says 'we will not store your")
    print("   contacts', yet there is a taint path from the contacts")
    print("   query to Log.i().")


if __name__ == "__main__":
    main()
