"""Labelled-sentence corpus tests (bootstrap / Fig. 12 input)."""

import pytest

from repro.corpus.sentences import generate_labeled_sentences


@pytest.fixture(scope="module")
def corpora():
    return generate_labeled_sentences()


class TestCorpus:
    def test_validation_sizes(self, corpora):
        _train, val = corpora
        assert sum(1 for s in val if s.positive) == 250
        assert sum(1 for s in val if not s.positive) == 250

    def test_training_has_both_labels(self, corpora):
        train, _val = corpora
        assert any(s.positive for s in train)
        assert any(not s.positive for s in train)

    def test_positive_sentences_have_categories(self, corpora):
        train, val = corpora
        for s in train + val:
            if s.positive:
                assert s.category is not None

    def test_deterministic(self, corpora):
        again = generate_labeled_sentences()
        assert [s.text for s in again[0]] == [
            s.text for s in corpora[0]
        ]

    def test_custom_sizes(self):
        _train, val = generate_labeled_sentences(
            n_validation_positive=50, n_validation_negative=30,
        )
        assert sum(1 for s in val if s.positive) == 50
        assert sum(1 for s in val if not s.positive) == 30

    def test_seed_changes_sample(self):
        a = generate_labeled_sentences(seed=1)[1]
        b = generate_labeled_sentences(seed=2)[1]
        assert [s.text for s in a] != [s.text for s in b]

    def test_training_covers_many_chains(self, corpora):
        train, _val = corpora
        assert len({s.text for s in train if s.positive}) > 200
