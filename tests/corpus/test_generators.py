"""Policy/description/code generator tests."""

import pytest

from repro.android.libs import LIB_REGISTRY
from repro.corpus.appstore import generate_app_store
from repro.corpus.codegen import INFO_SOURCES, build_apk
from repro.corpus.descgen import render_description
from repro.corpus.libpolicies import lib_behaviors, lib_policy_text
from repro.corpus.plans import build_plans
from repro.corpus.policygen import render_app_policy
from repro.policy.analyzer import PolicyAnalyzer
from repro.semantics.resources import InfoType


@pytest.fixture(scope="module")
def plans():
    return build_plans(n_apps=330)


class TestPolicyGen:
    def test_policy_mentions_covered_resources(self, plans, analyzer):
        plan = next(p for p in plans if p.covered)
        analysis = analyzer.analyze(render_app_policy(plan))
        assert analysis.all_positive()

    def test_denials_render_negative_statements(self, plans, analyzer):
        plan = next(
            p for p in plans
            if p.denials and not p.denials[0].verb
            and not p.denials[0].sentence
        )
        analysis = analyzer.analyze(render_app_policy(plan))
        assert analysis.all_negative()

    def test_disclaimer_rendered(self, plans, analyzer):
        plan = next(p for p in plans if p.disclaimer)
        analysis = analyzer.analyze(render_app_policy(plan))
        assert analysis.has_third_party_disclaimer

    def test_deterministic(self, plans):
        plan = plans[0]
        assert render_app_policy(plan) == render_app_policy(plan)


class TestDescGen:
    def test_planted_permission_phrase_present(self, plans):
        plan = next(p for p in plans if p.desc_permissions)
        desc = render_description(plan)
        from repro.description.autocog import infer_permissions
        assert set(plan.desc_permissions) <= infer_permissions(desc)

    def test_clean_description_triggers_nothing(self, plans):
        from repro.description.autocog import infer_permissions
        plan = next(
            p for p in plans
            if not p.desc_permissions and p.index >= 243
        )
        assert infer_permissions(render_description(plan)) == set()


class TestCodeGen:
    def test_every_info_source_resolvable(self):
        for info, (api, uri, _perm) in INFO_SOURCES.items():
            assert (api is None) != (uri is None) or api is not None

    def test_collects_produce_facts(self, plans):
        from repro.android.static_analysis import analyze_apk
        plan = next(p for p in plans if p.collects)
        result = analyze_apk(build_apk(plan))
        assert set(plan.collects) <= result.collected_infos()

    def test_retains_produce_taint_paths(self, plans):
        from repro.android.static_analysis import analyze_apk
        plan = next(p for p in plans if p.retains)
        result = analyze_apk(build_apk(plan))
        assert set(plan.retains) <= result.retained_infos()

    def test_libs_embedded(self, plans):
        from repro.android.libs import detect_libraries
        plan = next(p for p in plans if p.lib_ids)
        apk = build_apk(plan)
        detected = {l.lib_id for l in detect_libraries(apk.dex)}
        assert set(plan.lib_ids) <= detected

    def test_packed_flag_respected(self, plans):
        plan = next(p for p in plans if p.packed)
        assert build_apk(plan).packed

    def test_manifest_covers_needed_permissions(self, plans):
        plan = next(p for p in plans if p.collects)
        apk = build_apk(plan)
        for info in plan.collects:
            permission = INFO_SOURCES[info][2]
            if permission:
                assert apk.manifest.has_permission(permission)


class TestLibPolicies:
    def test_all_81_libs_render(self):
        for lib_id in LIB_REGISTRY:
            text = lib_policy_text(lib_id)
            assert lib_id in text

    def test_behaviors_parse_back(self, analyzer):
        analysis = analyzer.analyze(lib_policy_text("unity3d"))
        assert "location" in analysis.collected

    def test_unknown_lib_raises(self):
        with pytest.raises(KeyError):
            lib_behaviors("nonexistent")

    def test_explicit_behaviors_union_rules(self):
        behaviors = lib_behaviors("admob")
        from repro.policy.verbs import VerbCategory
        assert (VerbCategory.COLLECT, "device identifiers") in behaviors
        assert (VerbCategory.COLLECT, "location") in behaviors


class TestAppStore:
    def test_store_cached(self):
        a = generate_app_store(n_apps=64)
        b = generate_app_store(n_apps=64)
        assert a is b

    def test_lookup_by_package(self, small_store):
        app = small_store.apps[0]
        assert small_store.app(app.package) is app
        assert small_store.app("com.missing") is None

    def test_lib_policy_source(self, small_store):
        assert small_store.lib_policy("admob")
        assert small_store.lib_policy("nonexistent") is None

    def test_len(self, small_store):
        assert len(small_store) == 64
