"""Robustness: detector results are stable under policy mutations."""

import pytest

from repro.corpus.mutations import (
    inject_boilerplate,
    mangle_whitespace,
    rewrap_html,
    shuffle_sentences,
    swap_resource_alias,
)
from repro.corpus.policygen import render_app_policy
from repro.policy.analyzer import PolicyAnalyzer

_ANALYZER = PolicyAnalyzer()

BASE = ("We may collect your location. We will not store your "
        "contacts. We may share your device id with partners.")


def _sets(policy, html=False):
    analysis = _ANALYZER.analyze(policy, html=html)
    return analysis.all_positive(), analysis.all_negative()


class TestMutationInvariance:
    def test_shuffle_preserves_sets(self):
        for seed in range(5):
            assert _sets(shuffle_sentences(BASE, seed)) == _sets(BASE)

    def test_boilerplate_preserves_sets(self):
        for seed in range(5):
            assert _sets(inject_boilerplate(BASE, seed)) == _sets(BASE)

    def test_whitespace_preserves_sets(self):
        for seed in range(5):
            assert _sets(mangle_whitespace(BASE, seed)) == _sets(BASE)

    def test_html_rewrap_preserves_sets(self):
        wrapped = rewrap_html(BASE)
        assert _sets(wrapped, html=True) == _sets(BASE)

    def test_alias_swap_preserves_matching(self):
        """The textual sets differ, but information matching agrees."""
        from repro.core.matching import InfoMatcher
        from repro.semantics.resources import InfoType
        matcher = InfoMatcher()
        swapped = swap_resource_alias(BASE)
        pos, neg = _sets(swapped)
        assert matcher.covered(InfoType.LOCATION, pos)
        assert matcher.covered(InfoType.DEVICE_ID, pos)
        assert matcher.covered(InfoType.CONTACT, neg)


class TestMutationOverCorpus:
    @pytest.mark.parametrize("mutation", [shuffle_sentences,
                                          inject_boilerplate,
                                          mangle_whitespace])
    def test_corpus_policies_stable(self, mutation, mid_store):
        for app in mid_store.apps[64:76]:
            base_policy = render_app_policy(app.plan)
            assert _sets(mutation(base_policy, 1)) == \
                _sets(base_policy), app.package
