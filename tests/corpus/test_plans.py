"""App-plan layout tests: the calibrated counts behind Section V."""

from collections import Counter

import pytest

from repro.corpus.plans import (
    BACKGROUND,
    DISCLAIMER_APPS,
    FIG13_DISTRIBUTION,
    INC_CODE_FP,
    INC_CODE_ONLY,
    INC_DESC_CODE,
    INC_DESC_ONLY,
    INCONSISTENT_FN,
    INCONSISTENT_FP,
    INCORRECT_FP,
    INCORRECT_TP,
    N_APPS,
    TABLE3_PERMISSIONS,
    TOTAL_APPS_WITH_LIBS,
    build_plans,
)


@pytest.fixture(scope="module")
def plans():
    return build_plans()


class TestLayout:
    def test_total_apps(self, plans):
        assert len(plans) == N_APPS == 1197

    def test_packages_unique(self, plans):
        assert len({p.package for p in plans}) == N_APPS

    def test_determinism(self, plans):
        again = build_plans()
        assert [p.package for p in again] == [p.package for p in plans]
        assert [p.collects for p in again] == [p.collects for p in plans]

    def test_desc_incomplete_count(self, plans):
        desc_apps = [p for p in plans if p.gt_incomplete_desc]
        assert len(desc_apps) == 64

    def test_table3_permission_records(self, plans):
        counts = Counter()
        for plan in plans:
            for _info, permission in plan.gt_incomplete_desc:
                counts[permission] += 1
        # READ_PHONE_STATE-like double-info permissions don't occur here
        for permission, expected in TABLE3_PERMISSIONS:
            assert counts[permission] == expected

    def test_code_incomplete_apps(self, plans):
        code_apps = [p for p in plans if p.gt_incomplete_code]
        assert len(code_apps) == 180

    def test_fig13_record_total(self, plans):
        records = [
            rec for p in plans for rec in p.gt_incomplete_code
        ]
        assert len(records) == 234
        assert sum(1 for _i, retained in records if retained) == 32

    def test_fig13_distribution_matches_spec(self, plans):
        counts = Counter()
        for plan in plans:
            for info, _ret in plan.gt_incomplete_code:
                counts[info] += 1
        for info, total, _ret in FIG13_DISTRIBUTION:
            assert counts[info] == total

    def test_incorrect_apps(self, plans):
        assert sum(1 for p in plans if p.gt_incorrect) == 4

    def test_incorrect_fp_apps_labeled_correct(self, plans):
        for idx in INCORRECT_FP:
            assert not plans[idx].gt_incorrect
            assert plans[idx].denials

    def test_inconsistent_true_apps(self, plans):
        cur = sum(1 for p in plans if p.gt_inconsistent_cur)
        d = sum(1 for p in plans if p.gt_inconsistent_d)
        both = sum(
            1 for p in plans
            if p.gt_inconsistent_cur and p.gt_inconsistent_d
        )
        # 41 detectable + 4 FN in the CUR row; 39 + 3 in the D row
        assert cur == 45
        assert d == 42
        assert both == 5

    def test_fp_inconsistent_apps_labeled_consistent(self, plans):
        for idx in INCONSISTENT_FP:
            assert not plans[idx].gt_is_inconsistent
            assert plans[idx].inconsistencies

    def test_fn_apps_use_unmatched_verbs(self, plans):
        for idx in INCONSISTENT_FN:
            assert plans[idx].inconsistencies[0].fn_verb

    def test_disclaimer_apps(self, plans):
        for idx in DISCLAIMER_APPS:
            assert plans[idx].disclaimer
            assert not plans[idx].gt_is_inconsistent

    def test_lib_count(self, plans):
        assert sum(1 for p in plans if p.lib_ids) == TOTAL_APPS_WITH_LIBS

    def test_problem_app_union_is_282(self, plans):
        problems = sum(1 for p in plans if (
            p.gt_is_incomplete or p.gt_incorrect or (
                # only detectable inconsistencies count toward the
                # paper's 282 (FNs were never found)
                any(s.truly_inconsistent and not s.fn_verb
                    for s in p.inconsistencies)
            )
        ))
        assert problems == 282

    def test_denials_never_conflict_with_code(self, plans):
        from repro.semantics.resources import normalize_resource
        for plan in plans:
            if plan.gt_incorrect or plan.index in INCORRECT_FP:
                continue
            code = set(plan.collects) | set(plan.retains)
            for denial in plan.denials:
                info = normalize_resource(denial.resource)
                assert info is None or info not in code, plan.package

    def test_background_apps_clean(self, plans):
        for idx in list(BACKGROUND)[:50]:
            plan = plans[idx]
            assert not plan.gt_has_problem

    def test_truncated_corpus(self):
        small = build_plans(n_apps=100)
        assert len(small) == 100
        assert small[0].package == build_plans()[0].package

    def test_planted_counts_invariant_under_seed(self):
        """The seed shuffles background noise, not the calibration."""
        other = build_plans(seed=7)
        assert sum(1 for p in other if p.gt_incomplete_desc) == 64
        assert sum(1 for p in other if p.gt_incomplete_code) == 180
        assert sum(1 for p in other if p.gt_incorrect) == 4
        records = [r for p in other for r in p.gt_incomplete_code]
        assert len(records) == 234

    def test_seed_changes_background_assignment(self):
        a = build_plans(seed=2016)
        b = build_plans(seed=7)
        assert any(
            pa.collects != pb.collects or pa.lib_ids != pb.lib_ids
            for pa, pb in zip(a, b)
        )
