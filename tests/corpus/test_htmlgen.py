"""HTML policy-rendering tests."""

from repro.corpus.htmlgen import policy_to_html
from repro.nlp.sentences import split_sentences
from repro.policy.html_text import html_to_text


class TestPolicyToHtml:
    def test_sentences_preserved(self):
        text = ("We may collect your location. We will not store "
                "your contacts.")
        html = policy_to_html(text)
        recovered = split_sentences(html_to_text(html))
        original = split_sentences(text)
        # the title adds one heading line; original prose is intact
        for sentence in original:
            assert sentence in recovered

    def test_script_does_not_leak(self):
        html = policy_to_html("We collect data.")
        assert "analytics" not in html_to_text(html)

    def test_variants_differ(self):
        a = policy_to_html("We collect data.", variant=0)
        b = policy_to_html("We collect data.", variant=1)
        assert a != b

    def test_title_included(self):
        html = policy_to_html("We collect data.", title="My Policy")
        assert "My Policy" in html

    def test_corpus_bundles_are_html(self, small_store):
        app = small_store.apps[0]
        assert app.bundle.policy_is_html
        assert app.bundle.policy.startswith("<html>")

    def test_corpus_analysis_equivalence(self, small_store, analyzer):
        """HTML rendering does not change what the analyzer extracts."""
        from repro.corpus.policygen import render_app_policy
        app = small_store.apps[42]
        html_analysis = analyzer.analyze(app.bundle.policy, html=True)
        text_analysis = analyzer.analyze(render_app_policy(app.plan))
        assert html_analysis.all_positive() == \
            text_analysis.all_positive()
        assert html_analysis.all_negative() == \
            text_analysis.all_negative()
