"""The lazy corpus (:class:`CorpusSpec`) is plan-for-plan identical
to the eager generator -- per-index derivation must not change a
single app, or every planted ground-truth table silently shifts."""

import dataclasses

import pytest

from repro.corpus.appstore import CorpusSpec, generate_app_store
from repro.corpus.plans import DEFAULT_SEED, N_APPS, build_plans

SIZES = [1, 10, 64, 335, 400, 1197, 1500]


def as_tuples(plans):
    return [dataclasses.astuple(plan) for plan in plans]


class TestSpecMatchesEagerPlans:
    @pytest.mark.parametrize("n_apps", SIZES)
    def test_iter_plans_equals_build_plans(self, n_apps):
        eager = build_plans(n_apps=n_apps)
        lazy = list(CorpusSpec(n_apps=n_apps).iter_plans())
        assert as_tuples(lazy) == as_tuples(eager)

    def test_random_access_equals_sequential(self):
        spec = CorpusSpec(n_apps=1197)
        eager = build_plans(n_apps=1197)
        # jump straight to arbitrary indices on a cold spec: the
        # derivation must not depend on visiting 0..i-1 first
        for index in (1196, 0, 500, 334, 335, 879, 7):
            assert dataclasses.astuple(spec.plan(index)) \
                == dataclasses.astuple(eager[index])

    def test_other_seed_still_matches(self):
        eager = build_plans(seed=7, n_apps=400)
        lazy = list(CorpusSpec(seed=7, n_apps=400).iter_plans())
        assert as_tuples(lazy) == as_tuples(eager)

    def test_indices_beyond_paper_window_are_derivable(self):
        # plan(i) far past the 1,197-app window never materializes
        # the corpus in between
        spec = CorpusSpec(n_apps=1_000_000)
        plan = spec.plan(999_999)
        assert plan.index == 999_999
        assert plan.package == spec.package_for(999_999)
        # beyond the background window: no planted problems
        assert not plan.gt_incomplete_desc
        assert not plan.gt_incomplete_code
        assert not plan.gt_incorrect


class TestSpecApi:
    def test_len_and_out_of_range(self):
        spec = CorpusSpec(n_apps=10)
        assert len(spec) == 10
        with pytest.raises(IndexError):
            spec.plan(10)
        with pytest.raises(IndexError):
            spec.plan(-1)
        with pytest.raises(IndexError):
            spec.package_for(10)

    def test_iter_apps_slice_matches_materialized(self):
        spec = CorpusSpec(n_apps=64)
        store = spec.materialize()
        window = list(spec.iter_apps(20, 30))
        assert [app.package for app in window] \
            == [app.package for app in store.apps[20:30]]
        assert [app.bundle.policy for app in window] \
            == [app.bundle.policy for app in store.apps[20:30]]

    def test_app_builds_single_bundle(self):
        spec = CorpusSpec(n_apps=64)
        app = spec.app(17)
        assert app.package == spec.package_for(17)
        assert app.plan.index == 17

    def test_defaults_are_the_paper_corpus(self):
        spec = CorpusSpec()
        assert spec.seed == DEFAULT_SEED
        assert len(spec) == N_APPS

    def test_generate_app_store_is_materialized_spec(self):
        store = generate_app_store(n_apps=64)
        spec_store = CorpusSpec(n_apps=64).materialize()
        assert [a.package for a in store.apps] \
            == [a.package for a in spec_store.apps]
        assert as_tuples(a.plan for a in store.apps) \
            == as_tuples(a.plan for a in spec_store.apps)
