"""Information-ontology tests."""

import pytest

from repro.semantics.resources import (
    INFO_TYPES,
    InfoType,
    aliases_of,
    normalize_resource,
    permissions_for,
)


class TestOntology:
    def test_all_types_have_specs(self):
        for info in InfoType:
            assert info in INFO_TYPES

    def test_aliases_include_value(self):
        for info, spec in INFO_TYPES.items():
            assert spec.info is info
            assert spec.aliases

    @pytest.mark.parametrize("phrase,info", [
        ("location", InfoType.LOCATION),
        ("geographic location", InfoType.LOCATION),
        ("gps", InfoType.LOCATION),
        ("device id", InfoType.DEVICE_ID),
        ("device identifiers", InfoType.DEVICE_ID),
        ("imei", InfoType.DEVICE_ID),
        ("ip address", InfoType.IP_ADDRESS),
        ("cookies", InfoType.COOKIE),
        ("contacts", InfoType.CONTACT),
        ("address book", InfoType.CONTACT),
        ("account", InfoType.ACCOUNT),
        ("calendar", InfoType.CALENDAR),
        ("phone number", InfoType.PHONE_NUMBER),
        ("camera", InfoType.CAMERA),
        ("microphone", InfoType.AUDIO),
        ("installed applications", InfoType.APP_LIST),
        ("sms", InfoType.SMS),
        ("email address", InfoType.EMAIL_ADDRESS),
        ("name", InfoType.PERSON_NAME),
        ("date of birth", InfoType.BIRTHDAY),
        ("browsing history", InfoType.BROWSER_HISTORY),
    ])
    def test_normalize_known_aliases(self, phrase, info):
        assert normalize_resource(phrase) is info

    def test_normalize_strips_possessives(self):
        assert normalize_resource("your location") is InfoType.LOCATION
        assert normalize_resource("the contacts") is InfoType.CONTACT

    def test_normalize_case_insensitive(self):
        assert normalize_resource("IMEI") is InfoType.DEVICE_ID

    def test_normalize_unknown_is_none(self):
        assert normalize_resource("favorite color") is None
        assert normalize_resource("") is None

    def test_location_permissions(self):
        perms = permissions_for(InfoType.LOCATION)
        assert "android.permission.ACCESS_FINE_LOCATION" in perms

    def test_aliases_of_contact(self):
        assert "address book" in aliases_of(InfoType.CONTACT)

    def test_str_is_value(self):
        assert str(InfoType.LOCATION) == "location"
