"""Knowledge-base invariants: the ESA concept articles."""

import pytest

from repro.semantics.esa import EsaModel, default_model
from repro.semantics.knowledge import CONCEPT_ARTICLES
from repro.semantics.resources import INFO_TYPES, InfoType


class TestKnowledgeBase:
    def test_nonempty_articles(self):
        for concept, article in CONCEPT_ARTICLES.items():
            assert article.strip(), concept

    def test_every_info_type_has_a_dominant_concept(self):
        """Interpreting an info type's own name must land on a concept
        that no *other* info type dominates -- otherwise two types
        become indistinguishable."""
        model = default_model()
        dominant: dict[str, InfoType] = {}
        for info in InfoType:
            top = model.top_concepts(info.value, k=1)
            assert top, info
            concept = top[0][0]
            clash = dominant.get(concept)
            assert clash is None or clash is info, (
                f"{info} and {clash} share dominant concept {concept}"
            )
            dominant[concept] = info

    def test_all_aliases_interpretable(self):
        """Every ontology alias must produce a nonempty interpretation
        (otherwise ESA matching silently returns 0)."""
        model = default_model()
        for spec in INFO_TYPES.values():
            for alias in spec.aliases:
                assert model.interpret(alias), (spec.info, alias)

    def test_aliases_match_their_own_type(self):
        """Similarity(alias, type name) clears the threshold for the
        aliases that matter to the matcher (single-concept aliases)."""
        model = default_model()
        for spec in INFO_TYPES.values():
            base = spec.info.value
            matched = sum(
                1 for alias in spec.aliases
                if model.similarity(base, alias) > 0.5
            )
            assert matched >= len(spec.aliases) * 0.6, spec.info

    def test_general_concepts_present(self):
        for concept in ("personal information", "advertising",
                        "analytics", "third party", "security"):
            assert concept in CONCEPT_ARTICLES

    def test_model_rebuild_matches_default(self):
        rebuilt = EsaModel(CONCEPT_ARTICLES)
        default = default_model()
        assert rebuilt.similarity("location", "gps") == pytest.approx(
            default.similarity("location", "gps")
        )
