"""The compiled-KB artifact fallback ladder under damage.

A corrupt artifact -- truncated, bit-flipped, wrong magic, wrong
schema version, or compiled from different articles -- must never
crash the loader and never load as silently-wrong weights: the ladder
falls back to a fresh compile, overwrites the damaged file, and bumps
the ``warnings`` counter that the ``nlp_caches`` telemetry surfaces.
"""

from __future__ import annotations

import os
from array import array

import pytest

from repro.memo import cache_stats
from repro.semantics.compiled import (
    BACKEND,
    KB_ARTIFACT_STATS,
    KB_SCHEMA_VERSION,
    CompiledKB,
    CompiledKBError,
    _validate_layout,
    _validate_layout_python,
    artifact_path,
    compile_kb,
    load_artifact,
    load_or_compile,
    save_artifact,
)
from repro.semantics.knowledge import CONCEPT_ARTICLES

ARTICLES = {"Location": "gps location latitude longitude position",
            "Contacts": "contact address book phone number friend"}


@pytest.fixture
def counters():
    """Snapshot-free counter access: reset before, reset after."""
    KB_ARTIFACT_STATS.clear()
    yield KB_ARTIFACT_STATS
    KB_ARTIFACT_STATS.clear()


def write_artifact(directory: str) -> str:
    path = artifact_path(ARTICLES, directory)
    save_artifact(compile_kb(ARTICLES), path)
    return path


def corruptions(data: bytes) -> dict[str, bytes]:
    """One damaged variant per failure mode the header defends."""
    return {
        "truncated_header": data[:10],
        "truncated_payload": data[:-7],
        "bad_magic": b"XXXX" + data[4:],
        "wrong_schema": data[:4] + bytes([KB_SCHEMA_VERSION + 1, 0])
        + data[6:],
        "flipped_bit": data[:-3] + bytes([data[-3] ^ 0x40]) + data[-2:],
        "empty": b"",
    }


class TestFromBytesRejectsDamage:
    def test_every_corruption_raises(self, tmp_path):
        data = open(write_artifact(str(tmp_path)), "rb").read()
        assert CompiledKB.from_bytes(data).articles_fp  # sanity: loads
        for label, damaged in corruptions(data).items():
            with pytest.raises(CompiledKBError):
                CompiledKB.from_bytes(damaged)
                pytest.fail(f"{label} loaded")  # pragma: no cover

    def test_load_artifact_raises_on_disk_damage(self, tmp_path):
        path = write_artifact(str(tmp_path))
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        with pytest.raises(CompiledKBError):
            load_artifact(path)


class TestFallbackLadder:
    def test_missing_artifact_is_a_miss(self, tmp_path, counters):
        kb = load_or_compile(ARTICLES, str(tmp_path))
        assert counters.stats() == {
            "hits": 0, "misses": 1, "entries": 0, "max_entries": 1,
            "warnings": 0,
        }
        assert os.path.exists(artifact_path(ARTICLES, str(tmp_path)))
        assert kb.terms  # the returned KB is usable either way

    def test_verified_artifact_is_a_hit(self, tmp_path, counters):
        load_or_compile(ARTICLES, str(tmp_path))
        kb = load_or_compile(ARTICLES, str(tmp_path))
        assert counters.warnings == 0
        assert counters.hits == 1
        _assert_same_kb(kb, compile_kb(ARTICLES))

    @pytest.mark.parametrize("label", sorted(corruptions(b"x" * 64)))
    def test_corruption_recovers_with_warning(self, tmp_path, counters,
                                              label):
        path = write_artifact(str(tmp_path))
        damaged = corruptions(open(path, "rb").read())[label]
        with open(path, "wb") as handle:
            handle.write(damaged)
        kb = load_or_compile(ARTICLES, str(tmp_path))
        # never crashes, never silently wrong: the recompiled KB is
        # the in-memory build, and the damage is counted
        _assert_same_kb(kb, compile_kb(ARTICLES))
        assert counters.warnings == 1
        assert counters.misses == 1
        # the damaged file was overwritten with a verifying artifact
        load_artifact(path)
        kb2 = load_or_compile(ARTICLES, str(tmp_path))
        assert counters.hits == 1
        _assert_same_kb(kb2, kb)

    def test_foreign_articles_artifact_recovers(self, tmp_path,
                                                counters):
        """A verifying artifact for *different* articles under this
        path (e.g. a poisoned cache) recompiles with a warning."""
        path = artifact_path(ARTICLES, str(tmp_path))
        save_artifact(compile_kb(CONCEPT_ARTICLES), path)
        kb = load_or_compile(ARTICLES, str(tmp_path))
        _assert_same_kb(kb, compile_kb(ARTICLES))
        assert counters.warnings == 1

    def test_persistence_disabled_compiles_in_memory(self, tmp_path,
                                                     counters,
                                                     monkeypatch):
        monkeypatch.setenv("REPRO_KB_CACHE_DIR", "")
        kb = load_or_compile(ARTICLES)
        _assert_same_kb(kb, compile_kb(ARTICLES))
        assert counters.misses == 1
        assert counters.warnings == 0


class TestTelemetry:
    def test_warnings_surface_in_nlp_caches(self, tmp_path, counters):
        path = write_artifact(str(tmp_path))
        with open(path, "wb") as handle:
            handle.write(b"garbage")
        load_or_compile(ARTICLES, str(tmp_path))
        row = cache_stats()["esa_kb_artifact"]
        assert row["warnings"] == 1
        assert row["misses"] == 1


class TestValidatorBackends:
    """The numpy bulk validator and the pure-Python scan must agree."""

    def good(self) -> tuple[int, int, array, array, array]:
        kb = compile_kb(ARTICLES)
        return (len(kb.concepts), len(kb.terms), kb.offsets, kb.cids,
                kb.weights)

    def test_backend_is_reported(self):
        assert BACKEND in ("numpy", "python")

    def test_both_accept_valid_layout(self):
        n_concepts, n_terms, offsets, cids, weights = self.good()
        _validate_layout(n_concepts, n_terms, offsets, cids, weights)
        _validate_layout_python(n_concepts, offsets, cids)

    @pytest.mark.parametrize("mutate", [
        lambda o, c: (array("q", [o[1], o[0]] + list(o[2:])), c),
        lambda o, c: (o, array("i", [-1] + list(c[1:]))),
        lambda o, c: (o, array("i", [10 ** 6] + list(c[1:]))),
    ], ids=["nonmonotone_offsets", "negative_cid", "cid_out_of_range"])
    def test_both_reject_broken_layout(self, mutate):
        n_concepts, n_terms, offsets, cids, weights = self.good()
        bad_offsets, bad_cids = mutate(offsets, cids)
        with pytest.raises(CompiledKBError):
            _validate_layout(n_concepts, n_terms, bad_offsets, bad_cids,
                             weights)
        with pytest.raises(CompiledKBError):
            _validate_layout_python(n_concepts, bad_offsets, bad_cids)


def _assert_same_kb(left: CompiledKB, right: CompiledKB) -> None:
    assert left.concepts == right.concepts
    assert left.terms == right.terms
    assert list(left.offsets) == list(right.offsets)
    assert list(left.cids) == list(right.cids)
    assert left.weights.tobytes() == right.weights.tobytes()
    assert left.articles_fp == right.articles_fp
