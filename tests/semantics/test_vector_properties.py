"""Property tests for the compiled (merge-join) ESA data plane.

The vectorized representation promises *bitwise* agreement with the
historical dict-of-dicts plane, not approximate agreement.  Two
families of properties pin that down:

- kernel equivalence: :func:`repro.semantics.esa._merge_cosine` over
  sorted ``(concept_id, weight)`` arrays equals the scalar
  :func:`repro.semantics.esa._cosine` over the same canonical sparse
  dicts with ``==`` on the floats -- including empty, disjoint,
  single-concept, and duplicate-weight vectors -- and is symmetric in
  its arguments;
- compiled-KB round-trip: ``compile -> to_bytes -> from_bytes``
  reproduces the in-memory build exactly (concepts, terms, packed
  arrays, and the derived dict-of-dicts view), for the embedded
  knowledge base and for arbitrary generated article inventories.
"""

from __future__ import annotations

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.semantics.compiled import CompiledKB, compile_kb
from repro.semantics.esa import _cosine, _merge_cosine
from repro.semantics.knowledge import CONCEPT_ARTICLES

_WEIGHTS = st.floats(min_value=0.0, max_value=1e3,
                     allow_nan=False, allow_infinity=False)

#: canonical sparse vector: ascending concept-id keys
_SPARSE = st.dictionaries(
    st.integers(min_value=0, max_value=40), _WEIGHTS, max_size=10,
).map(lambda vec: dict(sorted(vec.items())))


def _arrays(vec: dict[int, float]) -> tuple[list[int], list[float]]:
    return list(vec), list(vec.values())


class TestMergeCosineEquivalence:
    @given(_SPARSE, _SPARSE)
    @example({}, {})                          # both empty
    @example({0: 1.0}, {1: 1.0})              # disjoint supports
    @example({3: 0.5}, {3: 0.5})              # single shared concept
    @example({0: 0.25, 7: 0.25}, {0: 0.25, 7: 0.25})  # duplicate weights
    @example({0: 0.0, 1: 1.0}, {0: 1.0, 1: 0.0})      # explicit zeros
    @settings(max_examples=300, deadline=None)
    def test_merge_join_equals_dict_cosine(self, vec_a, vec_b):
        cids_a, weights_a = _arrays(vec_a)
        cids_b, weights_b = _arrays(vec_b)
        merged = _merge_cosine(cids_a, weights_a, cids_b, weights_b)
        scalar = _cosine("a", vec_a, "b", vec_b)
        # bitwise equality, not tolerance: both kernels sum the shared
        # concepts in ascending concept-id order
        assert merged == scalar

    @given(_SPARSE, _SPARSE)
    @settings(max_examples=200, deadline=None)
    def test_merge_join_symmetric(self, vec_a, vec_b):
        cids_a, weights_a = _arrays(vec_a)
        cids_b, weights_b = _arrays(vec_b)
        forward = _merge_cosine(cids_a, weights_a, cids_b, weights_b)
        backward = _merge_cosine(cids_b, weights_b, cids_a, weights_a)
        assert forward == backward

    @given(_SPARSE)
    @settings(max_examples=100, deadline=None)
    def test_empty_side_is_zero(self, vec):
        cids, weights = _arrays(vec)
        assert _merge_cosine([], [], cids, weights) == 0.0
        assert _merge_cosine(cids, weights, [], []) == 0.0


_WORDS = st.lists(
    st.text(alphabet="abcdefghij", min_size=2, max_size=6),
    min_size=1, max_size=12,
).map(" ".join)

_ARTICLES = st.dictionaries(
    st.text(alphabet="ABCDEFGH", min_size=1, max_size=8),
    _WORDS, min_size=1, max_size=6,
)


def _assert_kb_equal(left: CompiledKB, right: CompiledKB) -> None:
    assert left.concepts == right.concepts
    assert left.terms == right.terms
    assert list(left.offsets) == list(right.offsets)
    assert list(left.cids) == list(right.cids)
    # float weights must round-trip bit-for-bit ('d' arrays serialize
    # the raw IEEE-754 bytes)
    assert left.weights.tobytes() == right.weights.tobytes()
    assert left.articles_fp == right.articles_fp
    assert left.term_index == right.term_index
    assert left.term_vector_dicts() == right.term_vector_dicts()


class TestCompiledKBRoundTrip:
    def test_embedded_kb_round_trips(self):
        built = compile_kb(CONCEPT_ARTICLES)
        assert _assert_kb_equal(
            built, CompiledKB.from_bytes(built.to_bytes())) is None

    @given(_ARTICLES)
    @settings(max_examples=60, deadline=None)
    def test_generated_articles_round_trip(self, articles):
        built = compile_kb(articles)
        _assert_kb_equal(built, CompiledKB.from_bytes(built.to_bytes()))

    @given(_ARTICLES)
    @settings(max_examples=60, deadline=None)
    def test_serialization_is_deterministic(self, articles):
        assert compile_kb(articles).to_bytes() \
            == compile_kb(articles).to_bytes()
