"""ESA similarity tests, including property-based invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semantics.esa import (
    DEFAULT_THRESHOLD,
    EsaModel,
    default_model,
    similarity,
)

_PHRASES = st.sampled_from([
    "location", "your precise location", "device id", "contacts",
    "address book", "personal information", "ip address", "cookies",
    "camera", "calendar", "email address", "usage data",
    "random words here", "",
])


class TestSimilarityJudgments:
    @pytest.mark.parametrize("a,b", [
        ("location", "your precise location"),
        ("location information", "geographic location"),
        ("contacts", "address book"),
        ("device id", "imei"),
        ("device identifiers", "device id"),
        ("phone number", "real phone number"),
        ("installed applications", "app list"),
        ("information", "personal information"),  # the paper's FP trait
    ])
    def test_same_thing(self, a, b):
        assert similarity(a, b) > DEFAULT_THRESHOLD

    @pytest.mark.parametrize("a,b", [
        ("location", "contacts"),
        ("camera", "calendar"),
        ("email address", "location"),
        ("device id", "cookies"),
        ("sms", "account"),
        ("usage data", "location"),
        ("crash data", "contacts"),
    ])
    def test_different_things(self, a, b):
        assert similarity(a, b) <= DEFAULT_THRESHOLD

    def test_identity_is_one(self):
        assert similarity("location", "location") == pytest.approx(1.0)

    def test_unknown_terms_zero(self):
        assert similarity("zxqwv", "location") == 0.0

    def test_empty_text_zero(self):
        assert similarity("", "location") == 0.0


class TestModel:
    def test_default_model_is_singleton(self):
        assert default_model() is default_model()

    def test_custom_knowledge_base(self):
        model = EsaModel({"fruit": "apple banana pear",
                          "tool": "hammer wrench saw"})
        assert model.similarity("apple", "banana") > 0.9
        assert model.similarity("apple", "hammer") == 0.0

    def test_same_thing_threshold_override(self):
        model = default_model()
        value = model.similarity("contacts", "contact list")
        assert model.same_thing("contacts", "contact list",
                                threshold=value - 0.01)
        assert not model.same_thing("contacts", "contact list",
                                    threshold=value + 0.01)

    def test_top_concepts_ranked(self):
        top = default_model().top_concepts("your gps location", k=2)
        assert top
        assert top[0][0] == "geographic location"

    def test_interpret_normalized(self):
        vec = default_model().interpret("location and contacts")
        norm = sum(w * w for w in vec.values()) ** 0.5
        assert norm == pytest.approx(1.0)


class TestProperties:
    @given(_PHRASES, _PHRASES)
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, a, b):
        assert similarity(a, b) == pytest.approx(similarity(b, a))

    @given(_PHRASES, _PHRASES)
    @settings(max_examples=100, deadline=None)
    def test_bounds(self, a, b):
        value = similarity(a, b)
        assert 0.0 <= value <= 1.0

    @given(_PHRASES)
    @settings(max_examples=50, deadline=None)
    def test_self_similarity_max(self, phrase):
        self_sim = similarity(phrase, phrase)
        assert self_sim in (0.0, pytest.approx(1.0))
