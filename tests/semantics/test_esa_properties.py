"""Property tests for the memoized ESA hot paths.

The optimization layer promises exactness, not approximation: the
memoized ``similarity`` must agree with the compute-everything path
to the last ulp, stay symmetric, and the batch entry points
(``similarity_many``, ``match_sets``) must agree pairwise with the
scalar predicate.  Phrases are drawn from the corpus vocabulary --
information surfaces, :data:`ALIAS_SWAPS` paraphrases, and policy
resource wording -- because that is what the detectors actually
score.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.mutations import ALIAS_SWAPS
from repro.description.permission_map import INFO_SURFACE
from repro.memo import (
    clear_caches,
    set_memo_enabled,
    set_vector_enabled,
)
from repro.semantics.esa import default_model

#: every (vector, memo) plane combination; all four must agree bitwise
_PLANES = ((True, True), (True, False), (False, True), (False, False))

_POOL = sorted(
    {surface for aliases in INFO_SURFACE.values() for surface in aliases}
    | set(ALIAS_SWAPS)
    | set(ALIAS_SWAPS.values())
    | {
        "your precise location", "personal information",
        "usage data", "ip address", "cookies", "crash data",
        "  Location  ", "DEVICE ID",  # normalization fodder
        "zxqwv unknown terms", "",
    }
)

_PHRASES = st.sampled_from(_POOL)
_PHRASE_LISTS = st.lists(_PHRASES, min_size=0, max_size=6)


@pytest.fixture(autouse=True)
def restore_memo_state():
    yield
    set_memo_enabled(None)
    set_vector_enabled(None)
    clear_caches()


class TestMemoExactness:
    @given(_PHRASES, _PHRASES)
    @settings(max_examples=150, deadline=None)
    def test_memoized_equals_unmemoized(self, a, b):
        esa = default_model()
        set_memo_enabled(True)
        clear_caches()
        memoized = esa.similarity(a, b)
        set_memo_enabled(False)
        plain = esa.similarity(a, b)
        assert abs(memoized - plain) <= 1e-9
        # the canonical cosine makes the agreement exact, not approximate
        assert memoized == plain

    @given(_PHRASES, _PHRASES)
    @settings(max_examples=150, deadline=None)
    def test_symmetry_exact(self, a, b):
        esa = default_model()
        for enabled in (True, False):
            set_memo_enabled(enabled)
            clear_caches()
            assert esa.similarity(a, b) == esa.similarity(b, a)

    @given(_PHRASES, _PHRASES)
    @settings(max_examples=150, deadline=None)
    def test_all_planes_agree_bitwise(self, a, b):
        """Vector x memo: the compiled plane and the scalar plane
        compute the same float, memoized or not."""
        esa = default_model()
        values = set()
        for vector, memoized in _PLANES:
            set_vector_enabled(vector)
            set_memo_enabled(memoized)
            clear_caches()
            values.add(esa.similarity(a, b))
        assert len(values) == 1


class TestBatchAgreement:
    @given(_PHRASES, _PHRASE_LISTS)
    @settings(max_examples=100, deadline=None)
    def test_similarity_many_pairwise(self, text, candidates):
        esa = default_model()
        batched = esa.similarity_many(text, candidates)
        assert batched == [esa.similarity(text, c) for c in candidates]

    @given(_PHRASE_LISTS, _PHRASE_LISTS)
    @settings(max_examples=100, deadline=None)
    def test_match_sets_agrees_with_nested_loop(self, texts_a, texts_b):
        esa = default_model()
        reference = [
            (i, j, esa.similarity(a, b))
            for i, a in enumerate(texts_a)
            for j, b in enumerate(texts_b)
            if esa.similarity(a, b) > esa.threshold
        ]
        for vector, memoized in _PLANES:
            set_vector_enabled(vector)
            set_memo_enabled(memoized)
            clear_caches()
            assert esa.match_sets(texts_a, texts_b) == reference, \
                (vector, memoized)

    @given(_PHRASE_LISTS, _PHRASE_LISTS)
    @settings(max_examples=100, deadline=None)
    def test_any_match_agrees_with_nested_loop(self, texts_a, texts_b):
        esa = default_model()
        reference = any(
            esa.same_thing(a, b) for a in texts_a for b in texts_b
        )
        for vector, memoized in _PLANES:
            set_vector_enabled(vector)
            set_memo_enabled(memoized)
            clear_caches()
            assert esa.any_match(texts_a, texts_b) == reference, \
                (vector, memoized)

    @given(st.lists(_PHRASE_LISTS, min_size=0, max_size=4),
           _PHRASE_LISTS)
    @settings(max_examples=100, deadline=None)
    def test_group_hits_agrees_with_nested_loop(self, groups, texts_b):
        esa = default_model()
        reference = [
            {
                j for j, b in enumerate(texts_b)
                if any(esa.same_thing(a, b) for a in group)
            }
            for group in groups
        ]
        for vector, memoized in _PLANES:
            set_vector_enabled(vector)
            set_memo_enabled(memoized)
            clear_caches()
            assert esa.group_hits(groups, texts_b) == reference, \
                (vector, memoized)
