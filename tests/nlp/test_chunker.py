"""Noun-phrase chunker tests."""

from repro.nlp.chunker import chunk_covering, chunk_noun_phrases
from repro.nlp.postag import pos_tag
from repro.nlp.tokenizer import tokenize


def chunks_of(sentence, exclude=None):
    tokens = pos_tag(tokenize(sentence))
    return tokens, chunk_noun_phrases(tokens, exclude=exclude)


class TestChunking:
    def test_simple_np(self):
        tokens, chunks = chunks_of("the quick response")
        assert len(chunks) == 1
        assert chunks[0].text(tokens) == "the quick response"

    def test_head_is_last_nominal(self):
        tokens, chunks = chunks_of("your location information")
        assert tokens[chunks[0].head].text == "information"

    def test_pronoun_single_token_chunk(self):
        tokens, chunks = chunks_of("we collect data")
        assert chunks[0].start == chunks[0].end == 0

    def test_multiple_chunks(self):
        tokens, chunks = chunks_of("we collect your location")
        assert len(chunks) == 2

    def test_possessive_continuation(self):
        tokens, chunks = chunks_of("the user's name")
        assert chunks[0].text(tokens) == "the user 's name"

    def test_demonstrative_forms_chunk(self):
        tokens, chunks = chunks_of("nor those of your contacts")
        headed = {tokens[c.head].lower for c in chunks}
        assert "those" in headed

    def test_exclusion_mask(self):
        tokens, chunks = chunks_of(
            "we are collecting your data",
            exclude={1, 2},  # "are collecting"
        )
        heads = {tokens[c.head].lower for c in chunks}
        assert "collecting" not in heads
        assert "data" in heads

    def test_chunk_covering_finds_span(self):
        tokens, chunks = chunks_of("we collect your location")
        chunk = chunk_covering(chunks, 3)
        assert chunk is not None
        assert tokens[chunk.head].text == "location"

    def test_chunk_covering_none_outside(self):
        tokens, chunks = chunks_of("we collect your location")
        assert chunk_covering(chunks, 1) is None

    def test_empty_tokens(self):
        assert chunk_noun_phrases([]) == []
