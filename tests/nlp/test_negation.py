"""Negation analysis (Step 5) tests."""

import pytest

from repro.nlp.negation import (
    NEGATION_WORDS,
    is_negated,
    subject_is_negative,
    verb_is_negated,
)
from repro.nlp.parser import parse


class TestVerbNegation:
    @pytest.mark.parametrize("sentence", [
        "We will not collect your data.",
        "We do not share your contacts.",
        "We never store your location.",
        "We don't collect your name.",
        "Your data will not be sold.",
        "We will never disclose your email.",
    ])
    def test_negated(self, sentence):
        assert is_negated(parse(sentence))

    @pytest.mark.parametrize("sentence", [
        "We will collect your data.",
        "We share your contacts with partners.",
        "Your data will be stored securely.",
    ])
    def test_positive(self, sentence):
        assert not is_negated(parse(sentence))

    def test_hardly_counts_as_negation(self):
        assert is_negated(parse("We hardly collect any data."))


class TestSubjectNegation:
    def test_nothing_subject(self):
        tree = parse("Nothing will be collected.")
        assert subject_is_negative(tree)
        assert is_negated(tree)

    def test_no_determiner_subject(self):
        tree = parse("No information will be shared.")
        assert is_negated(tree)

    def test_plain_subject_not_negative(self):
        tree = parse("Your information will be shared.")
        assert not subject_is_negative(tree)


class TestNegativeVerbs:
    def test_refuse_negates(self):
        tree = parse("We refuse to collect your data.")
        # the root "refuse" is a negative verb
        assert verb_is_negated(tree)

    def test_prevent_negates(self):
        tree = parse("We prevent access to your data.")
        assert verb_is_negated(tree)


class TestWordList:
    def test_contains_all_categories(self):
        for word in ("not", "never", "no", "nothing", "prevent",
                     "hardly", "unable"):
            assert word in NEGATION_WORDS

    def test_empty_tree(self):
        assert not is_negated(parse(""))
