"""Tokenizer and lemmatizer unit tests."""

import pytest

from repro.nlp.tokenizer import Token, lemmatize, tokenize


def texts(tokens):
    return [t.text for t in tokens]


class TestTokenize:
    def test_simple_sentence(self):
        assert texts(tokenize("We collect data.")) == [
            "We", "collect", "data", "."
        ]

    def test_indices_are_sequential(self):
        tokens = tokenize("We may collect your location.")
        assert [t.index for t in tokens] == list(range(len(tokens)))

    def test_empty_string(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("   \t\n ") == []

    def test_comma_separated_list(self):
        tokens = texts(tokenize("your name, your IP address"))
        assert tokens == ["your", "name", ",", "your", "IP", "address"]

    def test_nt_contraction(self):
        assert texts(tokenize("We don't collect data"))[:3] == [
            "We", "do", "n't"
        ]

    def test_cannot_splits(self):
        assert texts(tokenize("We cannot collect"))[:3] == [
            "We", "can", "not"
        ]

    def test_wont_irregular(self):
        assert texts(tokenize("We won't share"))[:3] == ["We", "will", "n't"]

    def test_possessive_s(self):
        assert texts(tokenize("the user's name")) == [
            "the", "user", "'s", "name"
        ]

    def test_plural_possessive(self):
        tokens = texts(tokenize("users' data"))
        assert tokens == ["users", "'", "data"]

    def test_hyphenated_word_kept_whole(self):
        assert "third-party" in texts(tokenize("third-party libraries"))

    def test_url_kept_whole(self):
        tokens = texts(tokenize("visit https://example.com/privacy today"))
        assert "https://example.com/privacy" in tokens

    def test_email_kept_whole(self):
        tokens = texts(tokenize("write to privacy@example.com please"))
        assert "privacy@example.com" in tokens

    def test_semicolons_are_tokens(self):
        tokens = texts(tokenize("name; address; id"))
        assert tokens.count(";") == 2

    def test_lemma_filled(self):
        tokens = tokenize("We collected locations.")
        assert tokens[1].lemma == "collect"
        assert tokens[2].lemma == "location"

    def test_parenthesis_tokens(self):
        tokens = texts(tokenize("data (including location)"))
        assert "(" in tokens and ")" in tokens

    def test_numbers(self):
        assert "800,000" in texts(tokenize("fined Path $800,000 because"))

    def test_token_lower_property(self):
        token = Token(index=0, text="Location")
        assert token.lower == "location"


class TestLemmatize:
    @pytest.mark.parametrize("word,lemma", [
        ("collects", "collect"),
        ("collected", "collect"),
        ("collecting", "collect"),
        ("uses", "use"),
        ("used", "use"),
        ("using", "use"),
        ("stored", "store"),
        ("storing", "store"),
        ("shares", "share"),
        ("shared", "share"),
        ("disclosed", "disclose"),
        ("retained", "retain"),
        ("gathered", "gather"),
        ("obtained", "obtain"),
        ("traded", "trade"),
        ("cached", "cache"),
        ("archived", "archive"),
        ("transmitted", "transmit"),
        ("logged", "log"),
        ("kept", "keep"),
        ("held", "hold"),
        ("given", "give"),
        ("taken", "take"),
        ("sent", "send"),
        ("sold", "sell"),
        ("known", "know"),
        ("is", "be"),
        ("are", "be"),
        ("was", "be"),
        ("were", "be"),
        ("been", "be"),
        ("has", "have"),
        ("had", "have"),
        ("does", "do"),
        ("did", "do"),
    ])
    def test_verb_forms(self, word, lemma):
        assert lemmatize(word) == lemma

    @pytest.mark.parametrize("word,lemma", [
        ("locations", "location"),
        ("cookies", "cookie"),
        ("parties", "party"),
        ("policies", "policy"),
        ("addresses", "address"),
        ("devices", "device"),
        ("contacts", "contact"),
        ("identifiers", "identifier"),
        ("children", "child"),
        ("people", "person"),
        ("data", "data"),
        ("libraries", "library"),
        ("companies", "company"),
    ])
    def test_noun_plurals(self, word, lemma):
        assert lemmatize(word) == lemma

    @pytest.mark.parametrize("word", [
        "address", "access", "business", "process", "this", "gps",
        "sms", "analysis", "always", "unless", "across", "status",
    ])
    def test_s_final_words_unchanged(self, word):
        assert lemmatize(word) == word

    @pytest.mark.parametrize("word", [
        "nothing", "something", "anything", "everything", "during",
        "advertising", "marketing", "thing", "string",
    ])
    def test_ing_nonverbs_unchanged(self, word):
        assert lemmatize(word) == word

    def test_case_insensitive(self):
        assert lemmatize("Collected") == "collect"

    def test_short_words_unchanged(self):
        assert lemmatize("app") == "app"
        assert lemmatize("id") == "id"

    def test_contraction_lemmas(self):
        assert lemmatize("n't") == "not"
        assert lemmatize("'ll") == "will"
        assert lemmatize("'ve") == "have"
