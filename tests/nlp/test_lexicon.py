"""Lexicon consistency invariants.

Every verb the policy layer reasons about must be known to the
tagger's lexicon, or pattern matching silently fails (the bug class
behind the "harvest" false negative).
"""

from repro.nlp import lexicon
from repro.policy.synonyms import expanded_verbs
from repro.policy.verbs import (
    ALL_CATEGORY_VERBS,
    VERB_BLACKLIST,
)


class TestLexiconCoverage:
    def test_all_category_verbs_in_lexicon(self):
        missing = {
            verb for verb in ALL_CATEGORY_VERBS
            if verb not in lexicon.VERBS
        }
        assert not missing, missing

    def test_all_synonym_verbs_in_lexicon(self):
        for verbs in expanded_verbs().values():
            missing = {v for v in verbs if v not in lexicon.VERBS}
            assert not missing, missing

    def test_closed_classes_disjoint_from_verbs(self):
        closed = (set(lexicon.MODALS) | set(lexicon.PRONOUNS)
                  | set(lexicon.CONJUNCTIONS) | set(lexicon.DETERMINERS))
        assert not (closed & lexicon.VERBS)

    def test_closed_class_lookup(self):
        assert lexicon.closed_class_tag("will") == "MD"
        assert lexicon.closed_class_tag("we") == "PRP"
        assert lexicon.closed_class_tag("to") == "TO"
        assert lexicon.closed_class_tag("'s") == "POS"
        assert lexicon.closed_class_tag("collect") is None

    def test_negation_words_are_taggable(self):
        from repro.nlp.negation import NEGATIVE_ADVERBS
        for word in NEGATIVE_ADVERBS - {"no-longer", "neither", "nor"}:
            tag = lexicon.closed_class_tag(word)
            # negation adverbs must be adverbs or contraction pieces
            assert tag in ("RB", None), (word, tag)
        # "neither"/"nor" tag as determiner/conjunction by design
        assert lexicon.closed_class_tag("neither") in ("DT", "CC")
        assert lexicon.closed_class_tag("nor") == "CC"

    def test_blacklisted_verbs_still_parseable(self):
        """Blacklist exclusion is a policy choice, not a lexicon gap --
        the paper removes "have"/"make" sentences, so the parser must
        still recognize the verbs to parse those sentences at all."""
        for verb in ("make", "want", "see", "say", "go", "come"):
            assert verb in lexicon.VERBS or \
                lexicon.closed_class_tag(verb) is not None, verb
        assert VERB_BLACKLIST  # non-empty by construction

    def test_ontology_head_nouns_in_lexicon(self):
        """The head noun of every ontology alias must tag as a noun,
        or chunking loses the resource."""
        from repro.semantics.resources import INFO_TYPES
        from repro.nlp.tokenizer import tokenize
        from repro.nlp.postag import pos_tag
        for spec in INFO_TYPES.values():
            for alias in spec.aliases:
                tokens = pos_tag(tokenize(f"we collect your {alias}."))
                noun_tags = {t.pos for t in tokens[3:-1]}
                assert noun_tags & {"NN", "NNS", "NNP", "JJ", "VBG",
                                    "CD"}, (alias, noun_tags)
