"""POS tagger tests over policy-style sentences."""

import pytest

from repro.nlp.postag import pos_tag
from repro.nlp.tokenizer import tokenize


def tags_of(sentence):
    tokens = pos_tag(tokenize(sentence))
    return {t.text: t.pos for t in tokens}, [t.pos for t in tokens]


class TestClosedClasses:
    def test_pronouns(self):
        byword, _ = tags_of("We collect it for you")
        assert byword["We"] == "PRP"
        assert byword["it"] == "PRP"
        assert byword["you"] == "PRP"

    def test_possessive_pronouns(self):
        byword, _ = tags_of("your location and our service")
        assert byword["your"] == "PRP$"
        assert byword["our"] == "PRP$"

    def test_modals(self):
        byword, _ = tags_of("We may collect and will share data")
        assert byword["may"] == "MD"
        assert byword["will"] == "MD"

    def test_determiners(self):
        byword, _ = tags_of("the app uses an identifier")
        assert byword["the"] == "DT"
        assert byword["an"] == "DT"

    def test_prepositions(self):
        byword, _ = tags_of("information about you from your device")
        assert byword["about"] == "IN"
        assert byword["from"] == "IN"

    def test_to_tag(self):
        byword, _ = tags_of("we want to collect data")
        assert byword["to"] == "TO"

    def test_conjunction(self):
        byword, _ = tags_of("name and address")
        assert byword["and"] == "CC"

    def test_negation_adverb(self):
        byword, _ = tags_of("we will not collect data")
        assert byword["not"] == "RB"


class TestVerbMorphology:
    def test_base_after_modal(self):
        byword, _ = tags_of("we will collect data")
        assert byword["collect"] == "VB"

    def test_vbp_plain_present(self):
        byword, _ = tags_of("we collect data")
        assert byword["collect"] == "VBP"

    def test_vbz_third_person(self):
        byword, _ = tags_of("the app collects data")
        assert byword["collects"] == "VBZ"

    def test_vbn_in_passive(self):
        byword, _ = tags_of("data will be collected")
        assert byword["collected"] == "VBN"

    def test_vbg_progressive(self):
        byword, _ = tags_of("we are collecting data")
        assert byword["collecting"] == "VBG"

    def test_vbn_after_have(self):
        byword, _ = tags_of("we have collected data")
        assert byword["collected"] == "VBN"


class TestAmbiguityResolution:
    def test_use_as_verb(self):
        byword, _ = tags_of("we use cookies")
        assert byword["use"] == "VBP"

    def test_use_as_noun(self):
        byword, _ = tags_of("the use of cookies")
        assert byword["use"] == "NN"

    def test_access_as_verb_after_to(self):
        byword, _ = tags_of("we are allowed to access your data")
        assert byword["access"] == "VB"

    def test_access_as_noun_after_possessive(self):
        byword, _ = tags_of("your access expires soon")
        assert byword["access"] == "NN"

    def test_store_as_verb_after_modal(self):
        byword, _ = tags_of("we will store your data")
        assert byword["store"] == "VB"

    def test_that_demonstrative_before_noun(self):
        byword, _ = tags_of("we process that information carefully")
        assert byword["that"] == "DT"

    def test_that_relativizer_after_noun(self):
        byword, _ = tags_of("information that identifies you")
        assert byword["that"] == "WDT"


class TestUnknownWords:
    def test_ly_is_adverb(self):
        byword, _ = tags_of("we proactively guard data")
        assert byword["proactively"] == "RB"

    def test_tion_is_noun(self):
        byword, _ = tags_of("the geolocation of the device")
        assert byword["geolocation"] == "NN"

    def test_numbers_are_cd(self):
        byword, _ = tags_of("within 30 days")
        assert byword["30"] == "CD"

    def test_punctuation_tags(self):
        _, tags = tags_of("data, data; data.")
        assert "," in tags
        assert ":" in tags
        assert "." in tags

    def test_every_token_tagged(self):
        tokens = pos_tag(tokenize(
            "If you register an account, we may collect your email "
            "address and share it with partners."
        ))
        assert all(t.pos for t in tokens)
