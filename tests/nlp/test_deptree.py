"""DependencyTree structure API tests."""

import pytest

from repro.nlp.deptree import ROOT_INDEX, Arc, DependencyTree
from repro.nlp.tokenizer import tokenize


def _tree(sentence="we collect your location ."):
    tokens = tokenize(sentence)
    tree = DependencyTree(tokens)
    tree.add(ROOT_INDEX, 1, "root")
    tree.add(1, 0, "nsubj")
    tree.add(1, 3, "dobj")
    tree.add(3, 2, "poss")
    tree.add(1, 4, "punct")
    return tree


class TestConstruction:
    def test_single_head_invariant_enforced(self):
        tree = _tree()
        tree.add(3, 0, "conj")  # second head for token 0: ignored
        assert tree.rel_of(0) == "nsubj"
        assert tree.is_single_headed()

    def test_arc_is_frozen(self):
        arc = Arc(1, 0, "nsubj")
        with pytest.raises(AttributeError):
            arc.rel = "dobj"


class TestQueries:
    def test_root(self):
        assert _tree().root() == 1

    def test_root_token(self):
        assert _tree().root_token().text == "collect"

    def test_root_none_for_empty(self):
        tree = DependencyTree(tokenize("hello"))
        assert tree.root() is None
        assert tree.root_token() is None

    def test_head_of(self):
        tree = _tree()
        assert tree.head_of(3).head == 1
        assert tree.head_of(99) is None

    def test_children_filtered_by_rel(self):
        tree = _tree()
        assert tree.children(1, "dobj") == [3]
        assert set(tree.children(1)) == {0, 3, 4}

    def test_child_first_or_none(self):
        tree = _tree()
        assert tree.child(1, "nsubj") == 0
        assert tree.child(1, "advcl") is None

    def test_has_relation(self):
        tree = _tree()
        assert tree.has_relation(1, "dobj")
        assert not tree.has_relation(1, "auxpass")

    def test_subtree(self):
        tree = _tree()
        assert tree.subtree(3) == [2, 3]
        assert tree.subtree(1) == [0, 1, 2, 3, 4]

    def test_subtree_text(self):
        assert _tree().subtree_text(3) == "your location"


class TestInvariants:
    def test_acyclic_detects_cycle(self):
        tree = DependencyTree(tokenize("a b"))
        tree.arcs.append(Arc(0, 1, "dep"))
        tree.arcs.append(Arc(1, 0, "dep"))
        assert not tree.is_acyclic()

    def test_single_headed_detects_duplicate(self):
        tree = DependencyTree(tokenize("a b"))
        tree.arcs.append(Arc(0, 1, "dep"))
        tree.arcs.append(Arc(0, 1, "conj"))
        assert not tree.is_single_headed()

    def test_conll_marks_unattached_as_dep(self):
        tree = DependencyTree(tokenize("a b"))
        tree.add(ROOT_INDEX, 0, "root")
        lines = tree.to_conll().splitlines()
        assert lines[1].endswith("dep")
