"""Property-based tests (hypothesis) for the NLP substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.parser import parse
from repro.nlp.postag import pos_tag
from repro.nlp.sentences import split_sentences
from repro.nlp.tokenizer import lemmatize, tokenize

_WORDS = st.sampled_from([
    "we", "you", "the", "app", "will", "not", "collect", "share",
    "store", "use", "your", "location", "data", "contacts", "and",
    "or", "with", "partners", "if", "when", "information", "may",
    "device", "id", "to", "improve", "service", "never", "cookies",
])

_SENTENCES = st.lists(_WORDS, min_size=1, max_size=14).map(
    lambda ws: " ".join(ws) + "."
)

_FREE_TEXT = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=200,
)


class TestTokenizerProperties:
    @given(_FREE_TEXT)
    @settings(max_examples=200, deadline=None)
    def test_tokenize_never_crashes(self, text):
        tokens = tokenize(text)
        assert all(t.text for t in tokens)

    @given(_FREE_TEXT)
    @settings(max_examples=200, deadline=None)
    def test_indices_sequential(self, text):
        tokens = tokenize(text)
        assert [t.index for t in tokens] == list(range(len(tokens)))

    @given(_SENTENCES)
    @settings(max_examples=100, deadline=None)
    def test_no_whitespace_inside_tokens(self, sentence):
        for token in tokenize(sentence):
            assert " " not in token.text

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1,
                   max_size=20))
    @settings(max_examples=300, deadline=None)
    def test_lemmatize_total_and_lower(self, word):
        lemma = lemmatize(word)
        assert lemma == lemma.lower()
        assert lemma  # never empty for a nonempty word

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1,
                   max_size=20))
    @settings(max_examples=200, deadline=None)
    def test_lemmatize_idempotent_on_common_lemmas(self, word):
        # lemmatizing twice never diverges into something longer
        once = lemmatize(word)
        twice = lemmatize(once)
        assert len(twice) <= len(once) + 1


class TestTaggerProperties:
    @given(_SENTENCES)
    @settings(max_examples=150, deadline=None)
    def test_every_token_gets_a_tag(self, sentence):
        tokens = pos_tag(tokenize(sentence))
        assert all(t.pos for t in tokens)


class TestParserProperties:
    @given(_SENTENCES)
    @settings(max_examples=150, deadline=None)
    def test_single_headedness(self, sentence):
        assert parse(sentence).is_single_headed()

    @given(_SENTENCES)
    @settings(max_examples=150, deadline=None)
    def test_acyclicity(self, sentence):
        assert parse(sentence).is_acyclic()

    @given(_SENTENCES)
    @settings(max_examples=150, deadline=None)
    def test_exactly_one_root_for_nonempty(self, sentence):
        tree = parse(sentence)
        roots = [a for a in tree.arcs if a.rel == "root"]
        assert len(roots) == 1

    @given(_SENTENCES)
    @settings(max_examples=100, deadline=None)
    def test_all_tokens_attached(self, sentence):
        tree = parse(sentence)
        root = tree.root()
        for token in tree.tokens:
            if token.index != root:
                assert tree.head_of(token.index) is not None

    @given(_FREE_TEXT)
    @settings(max_examples=100, deadline=None)
    def test_parse_never_crashes_on_noise(self, text):
        parse(text)


class TestSentenceSplitProperties:
    @given(_FREE_TEXT)
    @settings(max_examples=150, deadline=None)
    def test_split_never_crashes(self, text):
        split_sentences(text)

    @given(st.lists(_SENTENCES, min_size=1, max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_content_preserved(self, sentences):
        text = " ".join(s.capitalize() for s in sentences)
        out = split_sentences(text)
        joined_out = "".join("".join(out).split())
        joined_in = "".join(text.split())
        assert joined_out == joined_in
