"""Sentence splitting tests, including the paper's enumeration fix."""

from repro.nlp.sentences import merge_enumerations, split_sentences


class TestBasicSplitting:
    def test_two_sentences(self):
        out = split_sentences("We collect data. We share it.")
        assert out == ["We collect data.", "We share it."]

    def test_question_and_exclamation(self):
        out = split_sentences("Why do we collect data? To serve you!")
        assert len(out) == 2

    def test_single_sentence(self):
        assert split_sentences("We collect data.") == ["We collect data."]

    def test_empty_text(self):
        assert split_sentences("") == []

    def test_no_terminator(self):
        assert split_sentences("trailing fragment") == ["trailing fragment"]

    def test_abbreviation_eg_not_a_boundary(self):
        out = split_sentences("Some libs (e.g. AdMob) collect data.")
        assert len(out) == 1

    def test_abbreviation_ie(self):
        out = split_sentences("The app (i.e. the client) stores data.")
        assert len(out) == 1

    def test_abbreviation_inc(self):
        out = split_sentences("Example Inc. collects information.")
        assert len(out) == 1

    def test_decimal_numbers_not_boundaries(self):
        out = split_sentences("The market reached 53.5 billion dollars.")
        assert len(out) == 1

    def test_newline_paragraphs_split(self):
        out = split_sentences("First paragraph\n\nSecond paragraph")
        assert len(out) == 2

    def test_bullet_lists_split(self):
        out = split_sentences("We collect:\n- your name\n- your address")
        # bullets merge back into the introducing sentence (ends with :)
        assert any("name" in s for s in out)

    def test_quote_after_period_stays_attached(self):
        out = split_sentences('He said "we collect data." Then he left.')
        assert len(out) == 2
        assert out[0].endswith('"')


class TestEnumerationMerge:
    def test_paper_example_semicolon_list(self):
        text = ("we will collect the following information: your name; "
                "your IP address; your device ID.")
        out = split_sentences(text)
        assert len(out) == 1
        assert "device ID" in out[0]

    def test_merge_after_comma(self):
        merged = merge_enumerations(["we collect your name,",
                                     "your address."])
        assert merged == ["we collect your name, your address."]

    def test_merge_lowercase_continuation(self):
        merged = merge_enumerations(["we collect your name;",
                                     "your address"])
        assert len(merged) == 1

    def test_no_merge_for_complete_sentences(self):
        merged = merge_enumerations(["We collect data.", "We share it."])
        assert len(merged) == 2

    def test_merge_after_colon(self):
        merged = merge_enumerations(["we collect:", "your name"])
        assert merged == ["we collect: your name"]

    def test_empty_input(self):
        assert merge_enumerations([]) == []
