"""Shallow constituency tree tests (Fig. 6 left side)."""

import pytest

from repro.nlp.constituency import (
    build_constituency,
    subtree_starting_with,
)


def labels_at_top(root):
    return [c.label for c in root.children]


class TestStructure:
    def test_simple_svo(self):
        root, tokens = build_constituency(
            "We will provide your information to third party companies."
        )
        assert root.label == "S"
        top = labels_at_top(root)
        assert top[0] == "NP"     # we
        assert "VP" in top

    def test_vp_contains_np_object(self):
        root, tokens = build_constituency("We collect your location.")
        vp = root.find("VP")[0]
        nps = vp.find("NP")
        assert any("location" in np.text(tokens) for np in nps)

    def test_pp_node(self):
        root, tokens = build_constituency(
            "We share your data with partners."
        )
        pps = root.find("PP")
        assert pps
        assert "with partners" in pps[0].text(tokens)

    def test_sbar_for_conditional(self):
        root, tokens = build_constituency(
            "If you register an account, we may collect your email."
        )
        sbars = root.find("SBAR")
        assert sbars
        assert sbars[0].text(tokens).startswith("If")

    def test_leaves_carry_pos(self):
        root, tokens = build_constituency("We collect data.")
        leaves = [n for n in _walk(root) if n.is_leaf()]
        assert len(leaves) == len(tokens)
        assert all(n.label for n in leaves)

    def test_pretty_output(self):
        root, tokens = build_constituency("We collect your location.")
        text = root.pretty(tokens)
        assert text.startswith("(S")
        assert "(NP" in text and "(VP" in text

    def test_empty_sentence(self):
        root, tokens = build_constituency("")
        assert root.children == []

    def test_spans_cover_all_tokens(self):
        root, tokens = build_constituency(
            "Your location may be shared with our partners when you "
            "use the app."
        )
        covered = set()
        for node in _walk(root):
            if node.is_leaf():
                covered.add(node.start)
        assert covered == set(range(len(tokens)))


class TestSubtreeLookup:
    def test_if_constraint_subtree(self):
        root, tokens = build_constituency(
            "We may collect your email if you register an account."
        )
        node = subtree_starting_with(root, tokens,
                                     ("if", "upon", "unless"))
        assert node is not None
        assert node.text(tokens).startswith("if")
        assert "register" in node.text(tokens)

    def test_when_constraint_subtree(self):
        root, tokens = build_constituency(
            "We collect your location when you use the app."
        )
        node = subtree_starting_with(root, tokens, ("when", "before"))
        assert node is not None
        assert "use" in node.text(tokens)

    def test_no_constraint(self):
        root, tokens = build_constituency("We collect your location.")
        assert subtree_starting_with(root, tokens, ("if",)) is None


def _walk(node):
    yield node
    for child in node.children:
        yield from _walk(child)
