"""Dependency parser golden tests over the paper's sentence shapes."""

import pytest

from repro.nlp.parser import parse


def root_text(tree):
    idx = tree.root()
    return tree.tokens[idx].text if idx is not None else None


def rel_pairs(tree):
    return {
        (arc.rel, tree.tokens[arc.dep].lower)
        for arc in tree.arcs
        if arc.head >= 0
    }


class TestRootSelection:
    @pytest.mark.parametrize("sentence,root", [
        ("We will collect your location information.", "collect"),
        ("Your personal information will be used.", "used"),
        ("We are allowed to access your personal information.", "allowed"),
        ("We use GPS to get your location.", "use"),
        ("We do not share your contacts with advertisers.", "share"),
        ("If you register an account, we may collect your email.",
         "collect"),
        ("Nothing will be collected.", "collected"),
        ("We are not collecting your name.", "collecting"),
        ("The app stores your preferences locally.", "stores"),
    ])
    def test_root(self, sentence, root):
        assert root_text(parse(sentence)) == root

    def test_able_predicate_is_root(self):
        assert root_text(parse(
            "We are able to collect location information."
        )) == "able"

    def test_single_root_arc(self):
        tree = parse("We collect data and share it with partners.")
        roots = [a for a in tree.arcs if a.rel == "root"]
        assert len(roots) == 1


class TestCoreRelations:
    def test_nsubj(self):
        tree = parse("We will collect your location.")
        assert ("nsubj", "we") in rel_pairs(tree)

    def test_dobj(self):
        tree = parse("We will collect your location.")
        assert ("dobj", "location") in rel_pairs(tree)

    def test_aux(self):
        tree = parse("We will collect your location.")
        assert ("aux", "will") in rel_pairs(tree)

    def test_nsubjpass_and_auxpass(self):
        pairs = rel_pairs(parse("Your location will be collected."))
        assert ("nsubjpass", "location") in pairs
        assert ("auxpass", "be") in pairs

    def test_neg(self):
        pairs = rel_pairs(parse("We will not collect your location."))
        assert ("neg", "not") in pairs

    def test_xcomp_for_allowed(self):
        pairs = rel_pairs(parse("We are allowed to access your data."))
        assert ("xcomp", "access") in pairs

    def test_xcomp_for_able(self):
        pairs = rel_pairs(parse("We are able to collect your data."))
        assert ("xcomp", "collect") in pairs

    def test_purpose_advcl(self):
        pairs = rel_pairs(parse("We use GPS to get your location."))
        assert ("advcl", "get") in pairs

    def test_conditional_advcl_and_mark(self):
        pairs = rel_pairs(parse(
            "If you register an account, we may collect your email."
        ))
        assert ("advcl", "register") in pairs
        assert ("mark", "if") in pairs

    def test_prep_pobj(self):
        pairs = rel_pairs(parse("We share your data with partners."))
        assert ("prep", "with") in pairs
        assert ("pobj", "partners") in pairs

    def test_poss_and_det(self):
        pairs = rel_pairs(parse("We collect the data and your name."))
        assert ("det", "the") in pairs
        assert ("poss", "your") in pairs

    def test_amod(self):
        pairs = rel_pairs(parse("We collect personal information."))
        assert ("amod", "personal") in pairs

    def test_nn_compound(self):
        pairs = rel_pairs(parse("We collect your phone number."))
        assert ("nn", "phone") in pairs


class TestCoordination:
    def test_np_conjunction(self):
        tree = parse("We will not store your number, name and contacts.")
        conj = [
            tree.tokens[a.dep].lower
            for a in tree.arcs if a.rel == "conj"
        ]
        assert "name" in conj
        assert "contacts" in conj

    def test_vp_conjunction(self):
        tree = parse("We collect and store your data.")
        root = tree.root()
        conj = tree.children(root, "conj")
        assert any(tree.tokens[k].lemma == "store" for k in conj)

    def test_shared_object_reachable(self):
        tree = parse("We collect and store your data.")
        # the dobj lives on one of the coordinated verbs
        has_dobj = any(a.rel == "dobj" for a in tree.arcs)
        assert has_dobj


class TestStructuralInvariants:
    @pytest.mark.parametrize("sentence", [
        "We will provide your information to third party companies "
        "to improve service.",
        "Your location may be shared with our partners when you use "
        "the app.",
        "We are not collecting your date of birth, phone number, name "
        "or other personal information, nor those of your contacts.",
        "We encourage you to review the privacy practices of these "
        "third parties.",
        "this",
        "",
        "data data data",
    ])
    def test_single_headed_and_acyclic(self, sentence):
        tree = parse(sentence)
        assert tree.is_single_headed()
        assert tree.is_acyclic()

    def test_every_token_attached(self):
        tree = parse("We may share your personal information with our "
                     "advertising partners to serve relevant ads.")
        root = tree.root()
        for tok in tree.tokens:
            if tok.index == root:
                continue
            assert tree.head_of(tok.index) is not None

    def test_subtree_contains_modifiers(self):
        tree = parse("We collect your precise location data.")
        dobj = None
        for arc in tree.arcs:
            if arc.rel == "dobj":
                dobj = arc.dep
        assert dobj is not None
        text = tree.subtree_text(dobj)
        assert "precise" in text

    def test_to_conll_roundtrip_lines(self):
        tree = parse("We collect data.")
        lines = tree.to_conll().splitlines()
        assert len(lines) == len(tree.tokens)
