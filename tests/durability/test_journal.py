"""Unit tests of the write-ahead journal primitive."""

import os

import pytest

from repro.durability.journal import (
    Journal,
    decode_record,
    encode_record,
    replay,
)


def write_journal(path, n=3):
    with Journal(str(path)) as journal:
        for i in range(1, n + 1):
            journal.append("outcome", {"app": f"pkg{i}"})
    return str(path)


class TestEncodeDecode:
    def test_round_trip(self):
        line = encode_record(7, "outcome", {"app": "a", "n": [1, 2]})
        record = decode_record(line)
        assert record == {"payload": {"app": "a", "n": [1, 2]},
                          "seq": 7, "type": "outcome"}

    def test_line_is_newline_terminated_utf8(self):
        line = encode_record(1, "meta", {"name": "café"})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1

    def test_missing_newline_is_torn(self):
        line = encode_record(1, "t", {})
        with pytest.raises(ValueError, match="newline"):
            decode_record(line[:-1])

    def test_corrupted_byte_fails_checksum(self):
        line = bytearray(encode_record(1, "t", {"k": "value"}))
        flip = line.index(b"value"[0])
        line[flip] ^= 0x01
        with pytest.raises(ValueError):
            decode_record(bytes(line))

    def test_not_json_is_torn(self):
        with pytest.raises(ValueError, match="JSON"):
            decode_record(b"garbage\n")

    def test_wrong_shape_is_torn(self):
        with pytest.raises(ValueError):
            decode_record(b'{"just": "json"}\n')


class TestReplay:
    def test_missing_file_replays_empty(self, tmp_path):
        result = replay(str(tmp_path / "absent.jsonl"))
        assert result.records == []
        assert result.committed_bytes == 0
        assert not result.torn

    def test_replays_all_committed_records(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl")
        result = replay(path)
        assert [r["payload"]["app"] for r in result.records] == \
            ["pkg1", "pkg2", "pkg3"]
        assert result.committed_bytes == os.path.getsize(path)
        assert not result.torn

    def test_torn_tail_keeps_committed_prefix(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl")
        committed = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b'{"crc":"dead', )
        result = replay(path)
        assert len(result.records) == 3
        assert result.committed_bytes == committed
        assert result.torn_bytes == len(b'{"crc":"dead')

    def test_corrupt_middle_record_ends_replay_there(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl")
        data = bytearray(open(path, "rb").read())
        # flip one byte inside the second record's payload
        second = data.index(b"pkg2")
        data[second] ^= 0x01
        open(path, "wb").write(bytes(data))
        result = replay(path)
        assert [r["payload"]["app"] for r in result.records] == ["pkg1"]
        assert result.torn

    def test_non_contiguous_seq_ends_replay(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "wb") as handle:
            handle.write(encode_record(1, "t", {}))
            handle.write(encode_record(3, "t", {}))  # gap
        result = replay(path)
        assert len(result.records) == 1


class TestJournal:
    def test_append_is_immediately_replayable(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with Journal(path) as journal:
            journal.append("outcome", {"app": "a"})
            # a concurrent reader (or the next process) already sees it
            assert len(replay(path).records) == 1
            journal.append("outcome", {"app": "b"})
            assert len(replay(path).records) == 2

    def test_reopen_resumes_sequence(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", n=2)
        with Journal(path) as journal:
            assert len(list(journal.records())) == 2
            journal.append("outcome", {"app": "pkg3"})
        records = replay(path).records
        assert [r["seq"] for r in records] == [1, 2, 3]

    def test_open_truncates_torn_tail(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", n=2)
        committed = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b"torn garbage with no newline")
        with Journal(path) as journal:
            assert journal.replayed.torn_bytes > 0
            assert os.path.getsize(path) == committed
            journal.append("outcome", {"app": "after-repair"})
        records = replay(path).records
        assert [r["seq"] for r in records] == [1, 2, 3]
        assert records[-1]["payload"]["app"] == "after-repair"

    def test_listener_observes_appends(self, tmp_path):
        seen = []
        with Journal(str(tmp_path / "j.jsonl"),
                     listener=lambda t, n: seen.append((t, n))) \
                as journal:
            record = journal.append("meta", {"k": 1})
            assert seen == [("meta", len(
                encode_record(record["seq"], "meta", {"k": 1})))]

    def test_size_bytes_tracks_file(self, tmp_path):
        with Journal(str(tmp_path / "j.jsonl")) as journal:
            assert journal.size_bytes == 0
            journal.append("t", {})
            assert journal.size_bytes == os.path.getsize(
                str(tmp_path / "j.jsonl"))
