"""Crash-safe study runs: checkpoints, resume, and the kill -9 e2e.

The acceptance scenario of the durability layer: a ``study --journal``
subprocess is killed without warning mid-run (both flavours -- an
injected ``crash`` fault that ``os._exit``\\ s the process, and a real
``SIGKILL`` while a stage hangs), restarted with ``--resume``, and the
final JSON report is byte-identical to an uninterrupted run's.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.report import AppFailure, AppReport
from repro.core.study import run_study
from repro.corpus.appstore import generate_app_store
from repro.durability.journal import replay
from repro.durability.study_log import (
    RunLog,
    RunLogError,
    open_run_log,
)
from repro.pipeline.faults import CRASH_EXIT_CODE
from repro.core.checker import PPChecker

N_APPS = 6


@pytest.fixture(scope="module")
def store():
    return generate_app_store(seed=2016, n_apps=N_APPS)


class TestRunLog:
    def meta(self):
        return {"kind": "study", "seed": 2016, "apps": N_APPS}

    def test_fresh_refuses_existing_run(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        log = RunLog.fresh(path, self.meta())
        log.close()
        with pytest.raises(RunLogError, match="resume"):
            RunLog.fresh(path, self.meta())

    def test_resume_refuses_foreign_journal(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        RunLog.fresh(path, self.meta()).close()
        with pytest.raises(RunLogError, match="different run"):
            RunLog.resume(path, {"kind": "study", "seed": 1,
                                 "apps": N_APPS})

    def test_resume_of_missing_journal_is_fresh(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        log, outcomes = RunLog.resume(path, self.meta())
        assert outcomes == {}
        assert log.recovery.resumed is False
        log.close()

    def test_outcomes_round_trip_exactly(self, store, tmp_path):
        path = str(tmp_path / "run.jsonl")
        checker = PPChecker(lib_policy_source=store.lib_policy)
        report = checker.check(store.apps[0].bundle)
        failure = AppFailure(
            package="com.example.broken", stage="policy_analysis",
            error="InjectedFault", message="boom", attempts=2)
        log = RunLog.fresh(path, self.meta())
        log.record_outcome(store.apps[0].package, report)
        log.record_outcome(failure.package, failure)
        log.close()

        resumed, outcomes = RunLog.resume(path, self.meta())
        resumed.close()
        assert resumed.recovery.resumed is True
        assert resumed.recovery.reports_replayed == 1
        assert resumed.recovery.quarantine_replayed == 1
        replayed = outcomes[store.apps[0].package]
        assert isinstance(replayed, AppReport)
        assert replayed.to_dict() == report.to_dict()
        replayed_failure = outcomes[failure.package]
        assert isinstance(replayed_failure, AppFailure)
        assert replayed_failure.to_dict() == failure.to_dict()

    def test_open_run_log_requires_resume_flag(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        log, _ = open_run_log(path, self.meta(), resume=False)
        log.record_outcome(
            "pkg", AppFailure(package="pkg", stage="s", error="E",
                              message="m", attempts=1))
        log.close()
        with pytest.raises(RunLogError, match="--resume"):
            open_run_log(path, self.meta(), resume=False)
        log, outcomes = open_run_log(path, self.meta(), resume=True)
        log.close()
        assert set(outcomes) == {"pkg"}


class TestStudySkip:
    def test_skip_merges_identically_to_full_run(self, store):
        full = run_study(store, workers=2)
        half = dict(list(full.reports.items())[:3])
        resumed = run_study(store, skip=half, workers=2)
        assert {p: r.to_dict() for p, r in resumed.reports.items()} \
            == {p: r.to_dict() for p, r in full.reports.items()}
        assert resumed.to_dict() == full.to_dict()

    def test_on_outcome_fires_once_per_fresh_app(self, store):
        seen = []
        run_study(store, on_outcome=lambda pkg, out:
                  seen.append(pkg))
        assert sorted(seen) == sorted(
            app.package for app in store.apps)
        seen.clear()
        skip_keys = [app.package for app in store.apps[:4]]
        full = run_study(store)
        run_study(store,
                  skip={k: full.reports[k] for k in skip_keys
                        if k in full.reports},
                  on_outcome=lambda pkg, out: seen.append(pkg))
        assert sorted(seen) == sorted(
            app.package for app in store.apps[4:])


def run_cli(args, env, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=env, capture_output=True, text=True, timeout=timeout)


def cli_env():
    root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(root, "src") + (
        os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else "")
    env.setdefault("PYTHONHASHSEED", "0")
    return env


def stripped(path):
    """The report JSON as canonical bytes, telemetry keys removed
    (pipeline_stats / nlp_caches / telemetry carry wall-clock noise
    and the resumed run legitimately executes fewer stages)."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    payload.pop("pipeline_stats", None)
    payload.pop("nlp_caches", None)
    payload.pop("telemetry", None)
    return json.dumps(payload, indent=2, sort_keys=True).encode()


STUDY_ARGS = ["study", "--apps", str(N_APPS), "--seed", "2016",
              "--workers", "2"]


class TestCrashResumeE2E:
    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        """One uninterrupted run; the byte baseline."""
        out = str(tmp_path_factory.mktemp("ref") / "ref.json")
        result = run_cli([*STUDY_ARGS, "--json", out], cli_env())
        assert result.returncode == 0, result.stdout + result.stderr
        return stripped(out)

    def test_crash_fault_then_resume_is_byte_identical(
            self, store, tmp_path, reference):
        env = cli_env()
        journal = str(tmp_path / "study.jsonl")
        out = str(tmp_path / "out.json")
        plan = tmp_path / "faults.json"
        plan.write_text(json.dumps({"faults": [{
            "stage": "detect", "match": store.apps[4].package,
            "kind": "crash",
        }]}))

        first = run_cli([*STUDY_ARGS, "--journal", journal,
                         "--json", out, "--fault-plan", str(plan),
                         "--workers", "1"], env)
        assert first.returncode == CRASH_EXIT_CODE
        assert not os.path.exists(out)  # died before the report
        committed = replay(journal).records
        # the meta record plus every app finished before the crash
        assert committed[0]["type"] == "meta"
        assert 1 <= len(committed) - 1 < N_APPS

        second = run_cli([*STUDY_ARGS, "--journal", journal,
                          "--resume", "--json", out], env)
        assert second.returncode == 0, second.stdout + second.stderr
        assert "== recovery ==" in second.stdout
        assert "resumed" in second.stdout
        assert stripped(out) == reference

    def test_kill_9_mid_run_then_resume_is_byte_identical(
            self, store, tmp_path, reference):
        env = cli_env()
        journal = str(tmp_path / "study.jsonl")
        out = str(tmp_path / "out.json")
        plan = tmp_path / "faults.json"
        # a long hang (no stage timeout): the run checkpoints the
        # apps before it, then stalls where we can SIGKILL it
        plan.write_text(json.dumps({"faults": [{
            "stage": "static_analysis",
            "match": store.apps[4].package,
            "kind": "hang", "hang_seconds": 300,
        }]}))
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *STUDY_ARGS,
             "--workers", "1", "--journal", journal,
             "--json", out, "--fault-plan", str(plan)],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 120
            while True:
                committed = replay(journal).records
                if len(committed) >= 3:  # meta + >= 2 outcomes
                    break
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        "study never checkpointed an outcome")
                time.sleep(0.05)
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
            assert process.returncode == -signal.SIGKILL
        finally:
            if process.poll() is None:  # pragma: no cover
                process.kill()
                process.wait(timeout=10)

        assert not os.path.exists(out)
        resumed = run_cli([*STUDY_ARGS, "--journal", journal,
                           "--resume", "--json", out], env)
        assert resumed.returncode == 0, \
            resumed.stdout + resumed.stderr
        assert "== recovery ==" in resumed.stdout
        assert stripped(out) == reference

    def test_resume_against_wrong_run_exits_cleanly(self, tmp_path):
        env = cli_env()
        journal = str(tmp_path / "study.jsonl")
        first = run_cli([*STUDY_ARGS, "--journal", journal], env)
        assert first.returncode == 0
        wrong = run_cli(["study", "--apps", str(N_APPS),
                         "--seed", "1", "--journal", journal,
                         "--resume"], env)
        assert wrong.returncode == 2
        assert "different run" in wrong.stderr

    def test_journal_without_resume_refuses_clobber(self, tmp_path):
        env = cli_env()
        journal = str(tmp_path / "study.jsonl")
        assert run_cli([*STUDY_ARGS, "--journal", journal],
                       env).returncode == 0
        again = run_cli([*STUDY_ARGS, "--journal", journal], env)
        assert again.returncode == 2
        assert "--resume" in again.stderr
