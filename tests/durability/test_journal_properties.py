"""Property suite for the journal format (hypothesis).

The durability contract, stated as properties:

1. ``encode_record`` / ``decode_record`` round-trip any JSON payload.
2. Truncating the file at *every* byte offset inside the tail record
   never makes replay raise, and never drops a record committed
   before the tail -- a torn append can only lose itself.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.durability.journal import (
    decode_record,
    encode_record,
    replay,
)

json_values = st.recursive(
    st.none() | st.booleans()
    | st.integers(min_value=-(2 ** 53), max_value=2 ** 53)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=10,
)

record_types = st.sampled_from(["meta", "outcome", "accepted",
                                "started", "completed"])


class TestRoundTrip:
    @given(seq=st.integers(min_value=1, max_value=10 ** 9),
           type=record_types, payload=json_values)
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_identity(self, seq, type, payload):
        record = decode_record(encode_record(seq, type, payload))
        assert record["seq"] == seq
        assert record["type"] == type
        # canonical JSON may re-order keys but never changes values
        assert json.loads(json.dumps(record["payload"])) == \
            json.loads(json.dumps(payload))


class TestTornTail:
    @given(payloads=st.lists(json_values, min_size=1, max_size=4),
           tail=json_values)
    @settings(max_examples=40, deadline=None)
    def test_truncation_never_raises_never_drops_committed(
            self, tmp_path_factory, payloads, tail):
        tmp_path = tmp_path_factory.mktemp("journal")
        path = str(tmp_path / "j.jsonl")
        committed = b"".join(
            encode_record(seq, "outcome", payload)
            for seq, payload in enumerate(payloads, start=1))
        tail_line = encode_record(len(payloads) + 1, "outcome", tail)

        # cut at every offset of the tail record, including 0 (the
        # append never happened) and len (it fully committed)
        for cut in range(len(tail_line) + 1):
            with open(path, "wb") as handle:
                handle.write(committed + tail_line[:cut])
            result = replay(path)  # must never raise
            expected = len(payloads) + (1 if cut == len(tail_line)
                                        else 0)
            assert len(result.records) == expected
            assert result.committed_bytes == \
                len(committed) + (cut if cut == len(tail_line) else 0)
            assert result.torn_bytes == \
                len(committed) + cut - result.committed_bytes

    @given(payloads=st.lists(json_values, min_size=2, max_size=3),
           junk=st.binary(min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_junk_tail_never_raises(
            self, tmp_path_factory, payloads, junk):
        tmp_path = tmp_path_factory.mktemp("journal")
        path = str(tmp_path / "j.jsonl")
        committed = b"".join(
            encode_record(seq, "outcome", payload)
            for seq, payload in enumerate(payloads, start=1))
        with open(path, "wb") as handle:
            handle.write(committed + junk)
        result = replay(path)
        # junk may happen to start with a newline-terminated valid
        # record only if it matches the CRC AND the next seq -- with
        # random bytes it never does, so the committed prefix is all
        assert len(result.records) == len(payloads)
        assert result.committed_bytes == len(committed)
