"""Deadline propagation through the single-process service.

A request-level budget (the ``deadline_s`` field or the
``X-Ppchecker-Deadline`` header) follows the job through queueing and
execution.  Expired work is *shed* -- a structured 504, never a
half-finished check -- at whichever point the budget runs out:
before queueing, at dequeue, or mid-run.  Shed jobs are forgotten,
not cached, so a resubmission with a fresh budget really runs; and
both 429s and shed 504s carry the load-aware ``Retry-After``.
"""

from __future__ import annotations

import time

import pytest

from repro.pipeline.faults import SLOW, FaultPlan, FaultSpec
from repro.pipeline.resilience import Deadline
from repro.service import ServiceClient, ServiceConfig, start_service
from repro.service.server import DEADLINE_HEADER

from tests.service.test_service import make_doc

SLOW_PKG = "com.slow.app"


def slow_plan(delay: float = 0.5) -> FaultPlan:
    """Every stage of ``com.slow.*`` checks takes *delay* extra
    seconds -- the brownout shape: correct answers, late."""
    return FaultPlan([FaultSpec(stage="policy_analysis",
                                match="com.slow", kind=SLOW,
                                delay_seconds=delay)])


@pytest.fixture()
def handle():
    h = start_service(ServiceConfig(
        port=0, workers=1, queue_size=8,
        fault_plan=slow_plan(0.5)))
    yield h
    h.close(deadline=5.0)


@pytest.fixture()
def client(handle):
    return ServiceClient(port=handle.port, timeout=60.0)


def metrics_value(client: ServiceClient, needle: str) -> float:
    for line in client.metrics_text().splitlines():
        if line.startswith(needle + " "):
            return float(line.split()[-1])
    return 0.0


# -- intake ----------------------------------------------------------------


def test_generous_deadline_checks_normally(client):
    doc = make_doc(package="com.ok.generous")
    doc["deadline_s"] = 60.0
    status, _, payload = client.request("POST", "/v1/check", doc)
    assert status == 200
    assert payload["package"] == "com.ok.generous"


def test_deadline_header_is_honored(handle, client):
    import json
    from http.client import HTTPConnection

    conn = HTTPConnection("127.0.0.1", handle.port, timeout=30)
    try:
        body = json.dumps(make_doc(package="com.ok.header")).encode()
        conn.request("POST", "/v1/check", body=body, headers={
            "Content-Type": "application/json",
            DEADLINE_HEADER: "60",
        })
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status == 200
        assert payload["package"] == "com.ok.header"
    finally:
        conn.close()


@pytest.mark.parametrize("bad", ["soon", -1, 0, "inf", "nan"])
def test_invalid_deadline_is_a_400(client, bad):
    doc = make_doc(package="com.ok.invalid")
    doc["deadline_s"] = bad
    status, _, payload = client.request("POST", "/v1/check", doc)
    assert status == 400
    assert payload["error"]["kind"] == "bad_request"


def test_deadline_field_never_reaches_the_fingerprint(client):
    """Identical bundles with different budgets are the *same* job:
    the reserved field is popped before parsing, so coalescing (and,
    at the cluster front, shard routing) stay deadline-blind."""
    doc = make_doc(package="com.ok.coalesce")
    status, _, first = client.request("POST", "/v1/jobs", doc)
    assert status == 202 and first["coalesced"] is False
    redo = make_doc(package="com.ok.coalesce")
    redo["deadline_s"] = 60.0
    status, _, second = client.request("POST", "/v1/jobs", redo)
    assert status == 202
    assert second["id"] == first["id"]
    assert second["coalesced"] is True


# -- shedding --------------------------------------------------------------


def test_expired_in_queue_is_shed_not_run(client):
    """A queued job whose submitter has already given up must never
    burn pipeline work: it is shed at dequeue with the structured
    504 payload."""
    # workers=1: this slow check (~0.5s) blocks the only worker
    client.request("POST", "/v1/jobs", make_doc(package=SLOW_PKG))
    victim = make_doc(package="com.ok.victim")
    victim["deadline_s"] = 0.05
    status, headers, payload = client.request(
        "POST", "/v1/check", victim)
    assert status == 504
    error = payload["error"]
    assert error["kind"] == "deadline_exceeded"
    assert error["package"] == "com.ok.victim"
    assert "queued" in error["where"]
    assert error["deadline_s"] == 0.05
    assert 1 <= int(headers["Retry-After"]) <= 60
    assert metrics_value(
        client, "ppchecker_deadline_shed_total") >= 1


def test_mid_run_expiry_sheds_instead_of_quarantining(client):
    doc = make_doc(package=SLOW_PKG + ".midrun")
    doc["deadline_s"] = 0.15  # the slow stage alone takes ~0.5s
    status, _, payload = client.request("POST", "/v1/check", doc)
    assert status == 504
    assert payload["error"]["kind"] == "deadline_exceeded"
    # shed is not failure: nothing was quarantined
    assert metrics_value(client, "ppchecker_quarantine_total") == 0


def test_shed_job_is_forgotten_then_fresh_budget_reruns(client):
    client.request("POST", "/v1/jobs", make_doc(package=SLOW_PKG))
    victim = make_doc(package="com.ok.fresh")
    victim["deadline_s"] = 0.05
    status, _, payload = client.request("POST", "/v1/jobs", victim)
    assert status == 202
    job_id = payload["id"]
    # wait for the shed to happen at dequeue
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        status, _, _ = client.request("GET", f"/v1/jobs/{job_id}")
        if status == 410:
            break
        time.sleep(0.05)
    # a shed job is forgotten, never a coalesce target: its id is
    # Gone, and resubmitting with a fresh budget actually runs
    assert status == 410
    status, _, payload = client.request(
        "POST", "/v1/check", make_doc(package="com.ok.fresh"))
    assert status == 200
    assert payload["package"] == "com.ok.fresh"


def test_batch_sheds_per_document(client):
    blocker = make_doc(package=SLOW_PKG + ".batch")
    doomed = make_doc(package="com.ok.doomed")
    doomed["deadline_s"] = 0.05
    status, _, payload = client.request(
        "POST", "/v1/batch",
        {"bundles": [blocker, doomed]})
    assert status == 200
    assert payload["shed"] == 1
    assert payload["checked"] == 1
    by_status = {slot["status"]: slot for slot in payload["results"]}
    assert by_status["shed"]["error"]["kind"] == "deadline_exceeded"


def test_submit_with_spent_deadline_is_shed_before_the_queue():
    h = start_service(ServiceConfig(port=0, workers=1,
                                    queue_size=4))
    try:
        from repro.service.server import DeadlineExpired

        spent = Deadline.after(0.001)
        time.sleep(0.01)
        with pytest.raises(DeadlineExpired) as excinfo:
            h.service.submit(make_doc(package="com.ok.spent"),
                             deadline=spent)
        assert excinfo.value.error["kind"] == "deadline_exceeded"
        assert "before the job was queued" in \
            excinfo.value.error["where"]
        # nothing entered the queue or the index
        assert h.service.queue.depth == 0
        assert h.service.index.inflight == 0
    finally:
        h.close(deadline=5.0)


# -- service-wide default & load-aware Retry-After -------------------------


def test_configured_default_deadline_applies_without_request_one():
    h = start_service(ServiceConfig(
        port=0, workers=1, queue_size=4,
        fault_plan=slow_plan(0.6), default_deadline=0.15))
    try:
        client = ServiceClient(port=h.port, timeout=60.0)
        status, _, payload = client.request(
            "POST", "/v1/check", make_doc(package=SLOW_PKG))
        assert status == 504
        assert payload["error"]["kind"] == "deadline_exceeded"
        # an explicit request deadline overrides the default
        doc = make_doc(package="com.ok.override")
        doc["deadline_s"] = 60.0
        status, _, payload = client.request("POST", "/v1/check", doc)
        assert status == 200
    finally:
        h.close(deadline=5.0)


def test_429_carries_load_aware_retry_after():
    h = start_service(ServiceConfig(
        port=0, workers=1, queue_size=1,
        fault_plan=slow_plan(0.5)))
    try:
        client = ServiceClient(port=h.port, timeout=60.0)
        saw_429 = None
        for i in range(12):
            status, headers, _ = client.request(
                "POST", "/v1/jobs",
                make_doc(package=f"{SLOW_PKG}.load{i}"))
            if status == 429:
                saw_429 = headers
                break
        assert saw_429 is not None, "queue never filled"
        assert 1 <= int(saw_429["Retry-After"]) <= 60
    finally:
        h.close(deadline=5.0)
