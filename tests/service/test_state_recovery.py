"""Persistent service jobs: journal fold semantics, crash recovery,
dead-lettering, and the `serve --state-dir` restart e2e.

The in-process tests restart a :class:`CheckService` over the same
``state_dir`` and assert that accepted jobs survive under their
original ids; the subprocess test crashes a real ``ppchecker serve``
with a ``crash``-kind fault and restarts it into a dead-letter.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.durability.service_log import ServiceLog, deadletter_doc
from repro.pipeline.faults import CRASH_EXIT_CODE
from repro.service import ServiceClient, ServiceConfig, start_service

from tests.android.appbuilder import PKG
from tests.service.test_service import make_doc


def accept(log, n, package="com.example.app", bundle=None):
    log.job_accepted(f"job-{n}", f"key-{n}", package,
                     bundle if bundle is not None else {"stub": n})


def reopen(log, state_dir):
    """Recovery reads the records committed before open -- exactly a
    process restart, which is what these tests model."""
    log.close()
    return ServiceLog(str(state_dir))


class TestServiceLogFold:
    def test_unfinished_jobs_requeue_in_acceptance_order(
            self, tmp_path):
        log = ServiceLog(str(tmp_path))
        accept(log, 1)
        accept(log, 2)
        accept(log, 3)
        log.job_started("job-2", 1)
        log.job_completed("job-2")
        log = reopen(log, tmp_path)
        state = log.recover(max_redeliveries=3)
        log.close()
        assert [j.id for j in state.requeue] == ["job-1", "job-3"]
        assert state.deadletters == []
        assert state.max_job_number == 3

    def test_terminal_jobs_never_requeue(self, tmp_path):
        log = ServiceLog(str(tmp_path))
        accept(log, 1)
        log.job_started("job-1", 1)
        log.job_quarantined("job-1", {"error": "Boom"})
        log = reopen(log, tmp_path)
        state = log.recover(max_redeliveries=3)
        log.close()
        assert state.requeue == []
        assert state.deadletters == []

    def test_exhausted_deliveries_deadletter(self, tmp_path):
        log = ServiceLog(str(tmp_path))
        accept(log, 1)
        for delivery in (1, 2):
            log.job_started("job-1", delivery)
        log = reopen(log, tmp_path)
        state = log.recover(max_redeliveries=2)
        assert state.requeue == []
        assert [j.id for j in state.deadletters] == ["job-1"]
        assert state.deadletters[0].deliveries == 2
        log.close()

    def test_deadletter_decision_is_itself_journaled(self, tmp_path):
        log = ServiceLog(str(tmp_path))
        accept(log, 1)
        log.job_started("job-1", 1)
        log = reopen(log, tmp_path)
        log.recover(max_redeliveries=1)
        log.close()
        # a second recovery must see the journaled decision, not a
        # fresh delivery budget -- even with a laxer policy
        log = ServiceLog(str(tmp_path))
        state = log.recover(max_redeliveries=99)
        log.close()
        assert state.requeue == []
        assert [j.id for j in state.deadletters] == ["job-1"]

    def test_started_before_accepted_race_is_folded(self, tmp_path):
        """The two appends race across threads; replay must still
        count the delivery."""
        log = ServiceLog(str(tmp_path))
        log.job_started("job-1", 1)
        accept(log, 1)
        log = reopen(log, tmp_path)
        state = log.recover(max_redeliveries=1)
        log.close()
        assert state.requeue == []
        assert [j.id for j in state.deadletters] == ["job-1"]

    def test_deadletter_doc_shape(self):
        doc = deadletter_doc("job-9", "key-9", "com.example.x", 3)
        assert doc["state"] == "deadlettered"
        assert doc["error"]["kind"] == "deadlettered"
        assert doc["error"]["attempts"] == 3
        assert "dead-lettered" in doc["error"]["message"]


def durable_config(state_dir, **overrides):
    settings = dict(port=0, workers=2, queue_size=16,
                    state_dir=str(state_dir))
    settings.update(overrides)
    return ServiceConfig(**settings)


class TestInProcessRestart:
    def test_accepted_jobs_survive_a_restart(self, tmp_path):
        # first life: no workers, so accepted jobs only ever reach
        # the journal -- the crash window at its widest
        first = start_service(durable_config(tmp_path, workers=0))
        client = ServiceClient(port=first.port)
        assert client.healthz()["durable"] is True
        stub_a = client.submit(make_doc(package="com.example.a"))
        stub_b = client.submit(make_doc(package="com.example.b"))
        first.close(drain=False, deadline=0.1)

        second = start_service(durable_config(tmp_path))
        try:
            client = ServiceClient(port=second.port)
            final_a = client.wait(stub_a["id"], timeout=60.0)
            final_b = client.wait(stub_b["id"], timeout=60.0)
            assert final_a["state"] == "completed"
            assert final_a["report"]["package"] == "com.example.a"
            assert final_b["state"] == "completed"
            assert final_b["report"]["package"] == "com.example.b"
            text = client.metrics_text()
            assert "ppchecker_jobs_recovered_total 2" in text
            assert "ppchecker_journal_size_bytes" in text
        finally:
            second.close(deadline=5.0)

    def test_new_ids_never_collide_with_journaled_ones(self,
                                                       tmp_path):
        first = start_service(durable_config(tmp_path, workers=0))
        client = ServiceClient(port=first.port)
        stub = client.submit(make_doc(package="com.example.a"))
        first.close(drain=False, deadline=0.1)

        second = start_service(durable_config(tmp_path))
        try:
            client = ServiceClient(port=second.port)
            fresh = client.submit(make_doc(package="com.example.c"))
            assert fresh["id"] != stub["id"]
            assert int(fresh["id"].split("-")[1]) > \
                int(stub["id"].split("-")[1])
        finally:
            second.close(deadline=5.0)

    def test_resubmission_coalesces_onto_recovered_job(self,
                                                       tmp_path):
        first = start_service(durable_config(tmp_path, workers=0))
        client = ServiceClient(port=first.port)
        doc = make_doc(package="com.example.a")
        stub = client.submit(doc)
        first.close(drain=False, deadline=0.1)

        second = start_service(durable_config(tmp_path, workers=0))
        try:
            client = ServiceClient(port=second.port)
            again = client.submit(doc)
            assert again["coalesced"] is True
            assert again["id"] == stub["id"]
        finally:
            second.close(drain=False, deadline=0.1)

    def test_finished_jobs_are_not_rerun(self, tmp_path):
        first = start_service(durable_config(tmp_path))
        client = ServiceClient(port=first.port)
        stub = client.submit(make_doc(package="com.example.a"))
        client.wait(stub["id"], timeout=60.0)
        first.close(deadline=5.0)

        second = start_service(durable_config(tmp_path))
        try:
            client = ServiceClient(port=second.port)
            text = client.metrics_text()
            assert "ppchecker_jobs_recovered_total 0" in text
            # the id is gone (completed LRU died with process one)
            # but it was issued: 410, not 404
            status, _, payload = client.request(
                "GET", f"/v1/jobs/{stub['id']}")
            assert status == 410
            assert payload["error"]["kind"] == "gone"
        finally:
            second.close(deadline=5.0)


class TestPoisonPill:
    def seed_poison(self, state_dir, doc, deliveries=1):
        """Journal an accepted job that burned *deliveries* without
        finishing -- what a crash leaves behind."""
        from repro.android.serialization import (
            bundle_from_dict, bundle_to_dict)
        from repro.hashing import fingerprint

        canonical = bundle_to_dict(bundle_from_dict(doc))
        key = fingerprint(canonical)
        log = ServiceLog(str(state_dir))
        log.job_accepted("job-1", key, doc["package"], canonical)
        for delivery in range(1, deliveries + 1):
            log.job_started("job-1", delivery)
        log.close()
        return key

    def test_exhausted_job_is_parked_and_surfaced(self, tmp_path):
        doc = make_doc(package="com.example.poison")
        self.seed_poison(tmp_path, doc, deliveries=2)
        handle = start_service(
            durable_config(tmp_path, max_redeliveries=2))
        try:
            client = ServiceClient(port=handle.port)
            payload = client.deadletter()
            assert payload["count"] == 1
            (parked,) = payload["deadletters"]
            assert parked["id"] == "job-1"
            assert parked["state"] == "deadlettered"
            assert parked["error"]["kind"] == "deadlettered"
            assert parked["deliveries"] == 2

            # the id still resolves, to the parked payload
            doc_by_id = client.job("job-1")
            assert doc_by_id["state"] == "deadlettered"

            assert client.healthz()["deadletters"] == 1
            text = client.metrics_text()
            assert "ppchecker_jobs_deadlettered_total 1" in text
        finally:
            handle.close(deadline=5.0)

    def test_under_budget_job_is_redelivered_not_parked(
            self, tmp_path):
        doc = make_doc(package="com.example.retry")
        self.seed_poison(tmp_path, doc, deliveries=1)
        handle = start_service(
            durable_config(tmp_path, max_redeliveries=3))
        try:
            client = ServiceClient(port=handle.port)
            final = client.wait("job-1", timeout=60.0)
            assert final["state"] == "completed"
            assert final["report"]["package"] == "com.example.retry"
            assert client.deadletter()["count"] == 0
        finally:
            handle.close(deadline=5.0)

    def test_resubmitting_a_parked_bundle_gets_a_fresh_job(
            self, tmp_path):
        """A dead-letter is never a coalescing target: the same
        bundle resubmitted runs with a fresh delivery budget."""
        doc = make_doc(package="com.example.poison")
        self.seed_poison(tmp_path, doc, deliveries=2)
        handle = start_service(
            durable_config(tmp_path, max_redeliveries=2))
        try:
            client = ServiceClient(port=handle.port)
            assert client.deadletter()["count"] == 1
            stub = client.submit(doc)
            assert stub["coalesced"] is False
            assert stub["id"] != "job-1"
            final = client.wait(stub["id"], timeout=60.0)
            assert final["state"] == "completed"
            # the original pill stays parked
            assert client.job("job-1")["state"] == "deadlettered"
        finally:
            handle.close(deadline=5.0)

    def test_memory_only_service_has_empty_deadletter(self):
        handle = start_service(ServiceConfig(port=0, workers=1,
                                             queue_size=4))
        try:
            client = ServiceClient(port=handle.port)
            assert client.healthz()["durable"] is False
            payload = client.deadletter()
            assert payload == {
                "count": 0, "deadletters": [],
                "schema_version": payload["schema_version"],
            }
        finally:
            handle.close(deadline=5.0)


class TestServeSubprocessCrashRecovery:
    def wait_healthy(self, client, deadline=60):
        end = time.monotonic() + deadline
        while True:
            try:
                return client.healthz()
            except OSError:
                if time.monotonic() > end:
                    raise TimeoutError("service never came up")
                time.sleep(0.2)

    def spawn(self, port_file, state_dir, fault_plan, env):
        # OS-assigned port published through --port-file: no
        # probe-then-rebind race with parallel CI lanes
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", "0", "--port-file", port_file,
             "--workers", "1",
             "--state-dir", state_dir, "--max-redeliveries", "1",
             "--drain-timeout", "5",
             "--fault-plan", fault_plan],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)

    def test_crash_fault_restart_deadletters_the_pill(self,
                                                      tmp_path):
        from repro.service import read_port_file

        port_file = str(tmp_path / "serve.port")
        root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(root, "src") + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else "")
        state_dir = str(tmp_path / "state")
        plan = tmp_path / "faults.json"
        # stall the poison job for a second before crashing it, so
        # the 202 (journal fsync + response write) always reaches the
        # client before the worker takes the process down
        plan.write_text(json.dumps({"faults": [
            {"stage": "policy_analysis",
             "match": "com.example.poison",
             "kind": "hang", "hang_seconds": 1.0},
            {"stage": "detect", "match": "com.example.poison",
             "kind": "crash"},
        ]}))

        process = self.spawn(port_file, state_dir, str(plan), env)
        try:
            client = ServiceClient(port=read_port_file(port_file),
                                   timeout=5.0)
            self.wait_healthy(client)
            stub = client.submit(make_doc(
                package="com.example.poison"))
            process.wait(timeout=60)
            assert process.returncode == CRASH_EXIT_CODE
        finally:
            if process.poll() is None:  # pragma: no cover
                process.kill()
                process.wait(timeout=10)

        # restart with the SAME fault plan armed: recovery must
        # dead-letter the pill instead of crash-looping
        os.unlink(port_file)  # the restart publishes a fresh port
        process = self.spawn(port_file, state_dir, str(plan), env)
        try:
            client = ServiceClient(port=read_port_file(port_file),
                                   timeout=5.0)
            health = self.wait_healthy(client)
            assert health["deadletters"] == 1
            payload = client.deadletter()
            assert payload["deadletters"][0]["id"] == stub["id"]
            assert client.job(stub["id"])["state"] == "deadlettered"
            # the service still checks healthy bundles
            report = client.check(make_doc())
            assert report["package"] == PKG
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30)
            assert process.returncode == 0
        finally:
            if process.poll() is None:  # pragma: no cover
                process.kill()
                process.wait(timeout=10)
