"""Unit tests for the Prometheus-style metrics registry."""

import pytest

from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ServiceMetrics,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("x_total", "help")
        c.inc()
        c.inc(2)
        assert c.value() == 3

    def test_labels(self):
        c = Counter("req_total", "help", ("endpoint", "status"))
        c.inc(endpoint="/v1/check", status="200")
        c.inc(endpoint="/v1/check", status="200")
        c.inc(endpoint="/v1/check", status="429")
        assert c.value(endpoint="/v1/check", status="200") == 2
        assert c.value(endpoint="/v1/check", status="429") == 1
        assert c.total() == 3

    def test_wrong_labels_rejected(self):
        c = Counter("x_total", "help", ("a",))
        with pytest.raises(ValueError):
            c.inc(b="1")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("x_total", "help").inc(-1)

    def test_render(self):
        c = Counter("req_total", "requests", ("status",))
        c.inc(status="200")
        text = "\n".join(c.render())
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{status="200"} 1' in text

    def test_unlabelled_counter_renders_zero(self):
        text = "\n".join(Counter("x_total", "h").render())
        assert "x_total 0" in text

    def test_label_escaping(self):
        c = Counter("x_total", "h", ("p",))
        c.inc(p='say "hi"\nnow')
        line = [l for l in c.render() if not l.startswith("#")][0]
        assert r'p="say \"hi\"\nnow"' in line


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth", "h")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4
        assert "depth 4" in "\n".join(g.render())

    def test_callback(self):
        state = {"v": 7}
        g = Gauge("depth", "h", callback=lambda: state["v"])
        assert g.value() == 7
        state["v"] = 9
        assert "depth 9" in "\n".join(g.render())


class TestHistogram:
    def test_buckets_cumulative(self):
        h = Histogram("lat", "h", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        text = "\n".join(h.render())
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_count 4" in text
        assert "lat_sum 6.05" in text
        assert h.count() == 4

    def test_labelled(self):
        h = Histogram("lat", "h", ("stage",), buckets=(1.0,))
        h.observe(0.5, stage="detect")
        h.observe(2.0, stage="detect")
        text = "\n".join(h.render())
        assert 'lat_bucket{stage="detect",le="1"} 1' in text
        assert 'lat_bucket{stage="detect",le="+Inf"} 2' in text
        assert h.count(stage="detect") == 2


class TestRegistry:
    def test_duplicate_name_rejected(self):
        r = MetricsRegistry()
        r.counter("x_total", "h")
        with pytest.raises(ValueError):
            r.gauge("x_total", "h")

    def test_render_concatenates_in_order(self):
        r = MetricsRegistry()
        r.counter("a_total", "h").inc()
        r.gauge("b", "h").set(2)
        text = r.render()
        assert text.index("a_total") < text.index("# TYPE b gauge")
        assert text.endswith("\n")


class TestServiceMetrics:
    def test_observe_stage_maps_outcomes(self):
        m = ServiceMetrics()
        m.observe_stage("detect", hit=False, failed=False,
                        seconds=0.01)
        m.observe_stage("detect", hit=True, failed=False,
                        seconds=0.0001)
        m.observe_stage("detect", hit=False, failed=True,
                        seconds=0.5)
        assert m.stage_requests.value(stage="detect",
                                      outcome="execution") == 1
        assert m.stage_requests.value(stage="detect",
                                      outcome="cache_hit") == 1
        assert m.stage_requests.value(stage="detect",
                                      outcome="failure") == 1
        assert m.stage_latency.count(stage="detect") == 3

    def test_listener_signature_matches_pipeline_stats(self):
        from repro.pipeline.artifacts import PipelineStats

        m = ServiceMetrics()
        stats = PipelineStats()
        stats.add_listener(m.observe_stage)
        stats.record("policy_analysis", hit=False, seconds=0.2)
        stats.record("policy_analysis", hit=True, seconds=0.001)
        assert m.stage_requests.value(stage="policy_analysis",
                                      outcome="execution") == 1
        assert m.stage_requests.value(stage="policy_analysis",
                                      outcome="cache_hit") == 1
        # the counters themselves are unchanged by the listener
        assert stats.stage("policy_analysis").executions == 1
        assert stats.stage("policy_analysis").cache_hits == 1
