"""End-to-end tests of the check service over real HTTP.

Every test here starts a real ``ThreadingHTTPServer`` on an ephemeral
port and talks to it through :class:`repro.service.ServiceClient` --
the same path ``ppchecker serve`` traffic takes.
"""

from __future__ import annotations

import threading

import pytest

from repro import __version__
from repro.android.serialization import bundle_to_dict
from repro.core.checker import AppBundle, PPChecker
from repro.core.schema import SCHEMA_VERSION
from repro.pipeline.faults import FaultPlan, FaultSpec
from repro.service import (
    CheckQuarantined,
    ServiceBusy,
    ServiceClient,
    ServiceConfig,
    ServiceUnavailable,
    start_service,
)

from tests.android.appbuilder import (
    LOCATION_API,
    PKG,
    add_activity,
    empty_apk,
    invoke,
)


def make_doc(package=PKG, policy="We collect your email.",
             description="An app.", with_location=False):
    apk = empty_apk()
    instructions = [invoke(LOCATION_API, dest="v0")] \
        if with_location else None
    add_activity(apk, instructions=instructions)
    bundle = AppBundle(package=package, apk=apk, policy=policy,
                       description=description)
    return bundle_to_dict(bundle)


@pytest.fixture()
def handle():
    h = start_service(ServiceConfig(port=0, workers=4,
                                    queue_size=16))
    yield h
    h.close(deadline=5.0)


@pytest.fixture()
def client(handle):
    return ServiceClient(port=handle.port)


class TestHTTPBasics:
    def test_healthz(self, client, handle):
        doc = client.healthz()
        assert doc["status"] == "ok"
        assert doc["version"] == __version__
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["queue_capacity"] == 16
        assert doc["workers"] == 4
        assert doc["workers_alive"] == 4

    def test_server_header_reports_version(self, client):
        status, headers, _ = client.request("GET", "/healthz")
        assert status == 200
        assert headers["Server"] == f"ppchecker/{__version__}"

    def test_check_matches_cli_json_schema(self, client):
        report = client.check(make_doc(with_location=True))
        # the exact report a direct PPChecker produces, stamped with
        # schema_version exactly like `check --json`
        from repro.android.serialization import bundle_from_dict
        from repro.core.schema import versioned
        expected = versioned(PPChecker().check(
            bundle_from_dict(make_doc(with_location=True))).to_dict())
        assert report == expected
        assert report["has_problem"]
        assert "incomplete" in report

    def test_async_job_roundtrip(self, client):
        stub = client.submit(make_doc())
        assert stub["schema_version"] == SCHEMA_VERSION
        assert stub["location"] == f"/v1/jobs/{stub['id']}"
        final = client.wait(stub["id"], timeout=30.0)
        assert final["state"] == "completed"
        assert final["report"]["package"] == PKG
        assert final["key"] == stub["key"]

    def test_batch_mixed_validity(self, client):
        payload = client.batch([
            make_doc(package="com.example.one"),
            {"not": "a bundle"},
        ])
        assert payload["schema_version"] == SCHEMA_VERSION
        statuses = [r["status"] for r in payload["results"]]
        assert statuses == ["ok", "invalid"]
        assert payload["checked"] == 1
        assert payload["rejected"] == 1
        assert payload["results"][0]["report"]["package"] == \
            "com.example.one"

    def test_unknown_endpoint_404(self, client):
        status, _, payload = client.request("GET", "/nope")
        assert status == 404
        assert payload["error"]["kind"] == "not_found"

    def test_unknown_job_404(self, client):
        status, _, payload = client.request("GET",
                                            "/v1/jobs/job-999")
        assert status == 404

    def test_invalid_json_400(self, client, handle):
        import http.client

        conn = http.client.HTTPConnection(client.host, handle.port)
        conn.request("POST", "/v1/check", body=b"{not json",
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        assert response.status == 400
        response.read()
        conn.close()

    def test_invalid_bundle_400(self, client):
        status, _, payload = client.request("POST", "/v1/check",
                                            {"version": 1})
        assert status == 400
        assert payload["error"]["kind"] == "bad_request"

    def test_requests_counted_in_metrics(self, client):
        client.healthz()
        text = client.metrics_text()
        assert 'ppchecker_requests_total{endpoint="/healthz"' in text
        assert "ppchecker_queue_depth 0" in text
        assert "ppchecker_workers_alive 4" in text


class TestCoalescing:
    """The acceptance scenario: 8 concurrent identical submissions,
    one pipeline execution, identical reports, consistent metrics,
    graceful drain."""

    def test_concurrent_identical_checks_run_once(self):
        h = start_service(ServiceConfig(port=0, workers=4,
                                        queue_size=16))
        try:
            client = ServiceClient(port=h.port)
            doc = make_doc(with_location=True)
            reports: list[dict] = []
            errors: list[Exception] = []
            barrier = threading.Barrier(8)

            def hit():
                try:
                    barrier.wait(timeout=10)
                    reports.append(client.check(doc))
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=hit)
                       for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not errors
            assert len(reports) == 8

            # all eight clients got the same, correct report
            assert all(r == reports[0] for r in reports)
            assert reports[0]["has_problem"]

            # exactly one pipeline execution, by stage-compute counters
            stats = h.service.runner.stats.to_dict()
            for stage in ("policy_analysis", "static_analysis",
                          "description_permissions", "detect"):
                assert stats[stage]["executions"] == 1, stage
                assert stats[stage]["failures"] == 0, stage

            # /metrics agrees with the traffic
            text = client.metrics_text()
            assert ('ppchecker_requests_total{endpoint="/v1/check",'
                    'status="200"} 8') in text
            assert 'ppchecker_jobs_total{status="completed"} 1' \
                in text
            assert "ppchecker_jobs_coalesced_total 7" in text
            assert ('ppchecker_stage_requests_total'
                    '{stage="policy_analysis",outcome="execution"} 1'
                    ) in text
            assert "ppchecker_queue_depth 0" in text

            # graceful drain: workers join, queue empty
            assert h.close(deadline=5.0) is True
            assert h.service.pool.alive == 0
            assert h.service.queue.depth == 0
        except BaseException:
            h.close(drain=False, deadline=1.0)
            raise

    def test_completed_job_lru_serves_repeat_requests(self, client,
                                                      handle):
        doc = make_doc()
        first = client.check(doc)
        second = client.check(doc)
        assert first == second
        # the repeat resolved to the completed job: still one job
        m = handle.service.metrics
        assert m.jobs.value(status="completed") == 1
        assert m.coalesced.value() == 1


class TestQuarantine:
    @pytest.fixture()
    def faulty_handle(self):
        plan = FaultPlan([FaultSpec(stage="static_analysis",
                                    kind="raise",
                                    message="injected crash")])
        h = start_service(ServiceConfig(port=0, workers=2,
                                        queue_size=8,
                                        fault_plan=plan))
        yield h
        h.close(deadline=5.0)

    def test_quarantined_check_is_structured_422(self, faulty_handle):
        client = ServiceClient(port=faulty_handle.port)
        with pytest.raises(CheckQuarantined) as excinfo:
            client.check(make_doc())
        error = excinfo.value.error
        assert error["kind"] == "quarantined"
        assert error["package"] == PKG
        assert error["stage"] == "static_analysis"
        assert error["error"] == "InjectedFault"
        assert "injected crash" in error["message"]
        assert error["attempts"] == 1

        # quarantine surfaces in the metrics, not as a 500
        text = client.metrics_text()
        assert "ppchecker_quarantine_total 1" in text
        assert 'ppchecker_jobs_total{status="quarantined"} 1' in text
        assert ('ppchecker_requests_total{endpoint="/v1/check",'
                'status="422"} 1') in text

    def test_async_job_reports_quarantine(self, faulty_handle):
        client = ServiceClient(port=faulty_handle.port)
        stub = client.submit(make_doc(package="com.example.async"))
        final = client.wait(stub["id"], timeout=30.0)
        assert final["state"] == "quarantined"
        assert final["error"]["stage"] == "static_analysis"
        assert "report" not in final

    def test_batch_quarantine_slot(self, faulty_handle):
        client = ServiceClient(port=faulty_handle.port)
        payload = client.batch([make_doc(package="com.example.b")])
        assert payload["quarantined"] == 1
        assert payload["results"][0]["status"] == "quarantined"
        assert payload["results"][0]["error"]["error"] == \
            "InjectedFault"


class TestBackpressureAndDrain:
    @pytest.fixture()
    def stalled_handle(self):
        # no workers: jobs stay queued, so capacity is reachable
        h = start_service(ServiceConfig(port=0, workers=0,
                                        queue_size=2))
        yield h
        h.close(drain=False, deadline=0.5)

    def test_full_queue_answers_429_retry_after(self, stalled_handle):
        client = ServiceClient(port=stalled_handle.port)
        client.submit(make_doc(package="com.example.a"))
        client.submit(make_doc(package="com.example.b"))
        with pytest.raises(ServiceBusy) as excinfo:
            client.submit(make_doc(package="com.example.c"))
        assert excinfo.value.retry_after >= 1
        assert excinfo.value.payload["error"]["kind"] == "queue_full"
        text = client.metrics_text()
        assert ('ppchecker_rejected_total{reason="queue_full"} 1'
                ) in text
        assert "ppchecker_queue_depth 2" in text

    def test_queued_job_visible_via_status_endpoint(self,
                                                    stalled_handle):
        client = ServiceClient(port=stalled_handle.port)
        stub = client.submit(make_doc(package="com.example.q"))
        assert client.job(stub["id"])["state"] == "queued"

    def test_draining_rejects_new_work_503(self, stalled_handle):
        client = ServiceClient(port=stalled_handle.port)
        stalled_handle.service.begin_drain()
        with pytest.raises(ServiceUnavailable):
            client.submit(make_doc(package="com.example.d"))
        assert client.healthz()["status"] == "draining"
        text = client.metrics_text()
        assert ('ppchecker_rejected_total{reason="draining"} 1'
                ) in text

    def test_drain_503_carries_retry_after_from_budget(self):
        h = start_service(ServiceConfig(port=0, workers=0,
                                        queue_size=2,
                                        drain_timeout=7.0))
        try:
            client = ServiceClient(port=h.port)
            h.service.begin_drain()
            with pytest.raises(ServiceUnavailable) as excinfo:
                client.submit(make_doc(package="com.example.d"))
            # the server derives Retry-After from its drain budget:
            # back off for as long as the drain can possibly take
            assert excinfo.value.retry_after == 7.0
            status, headers, _ = client.request(
                "POST", "/v1/batch",
                {"bundles": [make_doc(package="com.example.e")]})
            assert status == 503
            assert headers["Retry-After"] == "7"
        finally:
            h.close(drain=False, deadline=0.5)

    def test_drain_and_queue_full_reasons_distinguishable(
            self, stalled_handle):
        client = ServiceClient(port=stalled_handle.port)
        client.submit(make_doc(package="com.example.a"))
        client.submit(make_doc(package="com.example.b"))
        with pytest.raises(ServiceBusy):
            client.submit(make_doc(package="com.example.c"))
        stalled_handle.service.begin_drain()
        with pytest.raises(ServiceUnavailable):
            client.submit(make_doc(package="com.example.d"))
        text = client.metrics_text()
        assert ('ppchecker_rejected_total{reason="draining"} 1'
                ) in text
        assert ('ppchecker_rejected_total{reason="queue_full"} 1'
                ) in text


class TestCompletedJobEviction:
    @pytest.fixture()
    def tiny_lru_handle(self):
        # one completed-job slot: the second finished job evicts the
        # first, whose id must then answer 410 Gone
        h = start_service(ServiceConfig(port=0, workers=1,
                                        queue_size=8,
                                        completed_jobs=1))
        yield h
        h.close(deadline=5.0)

    def test_evicted_job_answers_410_gone(self, tiny_lru_handle):
        from repro.service import JobGone

        client = ServiceClient(port=tiny_lru_handle.port)
        first = client.submit(make_doc(package="com.example.one"))
        client.wait(first["id"], timeout=30.0)
        second = client.submit(make_doc(package="com.example.two"))
        client.wait(second["id"], timeout=30.0)

        status, _, payload = client.request(
            "GET", f"/v1/jobs/{first['id']}")
        assert status == 410
        assert payload["error"]["kind"] == "gone"
        assert payload["error"]["job_id"] == first["id"]
        assert "resubmit" in payload["error"]["message"]
        with pytest.raises(JobGone):
            client.job(first["id"])
        # the survivor still resolves
        assert client.job(second["id"])["state"] == "completed"

    def test_never_issued_id_stays_404(self, tiny_lru_handle):
        client = ServiceClient(port=tiny_lru_handle.port)
        status, _, payload = client.request("GET",
                                            "/v1/jobs/job-999")
        assert status == 404
        assert payload["error"]["kind"] == "not_found"
        status, _, _ = client.request("GET", "/v1/jobs/not-a-job")
        assert status == 404

    def test_evictions_counted_in_metrics(self, tiny_lru_handle):
        client = ServiceClient(port=tiny_lru_handle.port)
        for i in range(3):
            stub = client.submit(make_doc(
                package=f"com.example.evict{i}"))
            client.wait(stub["id"], timeout=30.0)
        text = client.metrics_text()
        assert "ppchecker_jobs_evicted_total 2" in text
        assert tiny_lru_handle.service.index.evictions == 2

    def test_graceful_shutdown_finishes_queued_jobs(self):
        h = start_service(ServiceConfig(port=0, workers=2,
                                        queue_size=16))
        client = ServiceClient(port=h.port)
        stubs = [client.submit(make_doc(package=f"com.example.g{i}"))
                 for i in range(4)]
        jobs = [h.service.job(stub["id"]) for stub in stubs]
        assert h.close(deadline=30.0) is True
        assert all(job.done for job in jobs)
        assert all(job.state == "completed" for job in jobs)
        assert h.service.pool.alive == 0


class TestServeEntrypoint:
    def test_serve_drains_on_sigterm(self, tmp_path):
        """`ppchecker serve` in a child process: poll /healthz,
        submit one bundle, SIGTERM, expect a clean drain + exit 0."""
        import os
        import signal
        import subprocess
        import sys
        import time

        from repro.service import read_port_file

        port_file = str(tmp_path / "serve.port")
        root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(root, "src") + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", "0", "--port-file", port_file,
             "--workers", "1",
             "--drain-timeout", "5"],
            env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True,
        )
        try:
            client = ServiceClient(port=read_port_file(port_file),
                                   timeout=5.0)
            deadline = time.monotonic() + 60
            while True:
                try:
                    client.healthz()
                    break
                except OSError:
                    if time.monotonic() > deadline:
                        raise TimeoutError("service never came up")
                    time.sleep(0.2)
            report = client.check(make_doc())
            assert report["package"] == PKG
            process.send_signal(signal.SIGTERM)
            out, _ = process.communicate(timeout=30)
            assert process.returncode == 0
            assert "serving on" in out
            assert "drained, bye" in out
        finally:
            if process.poll() is None:  # pragma: no cover
                process.kill()
                process.communicate(timeout=10)
