"""e2e chaos harness for ``serve --shards N``.

Three layers:

- **basics** -- routing by content hash, cluster-wide job ids
  (``s<shard>-job-<n>``), aggregated healthz/deadletter, front
  metrics;
- **chaos** -- SIGKILL one shard mid-batch: healthz stays green
  (degraded, never down), the in-flight jobs are retried onto the
  respawned shard (or dead-lettered within the redelivery budget for
  poison pills), and completed results are unaffected;
- **drain** -- SIGTERM'ing the cluster drains every shard gracefully
  (exit 0 each).
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest

from repro.service import ServiceClient
from repro.service.cluster import ClusterConfig, start_cluster

from tests.service.test_service import make_doc


def wait_cluster_up(client: ServiceClient, shards: int,
                    deadline: float = 120.0) -> dict:
    end = time.monotonic() + deadline
    while True:
        try:
            health = client.healthz()
            if health["shards_alive"] == shards:
                return health
        except OSError:
            pass
        if time.monotonic() > end:
            raise TimeoutError("cluster never became healthy")
        time.sleep(0.2)


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    base = tmp_path_factory.mktemp("cluster")
    handle = start_cluster(ClusterConfig(
        port=0, shards=2, workers=1,
        cache_dir=str(base / "cache"),
        state_dir=str(base / "state"),
        drain_timeout=5.0,
    ))
    try:
        yield handle
    finally:
        handle.close()


@pytest.fixture(scope="module")
def client(cluster):
    c = ServiceClient(port=cluster.port, timeout=60.0)
    wait_cluster_up(c, shards=2)
    return c


class TestClusterBasics:
    def test_healthz_aggregates_shards(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["role"] == "front"
        assert health["shards"] == 2
        assert health["shards_alive"] == 2
        assert health["durable"]
        names = [row["name"] for row in health["shard_detail"]]
        assert names == ["shard-0", "shard-1"]
        assert all(row["alive"] for row in health["shard_detail"])

    def test_check_round_trip(self, client):
        report = client.check(make_doc(with_location=True))
        assert report["package"] == "com.test.app"
        assert report["has_problem"]

    def test_job_ids_are_cluster_wide(self, client):
        stub = client.submit(make_doc(package="com.example.async"))
        assert stub["id"].startswith("s")
        assert "-job-" in stub["id"]
        assert stub["location"] == f"/v1/jobs/{stub['id']}"
        final = client.wait(stub["id"], timeout=60)
        assert final["state"] == "completed"
        assert final["id"] == stub["id"]
        assert final["report"]["package"] == "com.example.async"

    def test_identical_bundles_coalesce_on_one_shard(self, client):
        doc = make_doc(package="com.example.same")
        first = client.submit(doc)
        second = client.submit(doc)
        # same content hash -> same shard -> same job
        assert second["id"] == first["id"]
        assert second["coalesced"]

    def test_batch_spreads_over_shards(self, client):
        docs = [make_doc(package=f"com.example.spread{i}")
                for i in range(8)]
        payload = client.batch(docs)
        assert payload["checked"] == 8
        assert payload["rejected"] == 0
        owners = {row["job_id"].split("-job-")[0]
                  for row in payload["results"]}
        assert owners == {"s0", "s1"}
        for doc, row in zip(docs, payload["results"]):
            assert row["report"]["package"] == doc["package"]

    def test_unprefixed_job_id_is_not_found(self, client):
        from repro.service import ServiceError

        with pytest.raises(ServiceError) as excinfo:
            client.job("job-1")
        assert excinfo.value.status == 404

    def test_deadletter_empty(self, client):
        payload = client.deadletter()
        assert payload == {"schema_version":
                           payload["schema_version"],
                           "deadletters": [], "count": 0}

    def test_front_metrics_expose_cluster_gauges(self, client):
        text = client.metrics_text()
        assert "ppchecker_shards_alive 2" in text
        assert "ppchecker_routed_total" in text
        assert "ppchecker_front_requests_total" in text


@pytest.fixture(scope="module")
def chaos_cluster(tmp_path_factory):
    """shards=3 with an armed fault plan: every ``com.chaos.`` app
    hangs 1s in policy analysis (a wide kill window), and
    ``com.example.poison`` crashes its whole shard process."""
    base = tmp_path_factory.mktemp("chaos")
    plan = base / "faults.json"
    plan.write_text(json.dumps({"faults": [
        {"stage": "policy_analysis", "match": "com.chaos.",
         "kind": "hang", "hang_seconds": 1.0},
        {"stage": "policy_analysis", "match": "com.example.poison",
         "kind": "hang", "hang_seconds": 1.0},
        {"stage": "detect", "match": "com.example.poison",
         "kind": "crash"},
    ]}))
    handle = start_cluster(ClusterConfig(
        port=0, shards=3, workers=1,
        cache_dir=str(base / "cache"),
        state_dir=str(base / "state"),
        fault_plan=str(plan),
        max_redeliveries=1,
        drain_timeout=5.0,
        reroute_timeout=120.0,
    ))
    try:
        yield handle
    finally:
        handle.close()


@pytest.fixture(scope="module")
def chaos_client(chaos_cluster):
    c = ServiceClient(port=chaos_cluster.port, timeout=180.0)
    wait_cluster_up(c, shards=3)
    return c


class TestShardKillChaos:
    def test_sigkill_mid_batch_recovers(self, chaos_cluster,
                                        chaos_client):
        docs = [make_doc(package=f"com.chaos.app{i}")
                for i in range(9)]
        outcome: dict = {}

        def run_batch() -> None:
            outcome["payload"] = chaos_client.batch(docs)

        worker = threading.Thread(target=run_batch)
        worker.start()
        # let the batch reach the shards (every job hangs ~1s), then
        # take one worker process down hard
        time.sleep(0.5)
        victim = chaos_cluster.supervisor.shards[0]
        victim_pid = victim.pid
        assert victim_pid is not None
        os.kill(victim_pid, signal.SIGKILL)

        # healthz stays green throughout the respawn window
        health = chaos_client.healthz()
        assert health["status"] in ("ok", "degraded")
        assert health["shards_alive"] >= 2

        worker.join(timeout=180)
        assert not worker.is_alive(), "batch never completed"
        payload = outcome["payload"]
        # every in-flight job was re-driven to completion: the dead
        # shard's sub-batch was retried against its replacement
        assert payload["checked"] == 9
        assert payload["quarantined"] == 0
        assert payload["rejected"] == 0
        for doc, row in zip(docs, payload["results"]):
            assert row["status"] == "ok"
            assert row["report"]["package"] == doc["package"]

        health = wait_cluster_up(chaos_client, shards=3)
        restarts = {row["name"]: row["restarts"]
                    for row in health["shard_detail"]}
        assert restarts["shard-0"] >= 1
        assert victim.pid != victim_pid

    def test_results_survive_the_kill(self, chaos_client):
        # completed results from before/after the chaos are intact:
        # a fresh check of an unrelated bundle works and a cached
        # re-check returns the identical report
        doc = make_doc(package="com.example.survivor")
        first = chaos_client.check(doc)
        second = chaos_client.check(doc)
        assert first == second
        assert first["package"] == "com.example.survivor"

    def test_poison_pill_deadletters_within_budget(self,
                                                   chaos_client):
        # a unique policy keeps the hang stage cold (a shared-cache
        # hit would skip the hang and let the crash race the 202)
        stub = chaos_client.submit(make_doc(
            package="com.example.poison",
            policy="We collect poison telemetry and device logs."))
        # the shard crashes; the supervisor respawns it; journal
        # recovery burns the delivery budget and parks the pill
        # (earlier chaos may have parked jobs of its own, so poll
        # for this specific id)
        deadline = time.monotonic() + 180
        while True:
            payload = chaos_client.deadletter()
            ids = [doc["id"] for doc in payload["deadletters"]]
            if stub["id"] in ids:
                break
            assert time.monotonic() < deadline, \
                f"pill never dead-lettered (parked: {ids})"
            time.sleep(0.5)
        final = chaos_client.job(stub["id"])
        assert final["state"] == "deadlettered"
        # the cluster still checks healthy bundles
        report = chaos_client.check(make_doc(
            package="com.example.after.poison"))
        assert report["package"] == "com.example.after.poison"
        health = chaos_client.healthz()
        assert health["status"] in ("ok", "degraded")


class TestGracefulDrain:
    def test_close_drains_every_shard(self, tmp_path):
        handle = start_cluster(ClusterConfig(
            port=0, shards=2, workers=1,
            state_dir=str(tmp_path / "state"),
            drain_timeout=5.0,
        ))
        client = ServiceClient(port=handle.port, timeout=60.0)
        wait_cluster_up(client, shards=2)
        report = client.check(make_doc(package="com.example.drain"))
        assert report["package"] == "com.example.drain"
        processes = [shard.process
                     for shard in handle.supervisor.shards]
        handle.close()
        # SIGTERM drain: every shard exited cleanly, none were killed
        assert [p.returncode for p in processes] == [0, 0]
        # and the front stopped listening
        with pytest.raises(OSError):
            client.healthz()
