"""Unit tests for the brownout primitives behind the cluster front:
the per-shard circuit breaker, the hedge-delay latency tracker, the
hash ring's failover preference order, and the drain-rate estimator
feeding the load-aware Retry-After."""

from __future__ import annotations

import pytest

from repro.service.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    LatencyTracker,
)
from repro.service.hashring import ring_for
from repro.service.runner import DrainRateEstimator


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- circuit breaker -------------------------------------------------------


def make_breaker(**kwargs):
    clock = FakeClock()
    transitions: list[str] = []
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("open_seconds", 5.0)
    breaker = CircuitBreaker(clock=clock,
                             on_transition=transitions.append,
                             **kwargs)
    return breaker, clock, transitions


def test_breaker_starts_closed_and_allows():
    breaker, _, _ = make_breaker()
    assert breaker.state == CLOSED
    assert breaker.state_code == 0
    # closed allow() has no side effects: ask as often as you like
    for _ in range(10):
        assert breaker.allow()
    assert breaker.state == CLOSED


def test_breaker_opens_after_consecutive_failures():
    breaker, _, transitions = make_breaker(failure_threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.state_code == 2
    assert not breaker.allow()
    assert transitions == [OPEN]


def test_success_resets_the_failure_streak():
    breaker, _, _ = make_breaker(failure_threshold=2)
    breaker.record_failure()
    breaker.record_success(0.01)
    breaker.record_failure()
    assert breaker.state == CLOSED  # streak broken, count restarted


def test_open_half_opens_after_cooloff_with_single_probe():
    breaker, clock, transitions = make_breaker(
        failure_threshold=1, open_seconds=5.0)
    breaker.record_failure()
    assert breaker.state == OPEN
    clock.advance(4.9)
    assert not breaker.allow()
    clock.advance(0.2)
    assert breaker.allow()          # admitted as the probe
    assert breaker.state == HALF_OPEN
    assert breaker.state_code == 1
    assert not breaker.allow()      # only one probe in flight
    breaker.record_success(0.01)
    assert breaker.state == CLOSED
    assert breaker.allow()
    assert transitions == [OPEN, HALF_OPEN, CLOSED]


def test_failed_probe_reopens_with_fresh_cooloff():
    breaker, clock, transitions = make_breaker(
        failure_threshold=1, open_seconds=5.0)
    breaker.record_failure()
    clock.advance(5.1)
    assert breaker.allow()
    breaker.record_failure()        # the probe failed
    assert breaker.state == OPEN
    clock.advance(4.9)
    assert not breaker.allow()      # the cool-off restarted
    clock.advance(0.2)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CLOSED
    assert transitions == [OPEN, HALF_OPEN, OPEN, HALF_OPEN, CLOSED]


def test_slow_success_counts_as_brownout_failure():
    breaker, _, _ = make_breaker(failure_threshold=2,
                                 latency_threshold=0.5)
    breaker.record_success(1.2)
    breaker.record_success(1.2)
    assert breaker.state == OPEN
    # without a latency threshold the same latencies are fine
    other, _, _ = make_breaker(failure_threshold=2)
    other.record_success(1.2)
    other.record_success(1.2)
    assert other.state == CLOSED


def test_fast_success_still_closes_under_latency_threshold():
    breaker, clock, _ = make_breaker(
        failure_threshold=1, latency_threshold=0.5,
        open_seconds=1.0)
    breaker.record_success(2.0)     # slow: trips
    assert breaker.state == OPEN
    clock.advance(1.1)
    assert breaker.allow()
    breaker.record_success(0.01)    # fast probe: recovers
    assert breaker.state == CLOSED


def test_breaker_validates_configuration():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(open_seconds=0)


# -- latency tracker -------------------------------------------------------


def test_tracker_uses_default_until_enough_samples():
    tracker = LatencyTracker(min_samples=4, default_delay=1.5)
    for _ in range(3):
        tracker.note(0.1)
    assert tracker.p95() is None
    assert tracker.hedge_delay() == 1.5
    tracker.note(0.1)
    assert tracker.p95() is not None


def test_tracker_p95_tracks_the_tail():
    tracker = LatencyTracker(window=100, min_samples=8)
    for _ in range(95):
        tracker.note(0.1)
    for _ in range(5):
        tracker.note(2.0)
    assert tracker.p95() in (0.1, 2.0)
    assert tracker.hedge_delay() >= 0.1


def test_tracker_floors_the_hedge_delay():
    tracker = LatencyTracker(min_samples=2, min_delay=0.05)
    tracker.note(0.001)
    tracker.note(0.001)
    assert tracker.hedge_delay() == 0.05


def test_tracker_window_is_bounded():
    tracker = LatencyTracker(window=8, min_samples=2)
    for _ in range(8):
        tracker.note(10.0)
    for _ in range(8):
        tracker.note(0.2)  # overwrites the slow era entirely
    assert tracker.p95() == 0.2


# -- hash ring preference --------------------------------------------------


def test_preference_starts_at_the_owner_and_covers_the_ring():
    ring = ring_for(5)
    for key in ("com.example.a", "com.example.b", "org.other.c"):
        preference = ring.preference(key)
        assert preference[0] == ring.place(key)
        assert sorted(preference) == ring.shards
        # deterministic across calls (and, by construction, across
        # processes -- the ring hashes with SHA-256)
        assert ring.preference(key) == preference


def test_preference_survives_membership_change():
    ring = ring_for(4)
    key = "com.example.app"
    before = ring.preference(key)
    ring.remove(before[0])
    after = ring.preference(key)
    # the old first fallback is the new owner
    assert after[0] == before[1]
    assert before[0] not in after
    assert sorted(after) == ring.shards


def test_preference_empty_ring_raises():
    ring = ring_for(1)
    ring.remove("shard-0")
    with pytest.raises(LookupError):
        ring.preference("anything")


# -- drain-rate estimator --------------------------------------------------


def test_drain_rate_needs_two_completions():
    clock = FakeClock()
    drain = DrainRateEstimator(clock=clock)
    assert drain.rate() == 0.0
    drain.note()
    assert drain.rate() == 0.0


def test_drain_rate_measures_completions_per_second():
    clock = FakeClock()
    drain = DrainRateEstimator(clock=clock)
    for _ in range(5):
        drain.note()
        clock.advance(0.5)  # 2 jobs/second
    assert drain.rate() == pytest.approx(2.0)


def test_drain_rate_window_forgets_ancient_history():
    clock = FakeClock()
    drain = DrainRateEstimator(window=4, clock=clock)
    drain.note()
    clock.advance(100.0)  # a long stall, then a fast burst
    for _ in range(4):
        drain.note()
        clock.advance(0.1)
    assert drain.rate() == pytest.approx(10.0)
