"""Brownout chaos suite for the 3-shard cluster.

One shard of three is *browned out* -- a per-shard fault plan makes
every ``com.brown.*`` check on shard-0 answer correctly but ~1s
late.  The front must ride it out:

- **correctness** -- a batch spanning healthy and browned shards
  returns reports byte-identical to an in-process reference checker;
- **hedging** -- a slow ``/v1/check`` on the browned shard is raced
  against a healthy peer and the hedge's (identical) answer wins;
- **breaking** -- browned-out latency trips shard-0's circuit
  breaker open (``ppchecker_breaker_state`` = 2), diverting traffic
  to the next ring owner;
- **recovery** -- after the cool-off, a fast probe (a package the
  fault plan does not match) closes the breaker again via half-open;
- **deadlines** -- a tiny budget on a browned-out check is shed as a
  structured 504, end to end through the front.

Shard placement is computed in-test with the same SHA-256 ring every
front process uses, so the suite *chooses* packages that land on the
browned shard instead of hoping."""

from __future__ import annotations

import json
import time

import pytest

from repro.android.serialization import bundle_from_dict
from repro.core.checker import PPChecker
from repro.hashing import fingerprint
from repro.service import ServiceClient
from repro.service.cluster import ClusterConfig, start_cluster
from repro.service.hashring import ring_for, shard_name

from tests.service.test_cluster import wait_cluster_up
from tests.service.test_service import make_doc

SHARDS = 3
BROWNED = 0  # the shard the fault plan slows down
SLOW_S = 1.0


def make_brown_doc(prefix: str, index: int) -> dict:
    """A bundle document with a unique policy text, so every check
    recomputes its stages instead of coalescing into one cache entry
    (a cache hit would bypass the injected brownout)."""
    package = f"{prefix}.app{index}"
    return make_doc(package=package,
                    policy=f"We collect your email. [{package}]")


def docs_routed_to(prefix: str, shard_index: int, count: int,
                   ) -> list[dict]:
    """*count* bundle documents whose routing key lands on
    ``shard-<shard_index>`` -- the exact placement the front will
    compute, since both sides hash with the deterministic ring."""
    ring = ring_for(SHARDS)
    target = shard_name(shard_index)
    found: list[dict] = []
    index = 0
    while len(found) < count:
        doc = make_brown_doc(prefix, index)
        if ring.place(fingerprint(doc)) == target:
            found.append(doc)
        index += 1
        assert index < 10_000, "ring never produced a match"
    return found


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    base = tmp_path_factory.mktemp("brownout")
    plan_path = base / "brownout-plan.json"
    plan_path.write_text(json.dumps({"faults": [{
        "stage": "policy_analysis",
        "match": "com.brown",
        "kind": "slow",
        "delay_seconds": SLOW_S,
    }]}))
    handle = start_cluster(ClusterConfig(
        port=0, shards=SHARDS, workers=1,
        shard_fault_plans={BROWNED: str(plan_path)},
        breaker_failures=2,
        breaker_latency=0.5,   # < SLOW_S: browned answers count
        breaker_cooloff=1.0,
        hedge=True,
        hedge_delay=0.3,       # << SLOW_S: hedges fire on brownouts
        drain_timeout=5.0,
    ))
    try:
        yield handle
    finally:
        handle.close()


@pytest.fixture(scope="module")
def client(cluster):
    client = ServiceClient(port=cluster.port, timeout=120.0)
    wait_cluster_up(client, SHARDS)
    return client


def metric(client: ServiceClient, name: str, **labels) -> float:
    """One sample from the front's /metrics text."""
    want = name
    if labels:
        body = ",".join(f'{k}="{v}"'
                        for k, v in sorted(labels.items()))
        want = f"{name}{{{body}}}"
    for line in client.metrics_text().splitlines():
        if line.startswith(want + " "):
            return float(line.split()[-1])
    return 0.0


def wait_for(predicate, timeout: float, message: str) -> None:
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return
        time.sleep(0.1)
    raise AssertionError(message)


def reference_report(doc: dict) -> dict:
    return PPChecker().check(bundle_from_dict(doc)).to_dict()


# ordered phases: each test builds on the cluster state the previous
# one left behind, so they must run top to bottom (pytest preserves
# in-file order)


def test_browned_batch_is_byte_identical(client):
    """Answers from the browned-out shard are *late*, never wrong:
    every report matches the in-process reference byte for byte."""
    docs = (docs_routed_to("com.brown.batch", BROWNED, 3)
            + docs_routed_to("com.brown.batch", 1, 2)
            + docs_routed_to("com.brown.batch", 2, 2))
    status, _, payload = client.request("POST", "/v1/batch",
                                        {"bundles": docs})
    assert status == 200
    assert payload["checked"] == len(docs)
    for doc, slot in zip(docs, payload["results"]):
        assert slot["status"] == "ok"
        got = json.dumps(slot["report"], sort_keys=True)
        want = json.dumps(reference_report(doc), sort_keys=True)
        assert got == want, f"report drifted for {doc['package']}"


def test_slow_primary_is_hedged_and_the_hedge_wins(client):
    """A /v1/check owned by the browned shard is raced against a
    healthy peer after the hedge delay; the peer's byte-identical
    answer comes back first."""
    doc = docs_routed_to("com.brown.hedge", BROWNED, 1)[0]
    started = time.monotonic()
    status, _, payload = client.request("POST", "/v1/check", doc)
    elapsed = time.monotonic() - started
    assert status == 200
    got = json.dumps({k: v for k, v in payload.items()
                      if k != "schema_version"}, sort_keys=True)
    want = json.dumps(reference_report(doc), sort_keys=True)
    assert got == want
    assert metric(client, "ppchecker_hedges_total",
                  outcome="hedge_won") >= 1
    # the hedge rescued the latency: well under the browned path
    # (SLOW_S plus the check itself), with CI slack
    assert elapsed < SLOW_S + 30.0


def test_brownout_trips_the_breaker_open(client):
    """Consecutive brownout-slow answers open shard-0's breaker;
    subsequent owners' traffic diverts to the next ring owner."""
    shard = shard_name(BROWNED)
    # keep poking the browned shard until the latency signal trips it
    docs = iter(docs_routed_to("com.brown.trip", BROWNED, 12))

    def tripped() -> bool:
        if metric(client, "ppchecker_breaker_state",
                  shard=shard) == 2:
            return True
        status, _, _ = client.request("POST", "/v1/check",
                                      next(docs))
        assert status == 200
        return False

    wait_for(tripped, 90.0, "breaker never opened")
    assert metric(client, "ppchecker_breaker_transitions_total",
                  shard=shard, to="open") >= 1
    # open breaker: a browned-owner check now completes *fast* on a
    # fallback shard (no SLOW_S in the path)
    doc = docs_routed_to("com.brown.divert", BROWNED, 1)[0]
    started = time.monotonic()
    status, _, _ = client.request("POST", "/v1/check", doc)
    assert status == 200
    assert time.monotonic() - started < SLOW_S + 30.0


def test_breaker_recovers_through_a_half_open_probe(client):
    """After the cool-off, the first request admitted to shard-0 is
    the half-open probe; the fault plan does not match com.probe.*
    so it answers fast and the breaker closes again."""
    shard = shard_name(BROWNED)
    docs = iter(docs_routed_to("com.probe", BROWNED, 30))

    def recovered() -> bool:
        if metric(client, "ppchecker_breaker_state",
                  shard=shard) == 0:
            return True
        status, _, _ = client.request("POST", "/v1/check",
                                      next(docs))
        assert status == 200
        return False

    wait_for(recovered, 90.0, "breaker never re-closed")
    assert metric(client, "ppchecker_breaker_transitions_total",
                  shard=shard, to="half_open") >= 1
    assert metric(client, "ppchecker_breaker_transitions_total",
                  shard=shard, to="closed") >= 1
    # and the recovered shard serves its owners directly again
    doc = docs_routed_to("com.probe.direct", BROWNED, 1)[0]
    status, _, payload = client.request("POST", "/v1/check", doc)
    assert status == 200
    assert payload["package"] == doc["package"]


def test_deadline_is_shed_end_to_end_through_the_front(client):
    """A tiny budget on a browned-out check is forwarded (minus
    front time) and shed by whichever layer the clock runs out in --
    the client sees one structured 504."""
    doc = docs_routed_to("com.brown.doomed", BROWNED, 1)[0]
    doc["deadline_s"] = 0.05
    status, _, payload = client.request("POST", "/v1/check", doc)
    assert status == 504
    assert payload["error"]["kind"] == "deadline_exceeded"
    # and garbage budgets are rejected at the front, before any
    # shard sees them
    bad = docs_routed_to("com.brown.bad", BROWNED, 1)[0]
    bad["deadline_s"] = "soon"
    status, _, payload = client.request("POST", "/v1/check", bad)
    assert status == 400
