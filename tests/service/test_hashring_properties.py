"""Property suite for the consistent-hash ring (hypothesis).

The cluster contract, stated as properties:

1. **Bounded skew** -- keys spread over shards with max/mean bounded
   by a small constant (virtual nodes flatten the arcs).
2. **Minimal remap** -- when a shard joins, the only keys that move
   are the ones the new shard now owns, and their fraction is close
   to ``1/(N+1)``; when a shard leaves, only its own keys move.
3. **Determinism** -- placement is a pure function of (key, members,
   replicas): rebuild order never matters, and a fresh interpreter
   with a different ``PYTHONHASHSEED`` places every key identically.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

from hypothesis import given, settings, strategies as st

from repro.service.hashring import (
    DEFAULT_REPLICAS,
    HashRing,
    ring_for,
    shard_name,
    stable_hash,
)

#: deterministic synthetic key population (package-name shaped)
def keys(n: int) -> list[str]:
    return [f"com.example.app{i:05d}" for i in range(n)]


shard_counts = st.integers(min_value=2, max_value=12)


class TestBalance:
    @given(shards=shard_counts)
    @settings(max_examples=20, deadline=None)
    def test_skew_is_bounded(self, shards):
        ring = ring_for(shards)
        counts = {s: 0 for s in ring.shards}
        population = keys(2000)
        for key in population:
            counts[ring.place(key)] += 1
        mean = len(population) / shards
        assert sum(counts.values()) == len(population)
        # every shard owns a meaningful arc, none dominates
        assert max(counts.values()) <= 1.6 * mean
        assert min(counts.values()) >= 0.4 * mean

    def test_assignments_cover_every_member(self):
        ring = ring_for(4)
        grouped = ring.assignments(keys(100))
        assert sorted(grouped) == [shard_name(i) for i in range(4)]
        assert sum(len(v) for v in grouped.values()) == 100


class TestMinimalRemap:
    @given(shards=shard_counts)
    @settings(max_examples=20, deadline=None)
    def test_join_moves_only_keys_owned_by_the_newcomer(self, shards):
        population = keys(1500)
        before = ring_for(shards).place_many(population)
        grown = ring_for(shards + 1)
        after = grown.place_many(population)
        newcomer = shard_name(shards)
        moved = [k for k in population if before[k] != after[k]]
        # every moved key landed on the new shard, nowhere else
        assert all(after[k] == newcomer for k in moved)
        # and the moved fraction is near 1/(N+1), not a reshuffle
        expected = len(population) / (shards + 1)
        assert len(moved) <= 2.0 * expected

    @given(shards=st.integers(min_value=3, max_value=12),
           victim=st.integers(min_value=0, max_value=11))
    @settings(max_examples=20, deadline=None)
    def test_leave_moves_only_the_victims_keys(self, shards, victim):
        victim %= shards
        population = keys(1500)
        ring = ring_for(shards)
        before = ring.place_many(population)
        ring.remove(shard_name(victim))
        after = ring.place_many(population)
        for key in population:
            if before[key] != shard_name(victim):
                assert after[key] == before[key], key
            else:
                assert after[key] != shard_name(victim)


class TestDeterminism:
    @given(shards=shard_counts,
           sample=st.lists(st.text(min_size=1, max_size=40),
                           min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_membership_order_never_matters(self, shards, sample):
        names = [shard_name(i) for i in range(shards)]
        forward = HashRing(names)
        backward = HashRing(reversed(names))
        rebuilt = HashRing(names[1:])
        rebuilt.add(names[0])
        for key in sample:
            assert forward.place(key) == backward.place(key)
            assert forward.place(key) == rebuilt.place(key)

    def test_stable_hash_ignores_pythonhashseed(self):
        """A fresh interpreter under a different hash seed must place
        every key identically -- the accept process and its workers
        never coordinate seeds."""
        sample = keys(64)
        local = ring_for(5).place_many(sample)
        script = (
            "import json, sys\n"
            "from repro.service.hashring import ring_for\n"
            "keys = json.load(sys.stdin)\n"
            "print(json.dumps(ring_for(5).place_many(keys)))\n"
        )
        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        for seed in ("1", "271828"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = os.path.join(root, "src") + (
                os.pathsep + env["PYTHONPATH"]
                if env.get("PYTHONPATH") else "")
            proc = subprocess.run(
                [sys.executable, "-c", script],
                input=json.dumps(sample), capture_output=True,
                text=True, env=env, timeout=120)
            assert proc.returncode == 0, proc.stderr
            assert json.loads(proc.stdout) == local, f"seed {seed}"

    def test_stable_hash_is_pinned(self):
        # a silent hash change would re-route every cached placement
        # after an upgrade; pin one value forever
        assert stable_hash("ppchecker") == int.from_bytes(
            __import__("hashlib").sha256(b"ppchecker").digest()[:8],
            "big")
        assert DEFAULT_REPLICAS == 128


class TestEdgeCases:
    def test_empty_ring_raises(self):
        import pytest

        with pytest.raises(LookupError):
            HashRing().place("x")

    def test_add_remove_idempotent(self):
        ring = ring_for(3)
        ring.add(shard_name(1))
        assert len(ring) == 3
        ring.remove("not-there")
        ring.remove(shard_name(2))
        ring.remove(shard_name(2))
        assert ring.shards == [shard_name(0), shard_name(1)]

    def test_single_shard_owns_everything(self):
        ring = ring_for(1)
        assert {ring.place(k) for k in keys(50)} == {shard_name(0)}
