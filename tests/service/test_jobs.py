"""Unit tests for the job queue and the coalescing index."""

import pytest

from repro.core.checker import AppBundle
from repro.service.coalescing import JobIndex
from repro.service.jobs import (
    COMPLETED,
    QUARANTINED,
    Job,
    JobQueue,
    QueueFull,
)

from tests.android.appbuilder import add_activity, empty_apk


def make_bundle(package="com.example.app"):
    apk = empty_apk()
    add_activity(apk)
    return AppBundle(package=package, apk=apk,
                     policy="We may collect your email address.",
                     description="An app.")


def make_job(job_id="job-1", key="k1", package="com.example.app"):
    return Job(job_id, key, make_bundle(package))


class TestJob:
    def test_lifecycle_completed(self):
        job = make_job()
        assert not job.done
        assert not job.wait(timeout=0.0)
        job.finish({"package": "com.example.app"})
        assert job.done and job.state == COMPLETED
        assert job.wait(timeout=0.0)
        assert job.to_dict()["report"] == {"package": "com.example.app"}

    def test_lifecycle_quarantined(self):
        job = make_job()
        job.quarantine({"stage": "detect", "error": "Boom"})
        assert job.done and job.state == QUARANTINED
        doc = job.to_dict()
        assert doc["state"] == QUARANTINED
        assert doc["error"]["stage"] == "detect"
        assert "report" not in doc


class TestJobQueue:
    def test_fifo(self):
        q = JobQueue(capacity=4)
        a, b = make_job("job-1"), make_job("job-2", key="k2")
        q.put(a)
        q.put(b)
        assert q.depth == 2
        assert q.get() is a
        assert q.get() is b

    def test_backpressure(self):
        q = JobQueue(capacity=1)
        q.put(make_job())
        with pytest.raises(QueueFull) as excinfo:
            q.put(make_job("job-2", key="k2"))
        assert excinfo.value.capacity == 1
        assert q.depth == 1

    def test_get_timeout_returns_none(self):
        assert JobQueue(capacity=1).get(timeout=0.01) is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            JobQueue(capacity=0)


class TestJobIndex:
    def make(self, index, queue, key="k1",
             package="com.example.app"):
        return index.submit(
            key,
            lambda job_id, k: Job(job_id, k, make_bundle(package)),
            queue.put,
        )

    def test_first_submit_enqueues(self):
        index, queue = JobIndex(), JobQueue(capacity=4)
        job, coalesced = self.make(index, queue)
        assert not coalesced
        assert queue.depth == 1
        assert index.inflight == 1
        assert index.by_id(job.id) is job

    def test_inflight_coalesces(self):
        index, queue = JobIndex(), JobQueue(capacity=4)
        first, _ = self.make(index, queue)
        second, coalesced = self.make(index, queue)
        assert coalesced and second is first
        assert first.waiters == 2
        assert queue.depth == 1  # no second queue slot

    def test_completed_coalesces_without_queueing(self):
        index, queue = JobIndex(), JobQueue(capacity=4)
        job, _ = self.make(index, queue)
        queue.get()
        job.finish({"package": job.package})
        index.complete(job)
        assert index.inflight == 0 and index.completed == 1
        again, coalesced = self.make(index, queue)
        assert coalesced and again is job
        assert queue.depth == 0

    def test_completed_lru_eviction_drops_id(self):
        index, queue = JobIndex(completed_capacity=2), \
            JobQueue(capacity=8)
        jobs = []
        for i in range(3):
            job, _ = self.make(index, queue, key=f"k{i}",
                               package=f"com.example.a{i}")
            queue.get()
            job.finish({})
            index.complete(job)
            jobs.append(job)
        assert index.completed == 2
        assert index.by_id(jobs[0].id) is None  # evicted
        assert index.by_id(jobs[2].id) is jobs[2]

    def test_full_queue_registers_nothing(self):
        index, queue = JobIndex(), JobQueue(capacity=1)
        self.make(index, queue)
        with pytest.raises(QueueFull):
            self.make(index, queue, key="k2",
                      package="com.example.other")
        assert index.inflight == 1  # the failed submit left no trace

    def test_concurrent_submits_share_one_job(self):
        import threading

        index, queue = JobIndex(), JobQueue(capacity=64)
        results = []

        def submit():
            results.append(self.make(index, queue))

        threads = [threading.Thread(target=submit)
                   for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        jobs = {id(job) for job, _ in results}
        assert len(jobs) == 1
        assert queue.depth == 1
        assert sum(1 for _, coalesced in results if coalesced) == 15
