"""Shared fixtures: analyzers, matchers, and a small app-store slice."""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite the golden JSON snapshots under "
             "tests/integration/goldens/ instead of comparing "
             "against them",
    )

from repro.core.checker import PPChecker
from repro.core.matching import InfoMatcher
from repro.corpus.appstore import generate_app_store
from repro.policy.analyzer import PolicyAnalyzer
from repro.semantics.esa import default_model


@pytest.fixture(scope="session")
def esa():
    return default_model()


@pytest.fixture(scope="session")
def matcher():
    return InfoMatcher()


@pytest.fixture(scope="session")
def analyzer():
    return PolicyAnalyzer()


@pytest.fixture(scope="session")
def small_store():
    """The first 64 apps: the description-incomplete groups."""
    return generate_app_store(n_apps=64)


@pytest.fixture(scope="session")
def mid_store():
    """The first 320 apps: covers every planted problem group."""
    return generate_app_store(n_apps=320)


@pytest.fixture(scope="session")
def full_store():
    """The complete 1,197-app corpus."""
    return generate_app_store()


@pytest.fixture(scope="session")
def checker(full_store):
    return PPChecker(lib_policy_source=full_store.lib_policy)
