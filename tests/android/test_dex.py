"""Dex IR model tests."""

from repro.android.dex import (
    DexClass,
    DexFile,
    Instruction,
    Method,
    make_signature,
)


def _method(cls="com.a.B", name="m", params=("x",)):
    return Method(class_name=cls, name=name, params=params)


class TestInstruction:
    def test_invoke_predicate(self):
        assert Instruction(op="invoke", target="a.B->c()").is_invoke()
        assert not Instruction(op="move", dest="v0",
                               args=("v1",)).is_invoke()

    def test_frozen(self):
        ins = Instruction(op="nop")
        try:
            ins.op = "move"
            assert False
        except AttributeError:
            pass


class TestMethod:
    def test_signature_format(self):
        method = _method()
        assert method.signature == "com.a.B->m(x)"

    def test_signature_no_params(self):
        assert _method(params=()).signature == "com.a.B->m()"

    def test_invocations_filter(self):
        method = _method()
        method.instructions = [
            Instruction(op="const-string", dest="v0", literal="s"),
            Instruction(op="invoke", target="a.B->c()"),
        ]
        assert len(method.invocations()) == 1

    def test_string_constants(self):
        method = _method()
        method.instructions = [
            Instruction(op="const-string", dest="v0", literal="hello"),
            Instruction(op="invoke", target="a.B->c()"),
        ]
        assert method.string_constants() == ["hello"]


class TestDexFile:
    def test_add_and_get_class(self):
        dex = DexFile()
        cls = dex.add_class(DexClass(name="com.a.B"))
        assert dex.get_class("com.a.B") is cls
        assert dex.get_class("com.a.C") is None

    def test_all_methods(self):
        dex = DexFile()
        cls = dex.add_class(DexClass(name="com.a.B"))
        cls.add_method(_method(name="one"))
        cls.add_method(_method(name="two"))
        assert len(dex.all_methods()) == 2

    def test_resolve_signature(self):
        dex = DexFile()
        cls = dex.add_class(DexClass(name="com.a.B"))
        method = cls.add_method(_method())
        assert dex.resolve("com.a.B->m(x)") is method

    def test_resolve_unknown(self):
        dex = DexFile()
        assert dex.resolve("com.x.Y->z()") is None
        assert dex.resolve("garbage") is None

    def test_class_names_sorted(self):
        dex = DexFile()
        dex.add_class(DexClass(name="com.b.B"))
        dex.add_class(DexClass(name="com.a.A"))
        assert dex.class_names() == ["com.a.A", "com.b.B"]

    def test_make_signature(self):
        assert make_signature("com.a.B", "m", ("x", "y")) == \
            "com.a.B->m(x,y)"
