"""Obfuscation transformation and limitation-measurement tests."""

import pytest

from repro.android.dex import DexClass
from repro.android.libs import detect_libraries
from repro.android.obfuscation import obfuscate
from repro.android.static_analysis import analyze_apk
from repro.semantics.resources import InfoType

from tests.android.appbuilder import (
    LOCATION_API,
    LOG_SINK,
    PKG,
    add_activity,
    add_class,
    const_string,
    empty_apk,
    invoke,
)


def _apk_with_lib():
    apk = empty_apk()
    add_activity(apk, instructions=[
        invoke(LOCATION_API, dest="v0"),
        invoke(f"{PKG}.H->save(value)", args=("v0",)),
    ])
    add_class(apk, f"{PKG}.H", [("save", ("value",), [
        const_string("v1", "TAG"),
        invoke(LOG_SINK, args=("v1", "value")),
    ])])
    apk.dex.add_class(DexClass(name="com.flurry.android.Agent"))
    return apk


class TestTransformation:
    def test_app_classes_renamed(self):
        apk = _apk_with_lib()
        mapping = obfuscate(apk)
        assert f"{PKG}.MainActivity" in mapping.renames
        assert f"{PKG}.MainActivity" not in apk.dex.classes

    def test_framework_targets_preserved(self):
        apk = _apk_with_lib()
        obfuscate(apk)
        targets = {
            ins.target
            for m in apk.dex.all_methods()
            for ins in m.invocations()
        }
        assert LOCATION_API in targets
        assert LOG_SINK in targets

    def test_internal_calls_rewritten_consistently(self):
        apk = _apk_with_lib()
        mapping = obfuscate(apk)
        helper_new = mapping.resolve(f"{PKG}.H")
        targets = {
            ins.target
            for m in apk.dex.all_methods()
            for ins in m.invocations()
        }
        assert f"{helper_new}->save(value)" in targets

    def test_manifest_components_renamed(self):
        apk = _apk_with_lib()
        mapping = obfuscate(apk)
        renamed = mapping.resolve(f"{PKG}.MainActivity")
        assert apk.manifest.component_by_name(renamed) is not None

    def test_keep_libs_preserves_lib_classes(self):
        apk = _apk_with_lib()
        obfuscate(apk, keep_libs=True)
        assert "com.flurry.android.Agent" in apk.dex.classes


class TestAnalysisImpact:
    def test_taint_survives_obfuscation(self):
        """Retention facts are name-independent."""
        apk = _apk_with_lib()
        obfuscate(apk)
        result = analyze_apk(apk)
        assert InfoType.LOCATION in result.retained_infos()

    def test_attribution_degrades(self):
        """App-attributed collection disappears: the renamed caller no
        longer shares the manifest package prefix (the limitation the
        module exists to measure)."""
        apk = _apk_with_lib()
        before = analyze_apk(_apk_with_lib())
        assert InfoType.LOCATION in before.collected_infos()
        obfuscate(apk)
        after = analyze_apk(apk)
        assert InfoType.LOCATION not in after.collected_infos()
        # the fact is still observed -- just attributed to "lib" code
        assert InfoType.LOCATION in after.lib_collected_infos()

    def test_lib_detection_fails_under_full_obfuscation(self):
        apk = _apk_with_lib()
        obfuscate(apk, keep_libs=False)
        assert detect_libraries(apk.dex) == []

    def test_lib_detection_survives_keep_rules(self):
        apk = _apk_with_lib()
        obfuscate(apk, keep_libs=True)
        assert [l.lib_id for l in detect_libraries(apk.dex)] == \
            ["flurry"]
