"""Additional APG / call-graph coverage."""

from repro.android.apg import build_apg
from repro.android.callgraph import build_call_graph

from tests.android.appbuilder import (
    LOCATION_API,
    PKG,
    add_activity,
    add_class,
    empty_apk,
    invoke,
)


class TestExternalInvocations:
    def test_externals_listed_with_callers(self):
        apk = empty_apk()
        add_activity(apk, instructions=[
            invoke(LOCATION_API, dest="v0"),
            invoke("android.util.Log->i(tag,msg)"),
        ])
        apg = build_apg(apk)
        externals = apg.external_invocations()
        assert LOCATION_API in externals
        assert externals[LOCATION_API] == [
            f"{PKG}.MainActivity->onCreate(bundle)"
        ]

    def test_internal_methods_not_listed(self):
        apk = empty_apk()
        add_activity(apk, instructions=[invoke(f"{PKG}.H->run()")])
        add_class(apk, f"{PKG}.H", [("run", (), [])])
        apg = build_apg(apk)
        assert f"{PKG}.H->run()" not in apg.external_invocations()


class TestNodePromotion:
    def test_callee_seen_before_definition_promoted(self):
        """A method invoked before its class is added must end up
        marked internal once the definition is in the dex."""
        apk = empty_apk()
        # caller added first, referencing a then-unknown class
        add_activity(apk, instructions=[invoke(f"{PKG}.Late->run()")])
        add_class(apk, f"{PKG}.Late", [("run", (), [])])
        graph = build_call_graph(apk.dex)
        assert graph.nodes[f"{PKG}.Late->run()"]["internal"]

    def test_truly_external_stays_external(self):
        apk = empty_apk()
        add_activity(apk, instructions=[
            invoke("android.util.Log->i(tag,msg)"),
        ])
        graph = build_call_graph(apk.dex)
        assert not graph.nodes["android.util.Log->i(tag,msg)"]["internal"]


class TestMethodLookup:
    def test_apg_method_resolution(self):
        apk = empty_apk()
        add_activity(apk)
        apg = build_apg(apk)
        method = apg.method(f"{PKG}.MainActivity->onCreate(bundle)")
        assert method is not None
        assert method.name == "onCreate"
        assert apg.method("missing.Class->m()") is None

    def test_reachable_from_unknown_source(self):
        apk = empty_apk()
        add_activity(apk)
        apg = build_apg(apk)
        assert apg.reachable_from({"not.in.graph->x()"}) == set()
