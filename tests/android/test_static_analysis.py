"""Static-analysis facade and lib-detection tests."""

from repro.android.libs import LIB_REGISTRY, detect_libraries, libs_by_category
from repro.android.packer import pack
from repro.android.static_analysis import analyze_apk
from repro.semantics.resources import InfoType

from tests.android.appbuilder import (
    DEVICE_API,
    LOCATION_API,
    LOG_SINK,
    PKG,
    add_activity,
    add_class,
    const_string,
    empty_apk,
    invoke,
)


def _full_apk():
    apk = empty_apk()
    add_activity(apk, instructions=[
        invoke(LOCATION_API, dest="v0"),
        invoke(f"{PKG}.H->save(value)", args=("v0",)),
    ])
    add_class(apk, f"{PKG}.H", [("save", ("value",), [
        const_string("v1", "TAG"),
        invoke(LOG_SINK, args=("v1", "value")),
    ])])
    # unreachable collection
    add_class(apk, f"{PKG}.Dead", [("never", (), [
        invoke(DEVICE_API, dest="v0"),
    ])])
    # a lib class collecting device id (lib-attributed)
    add_class(apk, "com.flurry.android.Agent", [("onClick", ("v",), [
        invoke(DEVICE_API, dest="v0"),
    ])])
    return apk


class TestLibRegistry:
    def test_81_libs(self):
        assert len(LIB_REGISTRY) == 81

    def test_category_counts(self):
        assert len(libs_by_category("ad")) == 52
        assert len(libs_by_category("social")) == 9
        assert len(libs_by_category("devtool")) == 20

    def test_detect_by_prefix(self):
        apk = _full_apk()
        libs = detect_libraries(apk.dex)
        assert [l.lib_id for l in libs] == ["flurry"]

    def test_no_libs_detected_in_clean_app(self):
        apk = empty_apk()
        add_activity(apk)
        assert detect_libraries(apk.dex) == []


class TestAnalyzeApk:
    def test_collected_infos_app_attributed(self):
        result = analyze_apk(_full_apk())
        assert result.collected_infos() == {InfoType.LOCATION}

    def test_lib_collection_separate(self):
        result = analyze_apk(_full_apk())
        # flurry's getDeviceId is reachable (onClick is a UI entry)
        assert InfoType.DEVICE_ID in result.lib_collected_infos()

    def test_retained_infos(self):
        result = analyze_apk(_full_apk())
        assert result.retained_infos() == {InfoType.LOCATION}

    def test_reachability_drops_dead_code(self):
        result = analyze_apk(_full_apk())
        assert InfoType.DEVICE_ID not in result.collected_infos()

    def test_reachability_off_includes_dead_code(self):
        result = analyze_apk(_full_apk(), use_reachability=False)
        assert InfoType.DEVICE_ID in result.collected_infos()

    def test_permission_gate(self):
        apk = _full_apk()
        apk.manifest.permissions.discard(
            "android.permission.ACCESS_FINE_LOCATION"
        )
        result = analyze_apk(apk)
        assert InfoType.LOCATION not in result.collected_infos()

    def test_packed_apps_unpacked(self):
        apk = pack(_full_apk())
        result = analyze_apk(apk)
        assert result.was_packed
        assert result.collected_infos() == {InfoType.LOCATION}

    def test_evidence_for(self):
        result = analyze_apk(_full_apk())
        evidence = result.evidence_for(InfoType.LOCATION)
        assert LOCATION_API in evidence

    def test_uri_analysis_toggle(self):
        from tests.android.appbuilder import QUERY_API, URI_PARSE
        apk = empty_apk()
        add_activity(apk, instructions=[
            const_string("v0", "content://contacts"),
            invoke(URI_PARSE, dest="v1", args=("v0",)),
            invoke(QUERY_API, dest="v2", args=("v1",)),
        ])
        with_uri = analyze_apk(apk, use_uri_analysis=True)
        assert InfoType.CONTACT in with_uri.collected_infos()
        without_uri = analyze_apk(apk, use_uri_analysis=False)
        assert InfoType.CONTACT not in without_uri.collected_infos()
