"""Call graph, callbacks (EdgeMiner), intents (IccTA), APG tests."""

from repro.android.apg import build_apg
from repro.android.callbacks import add_callback_edges
from repro.android.callgraph import build_call_graph, callees_of, callers_of
from repro.android.dex import DexClass, Instruction, Method
from repro.android.intents import resolve_icc_links
from repro.android.manifest import Component

from tests.android.appbuilder import (
    PKG,
    add_activity,
    add_class,
    empty_apk,
    invoke,
)


class TestCallGraph:
    def test_internal_edge(self):
        apk = empty_apk()
        add_activity(apk, instructions=[invoke(f"{PKG}.Helper->run()")])
        add_class(apk, f"{PKG}.Helper", [("run", (), [])])
        graph = build_call_graph(apk.dex)
        assert f"{PKG}.Helper->run()" in callees_of(
            graph, f"{PKG}.MainActivity->onCreate(bundle)"
        )

    def test_external_node_marked(self):
        apk = empty_apk()
        add_activity(apk, instructions=[
            invoke("android.util.Log->i(tag,msg)")
        ])
        graph = build_call_graph(apk.dex)
        assert not graph.nodes["android.util.Log->i(tag,msg)"]["internal"]

    def test_callers_of(self):
        apk = empty_apk()
        add_activity(apk, instructions=[invoke(f"{PKG}.H->run()")])
        add_class(apk, f"{PKG}.H", [("run", (), [])])
        graph = build_call_graph(apk.dex)
        assert callers_of(graph, f"{PKG}.H->run()") == [
            f"{PKG}.MainActivity->onCreate(bundle)"
        ]

    def test_unknown_node_queries_empty(self):
        apk = empty_apk()
        graph = build_call_graph(apk.dex)
        assert callers_of(graph, "x.Y->z()") == []
        assert callees_of(graph, "x.Y->z()") == []


class TestCallbacks:
    def _apk_with_listener(self):
        apk = empty_apk()
        listener = f"{PKG}.Listener"
        add_activity(apk, instructions=[
            Instruction(op="new-instance", dest="v0", literal=listener),
            invoke("android.view.View->setOnClickListener(listener)",
                   args=("v0",)),
        ])
        add_class(apk, listener, [("onClick", ("view",), [
            invoke("android.telephony.TelephonyManager->getDeviceId()",
                   dest="v1"),
        ])])
        return apk

    def test_registration_edge_added(self):
        apk = self._apk_with_listener()
        graph = build_call_graph(apk.dex)
        added = add_callback_edges(graph, apk.dex)
        assert added == 1
        assert graph.has_edge(
            f"{PKG}.MainActivity->onCreate(bundle)",
            f"{PKG}.Listener->onClick(view)",
        )

    def test_edge_kind(self):
        apk = self._apk_with_listener()
        graph = build_call_graph(apk.dex)
        add_callback_edges(graph, apk.dex)
        data = graph.get_edge_data(
            f"{PKG}.MainActivity->onCreate(bundle)",
            f"{PKG}.Listener->onClick(view)",
        )
        assert data["kind"] == "callback"

    def test_no_registration_no_edge(self):
        apk = empty_apk()
        add_activity(apk)
        graph = build_call_graph(apk.dex)
        assert add_callback_edges(graph, apk.dex) == 0


class TestIntents:
    def test_explicit_intent_resolved(self):
        apk = empty_apk()
        service = f"{PKG}.SyncService"
        add_activity(apk, instructions=[
            Instruction(op="invoke", dest="v0",
                        target="android.content.Intent-><init>(context,cls)",
                        literal=service),
            invoke("android.app.Activity->startService(intent)",
                   args=("v0",)),
        ])
        cls = add_class(apk, service, [("onStartCommand",
                                        ("intent", "flags", "id"), [])])
        cls.superclass = "android.app.Service"
        apk.manifest.add_component(Component(name=service, kind="service"))
        links = resolve_icc_links(apk.dex, apk.manifest)
        assert len(links) == 1
        assert links[0].target_component == service
        assert links[0].target_method == "onStartCommand"
        assert links[0].explicit

    def test_implicit_intent_resolved_via_filter(self):
        from repro.android.manifest import IntentFilter
        apk = empty_apk()
        receiver = f"{PKG}.Receiver"
        add_activity(apk, instructions=[
            Instruction(op="const-string", dest="v1",
                        literal="my.custom.ACTION"),
            Instruction(op="invoke", dest="v0",
                        target="android.content.Intent-><init>(action)",
                        args=("v1",)),
            invoke("android.app.Activity->sendBroadcast(intent)",
                   args=("v0",)),
        ])
        add_class(apk, receiver, [("onReceive", ("ctx", "intent"), [])])
        apk.manifest.add_component(Component(
            name=receiver, kind="receiver",
            intent_filters=[IntentFilter(actions=("my.custom.ACTION",))],
        ))
        links = resolve_icc_links(apk.dex, apk.manifest)
        assert len(links) == 1
        assert not links[0].explicit

    def test_unresolvable_intent_ignored(self):
        apk = empty_apk()
        add_activity(apk, instructions=[
            Instruction(op="invoke", dest="v0",
                        target="android.content.Intent-><init>(context,cls)",
                        literal="com.other.Missing"),
            invoke("android.app.Activity->startActivity(intent)",
                   args=("v0",)),
        ])
        assert resolve_icc_links(apk.dex, apk.manifest) == []


class TestApg:
    def test_apg_combines_edges(self):
        apk = empty_apk()
        listener = f"{PKG}.L"
        add_activity(apk, instructions=[
            Instruction(op="new-instance", dest="v0", literal=listener),
            invoke("android.view.View->setOnClickListener(listener)",
                   args=("v0",)),
        ])
        add_class(apk, listener, [("onClick", ("v",), [])])
        apg = build_apg(apk)
        assert apg.callback_edges == 1

    def test_call_sites_of(self):
        apk = empty_apk()
        add_activity(apk, instructions=[
            invoke("android.util.Log->i(tag,msg)"),
            invoke("android.util.Log->i(tag,msg)"),
        ])
        apg = build_apg(apk)
        sites = apg.call_sites_of("android.util.Log->i(tag,msg)")
        assert len(sites) == 2

    def test_reachable_from(self):
        apk = empty_apk()
        add_activity(apk, instructions=[invoke(f"{PKG}.H->run()")])
        add_class(apk, f"{PKG}.H", [("run", (), [])])
        apg = build_apg(apk)
        reached = apg.reachable_from(
            {f"{PKG}.MainActivity->onCreate(bundle)"}
        )
        assert f"{PKG}.H->run()" in reached
