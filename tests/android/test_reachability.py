"""Entry-point and reachability tests."""

from repro.android.apg import build_apg
from repro.android.entrypoints import entry_points
from repro.android.reachability import (
    is_reachable,
    reachable_call_sites,
    reachable_methods,
)

from tests.android.appbuilder import (
    LOCATION_API,
    PKG,
    add_activity,
    add_class,
    empty_apk,
    invoke,
)


def _apk_with_dead_code():
    apk = empty_apk()
    add_activity(apk, instructions=[invoke(f"{PKG}.H->run()")])
    add_class(apk, f"{PKG}.H", [("run", (), [
        invoke(LOCATION_API, dest="v0"),
    ])])
    add_class(apk, f"{PKG}.Dead", [("never", (), [
        invoke(LOCATION_API, dest="v0"),
    ])])
    return apk


class TestEntryPoints:
    def test_lifecycle_entry(self):
        apk = _apk_with_dead_code()
        entries = entry_points(apk)
        assert f"{PKG}.MainActivity->onCreate(bundle)" in entries

    def test_dead_method_not_entry(self):
        apk = _apk_with_dead_code()
        assert f"{PKG}.Dead->never()" not in entry_points(apk)

    def test_ui_callbacks_are_entries(self):
        apk = empty_apk()
        add_class(apk, f"{PKG}.L", [("onClick", ("v",), [])])
        assert f"{PKG}.L->onClick(v)" in entry_points(apk)

    def test_application_subclass_entry(self):
        from repro.android.dex import DexClass, Method
        apk = empty_apk()
        cls = apk.dex.add_class(DexClass(
            name=f"{PKG}.App", superclass="android.app.Application",
        ))
        cls.add_method(Method(class_name=f"{PKG}.App", name="onCreate"))
        assert f"{PKG}.App->onCreate()" in entry_points(apk)

    def test_provider_entry_functions(self):
        from repro.android.manifest import Component
        apk = empty_apk()
        add_class(apk, f"{PKG}.Provider", [("query", ("uri",), [])])
        apk.manifest.add_component(Component(name=f"{PKG}.Provider",
                                             kind="provider"))
        assert f"{PKG}.Provider->query(uri)" in entry_points(apk)


class TestReachability:
    def test_transitively_reachable(self):
        apg = build_apg(_apk_with_dead_code())
        reached = reachable_methods(apg)
        assert f"{PKG}.H->run()" in reached

    def test_dead_code_unreachable(self):
        apg = build_apg(_apk_with_dead_code())
        assert not is_reachable(apg, f"{PKG}.Dead->never()")

    def test_reachable_call_sites_filtered(self):
        apg = build_apg(_apk_with_dead_code())
        callers = reachable_call_sites(apg, LOCATION_API)
        assert f"{PKG}.H->run()" in callers
        assert f"{PKG}.Dead->never()" not in callers

    def test_cache_parameter(self):
        apg = build_apg(_apk_with_dead_code())
        cache = reachable_methods(apg)
        assert is_reachable(apg, f"{PKG}.H->run()", cache=cache)
