"""Packer / DexHunter unpacking tests."""

import pytest

from repro.android.apk import Apk, PackedApkError
from repro.android.dex import DexClass, DexFile, Instruction, Method
from repro.android.manifest import AndroidManifest
from repro.android.packer import is_packer_stub, pack, unpack


def _apk():
    dex = DexFile()
    cls = dex.add_class(DexClass(name="com.a.Main",
                                 superclass="android.app.Activity"))
    method = cls.add_method(Method(class_name="com.a.Main",
                                   name="onCreate", params=("b",)))
    method.instructions = [
        Instruction(op="const-string", dest="v0", literal="content://sms"),
        Instruction(op="invoke", dest="v1",
                    target="android.net.Uri->parse(uriString)",
                    args=("v0",)),
        Instruction(op="return"),
    ]
    return Apk(manifest=AndroidManifest(package="com.a"), dex=dex)


class TestPackUnpack:
    def test_roundtrip_preserves_dex(self):
        apk = _apk()
        original = apk.dex
        before_classes = set(original.classes)
        before_ins = [
            (i.op, i.dest, i.args, i.target, i.literal)
            for m in original.all_methods() for i in m.instructions
        ]
        pack(apk)
        assert apk.packed
        assert "com.a.Main" not in apk.dex.classes
        unpack(apk)
        assert not apk.packed
        assert set(apk.dex.classes) == before_classes
        after_ins = [
            (i.op, i.dest, i.args, i.target, i.literal)
            for m in apk.dex.all_methods() for i in m.instructions
        ]
        assert after_ins == before_ins

    def test_effective_dex_raises_when_packed(self):
        apk = pack(_apk())
        with pytest.raises(PackedApkError):
            apk.effective_dex()

    def test_pack_idempotent(self):
        apk = pack(_apk())
        payload = apk.packed_payload
        pack(apk)
        assert apk.packed_payload is payload

    def test_unpack_unpacked_is_noop(self):
        apk = _apk()
        assert unpack(apk) is apk

    def test_unpack_without_payload_raises(self):
        apk = _apk()
        apk.packed = True
        with pytest.raises(ValueError):
            unpack(apk)

    def test_stub_detection(self):
        apk = pack(_apk())
        assert is_packer_stub(apk.dex)
        assert not is_packer_stub(_apk().dex)
