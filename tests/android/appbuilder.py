"""Helpers for constructing small test apps."""

from repro.android.apk import Apk
from repro.android.dex import DexClass, DexFile, Instruction, Method
from repro.android.manifest import AndroidManifest, Component

PKG = "com.test.app"

LOCATION_API = "android.location.Location->getLatitude()"
DEVICE_API = "android.telephony.TelephonyManager->getDeviceId()"
QUERY_API = ("android.content.ContentResolver->query(uri,projection,"
             "selection,selectionArgs,sortOrder)")
URI_PARSE = "android.net.Uri->parse(uriString)"
LOG_SINK = "android.util.Log->i(tag,msg)"
NET_SINK = "java.net.HttpURLConnection->getOutputStream()"


def empty_apk(package=PKG, permissions=None):
    if permissions is None:
        permissions = {
            "android.permission.ACCESS_FINE_LOCATION",
            "android.permission.READ_PHONE_STATE",
            "android.permission.READ_CONTACTS",
        }
    manifest = AndroidManifest(package=package,
                               permissions=set(permissions))
    return Apk(manifest=manifest, dex=DexFile())


def add_activity(apk, name="MainActivity", instructions=None):
    class_name = f"{apk.package}.{name}"
    cls = apk.dex.add_class(DexClass(
        name=class_name, superclass="android.app.Activity",
    ))
    method = cls.add_method(Method(
        class_name=class_name, name="onCreate", params=("bundle",),
    ))
    method.instructions = list(instructions or []) + [
        Instruction(op="return")
    ]
    apk.manifest.add_component(Component(name=class_name,
                                         kind="activity"))
    return cls, method


def add_class(apk, name, methods=None):
    cls = apk.dex.add_class(DexClass(name=name))
    for method_name, params, instructions in (methods or []):
        method = cls.add_method(Method(
            class_name=name, name=method_name, params=params,
        ))
        method.instructions = list(instructions)
    return cls


def invoke(target, dest="", args=()):
    return Instruction(op="invoke", dest=dest, target=target,
                       args=tuple(args))


def const_string(dest, literal):
    return Instruction(op="const-string", dest=dest, literal=literal)
