"""Bundle/APK JSON serialization tests."""

import json

import pytest

from repro.android.packer import pack
from repro.android.serialization import (
    apk_from_dict,
    apk_to_dict,
    bundle_from_dict,
    bundle_to_dict,
    load_bundle,
    save_bundle,
)
from repro.core.checker import AppBundle

from tests.android.appbuilder import (
    LOCATION_API,
    PKG,
    add_activity,
    add_class,
    const_string,
    empty_apk,
    invoke,
)


def _apk():
    apk = empty_apk()
    add_activity(apk, instructions=[
        const_string("v0", "content://contacts"),
        invoke(LOCATION_API, dest="v1"),
    ])
    add_class(apk, f"{PKG}.H", [("run", ("x",), [])])
    return apk


def _bundle():
    return AppBundle(package=PKG, apk=_apk(),
                     policy="We collect your location.",
                     description="An app.", policy_is_html=False)


class TestApkRoundTrip:
    def test_classes_preserved(self):
        apk = _apk()
        restored = apk_from_dict(apk_to_dict(apk))
        assert set(restored.dex.classes) == set(apk.dex.classes)

    def test_instructions_preserved(self):
        apk = _apk()
        restored = apk_from_dict(apk_to_dict(apk))
        original = apk.dex.get_class(f"{PKG}.MainActivity") \
            .method("onCreate").instructions
        copied = restored.dex.get_class(f"{PKG}.MainActivity") \
            .method("onCreate").instructions
        assert copied == original

    def test_manifest_preserved(self):
        apk = _apk()
        restored = apk_from_dict(apk_to_dict(apk))
        assert restored.manifest.package == apk.manifest.package
        assert restored.manifest.permissions == apk.manifest.permissions
        assert len(restored.manifest.components) == len(
            apk.manifest.components
        )

    def test_packed_apk_rejected(self):
        apk = pack(_apk())
        with pytest.raises(ValueError):
            apk_to_dict(apk)

    def test_json_serializable(self):
        doc = apk_to_dict(_apk())
        json.dumps(doc)


class TestBundleRoundTrip:
    def test_fields_preserved(self):
        bundle = _bundle()
        restored = bundle_from_dict(bundle_to_dict(bundle))
        assert restored.package == bundle.package
        assert restored.policy == bundle.policy
        assert restored.description == bundle.description
        assert restored.policy_is_html == bundle.policy_is_html

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "bundle.json")
        save_bundle(_bundle(), path)
        restored = load_bundle(path)
        assert restored.package == PKG

    def test_analysis_equivalence(self):
        """A restored bundle produces the same report."""
        from repro.core.checker import PPChecker
        checker = PPChecker()
        bundle = _bundle()
        original = checker.check(bundle)
        restored = checker.check(
            bundle_from_dict(bundle_to_dict(_bundle()))
        )
        assert original.to_dict() == restored.to_dict()

    def test_report_to_dict_is_json_serializable(self):
        from repro.core.checker import PPChecker
        report = PPChecker().check(_bundle())
        json.dumps(report.to_dict())
