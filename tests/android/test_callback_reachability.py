"""EdgeMiner edges are load-bearing for reachability.

A Runnable's ``run()`` is not an entry point; it becomes reachable
only through the registration edge.  These tests fail if the callback
resolution is removed.
"""

from repro.android.apg import build_apg
from repro.android.dex import Instruction
from repro.android.dynamic import DynamicAnalyzer
from repro.android.entrypoints import entry_points
from repro.android.reachability import reachable_methods
from repro.android.static_analysis import analyze_apk
from repro.semantics.resources import InfoType

from tests.android.appbuilder import (
    LOCATION_API,
    PKG,
    add_activity,
    add_class,
    empty_apk,
    invoke,
)


def _posted_runnable_apk(register: bool):
    apk = empty_apk()
    instructions = []
    if register:
        instructions = [
            Instruction(op="new-instance", dest="v0",
                        literal=f"{PKG}.Worker"),
            invoke("android.os.Handler->post(runnable)", args=("v0",)),
        ]
    add_activity(apk, instructions=instructions)
    add_class(apk, f"{PKG}.Worker", [("run", (), [
        invoke(LOCATION_API, dest="v1"),
        Instruction(op="return"),
    ])])
    return apk


class TestRunIsNotAnEntry:
    def test_run_not_in_entry_points(self):
        apk = _posted_runnable_apk(register=True)
        assert f"{PKG}.Worker->run()" not in entry_points(apk)

    def test_onclick_still_an_entry(self):
        apk = empty_apk()
        add_class(apk, f"{PKG}.L", [("onClick", ("v",), [])])
        assert f"{PKG}.L->onClick(v)" in entry_points(apk)


class TestCallbackEdgeReachability:
    def test_registered_runnable_reachable(self):
        apk = _posted_runnable_apk(register=True)
        reached = reachable_methods(build_apg(apk))
        assert f"{PKG}.Worker->run()" in reached

    def test_unregistered_runnable_unreachable(self):
        apk = _posted_runnable_apk(register=False)
        reached = reachable_methods(build_apg(apk))
        assert f"{PKG}.Worker->run()" not in reached

    def test_collection_via_callback_detected(self):
        result = analyze_apk(_posted_runnable_apk(register=True))
        assert InfoType.LOCATION in result.collected_infos()

    def test_collection_without_registration_dropped(self):
        result = analyze_apk(_posted_runnable_apk(register=False))
        assert InfoType.LOCATION not in result.collected_infos()


class TestDynamicCallbackDispatch:
    def test_posted_runnable_executes(self):
        observation = DynamicAnalyzer(
            _posted_runnable_apk(register=True)
        ).run()
        assert InfoType.LOCATION in observation.collected_infos()
        assert f"{PKG}.Worker->run()" in observation.executed_methods

    def test_unregistered_runnable_never_executes(self):
        observation = DynamicAnalyzer(
            _posted_runnable_apk(register=False)
        ).run()
        assert InfoType.LOCATION not in observation.collected_infos()

    def test_static_and_dynamic_agree_on_callback_apps(self, mid_store):
        """The corpus apps whose collection hides behind post()."""
        from repro.android.dynamic import verify_static
        from repro.android.packer import unpack
        checked = 0
        for app in mid_store.apps[64:222]:
            if app.plan.index % 6 != 3 or not app.plan.collects:
                continue
            apk = app.bundle.apk
            if apk.packed:
                unpack(apk)
            static = analyze_apk(apk)
            report = verify_static(apk, static)
            assert report.static_is_sound, app.package
            assert set(app.plan.collects) <= report.confirmed_collected
            checked += 1
        assert checked > 5
