"""Dynamic-analysis simulator tests (Discussion extension)."""

import pytest

from repro.android.dynamic import (
    DynamicAnalyzer,
    Value,
    verify_static,
)
from repro.android.static_analysis import analyze_apk
from repro.semantics.resources import InfoType

from tests.android.appbuilder import (
    DEVICE_API,
    LOCATION_API,
    LOG_SINK,
    PKG,
    QUERY_API,
    URI_PARSE,
    add_activity,
    add_class,
    const_string,
    empty_apk,
    invoke,
)


def _leaky_apk():
    apk = empty_apk()
    add_activity(apk, instructions=[
        invoke(LOCATION_API, dest="v0"),
        invoke(f"{PKG}.H->save(value)", args=("v0",)),
    ])
    add_class(apk, f"{PKG}.H", [("save", ("value",), [
        const_string("v1", "TAG"),
        invoke(LOG_SINK, args=("v1", "value")),
    ])])
    return apk


class TestValue:
    def test_clean_value(self):
        assert not Value().tainted()

    def test_merge_unions_taint(self):
        a = Value(infos=frozenset({InfoType.LOCATION}))
        b = Value(infos=frozenset({InfoType.CONTACT}), uri="x")
        merged = a.merge(b)
        assert merged.infos == {InfoType.LOCATION, InfoType.CONTACT}
        assert merged.uri == "x"


class TestInterpreter:
    def test_api_call_recorded(self):
        observation = DynamicAnalyzer(_leaky_apk()).run()
        assert observation.collected_infos() == {InfoType.LOCATION}

    def test_sink_write_recorded(self):
        observation = DynamicAnalyzer(_leaky_apk()).run()
        assert observation.retained_infos() == {InfoType.LOCATION}
        assert observation.sink_writes[0].kind == "log"

    def test_executed_methods_tracked(self):
        observation = DynamicAnalyzer(_leaky_apk()).run()
        assert f"{PKG}.H->save(value)" in observation.executed_methods

    def test_dead_code_never_executes(self):
        apk = _leaky_apk()
        add_class(apk, f"{PKG}.Dead", [("never", (), [
            invoke(DEVICE_API, dest="v0"),
        ])])
        observation = DynamicAnalyzer(apk).run()
        assert InfoType.DEVICE_ID not in observation.collected_infos()

    def test_uri_query_is_source(self):
        apk = empty_apk()
        add_activity(apk, instructions=[
            const_string("v0", "content://contacts"),
            invoke(URI_PARSE, dest="v1", args=("v0",)),
            invoke(QUERY_API, dest="v2", args=("v1",)),
            const_string("v3", "TAG"),
            invoke(LOG_SINK, args=("v3", "v2")),
        ])
        observation = DynamicAnalyzer(apk).run()
        assert observation.collected_infos() == {InfoType.CONTACT}
        assert observation.retained_infos() == {InfoType.CONTACT}

    def test_field_flow(self):
        from repro.android.dex import Instruction
        apk = empty_apk()
        add_activity(apk, instructions=[
            invoke(DEVICE_API, dest="v0"),
            Instruction(op="iput", args=("v0",), literal="F.id"),
        ])
        add_class(apk, f"{PKG}.L", [("onClick", ("v",), [
            Instruction(op="iget", dest="v1", literal="F.id"),
            const_string("v2", "TAG"),
            invoke(LOG_SINK, args=("v2", "v1")),
        ])])
        observation = DynamicAnalyzer(apk).run()
        assert InfoType.DEVICE_ID in observation.retained_infos()

    def test_recursion_bounded(self):
        apk = empty_apk()
        add_activity(apk, instructions=[invoke(f"{PKG}.R->spin()")])
        add_class(apk, f"{PKG}.R", [("spin", (), [
            invoke(f"{PKG}.R->spin()"),
        ])])
        observation = DynamicAnalyzer(apk, max_depth=5).run()
        assert observation.truncated

    def test_step_budget(self):
        observation = DynamicAnalyzer(_leaky_apk(), max_steps=1).run()
        assert observation.truncated

    def test_clean_app_observes_nothing(self):
        apk = empty_apk()
        add_activity(apk)
        observation = DynamicAnalyzer(apk).run()
        assert observation.collected_infos() == set()
        assert observation.retained_infos() == set()


class TestVerification:
    def test_confirmed_facts(self):
        apk = _leaky_apk()
        static = analyze_apk(apk)
        report = verify_static(apk, static)
        assert InfoType.LOCATION in report.confirmed_collected
        assert InfoType.LOCATION in report.confirmed_retained
        assert report.static_is_sound

    def test_unconfirmed_when_static_over_approximates(self):
        # without reachability filtering, static flags dead code that
        # the concrete run never touches
        apk = _leaky_apk()
        add_class(apk, f"{PKG}.Dead", [("never", (), [
            invoke(DEVICE_API, dest="v0"),
        ])])
        static = analyze_apk(apk, use_reachability=False)
        report = verify_static(apk, static)
        assert InfoType.DEVICE_ID in report.unconfirmed_collected
        assert report.static_is_sound

    def test_verification_over_corpus_sample(self, mid_store):
        """Static and dynamic agree on the generated apps."""
        from repro.android.packer import unpack
        for app in mid_store.apps[64:84]:
            apk = app.bundle.apk
            if apk.packed:
                unpack(apk)
            static = analyze_apk(apk)
            report = verify_static(apk, static)
            assert report.static_is_sound, app.package
            assert set(app.plan.collects) <= (
                report.confirmed_collected
            ), app.package
