"""Permission-usage audit tests."""

from repro.android.permissions import (
    DANGEROUS_PERMISSIONS,
    audit_permissions,
)

from tests.android.appbuilder import (
    LOCATION_API,
    PKG,
    QUERY_API,
    URI_PARSE,
    add_activity,
    add_class,
    const_string,
    empty_apk,
    invoke,
)


class TestAudit:
    def test_used_permission_not_over(self):
        apk = empty_apk(permissions={
            "android.permission.ACCESS_FINE_LOCATION",
        })
        add_activity(apk, instructions=[invoke(LOCATION_API, dest="v0")])
        audit = audit_permissions(apk)
        assert "android.permission.ACCESS_FINE_LOCATION" in audit.used
        assert audit.over_permissions == set()

    def test_unused_dangerous_permission_flagged(self):
        apk = empty_apk(permissions={
            "android.permission.READ_CONTACTS",
            "android.permission.INTERNET",
        })
        add_activity(apk)
        audit = audit_permissions(apk)
        assert audit.over_permissions == {
            "android.permission.READ_CONTACTS"
        }

    def test_internet_not_dangerous(self):
        apk = empty_apk(permissions={"android.permission.INTERNET"})
        add_activity(apk)
        assert audit_permissions(apk).over_permissions == set()

    def test_under_permission_detected(self):
        apk = empty_apk(permissions=set())
        add_activity(apk, instructions=[invoke(LOCATION_API, dest="v0")])
        audit = audit_permissions(apk)
        assert "android.permission.ACCESS_FINE_LOCATION" in \
            audit.under_permissions

    def test_uri_usage_counts(self):
        apk = empty_apk(permissions={
            "android.permission.READ_CONTACTS",
        })
        add_activity(apk, instructions=[
            const_string("v0", "content://contacts"),
            invoke(URI_PARSE, dest="v1", args=("v0",)),
            invoke(QUERY_API, dest="v2", args=("v1",)),
        ])
        audit = audit_permissions(apk)
        assert "android.permission.READ_CONTACTS" in audit.used
        assert audit.over_permissions == set()

    def test_dead_code_usage_does_not_count(self):
        apk = empty_apk(permissions={
            "android.permission.ACCESS_FINE_LOCATION",
        })
        add_activity(apk)
        add_class(apk, f"{PKG}.Dead", [("never", (), [
            invoke(LOCATION_API, dest="v0"),
        ])])
        audit = audit_permissions(apk)
        assert audit.over_permissions == {
            "android.permission.ACCESS_FINE_LOCATION"
        }

    def test_dangerous_set_contents(self):
        assert "android.permission.READ_CONTACTS" in \
            DANGEROUS_PERMISSIONS
        assert "android.permission.INTERNET" not in \
            DANGEROUS_PERMISSIONS
