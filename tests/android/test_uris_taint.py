"""Content-provider URI analysis and taint-path tests."""

from repro.android.taint import build_flow_graph, find_taint_paths
from repro.android.uris import find_uri_accesses
from repro.semantics.resources import InfoType

from tests.android.appbuilder import (
    DEVICE_API,
    LOCATION_API,
    LOG_SINK,
    NET_SINK,
    PKG,
    QUERY_API,
    URI_PARSE,
    add_activity,
    add_class,
    const_string,
    empty_apk,
    invoke,
)


class TestUriAnalysis:
    def test_direct_query(self):
        apk = empty_apk()
        add_activity(apk, instructions=[
            const_string("v0", "content://contacts"),
            invoke(URI_PARSE, dest="v1", args=("v0",)),
            invoke(QUERY_API, dest="v2", args=("v1",)),
        ])
        accesses = find_uri_accesses(apk.dex)
        assert len(accesses) == 1
        assert accesses[0].info is InfoType.CONTACT
        assert not accesses[0].via_field

    def test_uri_field_query(self):
        field = ("<android.provider.ContactsContract$CommonDataKinds"
                 "$Phone: android.net.Uri CONTENT_URI>")
        apk = empty_apk()
        add_activity(apk, instructions=[
            {"op": "iget", "dest": "v0", "literal": field},
            invoke(QUERY_API, dest="v1", args=("v0",)),
        ][0:0] + [
            # iget via raw Instruction
        ])
        from repro.android.dex import Instruction
        method = apk.dex.get_class(f"{PKG}.MainActivity").method("onCreate")
        method.instructions = [
            Instruction(op="iget", dest="v0", literal=field),
            Instruction(op="invoke", dest="v1", target=QUERY_API,
                        args=("v0",)),
            Instruction(op="return"),
        ]
        accesses = find_uri_accesses(apk.dex)
        assert len(accesses) == 1
        assert accesses[0].via_field

    def test_register_move_tracked(self):
        from repro.android.dex import Instruction
        apk = empty_apk()
        add_activity(apk, instructions=[
            const_string("v0", "content://sms"),
            invoke(URI_PARSE, dest="v1", args=("v0",)),
            Instruction(op="move", dest="v5", args=("v1",)),
            invoke(QUERY_API, dest="v2", args=("v5",)),
        ])
        accesses = find_uri_accesses(apk.dex)
        assert accesses and accesses[0].info is InfoType.SMS

    def test_interprocedural_uri_argument(self):
        apk = empty_apk()
        add_activity(apk, instructions=[
            const_string("v0", "content://com.android.calendar"),
            invoke(f"{PKG}.H->query(uri)", args=("v0",)),
        ])
        add_class(apk, f"{PKG}.H", [("query", ("uri",), [
            invoke(URI_PARSE, dest="v1", args=("uri",)),
            invoke(QUERY_API, dest="v2", args=("v1",)),
        ])])
        accesses = find_uri_accesses(apk.dex)
        assert any(a.info is InfoType.CALENDAR for a in accesses)

    def test_non_sensitive_uri_ignored(self):
        apk = empty_apk()
        add_activity(apk, instructions=[
            const_string("v0", "content://com.example.custom"),
            invoke(URI_PARSE, dest="v1", args=("v0",)),
            invoke(QUERY_API, dest="v2", args=("v1",)),
        ])
        assert find_uri_accesses(apk.dex) == []

    def test_no_queries_no_accesses(self):
        apk = empty_apk()
        add_activity(apk)
        assert find_uri_accesses(apk.dex) == []


class TestTaint:
    def test_direct_source_to_sink(self):
        apk = empty_apk()
        add_activity(apk, instructions=[
            invoke(LOCATION_API, dest="v0"),
            const_string("v1", "TAG"),
            invoke(LOG_SINK, args=("v1", "v0")),
        ])
        paths = find_taint_paths(apk.dex)
        assert len(paths) == 1
        assert paths[0].info is InfoType.LOCATION
        assert paths[0].sink_kind == "log"

    def test_interprocedural_path(self):
        apk = empty_apk()
        add_activity(apk, instructions=[
            invoke(DEVICE_API, dest="v0"),
            invoke(f"{PKG}.H->save(value)", args=("v0",)),
        ])
        add_class(apk, f"{PKG}.H", [("save", ("value",), [
            const_string("v1", "TAG"),
            invoke(LOG_SINK, args=("v1", "value")),
        ])])
        paths = find_taint_paths(apk.dex)
        assert len(paths) == 1
        assert paths[0].source_method.endswith("onCreate(bundle)")
        assert paths[0].sink_method.endswith("save(value)")

    def test_return_value_propagation(self):
        from repro.android.dex import Instruction
        apk = empty_apk()
        add_activity(apk, instructions=[
            invoke(f"{PKG}.H->fetch()", dest="v0"),
            const_string("v1", "TAG"),
            invoke(LOG_SINK, args=("v1", "v0")),
        ])
        add_class(apk, f"{PKG}.H", [("fetch", (), [
            invoke(LOCATION_API, dest="v2"),
            Instruction(op="return", args=("v2",)),
        ])])
        paths = find_taint_paths(apk.dex)
        assert len(paths) == 1
        assert paths[0].info is InfoType.LOCATION

    def test_field_store_load_propagation(self):
        from repro.android.dex import Instruction
        apk = empty_apk()
        add_activity(apk, instructions=[
            invoke(DEVICE_API, dest="v0"),
            Instruction(op="iput", args=("v0",), literal=f"{PKG}.F.id"),
        ])
        add_class(apk, f"{PKG}.H", [("leak", (), [
            Instruction(op="iget", dest="v1", literal=f"{PKG}.F.id"),
            invoke(NET_SINK, args=("v1",)),
        ])])
        paths = find_taint_paths(apk.dex)
        assert len(paths) == 1
        assert paths[0].sink_kind == "network"

    def test_external_call_taints_result(self):
        apk = empty_apk()
        add_activity(apk, instructions=[
            invoke(LOCATION_API, dest="v0"),
            invoke("java.lang.StringBuilder->append(str)", dest="v1",
                   args=("v0",)),
            const_string("v2", "TAG"),
            invoke(LOG_SINK, args=("v2", "v1")),
        ])
        assert len(find_taint_paths(apk.dex)) == 1

    def test_no_path_without_flow(self):
        apk = empty_apk()
        add_activity(apk, instructions=[
            invoke(LOCATION_API, dest="v0"),
            const_string("v1", "TAG"),
            const_string("v2", "static"),
            invoke(LOG_SINK, args=("v1", "v2")),
        ])
        assert find_taint_paths(apk.dex) == []

    def test_query_result_is_source(self):
        apk = empty_apk()
        add_activity(apk, instructions=[
            const_string("v0", "content://contacts"),
            invoke(URI_PARSE, dest="v1", args=("v0",)),
            invoke(QUERY_API, dest="v2", args=("v1",)),
            const_string("v3", "TAG"),
            invoke(LOG_SINK, args=("v3", "v2")),
        ])
        paths = find_taint_paths(apk.dex)
        assert len(paths) == 1
        assert paths[0].info is InfoType.CONTACT

    def test_flow_graph_move_edge(self):
        from repro.android.dex import Instruction
        apk = empty_apk()
        add_activity(apk, instructions=[
            Instruction(op="move", dest="v1", args=("v0",)),
        ])
        flow = build_flow_graph(apk.dex)
        sig = f"{PKG}.MainActivity->onCreate(bundle)"
        assert flow.has_edge((sig, "v0"), (sig, "v1"))

    def test_path_hops_reported(self):
        apk = empty_apk()
        add_activity(apk, instructions=[
            invoke(LOCATION_API, dest="v0"),
            const_string("v1", "TAG"),
            invoke(LOG_SINK, args=("v1", "v0")),
        ])
        path = find_taint_paths(apk.dex)[0]
        assert path.hops
        assert "describe" not in path.describe() or True
        assert "location" in path.describe()
