"""Manifest model tests."""

import pytest

from repro.android.manifest import AndroidManifest, Component, IntentFilter


class TestComponent:
    def test_valid_kinds(self):
        for kind in ("activity", "service", "receiver", "provider"):
            Component(name="a.B", kind=kind)

    def test_invalid_kind_raises(self):
        with pytest.raises(ValueError):
            Component(name="a.B", kind="widget")


class TestIntentFilter:
    def test_action_match(self):
        f = IntentFilter(actions=("android.intent.action.VIEW",))
        assert f.matches("android.intent.action.VIEW")
        assert not f.matches("android.intent.action.SEND")

    def test_category_match(self):
        f = IntentFilter(actions=("A",), categories=("C",))
        assert f.matches("A", "C")
        assert not f.matches("A", "D")


class TestManifest:
    def test_permissions(self):
        manifest = AndroidManifest(
            package="com.a",
            permissions={"android.permission.CAMERA"},
        )
        assert manifest.has_permission("android.permission.CAMERA")
        assert not manifest.has_permission("android.permission.INTERNET")

    def test_components_of_kind(self):
        manifest = AndroidManifest(package="com.a")
        manifest.add_component(Component(name="com.a.M", kind="activity"))
        manifest.add_component(Component(name="com.a.S", kind="service"))
        assert len(manifest.components_of_kind("activity")) == 1
        assert len(manifest.components_of_kind("provider")) == 0

    def test_component_by_name(self):
        manifest = AndroidManifest(package="com.a")
        c = manifest.add_component(Component(name="com.a.M",
                                             kind="activity"))
        assert manifest.component_by_name("com.a.M") is c
        assert manifest.component_by_name("com.a.X") is None

    def test_resolve_implicit_intent(self):
        manifest = AndroidManifest(package="com.a")
        manifest.add_component(Component(
            name="com.a.R", kind="receiver",
            intent_filters=[IntentFilter(actions=("my.ACTION",))],
        ))
        assert [c.name for c in
                manifest.resolve_implicit_intent("my.ACTION")] == ["com.a.R"]
        assert manifest.resolve_implicit_intent("other.ACTION") == []
