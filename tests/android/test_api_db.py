"""Sensitive API / URI / sink database tests (the paper's counts)."""

import pytest

from repro.android.api_db import (
    API_PERMISSIONS,
    CONTENT_URIS,
    QUERY_APIS,
    SENSITIVE_APIS,
    SINK_APIS,
    URI_FIELDS,
    SinkKind,
    info_for_api,
    info_for_uri,
    info_for_uri_field,
    is_sink,
    is_source,
    permission_for_uri,
)
from repro.semantics.resources import InfoType


class TestPaperCounts:
    def test_68_sensitive_apis(self):
        assert len(SENSITIVE_APIS) == 68

    def test_12_uri_strings(self):
        assert len(CONTENT_URIS) == 12

    def test_615_uri_fields(self):
        assert len(URI_FIELDS) == 615

    def test_coverage_of_paper_info_kinds(self):
        covered = set(SENSITIVE_APIS.values()) | set(CONTENT_URIS.values())
        for info in (InfoType.DEVICE_ID, InfoType.IP_ADDRESS,
                     InfoType.COOKIE, InfoType.LOCATION,
                     InfoType.ACCOUNT, InfoType.CONTACT,
                     InfoType.CALENDAR, InfoType.PHONE_NUMBER,
                     InfoType.CAMERA, InfoType.AUDIO, InfoType.APP_LIST):
            assert info in covered


class TestLookups:
    def test_get_device_id_maps(self):
        assert info_for_api(
            "android.telephony.TelephonyManager->getDeviceId()"
        ) is InfoType.DEVICE_ID

    def test_get_latitude_maps(self):
        assert info_for_api(
            "android.location.Location->getLatitude()"
        ) is InfoType.LOCATION

    def test_unknown_api_none(self):
        assert info_for_api("com.x.Y->z()") is None

    def test_uri_prefix_match(self):
        assert info_for_uri("content://contacts") is InfoType.CONTACT
        assert info_for_uri(
            "content://contacts/people/1"
        ) is InfoType.CONTACT

    def test_uri_longest_prefix_wins(self):
        assert info_for_uri(
            "content://com.android.contacts/data"
        ) is InfoType.CONTACT

    def test_unknown_uri_none(self):
        assert info_for_uri("content://com.example.custom") is None

    def test_uri_field_lookup(self):
        field = ("<android.provider.ContactsContract$CommonDataKinds"
                 "$Phone: android.net.Uri CONTENT_URI>")
        assert info_for_uri_field(field) is InfoType.CONTACT

    def test_uri_permission(self):
        assert permission_for_uri("content://sms") == \
            "android.permission.READ_SMS"

    def test_every_uri_field_has_info(self):
        for name, (permission, info) in URI_FIELDS.items():
            assert isinstance(info, InfoType)
            assert name.startswith("<android.provider.")


class TestSinksAndSources:
    def test_log_is_sink(self):
        assert is_sink("android.util.Log->d(tag,msg)")
        assert SINK_APIS["android.util.Log->d(tag,msg)"] == SinkKind.LOG

    def test_file_network_sms_bluetooth_kinds_present(self):
        kinds = set(SINK_APIS.values())
        assert {SinkKind.LOG, SinkKind.FILE, SinkKind.NETWORK,
                SinkKind.SMS, SinkKind.BLUETOOTH} <= kinds

    def test_sources_are_sensitive_apis(self):
        assert is_source("android.location.Location->getLatitude()")
        assert not is_source("android.util.Log->d(tag,msg)")

    def test_sinks_and_sources_disjoint(self):
        assert not (set(SINK_APIS) & set(SENSITIVE_APIS))

    def test_query_apis_not_sources_directly(self):
        for api in QUERY_APIS:
            assert api not in SINK_APIS

    def test_location_apis_need_location_permission(self):
        assert API_PERMISSIONS[
            "android.location.Location->getLatitude()"
        ] == "android.permission.ACCESS_FINE_LOCATION"

    def test_ip_address_needs_no_permission(self):
        assert "android.net.wifi.WifiInfo->getIpAddress()" \
            not in API_PERMISSIONS
