"""Artifact stores, cache keys, and counters."""

import threading

import pytest

from repro.hashing import canonical_json, fingerprint, fingerprint_text
from repro.pipeline.artifacts import (
    MISS,
    DiskStore,
    MemoryStore,
    PipelineStats,
    TieredStore,
    build_store,
)
from repro.pipeline import stages


class TestHashing:
    def test_fingerprint_is_stable_and_order_insensitive(self):
        assert fingerprint({"a": 1, "b": 2}) == \
            fingerprint({"b": 2, "a": 1})
        assert fingerprint([1, 2]) != fingerprint([2, 1])

    def test_tuple_and_list_share_a_digest(self):
        assert fingerprint((1, "x")) == fingerprint([1, "x"])

    def test_canonical_json_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == \
            '{"a":[1,2],"b":1}'

    def test_text_fingerprint_differs_from_json(self):
        assert fingerprint_text("abc") != fingerprint("abc")


class TestMemoryStore:
    def test_miss_then_hit(self):
        store = MemoryStore()
        assert store.get("s", "d") is MISS
        store.put("s", "d", 42)
        assert store.get("s", "d") == 42

    def test_none_artifact_is_not_a_miss(self):
        store = MemoryStore()
        store.put("s", "d", None)
        assert store.get("s", "d") is None

    def test_lru_eviction(self):
        store = MemoryStore(max_entries=2)
        store.put("s", "a", 1)
        store.put("s", "b", 2)
        store.get("s", "a")          # refresh a
        store.put("s", "c", 3)       # evicts b
        assert store.get("s", "a") == 1
        assert store.get("s", "b") is MISS
        assert store.get("s", "c") == 3

    def test_thread_safety_under_contention(self):
        store = MemoryStore(max_entries=64)

        def worker(tag):
            for i in range(200):
                store.put("s", f"{tag}-{i}", i)
                store.get("s", f"{tag}-{i % 7}")

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(store) <= 64


class TestDiskStore:
    def test_roundtrip_with_codec(self, tmp_path, analyzer):
        store = DiskStore(str(tmp_path))
        analysis = analyzer.analyze(
            "We collect your location. We do not share your contacts."
        )
        store.put(stages.POLICY_ANALYSIS, "d1", analysis)
        loaded = store.get(stages.POLICY_ANALYSIS, "d1")
        assert loaded is not analysis
        assert loaded.to_dict() == analysis.to_dict()

    def test_missing_and_corrupt_documents_are_misses(self, tmp_path):
        store = DiskStore(str(tmp_path))
        assert store.get(stages.DETECT, "nope") is MISS
        bad = tmp_path / stages.DETECT
        bad.mkdir()
        (bad / "broken.json").write_text("{not json")
        assert store.get(stages.DETECT, "broken") is MISS

    def test_wrong_schema_document_is_a_miss(self, tmp_path):
        # valid JSON whose shape the codec rejects: recompute, don't
        # crash the stage
        store = DiskStore(str(tmp_path))
        bad = tmp_path / stages.POLICY_ANALYSIS
        bad.mkdir()
        (bad / "odd.json").write_text('[1, 2, 3]')
        assert store.get(stages.POLICY_ANALYSIS, "odd") is MISS

    def test_none_lib_analysis_roundtrips(self, tmp_path):
        store = DiskStore(str(tmp_path))
        store.put(stages.LIB_POLICY_ANALYSIS, "d", None)
        assert store.get(stages.LIB_POLICY_ANALYSIS, "d") is None

    def test_permission_set_roundtrips_as_set(self, tmp_path):
        store = DiskStore(str(tmp_path))
        perms = {"android.permission.CAMERA",
                 "android.permission.READ_CONTACTS"}
        store.put(stages.DESCRIPTION_PERMISSIONS, "d", perms)
        assert store.get(stages.DESCRIPTION_PERMISSIONS, "d") == perms

    def test_durable_put_fsyncs_file_and_directory(self, tmp_path,
                                                   monkeypatch):
        import os as os_module

        synced = []
        real_fsync = os_module.fsync

        def spy(fd):
            synced.append(fd)
            real_fsync(fd)

        monkeypatch.setattr("os.fsync", spy)
        DiskStore(str(tmp_path), codecs={}).put(
            stages.DETECT, "d", {"k": 1})
        # once for the temp file before the rename, once for the
        # stage directory after it
        assert len(synced) == 2
        assert (tmp_path / stages.DETECT / "d.json").exists()

    def test_non_durable_put_skips_fsync(self, tmp_path,
                                         monkeypatch):
        synced = []
        monkeypatch.setattr("os.fsync", synced.append)
        store = DiskStore(str(tmp_path), codecs={}, durable=False)
        store.put(stages.DETECT, "d", {"k": 1})
        assert synced == []
        assert store.get(stages.DETECT, "d") == {"k": 1}


class TestTieredStore:
    def test_disk_hit_backfills_memory(self, tmp_path):
        disk = DiskStore(str(tmp_path))
        disk.put(stages.DESCRIPTION_PERMISSIONS, "d", {"p"})
        memory = MemoryStore()
        tiered = TieredStore(memory, disk)
        assert tiered.get(stages.DESCRIPTION_PERMISSIONS, "d") == {"p"}
        assert memory.get(stages.DESCRIPTION_PERMISSIONS, "d") == {"p"}

    def test_build_store_variants(self, tmp_path):
        assert isinstance(build_store(), MemoryStore)
        assert isinstance(build_store(cache_dir=str(tmp_path)),
                          TieredStore)


class TestPipelineStats:
    def test_counters_and_hit_rate(self):
        stats = PipelineStats()
        stats.record("s", hit=False, seconds=0.5)
        stats.record("s", hit=True, seconds=0.25)
        row = stats.stage("s")
        assert row.executions == 1
        assert row.cache_hits == 1
        assert row.requests == 2
        assert row.hit_rate == pytest.approx(0.5)
        assert row.seconds == pytest.approx(0.75)

    def test_failures_counter(self):
        stats = PipelineStats()
        stats.record("s", hit=False, seconds=0.1, failed=True)
        stats.record("s", hit=False, seconds=0.2)
        row = stats.stage("s")
        assert row.failures == 1
        assert row.executions == 1
        assert row.requests == 2
        assert stats.to_dict()["s"]["failures"] == 1

    def test_snapshot_is_a_copy(self):
        stats = PipelineStats()
        stats.record("s", hit=False, seconds=0.0)
        snap = stats.snapshot()
        stats.record("s", hit=False, seconds=0.0)
        assert snap["s"]["executions"] == 1
        assert stats.snapshot()["s"]["executions"] == 2


class TestCacheKeys:
    def test_policy_key_separates_html_and_config(self):
        base = stages.policy_key("fp", "text", False)
        assert stages.policy_key("fp", "text", True) != base
        assert stages.policy_key("other", "text", False) != base
        assert stages.policy_key("fp", "other", False) != base
        assert stages.policy_key("fp", "text", False) == base

    def test_lib_key_distinguishes_missing_policy_from_empty(self):
        with_text = stages.lib_policy_key("fp", "unity3d", "")
        without = stages.lib_policy_key("fp", "unity3d", None)
        assert with_text != without

    def test_stage_namespaces_never_collide(self):
        keys = {
            stages.policy_key("fp", "x", False),
            stages.description_key("fp", "x"),
            stages.lib_policy_key("fp", "x", None),
        }
        assert len(keys) == 3
