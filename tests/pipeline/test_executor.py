"""Batch executor ordering and fan-out."""

import threading
import time

import pytest

from repro.pipeline.executor import BatchExecutor


class TestBatchExecutor:
    def test_serial_default(self):
        assert BatchExecutor().map(lambda x: x * 2, [1, 2, 3]) == \
            [2, 4, 6]

    def test_empty_input(self):
        assert BatchExecutor(workers=4).map(lambda x: x, []) == []

    def test_result_order_matches_input_order(self):
        def slow_for_small(x):
            time.sleep(0.02 if x < 2 else 0.0)
            return x

        result = BatchExecutor(workers=4).map(slow_for_small,
                                              list(range(8)))
        assert result == list(range(8))

    def test_actually_fans_out(self):
        seen = set()
        barrier = threading.Barrier(2, timeout=5)

        def rendezvous(x):
            seen.add(threading.get_ident())
            barrier.wait()
            return x

        BatchExecutor(workers=2).map(rendezvous, [1, 2])
        assert len(seen) == 2

    def test_workers_capped_by_items(self):
        # 100 workers over 2 items must not explode
        assert BatchExecutor(workers=100).map(lambda x: x, [1, 2]) == \
            [1, 2]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            BatchExecutor(kind="fiber")
