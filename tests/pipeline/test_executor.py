"""Batch executor ordering, fan-out, and failure attribution."""

import threading
import time

import pytest

from repro.pipeline.executor import BatchExecutor, BatchItemError


def _reject_three(x):
    """Module-level so process pools can pickle it."""
    if x == 3:
        raise RuntimeError("three is right out")
    return x


class TestBatchExecutor:
    def test_serial_default(self):
        assert BatchExecutor().map(lambda x: x * 2, [1, 2, 3]) == \
            [2, 4, 6]

    def test_empty_input(self):
        assert BatchExecutor(workers=4).map(lambda x: x, []) == []

    def test_result_order_matches_input_order(self):
        def slow_for_small(x):
            time.sleep(0.02 if x < 2 else 0.0)
            return x

        result = BatchExecutor(workers=4).map(slow_for_small,
                                              list(range(8)))
        assert result == list(range(8))

    def test_actually_fans_out(self):
        seen = set()
        barrier = threading.Barrier(2, timeout=5)

        def rendezvous(x):
            seen.add(threading.get_ident())
            barrier.wait()
            return x

        BatchExecutor(workers=2).map(rendezvous, [1, 2])
        assert len(seen) == 2

    def test_workers_capped_by_items(self):
        # 100 workers over 2 items must not explode
        assert BatchExecutor(workers=100).map(lambda x: x, [1, 2]) == \
            [1, 2]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            BatchExecutor(kind="fiber")


class TestFailureAttribution:
    """A worker exception names the input item that caused it,
    whatever the executor kind."""

    @pytest.mark.parametrize("executor", [
        BatchExecutor(),
        BatchExecutor(workers=2),
        BatchExecutor(workers=2, kind="process"),
    ], ids=["serial", "thread", "process"])
    def test_failure_carries_index_and_item(self, executor):
        with pytest.raises(BatchItemError) as excinfo:
            executor.map(_reject_three, [0, 1, 2, 3, 4])
        assert excinfo.value.index == 3
        assert excinfo.value.item == 3
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        assert "item 3" in str(excinfo.value)

    def test_error_message_truncates_huge_items(self):
        huge = {"k": list(range(10_000))}
        with pytest.raises(BatchItemError) as excinfo:
            BatchExecutor().map(lambda _: 1 / 0, [huge])
        assert len(str(excinfo.value)) < 500
        assert excinfo.value.item is huge
