"""Stage-artifact JSON roundtrips (the disk-cache format)."""

import json

from repro.android.static_analysis import (
    StaticAnalysisResult,
    analyze_apk,
)
from repro.core.report import AppReport
from repro.policy.model import PolicyAnalysis


class TestPolicyAnalysisRoundtrip:
    def test_roundtrip_preserves_everything(self, analyzer):
        analysis = analyzer.analyze(
            "We collect your location and your email address. "
            "We do not disclose your contacts to third parties. "
            "We are not responsible for the privacy practices of "
            "third parties."
        )
        assert analysis.statements, "fixture policy must parse"
        doc = json.loads(json.dumps(analysis.to_dict()))
        loaded = PolicyAnalysis.from_dict(doc)
        assert loaded.to_dict() == analysis.to_dict()
        assert loaded.all_positive() == analysis.all_positive()
        assert loaded.all_negative() == analysis.all_negative()
        assert loaded.has_third_party_disclaimer

    def test_clone_is_independent(self, analyzer):
        analysis = analyzer.analyze("We collect your location.")
        copy = analysis.clone()
        copy.statements.clear()
        assert analysis.statements


class TestStaticResultRoundtrip:
    def test_roundtrip_over_a_corpus_apk(self, small_store):
        # index 5 ships ad libs; exercise facts, taint, and libraries
        for app in small_store.apps[:8]:
            result = analyze_apk(app.bundle.apk)
            doc = json.loads(json.dumps(result.to_dict()))
            loaded = StaticAnalysisResult.from_dict(doc)
            assert loaded.to_dict() == result.to_dict()
            assert loaded.collected_infos() == result.collected_infos()
            assert loaded.retained_infos() == result.retained_infos()
            assert [s.lib_id for s in loaded.libraries] == \
                [s.lib_id for s in result.libraries]

    def test_clone_is_independent(self, small_store):
        result = analyze_apk(small_store.apps[0].bundle.apk)
        copy = result.clone()
        copy.facts.clear()
        copy.libraries.clear()
        assert result.facts or result.libraries


class TestAppReportRoundtrip:
    def test_roundtrip_over_checker_output(self, small_store, checker):
        seen_kinds = set()
        for app in small_store.apps[:24]:
            report = checker.check(app.bundle)
            seen_kinds |= report.problem_kinds()
            doc = json.loads(json.dumps(report.to_dict()))
            loaded = AppReport.from_dict(doc)
            assert loaded.to_dict() == report.to_dict()
        assert "incomplete" in seen_kinds, \
            "slice must exercise at least one finding kind"

    def test_clone_is_independent(self):
        report = AppReport(package="com.example.x")
        copy = report.clone()
        copy.incomplete.append("sentinel")
        assert report.incomplete == []
