"""Fault injection, retries, timeouts, and per-app error isolation.

The fault harness (`repro.pipeline.faults`) is a first-class
deliverable: these tests drive the real pipeline through injected
exceptions, hangs, and corrupt artifacts and assert the robustness
layer degrades exactly as specified -- structured ``AppFailure``
records, bounded retries with deterministic backoff, stage timeouts,
and no batch-wide aborts.
"""

import json

import pytest

from repro.core.checker import AppBundle, PPChecker
from repro.core.report import AppFailure, AppReport, partition_outcomes
from repro.pipeline import stages
from repro.pipeline.artifacts import MISS, DiskStore, build_store
from repro.pipeline.executor import BatchExecutor, BatchItemError
from repro.pipeline.faults import (
    CRASH_EXIT_CODE,
    KINDS,
    CorruptArtifact,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.pipeline.resilience import (
    RetryPolicy,
    StageError,
    StageTimeout,
    call_with_timeout,
)

from tests.android.appbuilder import (
    LOCATION_API,
    PKG,
    add_activity,
    empty_apk,
    invoke,
)


def make_bundle(package=PKG, policy=None, description="An app.",
                policy_is_html=False):
    # the default policy mentions the package so each bundle gets its
    # own content-addressed digest (faults wrap *compute*, so a
    # cross-app cache hit would bypass an injected fault)
    if policy is None:
        policy = f"We collect your email. Contact {package}."
    apk = empty_apk(package=package)
    add_activity(apk, instructions=[invoke(LOCATION_API, dest="v0")])
    return AppBundle(package=package, apk=apk, policy=policy,
                     description=description,
                     policy_is_html=policy_is_html)


def make_checker(**kwargs):
    return PPChecker(**kwargs)


#: a retry policy that never actually sleeps (tests stay fast)
def fast_policy(**kwargs):
    kwargs.setdefault("backoff_base", 0.0)
    kwargs.setdefault("sleep", lambda s: None)
    return RetryPolicy(**kwargs)


# -- resilience primitives ------------------------------------------------


class TestRetryPolicy:
    def test_backoff_is_deterministic(self):
        policy = RetryPolicy(backoff_base=0.1, seed=7)
        a = policy.delay_for("detect", "digest", 1)
        b = policy.delay_for("detect", "digest", 1)
        assert a == b
        assert policy.delay_for("detect", "digest", 2) != a
        assert policy.delay_for("detect", "other", 1) != a

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=0.0,
                             backoff_multiplier=2.0)
        assert policy.delay_for("s", "d", 1) == pytest.approx(0.1)
        assert policy.delay_for("s", "d", 2) == pytest.approx(0.2)
        assert policy.delay_for("s", "d", 3) == pytest.approx(0.4)

    def test_zero_base_means_no_sleep(self):
        assert RetryPolicy(backoff_base=0.0).delay_for("s", "d", 1) \
            == 0.0

    def test_execute_retries_until_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ValueError("transient")
            return "ok"

        policy = fast_policy(max_retries=2)
        assert policy.execute(flaky, stage="s", context="c") == "ok"
        assert len(calls) == 3

    def test_execute_terminal_failure_wraps_as_stage_error(self):
        def always():
            raise ValueError("permanent")

        policy = fast_policy(max_retries=2)
        with pytest.raises(StageError) as excinfo:
            policy.execute(always, stage="detect", context="com.x")
        err = excinfo.value
        assert err.stage == "detect"
        assert err.context == "com.x"
        assert err.attempts == 3
        assert isinstance(err.__cause__, ValueError)

    def test_execute_sleeps_the_backoff_schedule(self):
        slept = []
        policy = RetryPolicy(max_retries=2, backoff_base=0.1,
                             jitter=0.0, sleep=slept.append)

        def always():
            raise ValueError("x")

        with pytest.raises(StageError):
            policy.execute(always, stage="s", digest="d")
        assert slept == pytest.approx([0.1, 0.2])


class TestCallWithTimeout:
    def test_returns_value(self):
        assert call_with_timeout(lambda: 42, timeout=5.0) == 42

    def test_unbounded_runs_inline(self):
        assert call_with_timeout(lambda: 42, timeout=None) == 42

    def test_propagates_exception(self):
        with pytest.raises(KeyError):
            call_with_timeout(lambda: {}["missing"], timeout=5.0)

    def test_hang_is_cut_off(self):
        import time

        with pytest.raises(StageTimeout) as excinfo:
            call_with_timeout(lambda: time.sleep(30), timeout=0.05,
                              stage="static_analysis", context="com.x")
        assert excinfo.value.stage == "static_analysis"
        assert "0.05" in str(excinfo.value)


# -- the fault plan -------------------------------------------------------


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="explode")

    def test_applies_to_matches_stage_and_context(self):
        spec = FaultSpec(stage="detect", match="com.a")
        assert spec.applies_to("detect", "com.a.app")
        assert not spec.applies_to("detect", "com.b.app")
        assert not spec.applies_to("policy_analysis", "com.a.app")
        assert FaultSpec().applies_to("anything", "anywhere")

    def test_times_budget_is_per_context(self):
        plan = FaultPlan([FaultSpec(stage="s", times=1)])
        assert plan.fire("s", "com.a") is not None
        assert plan.fire("s", "com.a") is None    # budget spent
        assert plan.fire("s", "com.b") is not None  # fresh context

    def test_wrap_raise(self):
        plan = FaultPlan([FaultSpec(stage="s", message="boom")])
        with pytest.raises(InjectedFault, match="boom"):
            plan.wrap("s", "com.a", lambda: 1)()

    def test_wrap_corrupt_still_pays_the_compute(self):
        calls = []
        plan = FaultPlan([FaultSpec(stage="s", kind="corrupt")])
        out = plan.wrap("s", "com.a", lambda: calls.append(1))()
        assert isinstance(out, CorruptArtifact)
        assert calls == [1]

    def test_wrap_consults_plan_per_attempt(self):
        plan = FaultPlan([FaultSpec(stage="s", times=1)])
        wrapped = plan.wrap("s", "com.a", lambda: "fine")
        with pytest.raises(InjectedFault):
            wrapped()
        assert wrapped() == "fine"   # budget spent; retry succeeds

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan([
            FaultSpec(stage="detect", match="com.a", kind="hang",
                      times=2, hang_seconds=9.5),
            FaultSpec(),
        ])
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        loaded = FaultPlan.from_json_file(str(path))
        assert loaded.faults == plan.faults

    def test_crash_kind_round_trips(self):
        spec = FaultSpec(stage="detect", match="com.a", kind="crash")
        assert "crash" in KINDS
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_wrap_crash_requests_hard_exit(self, monkeypatch):
        """The crash kind must die via os._exit -- no unwinding, no
        cleanup.  Stubbed here; the real exit (and the recovery from
        it) is exercised by the durability e2e suites."""
        from repro.pipeline import faults as faults_module

        exits = []
        monkeypatch.setattr(faults_module, "_hard_exit",
                            exits.append)
        plan = FaultPlan([FaultSpec(stage="s", kind="crash")])
        with pytest.raises(InjectedFault, match="did not exit"):
            plan.wrap("s", "com.a", lambda: "never")()
        assert exits == [CRASH_EXIT_CODE]
        assert CRASH_EXIT_CODE == 70

    def test_wrap_crash_never_pays_the_compute(self, monkeypatch):
        from repro.pipeline import faults as faults_module

        monkeypatch.setattr(faults_module, "_hard_exit",
                            lambda code: None)
        calls = []
        plan = FaultPlan([FaultSpec(stage="s", kind="crash")])
        with pytest.raises(InjectedFault):
            plan.wrap("s", "com.a", lambda: calls.append(1))()
        assert calls == []


# -- pipeline-level fault behaviour ---------------------------------------


class TestPipelineFaults:
    def test_injected_raise_surfaces_as_stage_error(self):
        checker = make_checker(fault_plan=FaultPlan([
            FaultSpec(stage=stages.POLICY_ANALYSIS, message="boom"),
        ]))
        with pytest.raises(StageError) as excinfo:
            checker.check(make_bundle())
        assert excinfo.value.stage == stages.POLICY_ANALYSIS
        assert excinfo.value.context == PKG
        assert isinstance(excinfo.value.__cause__, InjectedFault)

    def test_transient_fault_recovers_under_retry(self):
        checker = make_checker(
            fault_plan=FaultPlan([
                FaultSpec(stage=stages.STATIC_ANALYSIS, times=2),
            ]),
            retry_policy=fast_policy(max_retries=2),
        )
        report = checker.check(make_bundle())
        assert isinstance(report, AppReport)
        # the stage eventually executed exactly once for real
        assert checker.stats.stage(stages.STATIC_ANALYSIS).executions \
            == 1

    def test_terminal_failure_counts_in_stats(self):
        checker = make_checker(fault_plan=FaultPlan([
            FaultSpec(stage=stages.DESCRIPTION_PERMISSIONS),
        ]))
        with pytest.raises(StageError):
            checker.check(make_bundle())
        row = checker.stats.stage(stages.DESCRIPTION_PERMISSIONS)
        assert row.failures == 1
        assert row.executions == 0

    def test_hung_stage_cut_by_timeout(self):
        checker = make_checker(
            fault_plan=FaultPlan([
                FaultSpec(stage=stages.DETECT, kind="hang",
                          hang_seconds=30.0),
            ]),
            retry_policy=RetryPolicy(stage_timeout=0.1),
        )
        with pytest.raises(StageError) as excinfo:
            checker.check(make_bundle())
        assert excinfo.value.stage == stages.DETECT
        assert isinstance(excinfo.value.__cause__, StageTimeout)

    def test_corrupt_artifact_poisons_its_stage_not_the_batch(self):
        checker = make_checker(fault_plan=FaultPlan([
            FaultSpec(stage=stages.POLICY_ANALYSIS, kind="corrupt",
                      match=PKG),
        ]))
        with pytest.raises(StageError) as excinfo:
            checker.check(make_bundle())
        assert excinfo.value.stage == stages.POLICY_ANALYSIS
        # a different app is untouched
        other = make_bundle(package="com.other.app")
        assert isinstance(checker.check(other), AppReport)

    def test_quarantine_batch_isolates_failures_in_order(self):
        checker = make_checker(fault_plan=FaultPlan([
            FaultSpec(stage=stages.POLICY_ANALYSIS, match="com.bad"),
        ]))
        bundles = [
            make_bundle(package="com.good.one"),
            make_bundle(package="com.bad.apple"),
            make_bundle(package="com.good.two"),
        ]
        outcomes = checker.check_batch(bundles, on_error="quarantine")
        assert [type(o).__name__ for o in outcomes] == \
            ["AppReport", "AppFailure", "AppReport"]
        failure = outcomes[1]
        assert failure.package == "com.bad.apple"
        assert failure.stage == stages.POLICY_ANALYSIS
        assert failure.error == "InjectedFault"
        reports, failures = partition_outcomes(outcomes)
        assert len(reports) == 2 and len(failures) == 1

    def test_unknown_on_error_mode_rejected(self):
        checker = make_checker()
        with pytest.raises(ValueError):
            checker.check_batch([make_bundle()], on_error="ignore")

    def test_raise_mode_aborts_with_item_attribution(self):
        checker = make_checker(fault_plan=FaultPlan([
            FaultSpec(stage=stages.POLICY_ANALYSIS, match="com.bad"),
        ]))
        bundles = [make_bundle(package="com.good.one"),
                   make_bundle(package="com.bad.apple")]
        with pytest.raises(BatchItemError) as excinfo:
            checker.check_batch(bundles)
        assert excinfo.value.index == 1


# -- executor error attribution (thread / process / serial) ---------------


def _double_or_boom(x):
    """Module-level so process pools can pickle it."""
    if x < 0:
        raise ValueError(f"bad item {x}")
    return x * 2


class TestBatchExecutorFailures:
    def test_serial_failure_names_the_item(self):
        with pytest.raises(BatchItemError) as excinfo:
            BatchExecutor().map(_double_or_boom, [1, 2, -7, 4])
        assert excinfo.value.index == 2
        assert excinfo.value.item == -7
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_thread_failure_names_the_item(self):
        with pytest.raises(BatchItemError) as excinfo:
            BatchExecutor(workers=3).map(_double_or_boom,
                                         [1, -5, 3, 4])
        assert excinfo.value.index == 1
        assert excinfo.value.item == -5

    def test_process_failure_names_the_item(self):
        with pytest.raises(BatchItemError) as excinfo:
            BatchExecutor(workers=2, kind="process").map(
                _double_or_boom, [1, 2, 3, -9])
        assert excinfo.value.index == 3
        assert excinfo.value.item == -9
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_first_failing_index_wins(self):
        # both -1 and -2 fail; the earlier input index is reported
        with pytest.raises(BatchItemError) as excinfo:
            BatchExecutor(workers=4).map(_double_or_boom,
                                         [-1, 0, -2, 1])
        assert excinfo.value.index == 0

    def test_healthy_batches_unchanged(self):
        assert BatchExecutor(workers=2, kind="process").map(
            _double_or_boom, [1, 2, 3]) == [2, 4, 6]


# -- disk store robustness ------------------------------------------------


class TestDiskStoreRobustness:
    def test_truncated_document_is_a_miss(self, tmp_path):
        store = DiskStore(str(tmp_path))
        report = AppReport(package="com.x")
        store.put(stages.DETECT, "d1", report)
        path = tmp_path / stages.DETECT / "d1.json"
        path.write_text(path.read_text()[: 10])    # torn write
        assert store.get(stages.DETECT, "d1") is MISS

    def test_wrong_schema_document_is_a_miss(self, tmp_path):
        store = DiskStore(str(tmp_path))
        bad = tmp_path / stages.DETECT
        bad.mkdir()
        (bad / "d2.json").write_text('{"valid": "json", "wrong": 1}')
        assert store.get(stages.DETECT, "d2") is MISS

    def test_binary_garbage_is_a_miss(self, tmp_path):
        store = DiskStore(str(tmp_path))
        bad = tmp_path / stages.POLICY_ANALYSIS
        bad.mkdir()
        (bad / "d3.json").write_bytes(b"\x00\xff\xfe garbage")
        assert store.get(stages.POLICY_ANALYSIS, "d3") is MISS

    def test_pipeline_recomputes_over_corrupt_cache(self, tmp_path):
        cache = str(tmp_path / "cache")
        bundle = make_bundle()
        warm = make_checker(artifact_store=build_store(cache_dir=cache))
        baseline = warm.check(bundle)

        # corrupt every cached document on disk
        for doc in (tmp_path / "cache").rglob("*.json"):
            doc.write_text("{torn")

        cold = make_checker(artifact_store=build_store(cache_dir=cache))
        again = cold.check(make_bundle())
        assert again.to_dict() == baseline.to_dict()
        # everything was recomputed, nothing crashed
        assert cold.stats.stage(stages.DETECT).executions == 1
        assert cold.stats.stage(stages.DETECT).cache_hits == 0


# -- malformed inputs at the stage boundaries -----------------------------


class TestMalformedInputs:
    def quarantine_one(self, checker, bundle):
        outcomes = checker.check_batch([bundle],
                                       on_error="quarantine")
        assert len(outcomes) == 1
        return outcomes[0]

    def test_missing_policy_quarantines_at_policy_analysis(self):
        bundle = make_bundle()
        bundle.policy = None          # scrape came back empty-handed
        failure = self.quarantine_one(make_checker(), bundle)
        assert isinstance(failure, AppFailure)
        assert failure.stage == stages.POLICY_ANALYSIS
        assert failure.error == "AttributeError"

    def test_garbage_bytes_policy_quarantines_not_crashes(self):
        bundle = make_bundle()
        bundle.policy = b"\x00\xffnot text"    # bytes, not str
        bundle.policy_is_html = True
        failure = self.quarantine_one(make_checker(), bundle)
        assert isinstance(failure, AppFailure)
        assert failure.stage == stages.POLICY_ANALYSIS

    def test_empty_html_policy_is_merely_unhelpful(self):
        # empty input is well-formed: it analyzes to an empty policy,
        # it does not fail
        bundle = make_bundle(policy="", policy_is_html=True)
        outcome = self.quarantine_one(make_checker(), bundle)
        assert isinstance(outcome, AppReport)

    def test_truncated_packed_apk_quarantines_at_static_analysis(self):
        from repro.android.packer import pack

        bundle = make_bundle()
        pack(bundle.apk)
        bundle.apk.packed_payload = bundle.apk.packed_payload[:8]
        failure = self.quarantine_one(make_checker(), bundle)
        assert isinstance(failure, AppFailure)
        assert failure.stage == stages.STATIC_ANALYSIS

    def test_missing_lib_id_quarantines_at_lib_policy_analysis(self):
        from repro.android.dex import DexClass

        def exploding_source(lib_id):
            raise KeyError(lib_id)

        bundle = make_bundle()
        bundle.apk.dex.add_class(
            DexClass(name="com.unity3d.player.Unity"))
        failure = self.quarantine_one(
            make_checker(lib_policy_source=exploding_source), bundle)
        assert isinstance(failure, AppFailure)
        assert failure.stage == stages.LIB_POLICY_ANALYSIS
        assert failure.error == "KeyError"


# -- the AppFailure record ------------------------------------------------


class TestAppFailure:
    def test_from_stage_error_extracts_structure(self):
        try:
            try:
                raise ValueError("inner cause")
            except ValueError as exc:
                raise StageError("detect", "com.x", exc,
                                 attempts=3) from exc
        except StageError as err:
            failure = AppFailure.from_exception("com.x", err)
        assert failure.stage == "detect"
        assert failure.attempts == 3
        assert failure.error == "ValueError"
        assert failure.message == "inner cause"
        assert "test_faults.py" in failure.traceback

    def test_from_plain_exception(self):
        failure = AppFailure.from_exception(
            "com.x", RuntimeError("surprise"))
        assert failure.stage == "check"
        assert failure.attempts == 1
        assert failure.error == "RuntimeError"

    def test_dict_round_trip(self):
        failure = AppFailure(package="com.x", stage="detect",
                             error="ValueError", message="m",
                             traceback="t", attempts=2)
        assert AppFailure.from_dict(failure.to_dict()) == failure

    def test_summary_is_readable(self):
        failure = AppFailure(package="com.x", stage="detect",
                             error="ValueError", message="m",
                             attempts=2)
        text = failure.summary()
        assert "com.x" in text
        assert "FAILED at detect" in text
        assert "2 attempt(s)" in text
