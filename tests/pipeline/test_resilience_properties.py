"""Property suite for the resilience primitives.

Hypothesis pins the contracts ISSUE 10 leans on everywhere else:

- :meth:`RetryPolicy.backoff_for` is a pure, deterministic function
  of ``(policy, stage, digest, attempt)``, monotone non-decreasing in
  the attempt number (jitter aside), and never schedules a sleep past
  the request's remaining deadline (nor a negative one);
- :class:`RetryBudget` is an exact token bucket: deterministic under
  an injected clock, never above capacity, refilling continuously;
- a timed-out stage thread is *accounted*: abandoned then reclaimed,
  never silently leaked.
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.artifacts import PipelineStats
from repro.pipeline.resilience import (
    Deadline,
    RetryBudget,
    RetryPolicy,
    StageTimeout,
    call_with_timeout,
    sleep_cancellable,
)

policies = st.builds(
    RetryPolicy,
    max_retries=st.integers(0, 5),
    backoff_base=st.floats(0.0, 2.0, allow_nan=False),
    backoff_multiplier=st.floats(1.0, 4.0, allow_nan=False),
    jitter=st.floats(0.0, 1.0, allow_nan=False),
    seed=st.integers(0, 2**16),
)

stages = st.sampled_from(
    ["policy_analysis", "static_analysis", "detect"])
digests = st.text(st.characters(min_codepoint=33, max_codepoint=126),
                  min_size=0, max_size=16)
attempts = st.integers(1, 8)


# -- backoff_for -----------------------------------------------------------


@given(policies, stages, digests, attempts)
def test_backoff_is_deterministic(policy, stage, digest, attempt):
    first = policy.backoff_for(stage, digest, attempt)
    assert policy.backoff_for(stage, digest, attempt) == first
    # and a fresh but equal policy agrees: nothing hides in state
    clone = RetryPolicy(
        max_retries=policy.max_retries,
        backoff_base=policy.backoff_base,
        backoff_multiplier=policy.backoff_multiplier,
        jitter=policy.jitter, seed=policy.seed)
    assert clone.backoff_for(stage, digest, attempt) == first


@given(policies, stages, digests, attempts)
def test_backoff_is_never_negative(policy, stage, digest, attempt):
    assert policy.backoff_for(stage, digest, attempt) >= 0.0
    assert policy.backoff_for(stage, digest, attempt, 0.0) == 0.0


@given(policies, stages, digests, attempts,
       st.floats(-10.0, 10.0, allow_nan=False))
def test_backoff_never_exceeds_remaining_deadline(
        policy, stage, digest, attempt, remaining):
    delay = policy.backoff_for(stage, digest, attempt, remaining)
    assert delay >= 0.0
    assert delay <= max(0.0, remaining)
    assert delay <= policy.backoff_for(stage, digest, attempt)


@given(policies, stages, digests, attempts)
def test_backoff_base_is_monotone_in_attempt(
        policy, stage, digest, attempt):
    flat = RetryPolicy(
        backoff_base=policy.backoff_base,
        backoff_multiplier=policy.backoff_multiplier,
        jitter=0.0, seed=policy.seed)
    assert flat.backoff_for(stage, digest, attempt) <= \
        flat.backoff_for(stage, digest, attempt + 1)


@given(policies, stages, digests, attempts)
def test_backoff_jitter_is_bounded(policy, stage, digest, attempt):
    base = (policy.backoff_base
            * policy.backoff_multiplier ** (attempt - 1))
    delay = policy.backoff_for(stage, digest, attempt)
    assert delay <= base * (1.0 + policy.jitter) + 1e-9


# -- retry budget ----------------------------------------------------------


@given(st.floats(0.5, 20.0, allow_nan=False),
       st.floats(0.0, 5.0, allow_nan=False),
       st.lists(st.one_of(
           st.floats(0.0, 3.0, allow_nan=False),  # advance clock
           st.none(),                             # try_acquire
       ), max_size=40))
@settings(max_examples=60)
def test_budget_is_a_deterministic_token_bucket(
        capacity, refill, script):
    def run() -> tuple[list[bool], float]:
        clock = [0.0]
        budget = RetryBudget(capacity, refill,
                             clock=lambda: clock[0])
        grants: list[bool] = []
        for step in script:
            if step is None:
                grants.append(budget.try_acquire())
            else:
                clock[0] += step
            assert 0.0 <= budget.remaining <= capacity
        return grants, budget.remaining

    assert run() == run()


def test_budget_refills_continuously_up_to_capacity():
    clock = [0.0]
    budget = RetryBudget(2.0, 1.0, clock=lambda: clock[0])
    assert budget.try_acquire() and budget.try_acquire()
    assert not budget.try_acquire()
    assert budget.denied == 1
    clock[0] += 0.5
    assert not budget.try_acquire()   # only half a token back
    clock[0] += 0.6
    assert budget.try_acquire()
    clock[0] += 100.0
    assert budget.remaining == 2.0    # capped at capacity


def test_budget_rejects_bad_configuration():
    with pytest.raises(ValueError):
        RetryBudget(0.0)
    with pytest.raises(ValueError):
        RetryBudget(1.0, -1.0)


def test_dry_budget_makes_a_failure_terminal_immediately():
    calls = {"n": 0}

    def boom() -> None:
        calls["n"] += 1
        raise RuntimeError("still failing")

    clock = [0.0]
    budget = RetryBudget(1.0, 0.0, clock=lambda: clock[0])
    policy = RetryPolicy(max_retries=5, backoff_base=0.0,
                         budget=budget)
    with pytest.raises(Exception):
        policy.execute(boom, stage="s", context="c")
    # first attempt + the single budgeted retry, then terminal
    assert calls["n"] == 2
    assert budget.denied == 1


# -- deadline --------------------------------------------------------------


@given(st.floats(0.001, 100.0, allow_nan=False),
       st.floats(0.0, 200.0, allow_nan=False))
def test_deadline_remaining_matches_the_clock(budget_s, elapsed):
    clock = [0.0]
    deadline = Deadline.after(budget_s, clock=lambda: clock[0])
    assert deadline.budget == budget_s
    clock[0] = elapsed
    assert deadline.remaining() == pytest.approx(budget_s - elapsed)
    assert deadline.expired == (budget_s - elapsed <= 0)


# -- abandoned-thread accounting -------------------------------------------


def test_timed_out_stage_thread_is_abandoned_then_reclaimed():
    """The orphaned-thread fix: a stage that outlives its timeout is
    counted as abandoned, asked to cancel, and reclaimed as soon as
    it reaches a cancellation poll -- the leak is bounded and
    observable, not silent."""
    stats = PipelineStats()
    release = threading.Event()

    def stuck() -> None:
        # polls the ambient cancel event every 20ms, so the abandoned
        # thread unwinds promptly instead of sleeping out the hour
        sleep_cancellable(3600.0)
        release.set()  # pragma: no cover - cancellation wins

    with pytest.raises(StageTimeout):
        call_with_timeout(stuck, 0.05, stage="s", context="c",
                          ledger=stats)
    assert stats.abandoned_threads_total == 1
    deadline = time.monotonic() + 5.0
    while stats.abandoned_threads and time.monotonic() < deadline:
        time.sleep(0.01)
    assert stats.abandoned_threads == 0
    assert not release.is_set()


def test_bounded_leak_under_repeated_timeouts():
    stats = PipelineStats()
    for _ in range(10):
        with pytest.raises(StageTimeout):
            call_with_timeout(lambda: sleep_cancellable(3600.0),
                              0.02, stage="s", context="c",
                              ledger=stats)
    deadline = time.monotonic() + 5.0
    while stats.abandoned_threads and time.monotonic() < deadline:
        time.sleep(0.01)
    # every abandonment was eventually reclaimed; nothing leaked
    assert stats.abandoned_threads == 0
    assert stats.abandoned_threads_total == 10


def test_zero_timeout_fails_fast_without_spawning():
    stats = PipelineStats()
    with pytest.raises(StageTimeout):
        call_with_timeout(lambda: 1, 0.0, stage="s", context="c",
                          ledger=stats)
    assert stats.abandoned_threads_total == 0
