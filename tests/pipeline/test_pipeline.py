"""Pipeline determinism, cache effectiveness, and sharing.

The acceptance bar of the staged-pipeline refactor:

- a cached (warm) run and a cold run of the same bundle produce
  identical reports,
- a multi-worker batch equals the serial batch report-for-report,
- a warm rerun skips >= 90% of policy/static stage executions,
- lib-policy analyses are shared across apps and checker instances.
"""

import pytest

from repro.core.checker import PPChecker
from repro.core.study import run_study
from repro.pipeline import Pipeline, build_store
from repro.pipeline.artifacts import MemoryStore


def _report_dicts(reports):
    return {pkg: report.to_dict() for pkg, report in reports.items()}


@pytest.fixture()
def slice_bundles(small_store):
    """A fresh-checker-sized workload incl. the packed app (index 7)
    and the ad-lib groups."""
    return [app.bundle for app in small_store.apps[:40]]


class TestDeterminism:
    def test_cold_equals_warm_per_bundle(self, small_store):
        checker = PPChecker(lib_policy_source=small_store.lib_policy)
        bundle = small_store.apps[0].bundle
        cold = checker.check(bundle)
        warm = checker.check(bundle)
        assert warm is not cold
        assert warm.to_dict() == cold.to_dict()

    def test_cold_equals_warm_batch(self, small_store, slice_bundles):
        checker = PPChecker(lib_policy_source=small_store.lib_policy)
        cold = checker.check_batch(slice_bundles)
        warm = checker.check_batch(slice_bundles)
        assert [r.to_dict() for r in cold] == \
            [r.to_dict() for r in warm]

    def test_two_workers_equal_serial(self, small_store,
                                      slice_bundles):
        serial = PPChecker(
            lib_policy_source=small_store.lib_policy
        ).check_batch(slice_bundles)
        parallel = PPChecker(
            lib_policy_source=small_store.lib_policy
        ).check_batch(slice_bundles, workers=2)
        assert [r.package for r in parallel] == \
            [r.package for r in serial]
        assert [r.to_dict() for r in parallel] == \
            [r.to_dict() for r in serial]

    def test_study_serial_parallel_warm_identical(self, small_store):
        serial = run_study(small_store)
        parallel = run_study(small_store, workers=3)
        warm_checker = PPChecker(
            lib_policy_source=small_store.lib_policy)
        run_study(small_store, checker=warm_checker)
        warm = run_study(small_store, checker=warm_checker)
        baseline = serial.to_dict()
        assert parallel.to_dict() == baseline
        assert warm.to_dict() == baseline
        assert _report_dicts(parallel.reports) == \
            _report_dicts(serial.reports)
        assert _report_dicts(warm.reports) == \
            _report_dicts(serial.reports)


class TestCacheEffectiveness:
    def test_warm_rerun_skips_90_percent(self, small_store,
                                         slice_bundles):
        checker = PPChecker(lib_policy_source=small_store.lib_policy)
        checker.check_batch(slice_bundles)
        cold = checker.stats.snapshot()
        checker.check_batch(slice_bundles)
        warm = checker.stats.snapshot()
        for stage in ("policy_analysis", "static_analysis"):
            requests = (warm[stage]["executions"]
                        + warm[stage]["cache_hits"]
                        - cold[stage]["executions"]
                        - cold[stage]["cache_hits"])
            executed = (warm[stage]["executions"]
                        - cold[stage]["executions"])
            assert requests == len(slice_bundles)
            assert executed <= 0.1 * requests, (
                f"{stage}: {executed}/{requests} re-executed"
            )

    def test_stats_expose_timing(self, small_store):
        checker = PPChecker(lib_policy_source=small_store.lib_policy)
        checker.check(small_store.apps[0].bundle)
        stats = checker.stats.to_dict()
        assert set(stats) >= {"policy_analysis", "static_analysis",
                              "description_permissions", "detect"}
        assert all(row["seconds"] >= 0 for row in stats.values())

    def test_returned_artifacts_are_defensive_copies(self,
                                                     small_store):
        checker = PPChecker(lib_policy_source=small_store.lib_policy)
        target = next(
            app for app in small_store.apps
            if checker.check(app.bundle).has_problem
        )
        original = checker.check(target.bundle)
        snapshot = original.to_dict()
        original.incomplete.clear()
        original.incorrect.clear()
        original.inconsistent.clear()
        assert checker.check(target.bundle).to_dict() == snapshot

    def test_policy_artifact_mutation_does_not_poison_cache(
            self, small_store):
        checker = PPChecker(lib_policy_source=small_store.lib_policy)
        bundle = small_store.apps[0].bundle
        analysis = checker.analyze_policy(bundle)
        analysis.statements.clear()
        analysis.sentences.clear()
        fresh = checker.analyze_policy(bundle)
        assert fresh.sentences


class TestSharedArtifacts:
    def test_lib_analyses_shared_across_checker_instances(
            self, small_store):
        store = MemoryStore()
        first = PPChecker(lib_policy_source=small_store.lib_policy,
                          artifact_store=store)
        second = PPChecker(lib_policy_source=small_store.lib_policy,
                           artifact_store=store)
        # find an app that ships a lib with a policy
        target = next(
            app for app in small_store.apps
            if first.analyze_code(app.bundle).libraries
        )
        first.check(target.bundle)
        before = second.stats.snapshot()
        assert before.get("lib_policy_analysis",
                          {"executions": 0})["executions"] == 0
        second.check(target.bundle)
        after = second.stats.snapshot()
        assert after["lib_policy_analysis"]["executions"] == 0
        assert after["lib_policy_analysis"]["cache_hits"] > 0

    def test_lib_analysis_correct_under_parallel_batch(
            self, small_store, slice_bundles):
        shared = PPChecker(lib_policy_source=small_store.lib_policy)
        parallel = shared.check_batch(slice_bundles, workers=4)
        solo = PPChecker(
            lib_policy_source=small_store.lib_policy
        ).check_batch(slice_bundles)
        assert [r.to_dict() for r in parallel] == \
            [r.to_dict() for r in solo]

    def test_disk_cache_survives_checker_instances(self, small_store,
                                                   tmp_path):
        cache_dir = str(tmp_path / "cache")
        bundle = small_store.apps[3].bundle
        cold_checker = PPChecker(
            lib_policy_source=small_store.lib_policy,
            artifact_store=build_store(cache_dir=cache_dir),
        )
        cold = cold_checker.check(bundle)
        warm_checker = PPChecker(
            lib_policy_source=small_store.lib_policy,
            artifact_store=build_store(cache_dir=cache_dir),
        )
        warm = warm_checker.check(bundle)
        assert warm.to_dict() == cold.to_dict()
        stats = warm_checker.stats.snapshot()
        for stage in ("policy_analysis", "static_analysis", "detect"):
            assert stats[stage]["executions"] == 0, stage
            assert stats[stage]["cache_hits"] == 1, stage


class TestFacade:
    def test_checker_without_store_gets_private_memory(self,
                                                       small_store):
        a = PPChecker(lib_policy_source=small_store.lib_policy)
        b = PPChecker(lib_policy_source=small_store.lib_policy)
        assert a.pipeline.store is not b.pipeline.store

    def test_pipeline_direct_use_matches_facade(self, small_store):
        bundle = small_store.apps[1].bundle
        pipeline = Pipeline(lib_policy_source=small_store.lib_policy)
        direct = pipeline.check(bundle)
        facade = PPChecker(
            lib_policy_source=small_store.lib_policy).check(bundle)
        assert direct.to_dict() == facade.to_dict()

    def test_extended_checker_still_overrides_through_facade(self):
        from repro.core.extended import make_extended_checker
        checker = make_extended_checker()
        assert checker.pipeline.policy_analyzer is \
            checker.policy_analyzer
