"""The cross-process shared artifact backend (sqlite).

Three layers of proof, mirroring ``tests/pipeline/test_artifacts.py``:

1. the store honours the :class:`~repro.pipeline.artifacts.ArtifactStore`
   contract with the same corrupt-cache tolerances as ``DiskStore``
   (missing / corrupt / wrong-schema rows are misses, never crashes);
2. single-writer leases exclude concurrent writers -- in-process and
   across real processes -- and expired leases are stolen, never wedged;
3. a multi-process stress run: N writer processes hammering
   overlapping keys while a reader races them never observes a torn
   document (every value seen carries a valid self-checksum).
"""

import hashlib
import json
import multiprocessing
import sqlite3
import time

import pytest

from repro.pipeline import stages
from repro.pipeline.artifacts import (
    MISS,
    MemoryStore,
    SharedDiskStore,
    TieredStore,
    build_store,
)

# -- checksummed payloads (torn writes are self-evident) -----------------


def sealed(tag: int, seq: int) -> dict:
    """A document whose ``check`` field commits to the rest of it."""
    body = {"tag": tag, "seq": seq, "pad": "x" * 256}
    body["check"] = hashlib.sha256(
        json.dumps(body, sort_keys=True).encode()).hexdigest()
    return body


def is_sealed(doc) -> bool:
    if not isinstance(doc, dict) or "check" not in doc:
        return False
    body = {k: v for k, v in doc.items() if k != "check"}
    return doc["check"] == hashlib.sha256(
        json.dumps(body, sort_keys=True).encode()).hexdigest()


# -- spawn targets (module-level so the spawn context can import them) ---

STRESS_KEYS = [f"k{i:02d}" for i in range(16)]


def _writer_proc(cache_dir: str, tag: int, rounds: int) -> None:
    store = SharedDiskStore(cache_dir, codecs={})
    for seq in range(rounds):
        for key in STRESS_KEYS:
            store.put("stress", key, sealed(tag, seq))


def _lease_holder_proc(cache_dir, held, release, done) -> None:
    store = SharedDiskStore(cache_dir, codecs={})
    assert store.acquire_lease("s", "contended")
    held.set()
    release.wait(timeout=60)
    store.release_lease("s", "contended")
    done.set()


class TestSharedStoreContract:
    def test_miss_then_hit(self, tmp_path):
        store = SharedDiskStore(str(tmp_path), codecs={})
        assert store.get("s", "d") is MISS
        store.put("s", "d", {"k": 42})
        assert store.get("s", "d") == {"k": 42}
        assert len(store) == 1

    def test_roundtrip_with_codec(self, tmp_path, analyzer):
        store = SharedDiskStore(str(tmp_path))
        analysis = analyzer.analyze(
            "We collect your location. We do not share your contacts."
        )
        store.put(stages.POLICY_ANALYSIS, "d1", analysis)
        loaded = store.get(stages.POLICY_ANALYSIS, "d1")
        assert loaded is not analysis
        assert loaded.to_dict() == analysis.to_dict()

    def test_none_lib_analysis_roundtrips(self, tmp_path):
        store = SharedDiskStore(str(tmp_path))
        store.put(stages.LIB_POLICY_ANALYSIS, "d", None)
        assert store.get(stages.LIB_POLICY_ANALYSIS, "d") is None

    def test_permission_set_roundtrips_as_set(self, tmp_path):
        store = SharedDiskStore(str(tmp_path))
        perms = {"android.permission.CAMERA",
                 "android.permission.READ_CONTACTS"}
        store.put(stages.DESCRIPTION_PERMISSIONS, "d", perms)
        assert store.get(stages.DESCRIPTION_PERMISSIONS, "d") == perms

    def test_corrupt_row_is_a_miss(self, tmp_path):
        store = SharedDiskStore(str(tmp_path), codecs={})
        conn = sqlite3.connect(store.path)
        conn.execute(
            "INSERT INTO artifacts (stage, digest, doc) "
            "VALUES (?, ?, ?)", ("s", "broken", "{not json"))
        conn.commit()
        conn.close()
        assert store.get("s", "broken") is MISS

    def test_wrong_schema_row_is_a_miss(self, tmp_path):
        # valid JSON whose shape the codec rejects: recompute, don't
        # crash the stage
        store = SharedDiskStore(str(tmp_path))
        conn = sqlite3.connect(store.path)
        conn.execute(
            "INSERT INTO artifacts (stage, digest, doc) VALUES "
            "(?, ?, ?)", (stages.POLICY_ANALYSIS, "odd", "[1,2,3]"))
        conn.commit()
        conn.close()
        assert store.get(stages.POLICY_ANALYSIS, "odd") is MISS

    def test_unreadable_database_degrades_to_miss(self, tmp_path):
        store = SharedDiskStore(str(tmp_path), codecs={})
        store.put("s", "d", {"k": 1})
        store.close()
        # clobber the database file wholesale: every read degrades
        # to a miss and every write is quietly dropped
        with open(store.path, "wb") as handle:
            handle.write(b"\x00" * 64)
        assert store.get("s", "d") is MISS
        store.put("s", "d2", {"k": 2})       # must not raise
        assert store.get("s", "d2") is MISS

    def test_replace_overwrites_previous_version(self, tmp_path):
        store = SharedDiskStore(str(tmp_path), codecs={})
        store.put("s", "d", sealed(1, 0))
        store.put("s", "d", sealed(2, 9))
        doc = store.get("s", "d")
        assert doc["tag"] == 2 and doc["seq"] == 9
        assert len(store) == 1

    def test_two_store_instances_share_one_database(self, tmp_path):
        a = SharedDiskStore(str(tmp_path), codecs={})
        b = SharedDiskStore(str(tmp_path), codecs={})
        a.put("s", "d", {"from": "a"})
        assert b.get("s", "d") == {"from": "a"}

    def test_tiered_backfill_over_shared_store(self, tmp_path):
        disk = SharedDiskStore(str(tmp_path))
        disk.put(stages.DESCRIPTION_PERMISSIONS, "d", {"p"})
        memory = MemoryStore()
        tiered = TieredStore(memory, disk)
        assert tiered.get(stages.DESCRIPTION_PERMISSIONS, "d") == {"p"}
        assert memory.get(stages.DESCRIPTION_PERMISSIONS, "d") == {"p"}

    def test_build_store_backend_selection(self, tmp_path):
        tiered = build_store(cache_dir=str(tmp_path),
                             backend="sqlite")
        assert isinstance(tiered, TieredStore)
        assert isinstance(tiered.disk, SharedDiskStore)
        with pytest.raises(ValueError, match="backend"):
            build_store(cache_dir=str(tmp_path), backend="papyrus")


class TestLeases:
    def test_acquire_is_reentrant_for_the_owner(self, tmp_path):
        store = SharedDiskStore(str(tmp_path), codecs={})
        assert store.acquire_lease("s", "d")
        assert store.acquire_lease("s", "d")
        assert store.lease_holder("s", "d") == store.owner

    def test_foreign_live_lease_blocks_acquire(self, tmp_path):
        a = SharedDiskStore(str(tmp_path), codecs={})
        b = SharedDiskStore(str(tmp_path), codecs={})
        assert a.acquire_lease("s", "d")
        assert not b.acquire_lease("s", "d")
        a.release_lease("s", "d")
        assert b.acquire_lease("s", "d")

    def test_put_skips_under_foreign_live_lease(self, tmp_path):
        a = SharedDiskStore(str(tmp_path), codecs={})
        b = SharedDiskStore(str(tmp_path), codecs={})
        assert a.acquire_lease("s", "d")
        b.put("s", "d", {"from": "b"})       # quietly dropped
        assert b.get("s", "d") is MISS
        a.put("s", "d", {"from": "a"})       # the leaseholder lands
        assert b.get("s", "d") == {"from": "a"}

    def test_put_clears_the_writers_own_lease(self, tmp_path):
        a = SharedDiskStore(str(tmp_path), codecs={})
        b = SharedDiskStore(str(tmp_path), codecs={})
        assert a.acquire_lease("s", "d")
        a.put("s", "d", {"v": 1})
        assert a.lease_holder("s", "d") is None
        assert b.acquire_lease("s", "d")

    def test_expired_lease_is_stolen_not_wedged(self, tmp_path):
        # a SIGKILL'd worker leaves its lease behind; after the TTL
        # any other worker takes over the key
        a = SharedDiskStore(str(tmp_path), codecs={},
                            lease_ttl=0.05)
        b = SharedDiskStore(str(tmp_path), codecs={})
        assert a.acquire_lease("s", "d")
        assert not b.acquire_lease("s", "d")
        time.sleep(0.08)
        assert a.lease_holder("s", "d") is None
        assert b.acquire_lease("s", "d")
        b.put("s", "d", {"v": 2})
        assert b.get("s", "d") == {"v": 2}

    def test_release_is_scoped_to_the_owner(self, tmp_path):
        a = SharedDiskStore(str(tmp_path), codecs={})
        b = SharedDiskStore(str(tmp_path), codecs={})
        assert a.acquire_lease("s", "d")
        b.release_lease("s", "d")            # not b's to release
        assert a.lease_holder("s", "d") == a.owner

    def test_lease_excludes_writer_in_another_process(self, tmp_path):
        ctx = multiprocessing.get_context("spawn")
        held, release, done = ctx.Event(), ctx.Event(), ctx.Event()
        proc = ctx.Process(
            target=_lease_holder_proc,
            args=(str(tmp_path), held, release, done))
        proc.start()
        try:
            assert held.wait(timeout=60), "child never took the lease"
            local = SharedDiskStore(str(tmp_path), codecs={})
            assert not local.acquire_lease("s", "contended")
            local.put("s", "contended", {"v": "squatter"})
            assert local.get("s", "contended") is MISS
            release.set()
            assert done.wait(timeout=60), "child never released"
            assert local.acquire_lease("s", "contended")
        finally:
            release.set()
            proc.join(timeout=60)
            assert proc.exitcode == 0


class TestMultiProcessStress:
    def test_concurrent_writers_never_tear_a_document(self, tmp_path):
        """4 writer processes × 16 overlapping keys × 25 versions,
        with the parent reading throughout: every observed value is a
        complete, self-consistent document."""
        ctx = multiprocessing.get_context("spawn")
        writers = [
            ctx.Process(target=_writer_proc,
                        args=(str(tmp_path), tag, 25))
            for tag in range(4)
        ]
        for proc in writers:
            proc.start()
        reader = SharedDiskStore(str(tmp_path), codecs={})
        observations = 0
        try:
            while any(p.is_alive() for p in writers):
                for key in STRESS_KEYS:
                    doc = reader.get("stress", key)
                    if doc is not MISS:
                        observations += 1
                        assert is_sealed(doc), f"torn read at {key}"
        finally:
            for proc in writers:
                proc.join(timeout=120)
        assert all(p.exitcode == 0 for p in writers)
        assert observations > 0, "reader never raced the writers"
        # after the dust settles every key holds some writer's final
        # version, intact
        for key in STRESS_KEYS:
            doc = reader.get("stress", key)
            assert is_sealed(doc)
            assert doc["seq"] == 24
        assert len(reader) == len(STRESS_KEYS)
