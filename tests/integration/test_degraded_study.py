"""Degraded-mode end-to-end runs: injected faults at corpus scale.

The acceptance scenario from the robustness layer: a batch over six
apps with two injected faults -- one raising, one hanging -- completes
with four full reports and two structured quarantine entries, the hung
stage cut off by the stage timeout.  Plus the determinism guarantee:
serial, 2-worker, and warm-cache runs produce identical reports for
the healthy apps and identical quarantine lists.
"""

import json

import pytest

from repro.cli import main
from repro.core.checker import PPChecker
from repro.core.study import run_study
from repro.corpus.appstore import generate_app_store
from repro.android.serialization import save_bundle
from repro.pipeline import stages
from repro.pipeline.artifacts import build_store
from repro.pipeline.executor import BatchItemError
from repro.pipeline.faults import FaultPlan, FaultSpec
from repro.pipeline.resilience import RetryPolicy

N_APPS = 6
#: generous per-stage budget -- healthy corpus stages run in
#: milliseconds; only the injected hang ever gets near it
TIMEOUT = 3.0
HANG = 30.0


@pytest.fixture(scope="module")
def store():
    return generate_app_store(seed=2016, n_apps=N_APPS)


def fault_targets(store):
    """(app that raises, app that hangs)."""
    return store.apps[1].package, store.apps[3].package


def crash_and_hang_plan(raise_pkg, hang_pkg):
    return FaultPlan([
        FaultSpec(stage=stages.POLICY_ANALYSIS, match=raise_pkg,
                  message="injected crash"),
        FaultSpec(stage=stages.STATIC_ANALYSIS, match=hang_pkg,
                  kind="hang", hang_seconds=HANG),
    ])


def degraded_checker(store, plan, artifact_store=None):
    return PPChecker(
        lib_policy_source=store.lib_policy,
        fault_plan=plan,
        retry_policy=RetryPolicy(stage_timeout=TIMEOUT),
        artifact_store=artifact_store,
    )


class TestDegradedStudy:
    def test_crash_and_hang_quarantined_not_fatal(self, store):
        raise_pkg, hang_pkg = fault_targets(store)
        checker = degraded_checker(
            store, crash_and_hang_plan(raise_pkg, hang_pkg))
        result = run_study(store, checker=checker, workers=2)

        assert len(result.reports) == N_APPS - 2
        assert set(result.failures) == {raise_pkg, hang_pkg}

        crash = result.failures[raise_pkg]
        assert crash.stage == stages.POLICY_ANALYSIS
        assert crash.error == "InjectedFault"
        assert "injected crash" in crash.message

        hang = result.failures[hang_pkg]
        assert hang.stage == stages.STATIC_ANALYSIS
        assert hang.error == "StageTimeout"

        assert result.summary()["quarantined_apps"] == 2
        doc = result.to_dict()
        assert [e["package"] for e in doc["quarantine"]] == \
            sorted([raise_pkg, hang_pkg])
        # quarantine entries are JSON-clean
        json.dumps(doc["quarantine"])

    def test_keep_going_false_fails_fast(self, store):
        raise_pkg, _ = fault_targets(store)
        plan = FaultPlan([FaultSpec(stage=stages.POLICY_ANALYSIS,
                                    match=raise_pkg)])
        checker = degraded_checker(store, plan)
        with pytest.raises(BatchItemError) as excinfo:
            run_study(store, checker=checker, keep_going=False)
        assert excinfo.value.index == 1


class TestDeterminism:
    """Identical reports and quarantine lists, however the batch runs."""

    def fault_plan(self, store):
        raise_pkg, corrupt_pkg = fault_targets(store)
        return FaultPlan([
            FaultSpec(stage=stages.POLICY_ANALYSIS, match=raise_pkg,
                      message="injected crash"),
            FaultSpec(stage=stages.DETECT, match=corrupt_pkg,
                      kind="corrupt"),
        ])

    def run_once(self, store, workers=1, artifact_store=None):
        checker = degraded_checker(store, self.fault_plan(store),
                                   artifact_store=artifact_store)
        result = run_study(store, checker=checker, workers=workers)
        reports = {pkg: report.to_dict()
                   for pkg, report in result.reports.items()}
        quarantine = [result.failures[pkg].to_dict()
                      for pkg in sorted(result.failures)]
        return reports, quarantine

    def test_serial_parallel_and_warm_cache_agree(self, store,
                                                  tmp_path):
        serial = self.run_once(store)
        threaded = self.run_once(store, workers=2)

        cache = str(tmp_path / "cache")
        cold = self.run_once(
            store, artifact_store=build_store(cache_dir=cache))
        warm = self.run_once(
            store, artifact_store=build_store(cache_dir=cache))

        baseline_reports, baseline_quarantine = serial
        assert len(baseline_quarantine) == 2
        for reports, quarantine in (threaded, cold, warm):
            assert reports == baseline_reports
            assert quarantine == baseline_quarantine


class TestCliDegradedBatch:
    """The ISSUE acceptance scenario through the real CLI."""

    def export_bundles(self, store, tmp_path):
        paths = []
        for index, app in enumerate(store.apps):
            path = str(tmp_path / f"app{index}.json")
            save_bundle(app.bundle, path)
            paths.append(path)
        return paths

    def test_six_apps_two_faults(self, store, tmp_path, capsys):
        raise_pkg, hang_pkg = fault_targets(store)
        paths = self.export_bundles(store, tmp_path)
        plan_path = tmp_path / "faults.json"
        plan_path.write_text(json.dumps(
            crash_and_hang_plan(raise_pkg, hang_pkg).to_dict()))
        out_json = str(tmp_path / "batch.json")

        code = main(["batch-check", *paths,
                     "--fault-plan", str(plan_path),
                     "--stage-timeout", str(TIMEOUT),
                     "--workers", "2",
                     "--fail-on-findings",
                     "--json", out_json])
        # quarantined apps count as findings for exit purposes
        assert code == 1

        out = capsys.readouterr().out
        assert "4 apps checked" in out
        assert "2 quarantined" in out
        assert "== quarantine ==" in out
        assert f"FAILED at {stages.POLICY_ANALYSIS}: InjectedFault" \
            in out
        assert f"FAILED at {stages.STATIC_ANALYSIS}: StageTimeout" \
            in out

        with open(out_json) as handle:
            payload = json.load(handle)
        assert len(payload["reports"]) == 4
        quarantine = {entry["package"]: entry
                      for entry in payload["quarantine"]}
        assert quarantine[raise_pkg]["stage"] == \
            stages.POLICY_ANALYSIS
        assert quarantine[raise_pkg]["error"] == "InjectedFault"
        assert quarantine[hang_pkg]["stage"] == stages.STATIC_ANALYSIS
        assert quarantine[hang_pkg]["error"] == "StageTimeout"
        assert all(entry["attempts"] == 1
                   for entry in quarantine.values())
        # both failed stages show up in the failure counters
        pipeline_stats = payload["pipeline_stats"]
        assert pipeline_stats[stages.POLICY_ANALYSIS]["failures"] == 1
        assert pipeline_stats[stages.STATIC_ANALYSIS]["failures"] == 1

    def test_no_keep_going_aborts(self, store, tmp_path):
        raise_pkg, _ = fault_targets(store)
        paths = self.export_bundles(store, tmp_path)[:3]
        plan_path = tmp_path / "faults.json"
        plan_path.write_text(json.dumps(FaultPlan([
            FaultSpec(stage=stages.POLICY_ANALYSIS, match=raise_pkg),
        ]).to_dict()))
        with pytest.raises(BatchItemError):
            main(["batch-check", *paths, "--no-keep-going",
                  "--fault-plan", str(plan_path)])
