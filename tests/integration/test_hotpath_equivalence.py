"""Differential suite: the hot-path caches never change the output.

The ESA/NLP memoization layer (:mod:`repro.memo`) promises that every
fast path -- interpretation/similarity LRUs, shared-concept pruning,
the parse cache, the batch matchers -- is *exact*.  These tests prove
it the strong way: the JSON the user sees is byte-identical with the
caches on and with ``REPRO_NO_MEMO=1``.

Covered surfaces:

- ``run_study`` over the seeded 64-app corpus slice (in-process,
  toggled via :func:`repro.memo.set_memo_enabled`);
- ``python -m repro.cli check BUNDLE --json`` as a real subprocess,
  with and without ``REPRO_NO_MEMO=1`` in the environment, over
  corpus bundles exhibiting each problem type;
- the ``quickstart.py`` example's stdout.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.android.serialization import save_bundle
from repro.core.checker import PPChecker
from repro.core.schema import versioned
from repro.core.study import run_study
from repro.memo import NO_MEMO_ENV, clear_caches, set_memo_enabled

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
SRC_DIR = os.path.join(REPO_ROOT, "src")


@pytest.fixture
def memo_toggle():
    """Restore the environment-controlled memo state afterwards."""
    yield set_memo_enabled
    set_memo_enabled(None)
    clear_caches()


def subprocess_env(no_memo: bool) -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = "0"
    env.pop(NO_MEMO_ENV, None)
    if no_memo:
        env[NO_MEMO_ENV] = "1"
    return env


class TestStudyEquivalence:
    def run_study_json(self, store, enabled: bool) -> str:
        set_memo_enabled(enabled)
        clear_caches()
        checker = PPChecker(lib_policy_source=store.lib_policy)
        result = run_study(store, checker=checker)
        return json.dumps(versioned(result.to_dict()), sort_keys=True)

    def test_study_byte_identical(self, small_store, memo_toggle):
        memoized = self.run_study_json(small_store, enabled=True)
        plain = self.run_study_json(small_store, enabled=False)
        assert memoized == plain


def problem_bundle_paths(store, tmp_path) -> list[str]:
    """One serialized bundle per planted problem type, plus a clean
    app, from the seeded corpus."""
    picks: dict[str, object] = {}
    for app in store.apps:
        plan = app.plan
        if "incomplete" not in picks and (plan.gt_incomplete_desc
                                          or plan.gt_incomplete_code):
            picks["incomplete"] = app
        elif "incorrect" not in picks and plan.gt_incorrect:
            picks["incorrect"] = app
        elif "inconsistent" not in picks and plan.inconsistencies:
            picks["inconsistent"] = app
        elif "clean" not in picks and not (
                plan.gt_incomplete_desc or plan.gt_incomplete_code
                or plan.gt_incorrect or plan.inconsistencies):
            picks["clean"] = app
        if len(picks) == 4:
            break
    paths = []
    for label, app in sorted(picks.items()):
        path = str(tmp_path / f"{label}.json")
        save_bundle(app.bundle, path)
        paths.append(path)
    return paths


class TestCliCheckEquivalence:
    def check_json(self, bundle_path: str, no_memo: bool) -> bytes:
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "check", bundle_path,
             "--json"],
            capture_output=True, cwd=REPO_ROOT,
            env=subprocess_env(no_memo), timeout=300,
        )
        assert proc.returncode == 0, proc.stderr.decode()
        return proc.stdout

    def test_check_json_byte_identical(self, mid_store, tmp_path):
        paths = problem_bundle_paths(mid_store, tmp_path)
        assert len(paths) == 4
        for path in paths:
            memoized = self.check_json(path, no_memo=False)
            plain = self.check_json(path, no_memo=True)
            assert memoized == plain, path
            payload = json.loads(memoized)
            assert payload["schema_version"] == 1


class TestExampleEquivalence:
    def quickstart_out(self, no_memo: bool) -> bytes:
        proc = subprocess.run(
            [sys.executable, os.path.join("examples", "quickstart.py")],
            capture_output=True, cwd=REPO_ROOT,
            env=subprocess_env(no_memo), timeout=300,
        )
        assert proc.returncode == 0, proc.stderr.decode()
        return proc.stdout

    def test_quickstart_byte_identical(self):
        assert self.quickstart_out(False) == self.quickstart_out(True)
