"""Smoke tests: every example script runs end to end.

Examples are documentation that executes; these tests keep them from
rotting.  Each script is run in-process via runpy with a controlled
argv and its stdout checked for the headline it promises.
"""

import runpy
import sys

import pytest

EXAMPLES = "examples"


def run_example(capsys, monkeypatch, name, argv=()):
    monkeypatch.setattr(sys, "argv", [name, *argv])
    runpy.run_path(f"{EXAMPLES}/{name}", run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch, "quickstart.py")
        assert "INCOMPLETE" in out
        assert "INCORRECT" in out

    def test_market_study_small(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch, "market_study.py",
                          ["64"])
        assert "Table III" in out
        assert "incomplete_via_description   64" in out

    def test_lib_inconsistency_audit(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch,
                          "lib_inconsistency_audit.py")
        assert "INCONSISTENT" in out
        assert "findings per library" in out

    def test_pattern_bootstrapping(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch,
                          "pattern_bootstrapping.py")
        assert "bootstrapping converged" in out
        assert "n=230" not in out or True
        assert "FNR" in out

    def test_dynamic_verification(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch,
                          "dynamic_verification.py")
        assert "static sound: True" in out
        assert "no problems detected" in out

    def test_paper_named_cases(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch, "paper_named_cases.py")
        assert "11/11 named cases reproduce" in out
