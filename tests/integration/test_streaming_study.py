"""The streaming study is byte-equivalent to the materialized one.

Three proof obligations from the streaming refactor:

- streaming + merge reconstitutes the materialized ``study`` tables
  byte-identically (in-process at mid scale, full 1,197-app scale in
  the slow lane, and through the real CLI end to end),
- a streaming run killed by an injected crash fault and restarted
  with ``--resume`` reproduces the uninterrupted run's shards and
  JSON byte-for-byte,
- peak memory is bounded by the window, not the corpus: 10k apps
  stay within a small constant factor of 1k apps (tracemalloc).
"""

import json
import os
import subprocess
import sys

import pytest

from repro.core.checker import PPChecker
from repro.core.results import ShardedResultWriter, iter_results
from repro.core.study import (
    merge_study_results,
    run_study,
    run_study_streaming,
)
from repro.corpus.appstore import CorpusSpec
from repro.pipeline.faults import CRASH_EXIT_CODE


def canonical(doc):
    return json.dumps(doc, indent=2, sort_keys=True).encode()


def run_cli(args, env, timeout=600):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=env, capture_output=True, text=True, timeout=timeout)


def cli_env():
    root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(root, "src") + (
        os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else "")
    env.setdefault("PYTHONHASHSEED", "0")
    return env


def stripped(path):
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    for key in ("pipeline_stats", "nlp_caches", "telemetry"):
        payload.pop(key, None)
    return canonical(payload)


class TestStreamingEquivalence:
    def test_streaming_matches_materialized_mid_scale(self,
                                                      mid_store):
        base = run_study(mid_store)
        spec = CorpusSpec(n_apps=len(mid_store))
        for workers in (1, 3):
            aggregate = run_study_streaming(spec, workers=workers)
            assert canonical(aggregate.to_dict()) \
                == canonical(base.to_dict())

    def test_merge_reconstitutes_the_tables(self, tmp_path,
                                            mid_store):
        base = run_study(mid_store)
        spec = CorpusSpec(n_apps=len(mid_store))
        out = str(tmp_path / "shards")
        meta = {"kind": "study", "seed": spec.seed,
                "apps": spec.n_apps}
        with ShardedResultWriter(out, meta, shards=4) as writer:
            run_study_streaming(spec, workers=2, sinks=[writer])
        merged = merge_study_results(out)
        assert canonical(merged.to_dict()) \
            == canonical(base.to_dict())
        indices = [index for index, _, _ in iter_results(out)]
        assert indices == list(range(len(mid_store)))

    def test_limit_matches_run_study_limit(self, mid_store):
        base = run_study(mid_store, limit=100)
        spec = CorpusSpec(n_apps=len(mid_store))
        aggregate = run_study_streaming(spec, limit=100)
        assert canonical(aggregate.to_dict()) \
            == canonical(base.to_dict())

    def test_telemetry_is_populated(self, mid_store):
        spec = CorpusSpec(n_apps=64)
        aggregate = run_study_streaming(spec, limit=8)
        assert aggregate.telemetry["peak_rss_kb"] > 0
        assert aggregate.telemetry["apps_per_sec"] > 0

    @pytest.mark.slow
    def test_full_1197_study_is_byte_identical(self, tmp_path,
                                               full_store, checker):
        base = run_study(full_store, checker=checker)
        spec = CorpusSpec()
        out = str(tmp_path / "shards")
        meta = {"kind": "study", "seed": spec.seed,
                "apps": spec.n_apps}
        with ShardedResultWriter(out, meta, shards=4) as writer:
            aggregate = run_study_streaming(spec, workers=2,
                                            sinks=[writer])
        merged = merge_study_results(out)
        assert canonical(aggregate.to_dict()) \
            == canonical(base.to_dict())
        assert canonical(merged.to_dict()) \
            == canonical(base.to_dict())
        # the paper's headline number survives the fold
        assert merged.summary()["problem_apps"] == 282


class TestStreamingCli:
    N_APPS = 80

    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        out = str(tmp_path_factory.mktemp("ref") / "ref.json")
        result = run_cli(["study", "--apps", str(self.N_APPS),
                          "--json", out], cli_env())
        assert result.returncode == 0, result.stdout + result.stderr
        return out, result.stdout

    def test_cli_streaming_plus_merge_is_byte_identical(
            self, tmp_path, reference):
        ref_json, ref_stdout = reference
        env = cli_env()
        shards = str(tmp_path / "shards")
        str_json = str(tmp_path / "str.json")
        merged_json = str(tmp_path / "merged.json")
        run = run_cli(["study", "--apps", str(self.N_APPS),
                       "--streaming", "--workers", "2",
                       "--out", shards, "--json", str_json], env)
        assert run.returncode == 0, run.stdout + run.stderr
        merge = run_cli(["merge-results", shards,
                         "--json", merged_json], env)
        assert merge.returncode == 0, merge.stdout + merge.stderr
        assert stripped(str_json) == stripped(ref_json)
        assert stripped(merged_json) == stripped(ref_json)

        def tables(text):
            return text[text.index("== study summary =="):
                        text.index("\n== pipeline ==")]

        assert tables(run.stdout) == tables(ref_stdout)
        assert merge.stdout.startswith(tables(ref_stdout))

    def test_crash_fault_then_resume_rebuilds_shards_exactly(
            self, tmp_path, reference):
        ref_json, _ = reference
        env = cli_env()
        spec = CorpusSpec(n_apps=self.N_APPS)
        plan = tmp_path / "faults.json"
        plan.write_text(json.dumps({"faults": [{
            "stage": "detect",
            "match": spec.package_for(self.N_APPS // 2),
            "kind": "crash",
        }]}))
        journal = str(tmp_path / "study.jsonl")
        crashed = str(tmp_path / "crashed")
        out_json = str(tmp_path / "out.json")
        base = ["study", "--apps", str(self.N_APPS), "--streaming",
                "--out", crashed, "--journal", journal,
                "--json", out_json]

        first = run_cli([*base, "--fault-plan", str(plan)], env)
        assert first.returncode == CRASH_EXIT_CODE
        # the crash must not leave a finalized (committed) shard
        assert not [name for name in os.listdir(crashed)
                    if name.endswith(".ndjson")]

        second = run_cli([*base, "--resume"], env)
        assert second.returncode == 0, second.stdout + second.stderr
        assert "== recovery ==" in second.stdout
        assert stripped(out_json) == stripped(ref_json)

        # an uninterrupted streaming run writes the very same bytes
        clean = str(tmp_path / "clean")
        third = run_cli(["study", "--apps", str(self.N_APPS),
                         "--streaming", "--out", clean], env)
        assert third.returncode == 0, third.stdout + third.stderr
        names = sorted(os.listdir(clean))
        assert names == sorted(os.listdir(crashed))
        for name in names:
            with open(os.path.join(crashed, name), "rb") as a, \
                    open(os.path.join(clean, name), "rb") as b:
                assert a.read() == b.read()

    def test_out_requires_streaming(self, tmp_path):
        run = run_cli(["study", "--apps", "4",
                       "--out", str(tmp_path / "x")], cli_env())
        assert run.returncode == 2
        assert "--streaming" in run.stderr

    def test_merge_results_rejects_torn_directory(self, tmp_path):
        run = run_cli(["merge-results", str(tmp_path)], cli_env())
        assert run.returncode == 2
        assert "no finalized" in run.stderr


@pytest.mark.slow
class TestBoundedMemory:
    def test_peak_memory_is_constant_in_corpus_size(self):
        # 10x the corpus must not cost 10x the memory: the window,
        # the fold, and the lazy corpus are all constant-size.  The
        # NLP/artifact memo caches grow toward a *fixed* capacity
        # regardless of corpus size, so they are warmed once first;
        # the measured runs then exercise the full streaming data
        # plane (per-index derivation, bundle build, window, fold)
        # at cache steady state.  Generous 3x bound.
        import tracemalloc

        spec = CorpusSpec(n_apps=10_000)
        checker = PPChecker(lib_policy_source=spec.lib_policy)
        run_study_streaming(spec, checker=checker, limit=10_000)

        peaks = {}
        for n_apps in (1_000, 10_000):
            tracemalloc.start()
            aggregate = run_study_streaming(spec, checker=checker,
                                            limit=n_apps)
            _, peaks[n_apps] = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            assert aggregate.n_apps == n_apps
        assert peaks[10_000] <= 3 * peaks[1_000], (
            f"peak memory grew with corpus size: "
            f"{peaks[1_000]} B at 1k vs {peaks[10_000]} B at 10k")
