"""The named paper cases, end to end — error modes included.

Each app the paper discusses must reproduce *exactly* the reported
outcome: the true findings, the two documented false positives
(StaffMark, zoho.mail) and the documented false negative
(starlitt.disableddating).
"""

import pytest

from repro.core.checker import PPChecker
from repro.corpus.named import (
    EXPECTED,
    build_named_apps,
    named_lib_policy,
)


@pytest.fixture(scope="module")
def named_reports():
    checker = PPChecker(lib_policy_source=named_lib_policy)
    apps = build_named_apps()
    return {name: checker.check(bundle)
            for name, bundle in apps.items()}


def test_every_expected_app_is_built():
    assert set(build_named_apps()) == set(EXPECTED)


@pytest.mark.parametrize("package", sorted(EXPECTED),
                         ids=sorted(EXPECTED))
def test_named_outcome(package, named_reports):
    report = named_reports[package]
    expected = EXPECTED[package]
    assert report.is_incomplete == expected.incomplete, \
        (expected.note, report.summary())
    assert report.is_incorrect == expected.incorrect, \
        (expected.note, report.summary())
    assert report.is_inconsistent == expected.inconsistent, \
        (expected.note, report.summary())


class TestSpecificDetails:
    def test_dooing_found_via_both_paths(self, named_reports):
        report = named_reports["com.dooing.dooing"]
        sources = {f.source for f in report.incomplete}
        assert sources == {"description", "code"}

    def test_qisiemoji_retention_flag(self, named_reports):
        report = named_reports["com.qisiemoji.inputmethod"]
        assert any(f.retained for f in report.incomplete)
        assert any(f.info.value == "app list" for f in report.incomplete)

    def test_birthdaylist_via_description_and_code(self, named_reports):
        report = named_reports["com.marcow.birthdaylist"]
        assert report.incorrect_via("description")
        assert report.incorrect_via("code")

    def test_easyxapp_retain_kind(self, named_reports):
        report = named_reports["com.easyxapp.secret"]
        assert any(f.kind == "retain" for f in report.incorrect)

    def test_myobservatory_retain_kind(self, named_reports):
        report = named_reports["hko.MyObservatory_v1_0"]
        assert any(
            f.kind == "retain" and f.info.value == "location"
            for f in report.incorrect
        )

    def test_templerun_lib_and_resource(self, named_reports):
        finding = named_reports["com.imangi.templerun2"].inconsistent[0]
        assert finding.lib_id == "unity3d"
        assert "location" in finding.app_resource

    def test_staffmark_fp_resource_is_generic(self, named_reports):
        finding = named_reports["com.StaffMark"].inconsistent[0]
        assert finding.app_resource == "information"
        assert finding.lib_resource == "personal information"

    def test_starlitt_fn_fixed_by_synonyms(self):
        """The documented FN disappears under the synonym extension."""
        from repro.policy.analyzer import PolicyAnalyzer
        from repro.policy.synonyms import expanded_pattern_set
        checker = PPChecker(
            lib_policy_source=named_lib_policy,
            policy_analyzer=PolicyAnalyzer(
                patterns=expanded_pattern_set()
            ),
        )
        bundle = build_named_apps()["com.starlitt.disableddating"]
        assert checker.check(bundle).is_inconsistent

    def test_zoho_fp_has_positive_coverage_too(self, named_reports):
        """The zoho case is a context FP: the same policy legitimately
        covers account access, so no incomplete finding fires."""
        report = named_reports["com.zoho.mail"]
        assert not report.is_incomplete
        assert report.is_incorrect  # the (wrong) flag the paper saw
