"""Integration tests on the paper's running examples (Section II)."""

import pytest

from repro.android.dex import DexClass
from repro.android.manifest import Component
from repro.core.checker import AppBundle, PPChecker
from repro.semantics.resources import InfoType

from tests.android.appbuilder import (
    LOCATION_API,
    LOG_SINK,
    QUERY_API,
    URI_PARSE,
    add_activity,
    const_string,
    empty_apk,
    invoke,
)


def _checker(lib_policies=None):
    table = lib_policies or {}
    return PPChecker(lib_policy_source=table.get)


class TestDooingExample:
    """com.dooing.dooing: location used per description and code, but
    absent from the policy (Fig. 2)."""

    def test_incomplete_via_description_and_code(self):
        apk = empty_apk(package="com.dooing.dooing")
        add_activity(apk, instructions=[
            invoke(LOCATION_API, dest="v0"),
            invoke("android.location.Location->getLongitude()",
                   dest="v1"),
        ])
        report = _checker().check(AppBundle(
            package="com.dooing.dooing",
            apk=apk,
            policy="We may collect your email address when you "
                   "register. We may share anonymous statistics.",
            description="Location aware tasks will help you to "
                        "utilize your field force in optimum way. "
                        "The app uses gps for precision.",
        ))
        assert report.is_incomplete
        sources = {f.source for f in report.incomplete
                   if f.info is InfoType.LOCATION}
        assert sources == {"description", "code"}


class TestEasyxappExample:
    """com.easyxapp.secret: policy denies storing contacts, code logs
    them (Section II-B(2))."""

    def test_incorrect_via_retention(self):
        apk = empty_apk(package="com.easyxapp.secret")
        add_activity(apk, instructions=[
            const_string("v0", "content://contacts"),
            invoke(URI_PARSE, dest="v1", args=("v0",)),
            invoke(QUERY_API, dest="v2", args=("v1",)),
            const_string("v3", "TAG"),
            invoke(LOG_SINK, args=("v3", "v2")),
        ])
        report = _checker().check(AppBundle(
            package="com.easyxapp.secret",
            apk=apk,
            policy="We may access your contacts to help you share. "
                   "We will not store your real phone number, name "
                   "and contacts.",
            description="Share secrets anonymously.",
        ))
        assert report.is_incorrect
        finding = next(f for f in report.incorrect if f.kind == "retain")
        assert finding.info is InfoType.CONTACT
        assert "not store" in finding.denial_sentence


class TestTempleRunExample:
    """com.imangi.templerun2: app denies collecting location, the
    bundled Unity3d lib declares it will receive it (Fig. 3)."""

    def _bundle(self, policy):
        apk = empty_apk(package="com.imangi.templerun2")
        add_activity(apk)
        apk.dex.add_class(DexClass(name="com.unity3d.player.UnityPlayer"))
        return AppBundle(
            package="com.imangi.templerun2",
            apk=apk,
            policy=policy,
            description="Run for your life in this endless runner.",
        )

    LIB = {"unity3d": "We may receive your location information. "
                      "We may collect device identifiers."}

    def test_inconsistent_detected(self):
        report = _checker(self.LIB).check(self._bundle(
            "We do not collect your location information."
        ))
        assert report.is_inconsistent
        finding = report.inconsistent[0]
        assert finding.lib_id == "unity3d"
        assert "location" in finding.app_resource

    def test_hammertime_disclaimer_suppresses(self):
        report = _checker(self.LIB).check(self._bundle(
            "We do not collect your location information. We "
            "encourage you to review the privacy practices of these "
            "third parties before disclosing any personally "
            "identifiable information, as we are not responsible for "
            "the privacy practices of those sites."
        ))
        assert not report.is_inconsistent


class TestCleanApp:
    def test_fully_covered_app_has_no_problems(self):
        apk = empty_apk(package="com.clean.app")
        add_activity(apk, instructions=[invoke(LOCATION_API, dest="v0")])
        report = _checker().check(AppBundle(
            package="com.clean.app",
            apk=apk,
            policy="We may collect your location to provide the "
                   "service.",
            description="A lovely app for everyone.",
        ))
        assert not report.has_problem
        assert "no problems" in report.summary()

    def test_report_summary_lists_findings(self):
        apk = empty_apk(package="com.bad.app")
        add_activity(apk, instructions=[invoke(LOCATION_API, dest="v0")])
        report = _checker().check(AppBundle(
            package="com.bad.app",
            apk=apk,
            policy="We may collect your email.",
            description="x",
        ))
        assert "INCOMPLETE" in report.summary()
