"""The sharded planes are byte-equivalent to the single-process ones.

Differential proof obligations for the ``--shards N`` worker planes:

- ``run_study_sharded`` reproduces ``run_study``'s tables
  byte-identically for any shard count, cold *and* warm through the
  shared sqlite artifact store (the full 1,197-app study rides in the
  slow lane),
- the streaming study on the process plane folds the same aggregates
  and writes the same NDJSON result shards as the in-process one,
- the journal hooks fire identically, so a resumed sharded run merges
  replayed outcomes exactly like a single-process one,
- the CLI end to end: ``study --shards N`` (materialized and
  streaming + merge-results) prints the same tables and writes the
  same JSON as plain ``study``,
- the sharded service: ``/v1/batch`` against ``serve --shards N``
  returns the same reports in the same order as the single-process
  service.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.core.study import (
    ShardOptions,
    merge_study_results,
    run_study,
    run_study_sharded,
    run_study_streaming,
)
from repro.corpus.appstore import CorpusSpec


def canonical(doc):
    return json.dumps(doc, indent=2, sort_keys=True).encode()


def run_cli(args, env, timeout=600):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=env, capture_output=True, text=True, timeout=timeout)


def cli_env():
    root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(root, "src") + (
        os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else "")
    env.setdefault("PYTHONHASHSEED", "0")
    return env


def stripped(path):
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    for key in ("pipeline_stats", "nlp_caches", "telemetry"):
        payload.pop(key, None)
    return canonical(payload)


def total_hits(result) -> int:
    return sum(row["cache_hits"]
               for row in result.stats.to_dict().values())


class TestShardedStudyEquivalence:
    def test_cold_and_warm_match_serial(self, tmp_path, small_store):
        base = run_study(small_store)
        options = ShardOptions(cache_dir=str(tmp_path / "cache"),
                               store_backend="sqlite")
        cold = run_study_sharded(n_apps=64, shards=4,
                                 options=options)
        warm = run_study_sharded(n_apps=64, shards=4,
                                 options=options)
        assert canonical(cold.to_dict()) == canonical(base.to_dict())
        assert canonical(warm.to_dict()) == canonical(base.to_dict())
        # the warm pass really re-read the shared sqlite store: every
        # stage request that executed cold is a hit warm
        assert total_hits(warm) > total_hits(cold)

    def test_shard_count_never_changes_the_tables(self):
        results = [run_study_sharded(n_apps=32, shards=shards)
                   for shards in (1, 2, 5)]
        payloads = {canonical(result.to_dict())
                    for result in results}
        assert len(payloads) == 1

    def test_limit_matches_run_study_limit(self, mid_store):
        base = run_study(mid_store, limit=48)
        sharded = run_study_sharded(n_apps=len(mid_store), shards=3,
                                    limit=48)
        assert canonical(sharded.to_dict()) \
            == canonical(base.to_dict())
        assert sharded.n_apps == 48

    def test_streaming_sharded_writes_identical_result_shards(
            self, tmp_path):
        from repro.core.results import ShardedResultWriter

        spec = CorpusSpec(n_apps=64)
        meta = {"kind": "study", "seed": spec.seed,
                "apps": spec.n_apps}

        def run(out, shards):
            with ShardedResultWriter(out, meta, shards=2) as writer:
                return run_study_streaming(
                    spec, workers=2 if shards == 0 else 1,
                    sinks=[writer], shards=shards)

        inproc = run(str(tmp_path / "inproc"), shards=0)
        sharded = run(str(tmp_path / "sharded"), shards=3)
        assert canonical(sharded.to_dict()) \
            == canonical(inproc.to_dict())
        names = sorted(os.listdir(str(tmp_path / "inproc")))
        assert names == sorted(os.listdir(str(tmp_path / "sharded")))
        for name in names:
            with open(tmp_path / "inproc" / name, "rb") as a, \
                    open(tmp_path / "sharded" / name, "rb") as b:
                assert a.read() == b.read()
        merged = merge_study_results(str(tmp_path / "sharded"))
        assert canonical(merged.to_dict()) \
            == canonical(inproc.to_dict())

    def test_skip_merges_like_a_resumed_journal(self, small_store):
        base = run_study(small_store)
        # replay half the outcomes as if a journal survived a crash
        packages = sorted(base.reports)[::2]
        skip = {package: base.reports[package]
                for package in packages}
        fresh_fired = []
        resumed = run_study_sharded(
            n_apps=64, shards=3, skip=skip,
            on_outcome=lambda pkg, outcome: fresh_fired.append(pkg))
        assert canonical(resumed.to_dict()) \
            == canonical(base.to_dict())
        # the checkpoint hook fired for exactly the fresh apps
        assert set(fresh_fired) == set(base.reports) - set(skip)

    @pytest.mark.slow
    def test_full_1197_study_cold_and_warm(self, tmp_path,
                                           full_store, checker):
        base = run_study(full_store, checker=checker)
        options = ShardOptions(cache_dir=str(tmp_path / "cache"),
                               store_backend="sqlite")
        cold = run_study_sharded(shards=4, options=options)
        warm = run_study_sharded(shards=4, options=options)
        assert canonical(cold.to_dict()) == canonical(base.to_dict())
        assert canonical(warm.to_dict()) == canonical(base.to_dict())
        assert total_hits(warm) > total_hits(cold)
        assert warm.summary()["problem_apps"] == 282


class TestShardedStudyCli:
    N_APPS = 80

    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        out = str(tmp_path_factory.mktemp("ref") / "ref.json")
        result = run_cli(["study", "--apps", str(self.N_APPS),
                          "--json", out], cli_env())
        assert result.returncode == 0, result.stdout + result.stderr
        return out, result.stdout

    def test_cli_sharded_cold_and_warm_match(self, tmp_path,
                                             reference):
        ref_json, ref_stdout = reference
        env = cli_env()
        cache = str(tmp_path / "cache")
        for name in ("cold.json", "warm.json"):
            out = str(tmp_path / name)
            run = run_cli(["study", "--apps", str(self.N_APPS),
                           "--shards", "3", "--cache-dir", cache,
                           "--store", "sqlite", "--json", out], env)
            assert run.returncode == 0, run.stdout + run.stderr
            assert stripped(out) == stripped(ref_json)

        def tables(text):
            return text[text.index("== study summary =="):
                        text.index("\n== pipeline ==")]

        assert tables(run.stdout) == tables(ref_stdout)

    def test_cli_streaming_sharded_plus_merge(self, tmp_path,
                                              reference):
        ref_json, _ = reference
        env = cli_env()
        shards = str(tmp_path / "shards")
        str_json = str(tmp_path / "str.json")
        merged_json = str(tmp_path / "merged.json")
        run = run_cli(["study", "--apps", str(self.N_APPS),
                       "--streaming", "--shards", "3",
                       "--out", shards, "--out-shards", "2",
                       "--json", str_json], env)
        assert run.returncode == 0, run.stdout + run.stderr
        merge = run_cli(["merge-results", shards,
                         "--json", merged_json], env)
        assert merge.returncode == 0, merge.stdout + merge.stderr
        assert stripped(str_json) == stripped(ref_json)
        assert stripped(merged_json) == stripped(ref_json)


class TestShardedServiceEquivalence:
    """``/v1/batch`` against ``serve --shards N`` returns the same
    reports as the single-process service (job ids differ by design:
    the cluster namespaces them per shard)."""

    N_DOCS = 10

    @pytest.fixture(scope="class")
    def docs(self):
        from repro.android.packer import unpack
        from repro.android.serialization import bundle_to_dict

        spec = CorpusSpec(n_apps=64)
        docs = []
        for index in range(self.N_DOCS):
            bundle = spec.app(index).bundle
            if bundle.apk.packed:
                unpack(bundle.apk)
            docs.append(bundle_to_dict(bundle))
        return docs

    @pytest.fixture(scope="class")
    def single_payload(self, docs):
        from repro.service import ServiceClient
        from repro.service.runner import ServiceConfig
        from repro.service.server import start_service

        handle = start_service(ServiceConfig(port=0, workers=2))
        try:
            client = ServiceClient(port=handle.port, timeout=120.0)
            yield client.batch(docs)
        finally:
            handle.close()

    @pytest.fixture(scope="class")
    def cluster_payload(self, docs, tmp_path_factory):
        from repro.service import ServiceClient
        from repro.service.cluster import ClusterConfig, start_cluster

        from tests.service.test_cluster import wait_cluster_up

        base = tmp_path_factory.mktemp("eqcluster")
        handle = start_cluster(ClusterConfig(
            port=0, shards=2, workers=1,
            state_dir=str(base / "state"), drain_timeout=5.0))
        try:
            client = ServiceClient(port=handle.port, timeout=120.0)
            wait_cluster_up(client, shards=2)
            yield client.batch(docs)
        finally:
            handle.close()

    def test_batch_reports_are_byte_identical(self, single_payload,
                                              cluster_payload):
        assert cluster_payload["checked"] == self.N_DOCS
        assert cluster_payload["checked"] == single_payload["checked"]
        assert cluster_payload["rejected"] \
            == single_payload["rejected"] == 0
        single_reports = [row["report"]
                          for row in single_payload["results"]]
        cluster_reports = [row["report"]
                           for row in cluster_payload["results"]]
        assert canonical(cluster_reports) \
            == canonical(single_reports)

    def test_batch_statuses_match_in_submission_order(
            self, single_payload, cluster_payload):
        assert [row["status"] for row in cluster_payload["results"]] \
            == [row["status"] for row in single_payload["results"]]
        # the cluster spread the work: both shards own some jobs
        owners = {row["job_id"].split("-job-")[0]
                  for row in cluster_payload["results"]}
        assert len(owners) == 2
