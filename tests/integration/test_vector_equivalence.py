"""Differential suite: the compiled data plane never changes output.

The vectorized ESA representation (:mod:`repro.semantics.compiled`
plus the merge-join/batched matchers in :mod:`repro.semantics.esa`)
promises bitwise exactness, orthogonally to the memoization layer.
These tests prove it the strong way over the real pipeline: the JSON
the user sees is byte-identical across every combination of
``REPRO_NO_VECTOR`` and ``REPRO_NO_MEMO``.

Covered surfaces:

- ``run_study`` over the seeded 64-app slice across all four
  vector x memo combinations (in-process toggles);
- ``run_study`` over the complete 1,197-app corpus, vectorized vs.
  scalar vs. scalar-no-memo (the ``slow`` lane);
- ``python -m repro.cli check BUNDLE --json`` as a real subprocess
  with ``REPRO_NO_VECTOR=1`` in the environment, over bundles
  exhibiting each problem type.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.core.checker import PPChecker
from repro.core.schema import versioned
from repro.core.study import run_study
from repro.memo import (
    NO_MEMO_ENV,
    NO_VECTOR_ENV,
    clear_caches,
    set_memo_enabled,
    set_vector_enabled,
)
from tests.integration.test_hotpath_equivalence import (
    problem_bundle_paths,
    subprocess_env,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


@pytest.fixture
def plane_toggle():
    """Restore the environment-controlled plane + memo state."""
    yield
    set_vector_enabled(None)
    set_memo_enabled(None)
    clear_caches()


def study_json(store, vector: bool, memo: bool) -> str:
    set_vector_enabled(vector)
    set_memo_enabled(memo)
    clear_caches()
    checker = PPChecker(lib_policy_source=store.lib_policy)
    result = run_study(store, checker=checker)
    return json.dumps(versioned(result.to_dict()), sort_keys=True)


class TestStudyEquivalence:
    def test_all_four_planes_byte_identical(self, small_store,
                                            plane_toggle):
        reference = study_json(small_store, vector=False, memo=False)
        for vector, memo in ((True, False), (True, True),
                             (False, True)):
            assert study_json(small_store, vector, memo) \
                == reference, (vector, memo)

    @pytest.mark.slow
    def test_full_study_byte_identical(self, full_store, plane_toggle):
        vectorized = study_json(full_store, vector=True, memo=True)
        scalar = study_json(full_store, vector=False, memo=True)
        plain = study_json(full_store, vector=False, memo=False)
        assert vectorized == scalar
        assert vectorized == plain


def vector_subprocess_env(no_vector: bool) -> dict[str, str]:
    env = subprocess_env(no_memo=False)
    env.pop(NO_VECTOR_ENV, None)
    if no_vector:
        env[NO_VECTOR_ENV] = "1"
    return env


class TestCliCheckEquivalence:
    def check_json(self, bundle_path: str, no_vector: bool) -> bytes:
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "check", bundle_path,
             "--json"],
            capture_output=True, cwd=REPO_ROOT,
            env=vector_subprocess_env(no_vector), timeout=300,
        )
        assert proc.returncode == 0, proc.stderr.decode()
        return proc.stdout

    def test_check_json_byte_identical(self, mid_store, tmp_path):
        paths = problem_bundle_paths(mid_store, tmp_path)
        assert len(paths) == 4
        for path in paths:
            vectorized = self.check_json(path, no_vector=False)
            scalar = self.check_json(path, no_vector=True)
            assert vectorized == scalar, path
            assert json.loads(vectorized)["schema_version"] == 1

    def test_both_escape_hatches_compose(self, mid_store, tmp_path):
        """``REPRO_NO_VECTOR=1 REPRO_NO_MEMO=1`` together equals the
        default configuration byte-for-byte."""
        path = problem_bundle_paths(mid_store, tmp_path)[0]
        env = vector_subprocess_env(no_vector=True)
        env[NO_MEMO_ENV] = "1"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "check", path,
             "--json"],
            capture_output=True, cwd=REPO_ROOT, env=env, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr.decode()
        assert proc.stdout == self.check_json(path, no_vector=False)
