"""The headline reproduction: the full 1,197-app study (Section V).

These tests assert the paper's published numbers exactly where our
calibrated corpus reproduces them, and in tight bands where the
emergent behaviour may drift by an app or two.
"""

import pytest

from repro.core.study import run_study

# corpus scale: CI's fast lane deselects this module (-m "not slow")
# and a dedicated step runs it (-m slow)
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def result(full_store, checker):
    return run_study(full_store, checker=checker)


class TestSectionVF:
    def test_282_problem_apps(self, result):
        assert result.summary()["problem_apps"] == 282

    def test_236_percent(self, result):
        assert result.summary()["problem_fraction"] == pytest.approx(
            0.236, abs=0.002
        )

    def test_incomplete_breakdown(self, result):
        summary = result.summary()
        assert summary["incomplete_apps"] == 222
        assert summary["incomplete_via_description"] == 64
        assert summary["incomplete_via_code"] == 180

    def test_incorrect_breakdown(self, result):
        summary = result.summary()
        assert summary["incorrect_apps"] == 4
        assert summary["incorrect_via_description"] == 2
        assert summary["incorrect_via_code"] == 4

    def test_75_inconsistent(self, result):
        assert result.summary()["inconsistent_apps"] == 75


class TestTableIII:
    def test_permission_counts(self, result):
        table = result.table3()
        assert table["android.permission.ACCESS_FINE_LOCATION"] == 19
        assert table["android.permission.ACCESS_COARSE_LOCATION"] == 14
        assert table["android.permission.READ_CONTACTS"] == 12
        assert table["android.permission.GET_ACCOUNTS"] == 11
        assert table["android.permission.CAMERA"] == 6
        assert table["android.permission.READ_CALENDAR"] == 2
        assert table["android.permission.WRITE_CONTACTS"] == 1

    def test_location_permissions_dominate(self, result):
        table = result.table3()
        location = (table["android.permission.ACCESS_FINE_LOCATION"]
                    + table["android.permission.ACCESS_COARSE_LOCATION"])
        assert location > max(
            v for k, v in table.items() if "LOCATION" not in k
        )


class TestFig13:
    def test_flagged_and_confusion(self, result):
        tp, fp = result.incomplete_code_confusion()
        assert tp == 180
        assert fp == 15
        assert len(result.incomplete_code_apps()) == 195

    def test_234_records_32_retained(self, result):
        dist, retained = result.fig13()
        assert sum(dist.values()) == 234
        assert retained == 32

    def test_location_most_common(self, result):
        dist, _ = result.fig13()
        top_info, _count = dist.most_common(1)[0]
        assert top_info.value == "location"


class TestTableIV:
    def test_collect_use_retain_row(self, result):
        row = result.table4()["collect_use_retain"]
        assert row.tp == 41
        assert row.fp == 5
        assert row.precision == pytest.approx(0.891, abs=0.001)
        assert row.recall == pytest.approx(0.917, abs=0.02)
        assert row.f1 == pytest.approx(0.904, abs=0.02)

    def test_disclose_row(self, result):
        row = result.table4()["disclose"]
        assert row.tp == 39
        assert row.fp == 4
        assert row.precision == pytest.approx(0.907, abs=0.001)
        assert row.recall == pytest.approx(0.923, abs=0.02)
        assert row.f1 == pytest.approx(0.914, abs=0.02)

    def test_75_distinct_true_apps(self, result):
        assert len(result.inconsistent_true_apps()) == 75


class TestIncorrectDetail:
    def test_confusion(self, result):
        tp, fp = result.incorrect_confusion()
        assert tp == 4
        assert fp == 2
