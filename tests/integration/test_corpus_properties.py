"""Property-style checks over the generated corpus and checker.

Sampled app indexes: checking any corpus app never crashes, the report
serializes, and the ground-truth relationship holds for the calibrated
groups.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.corpus.plans import BACKGROUND, N_APPS


@pytest.fixture(scope="module")
def store_and_checker(full_store, checker):
    return full_store, checker


@given(index=st.integers(min_value=0, max_value=N_APPS - 1))
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_any_app_checks_cleanly(store_and_checker, index):
    store, checker = store_and_checker
    app = store.apps[index]
    report = checker.check(app.bundle)
    json.dumps(report.to_dict())
    # planted problems imply a detector fires, except the documented
    # false negatives
    plan = app.plan
    fn_only = plan.inconsistencies and all(
        spec.fn_verb for spec in plan.inconsistencies
    )
    if plan.gt_has_problem and not fn_only:
        assert report.has_problem, app.package


@given(index=st.sampled_from(list(BACKGROUND)))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_background_apps_are_clean(store_and_checker, index):
    store, checker = store_and_checker
    app = store.apps[index]
    report = checker.check(app.bundle)
    assert not report.has_problem, (app.package, report.summary())


@given(index=st.integers(min_value=0, max_value=N_APPS - 1))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_policy_text_recoverable(store_and_checker, index):
    from repro.policy.html_text import html_to_text
    store, _checker = store_and_checker
    app = store.apps[index]
    text = html_to_text(app.bundle.policy)
    assert "Privacy Policy" in text
    assert all(ord(ch) < 127 for ch in text)
