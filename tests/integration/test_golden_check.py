"""Golden snapshots of the ``check --json`` payload.

Pins the exact schema-version-1 report JSON for one seeded corpus app
per problem family (incomplete / incorrect / inconsistent).  Any
change to the payload -- a renamed key, a reordered list, a float
that moved -- shows up as a readable diff against the committed
snapshot instead of slipping into downstream consumers.

Legitimate payload changes: run ``pytest
tests/integration/test_golden_check.py --update-goldens`` to rewrite
the snapshots, review the diff, and bump ``SCHEMA_VERSION`` if a key
was renamed, removed, or changed meaning (see
``src/repro/core/schema.py``).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.checker import PPChecker
from repro.core.schema import versioned
from repro.memo import clear_caches, set_vector_enabled

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "goldens")
CASES = ("incomplete", "incorrect", "inconsistent")


def pick_case_apps(store) -> dict[str, object]:
    """The first seeded app exhibiting each planted problem family."""
    picks: dict[str, object] = {}
    for app in store.apps:
        plan = app.plan
        if "incomplete" not in picks and (plan.gt_incomplete_desc
                                          or plan.gt_incomplete_code):
            picks["incomplete"] = app
        elif "incorrect" not in picks and plan.gt_incorrect:
            picks["incorrect"] = app
        elif "inconsistent" not in picks and plan.inconsistencies:
            picks["inconsistent"] = app
        if len(picks) == len(CASES):
            break
    return picks


@pytest.fixture(scope="module")
def rendered(mid_store):
    """label -> the exact text ``check --json`` would print."""
    picks = pick_case_apps(mid_store)
    assert sorted(picks) == sorted(CASES)
    checker = PPChecker(lib_policy_source=mid_store.lib_policy)
    out = {}
    for label, app in picks.items():
        report = checker.check(app.bundle)
        assert getattr(report, label), (label, app.package)
        out[label] = json.dumps(versioned(report.to_dict()),
                                indent=2, sort_keys=True) + "\n"
    return out


@pytest.mark.parametrize("label", CASES)
def test_golden_payload(label, rendered, request):
    path = os.path.join(GOLDEN_DIR, f"{label}.json")
    if request.config.getoption("--update-goldens"):
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(rendered[label])
        return
    assert os.path.exists(path), (
        f"missing golden {path}; run pytest with --update-goldens"
    )
    with open(path, encoding="utf-8") as handle:
        assert handle.read() == rendered[label], (
            f"{label} payload drifted from its golden snapshot; if "
            f"intentional, rerun with --update-goldens and review "
            f"the diff"
        )


@pytest.mark.parametrize("label", CASES)
def test_golden_holds_on_scalar_plane(label, rendered, mid_store,
                                      request):
    """The goldens pin the *vectorized* (default) plane; the scalar
    ``REPRO_NO_VECTOR=1`` plane must print the same bytes."""
    if request.config.getoption("--update-goldens"):
        pytest.skip("goldens being rewritten")
    picks = pick_case_apps(mid_store)
    checker = PPChecker(lib_policy_source=mid_store.lib_policy)
    set_vector_enabled(False)
    clear_caches()
    try:
        report = checker.check(picks[label].bundle)
        scalar = json.dumps(versioned(report.to_dict()),
                            indent=2, sort_keys=True) + "\n"
    finally:
        set_vector_enabled(None)
        clear_caches()
    assert scalar == rendered[label]
    path = os.path.join(GOLDEN_DIR, f"{label}.json")
    with open(path, encoding="utf-8") as handle:
        assert handle.read() == scalar


@pytest.mark.parametrize("label", CASES)
def test_golden_is_versioned(label):
    path = os.path.join(GOLDEN_DIR, f"{label}.json")
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["schema_version"] == 1
    assert payload["has_problem"] is True
