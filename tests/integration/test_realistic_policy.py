"""Integration test on a long, realistic policy document.

Modelled on the paper's Fig. 1 excerpt (the Golf Live Extra policy):
mixed HTML, enumeration lists, conditionals, third-party sections,
disclaimers, boilerplate -- the pipeline must pull out exactly the
right statements and nothing from the noise.
"""

import pytest

from repro.policy.analyzer import PolicyAnalyzer
from repro.policy.sections import analyze_sections, split_sections
from repro.policy.verbs import VerbCategory

GOLF_POLICY = """
<html>
<head><title>Privacy Policy</title>
<style>h2 { color: #333; }</style>
<script>trackPageView();</script>
</head>
<body>
<h1>Golf Live Extra &mdash; Privacy Policy</h1>
<p>This privacy policy applies to all users of the app. Please read
it carefully before using the service.</p>

<h2>Information We Collect</h2>
<p>When you use the app, we may collect and process the following
information: your location; your IP address; your device
identifiers.</p>
<p>If you register an account, we may collect your email address and
your name.</p>
<p>We are allowed to access your photos when you attach them to a
scorecard.</p>

<h2>How We Use Information</h2>
<p>We use your location to show nearby courses and local weather.</p>
<p>Your usage data may be processed for analytics purposes.</p>

<h2>Sharing</h2>
<p>We may share your device identifiers with our advertising
partners.</p>
<p>We will not share your email address with anyone.</p>

<h2>Data Retention</h2>
<p>We will store your scorecards on our servers.</p>
<p>We will not store your real phone number.</p>

<h2>Third Party Services</h2>
<p>The app embeds advertising components that may collect information
under their own policies. We encourage you to review the privacy
practices of these third parties before disclosing any personally
identifiable information, as we are not responsible for the privacy
practices of those sites.</p>

<h2>Contact</h2>
<p>If you have any questions about this policy, please contact us at
privacy@golf.example.com.</p>
</body>
</html>
"""


@pytest.fixture(scope="module")
def analysis():
    return PolicyAnalyzer().analyze(GOLF_POLICY, html=True)


class TestExtraction:
    def test_enumeration_list_resources(self, analysis):
        collected = analysis.collected
        assert "location" in collected
        assert "ip address" in collected
        assert "device identifiers" in collected

    def test_conditional_registration_kept(self, analysis):
        # registering *an account in the app* is app behaviour (only
        # website-registration sentences are filtered)
        assert "email address" in analysis.collected
        assert "name" in analysis.collected

    def test_allowed_pattern(self, analysis):
        assert "photos" in analysis.collected

    def test_use_statements(self, analysis):
        assert "location" in analysis.used
        assert "usage data" in analysis.used

    def test_disclose_statements(self, analysis):
        assert "device identifiers" in analysis.disclosed

    def test_negative_disclose(self, analysis):
        assert "email address" in analysis.not_disclosed

    def test_retention(self, analysis):
        assert "scorecards" in analysis.retained
        assert "real phone number" in analysis.not_retained

    def test_disclaimer_found(self, analysis):
        assert analysis.has_third_party_disclaimer

    def test_no_contact_noise(self, analysis):
        for statement in analysis.statements:
            assert "questions" not in statement.resources


class TestSectioning:
    def test_topics_present(self):
        sections = split_sections(GOLF_POLICY, html=True)
        topics = {s.topic for s in sections}
        assert {"collection", "use", "sharing", "retention",
                "contact"} <= topics

    def test_statements_land_in_right_sections(self):
        sections = analyze_sections(GOLF_POLICY, html=True)
        by_topic = {s.topic: s for s in sections}
        collection_resources = {
            res
            for stmt in by_topic["collection"].statements
            for res in stmt.resources
        }
        assert "location" in collection_resources
        retention_resources = {
            res
            for stmt in by_topic["retention"].statements
            for res in stmt.resources
        }
        assert "scorecards" in retention_resources


class TestDetectorsOnRealisticPolicy:
    def test_covered_app_is_clean(self):
        """An app whose behaviour the policy covers raises nothing."""
        from repro.core.checker import AppBundle, PPChecker
        from tests.android.appbuilder import (
            LOCATION_API, add_activity, empty_apk, invoke,
        )
        apk = empty_apk(package="com.golf.live")
        add_activity(apk, instructions=[
            invoke(LOCATION_API, dest="v0"),
            invoke("android.telephony.TelephonyManager->getDeviceId()",
                   dest="v1"),
        ])
        report = PPChecker().check(AppBundle(
            package="com.golf.live", apk=apk, policy=GOLF_POLICY,
            description="Live golf scores and local weather.",
            policy_is_html=True,
        ))
        assert not report.has_problem, report.summary()

    def test_uncovered_behaviour_flagged(self):
        from repro.core.checker import AppBundle, PPChecker
        from repro.semantics.resources import InfoType
        from tests.android.appbuilder import (
            QUERY_API, URI_PARSE, add_activity, const_string,
            empty_apk, invoke,
        )
        apk = empty_apk(package="com.golf.live")
        add_activity(apk, instructions=[
            const_string("v0", "content://contacts"),
            invoke(URI_PARSE, dest="v1", args=("v0",)),
            invoke(QUERY_API, dest="v2", args=("v1",)),
        ])
        report = PPChecker().check(AppBundle(
            package="com.golf.live", apk=apk, policy=GOLF_POLICY,
            description="Live golf scores.", policy_is_html=True,
        ))
        assert any(
            f.info is InfoType.CONTACT
            for f in report.incomplete_via("code")
        )
