"""Golden pipeline tests: sentence -> (category, polarity, resources).

A table of realistic privacy-policy sentences (drawn from the shapes
seen in real policies and in the paper's figures) with the exact
statements the pipeline must extract.  These pin down the behaviour of
the tokenizer, tagger, parser, pattern matcher, negation analysis, and
element extraction working together.
"""

import pytest

from repro.policy.analyzer import PolicyAnalyzer
from repro.policy.verbs import VerbCategory

_ANALYZER = PolicyAnalyzer()

C = VerbCategory.COLLECT
U = VerbCategory.USE
R = VerbCategory.RETAIN
D = VerbCategory.DISCLOSE

# (sentence, expected set of (category, negated, resource))
GOLDEN = [
    ("We may collect your location.",
     {(C, False, "location")}),
    ("We collect your device id and your ip address.",
     {(C, False, "device id"), (C, False, "ip address")}),
    ("Our app gathers anonymous usage data.",
     {(C, False, "anonymous usage data")}),
    ("Your email address will be collected during registration.",
     {(C, False, "email address")}),
    ("We are allowed to access your photos.",
     {(C, False, "photos")}),
    ("We are able to obtain your calendar.",
     {(C, False, "calendar")}),
    ("The application may receive your precise location from your "
     "device.",
     {(C, False, "precise location")}),
    ("We use cookies to remember your preferences.",
     {(U, False, "cookies")}),
    ("Your contacts may be processed for friend suggestions.",
     {(U, False, "contacts")}),
    ("We will store your phone number on our servers.",
     {(R, False, "phone number")}),
    ("Your photos may be retained for thirty days.",
     {(R, False, "photos")}),
    ("We keep your account information to speed up sign-in.",
     {(R, False, "account information")}),
    ("We may share your device id with our advertising partners.",
     {(D, False, "device id")}),
    ("Your personal information may be disclosed to law enforcement.",
     {(D, False, "personal information")}),
    ("We will provide your email address to the payment processor.",
     {(D, False, "email address")}),
    ("We sell aggregated statistics to researchers.",
     {(D, False, "aggregated statistics")}),
    # negatives
    ("We will not collect your location.",
     {(C, True, "location")}),
    ("We do not gather your contacts.",
     {(C, True, "contacts")}),
    ("Your phone number will never be collected.",
     {(C, True, "phone number")}),
    ("We never store your photos.",
     {(R, True, "photos")}),
    ("We will not share your email address with anyone.",
     {(D, True, "email address")}),
    ("No personal information will be sold.",
     {(D, True, "personal information")}),
    ("We will never disclose your browsing history.",
     {(D, True, "browsing history")}),
    # coordination
    ("We collect and store your location.",
     {(C, False, "location"), (R, False, "location")}),
    ("We will not store your phone number, name and contacts.",
     {(R, True, "phone number"), (R, True, "name"),
      (R, True, "contacts")}),
    # "such as" exemplification
    ("We collect personal information such as your name and your "
     "email address.",
     {(C, False, "personal information"), (C, False, "name"),
      (C, False, "email address")}),
    ("We may share identifiers such as your device id with partners.",
     {(D, False, "device id")}),
    # conditionals kept (app behaviour)
    ("We collect your location when you use the app.",
     {(C, False, "location")}),
    ("If you enable sync, we store your notes on our servers.",
     {(R, False, "notes")}),
]

# sentences that must produce NO statement
REJECTED = [
    "You may share your photos with friends.",           # user action
    "Users can store their files in the cloud.",         # user action
    "We collect your email if you register an account "
    "through our website.",                               # website filter
    "Please review this policy carefully.",               # boilerplate
    "The weather looks nice today.",                      # irrelevant
    "We may update this policy from time to time.",       # no resource
    "We will improve our services continuously.",         # blacklisted obj
]


@pytest.mark.parametrize("sentence,expected", GOLDEN,
                         ids=[s[:45] for s, _ in GOLDEN])
def test_golden_extraction(sentence, expected):
    analysis = _ANALYZER.analyze(sentence)
    got = {
        (stmt.category, stmt.negated, res)
        for stmt in analysis.statements
        for res in stmt.resources
    }
    assert expected <= got, f"missing {expected - got}, got {got}"


@pytest.mark.parametrize("sentence", REJECTED,
                         ids=[s[:45] for s in REJECTED])
def test_rejected_sentences(sentence):
    analysis = _ANALYZER.analyze(sentence)
    assert analysis.statements == [], [
        (str(s.category), s.resources) for s in analysis.statements
    ]
