"""Readability-metric tests."""

import pytest

from repro.policy.readability import (
    ReadabilityReport,
    assess_readability,
    count_syllables,
)


class TestSyllables:
    @pytest.mark.parametrize("word,expected", [
        ("cat", 1),
        ("data", 2),
        ("location", 3),
        ("information", 4),
        ("privacy", 3),
        ("we", 1),
        ("share", 1),
        ("cookie", 2),
    ])
    def test_estimates(self, word, expected):
        assert count_syllables(word) == expected

    def test_minimum_one(self):
        assert count_syllables("x") == 1


class TestAssess:
    POLICY = ("We may collect your location. We will not share your "
              "contacts. Thank you for your trust.")

    def test_counts(self):
        report = assess_readability(self.POLICY)
        assert report.sentences == 3
        assert report.words == 16
        assert report.useful_sentences == 2

    def test_useful_fraction(self):
        report = assess_readability(self.POLICY)
        assert report.useful_fraction == pytest.approx(2 / 3)

    def test_flesch_in_sane_range(self):
        report = assess_readability(self.POLICY)
        assert 0 <= report.flesch_reading_ease <= 120
        assert -4 <= report.flesch_kincaid_grade <= 20

    def test_simple_beats_convoluted(self):
        simple = assess_readability("We collect your location.")
        convoluted = assess_readability(
            "Notwithstanding the aforementioned stipulations, "
            "information concerning geographical positioning shall "
            "be aggregated, processed, and subsequently transmitted "
            "to affiliated organizational entities."
        )
        assert simple.flesch_reading_ease > \
            convoluted.flesch_reading_ease
        assert simple.flesch_kincaid_grade < \
            convoluted.flesch_kincaid_grade

    def test_html_input(self):
        report = assess_readability(
            "<p>We may collect your location.</p>", html=True,
        )
        assert report.sentences == 1
        assert report.useful_sentences == 1

    def test_empty_policy(self):
        report = assess_readability("")
        assert report.sentences == 0
        assert report.flesch_reading_ease == 0.0
        assert report.useful_fraction == 0.0

    def test_corpus_policies_measurable(self, mid_store):
        # an app whose policy carries actual coverage statements
        app = next(a for a in mid_store.apps if a.plan.covered)
        report = assess_readability(app.bundle.policy, html=True)
        assert report.sentences > 3
        assert 0 < report.useful_fraction <= 1
