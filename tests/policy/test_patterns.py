"""Pattern-matching tests (Table II's five sample patterns & chains)."""

import pytest

from repro.nlp.parser import parse
from repro.policy.patterns import (
    SEED_PATTERNS,
    Pattern,
    match_all_verbs,
    match_any,
    match_pattern,
)
from repro.policy.verbs import VerbCategory


def p(name):
    return next(pat for pat in SEED_PATTERNS if pat.name == name)


class TestTableIIPatterns:
    def test_p1_active_voice(self):
        match = match_pattern(p("P1"), parse(
            "We are able to collect location information."
        ))
        # P1 requires the root itself to be a category verb
        assert match is None
        match = match_pattern(p("P1"), parse("We collect your location."))
        assert match is not None
        assert match.category is VerbCategory.COLLECT

    def test_p2_passive_voice(self):
        match = match_pattern(p("P2"), parse(
            "Your personal information will be used."
        ))
        assert match is not None
        assert match.category is VerbCategory.USE
        assert match.passive

    def test_p2_rejects_active(self):
        assert match_pattern(p("P2"),
                             parse("We use your data.")) is None

    def test_p3_allow_expression(self):
        match = match_pattern(p("P3"), parse(
            "We are allowed to access your personal information."
        ))
        assert match is not None
        assert match.verb_lemma == "access"
        assert match.category is VerbCategory.COLLECT

    def test_p4_ability_expression(self):
        match = match_pattern(p("P4"), parse(
            "We are able to collect location information."
        ))
        assert match is not None
        assert match.verb_lemma == "collect"

    def test_p5_purpose_expression(self):
        match = match_pattern(p("P5"), parse(
            "We use GPS to get your location."
        ))
        assert match is not None
        assert match.category is VerbCategory.USE

    def test_p5_requires_advcl(self):
        assert match_pattern(p("P5"),
                             parse("We use cookies.")) is None


class TestChainMatching:
    def test_learned_concrete_chain(self):
        pattern = Pattern("allow>access", ("allow", "access"),
                          category=VerbCategory.COLLECT)
        match = match_pattern(pattern, parse(
            "We are allowed to access your location."
        ))
        assert match is not None
        assert match.verb_lemma == "access"

    def test_chain_mismatch(self):
        pattern = Pattern("allow>access", ("allow", "access"),
                          category=VerbCategory.COLLECT)
        assert match_pattern(pattern, parse(
            "We are allowed to share your location."
        )) is None

    def test_category_verb_outside_sets_needs_explicit_category(self):
        bare = Pattern("x", ("display",))
        assert match_pattern(bare, parse(
            "We will display your name."
        )) is None
        tagged = Pattern("x", ("display",),
                         category=VerbCategory.DISCLOSE)
        assert match_pattern(tagged, parse(
            "We will display your name."
        )) is not None

    def test_custom_verb_set(self):
        verbs = frozenset({"collect"})
        assert match_pattern(p("P1"), parse("We gather your data."),
                             verbs) is None
        assert match_pattern(p("P1"), parse("We collect your data."),
                             verbs) is not None


class TestMatchHelpers:
    def test_match_any_first_pattern_wins(self):
        match = match_any(parse("We collect your location."))
        assert match is not None
        assert match.pattern.name == "P1"

    def test_match_any_none_for_irrelevant(self):
        assert match_any(parse("The weather looks nice today.")) is None

    def test_match_all_verbs_coordination(self):
        matches = match_all_verbs(parse(
            "We collect and store your location."
        ))
        categories = {m.category for m in matches}
        assert VerbCategory.COLLECT in categories
        assert VerbCategory.RETAIN in categories

    def test_match_all_verbs_empty_for_nonmatch(self):
        assert match_all_verbs(parse("Nice weather today.")) == []

    def test_empty_sentence(self):
        assert match_any(parse("")) is None
