"""Policy-diff tests."""

import pytest

from repro.policy.diff import diff_policies
from repro.policy.verbs import VerbCategory

V1 = ("We may collect your location. We will not store your "
      "contacts. We may share your device id with partners.")


class TestDiff:
    def test_identical_policies(self):
        diff = diff_policies(V1, V1)
        assert diff.unchanged
        assert not diff.weakened
        assert "no statement-level changes" in diff.describe()

    def test_coverage_gained(self):
        v2 = V1 + " We may collect your email address."
        diff = diff_policies(V1, v2)
        gained = diff.coverage_gained
        assert any(c.resource == "email address" for c in gained)
        assert not diff.weakened

    def test_coverage_lost_is_weakening(self):
        v2 = ("We will not store your contacts. "
              "We may share your device id with partners.")
        diff = diff_policies(V1, v2)
        assert any(
            c.resource == "location" and c.category is
            VerbCategory.COLLECT
            for c in diff.coverage_lost
        )
        assert diff.weakened

    def test_denial_withdrawn_is_weakening(self):
        v2 = ("We may collect your location. "
              "We may share your device id with partners.")
        diff = diff_policies(V1, v2)
        assert any(c.resource == "contacts"
                   for c in diff.denials_withdrawn)
        assert diff.weakened

    def test_denial_added(self):
        v2 = V1 + " We will never sell your email address."
        diff = diff_policies(V1, v2)
        assert any(c.resource == "email address"
                   for c in diff.denials_added)

    def test_the_path_scenario(self):
        """FTC v. Path: retention silently dropped from the policy."""
        old = ("We may collect your contacts. We will store your "
               "contacts on our servers.")
        new = "We may collect your contacts."
        diff = diff_policies(old, new)
        assert diff.weakened
        assert any(
            c.category is VerbCategory.RETAIN
            for c in diff.coverage_lost
        )

    def test_rewording_within_alias_is_a_change_textually(self):
        # the diff is textual by design; semantic matching is the
        # detectors' job
        v2 = V1.replace("your location", "your geographic location")
        diff = diff_policies(V1, v2)
        assert not diff.unchanged

    def test_describe_output(self):
        v2 = V1 + " We may collect your email address."
        text = diff_policies(V1, v2).describe()
        assert "now covers collect of 'email address'" in text

    def test_html_inputs(self):
        old = "<p>We may collect your location.</p>"
        new = ("<p>We may collect your location.</p>"
               "<p>We may collect your contacts.</p>")
        diff = diff_policies(old, new, html=True)
        assert any(c.resource == "contacts"
                   for c in diff.coverage_gained)
