"""AutoPPG policy-generation extension tests."""

import pytest

from repro.core.checker import AppBundle, PPChecker
from repro.policy.autoppg import generate_policy

from tests.android.appbuilder import (
    LOCATION_API,
    LOG_SINK,
    PKG,
    add_activity,
    add_class,
    const_string,
    empty_apk,
    invoke,
)


def _collecting_apk():
    apk = empty_apk()
    add_activity(apk, instructions=[
        invoke(LOCATION_API, dest="v0"),
        invoke(f"{PKG}.H->save(value)", args=("v0",)),
    ])
    add_class(apk, f"{PKG}.H", [("save", ("value",), [
        const_string("v1", "TAG"),
        invoke(LOG_SINK, args=("v1", "value")),
    ])])
    return apk


class TestGeneration:
    def test_mentions_collected_info(self):
        policy = generate_policy(_collecting_apk())
        assert "location" in policy.lower()
        assert "collect" in policy.lower()

    def test_mentions_retention(self):
        policy = generate_policy(_collecting_apk())
        assert "store" in policy.lower()

    def test_clean_app_policy(self):
        apk = empty_apk()
        add_activity(apk)
        policy = generate_policy(apk)
        assert "does not collect" in policy

    def test_lib_section(self):
        apk = _collecting_apk()
        add_class(apk, "com.flurry.android.Agent")
        policy = generate_policy(apk)
        assert "flurry" in policy
        assert "third party" in policy

    def test_custom_app_name(self):
        policy = generate_policy(_collecting_apk(), app_name="MyApp")
        assert policy.startswith("Privacy Policy for MyApp")


class TestClosedLoop:
    def test_ppchecker_finds_no_problems_in_generated_policy(self):
        """The defining property: a generated policy covers the app."""
        apk = _collecting_apk()
        policy = generate_policy(apk)
        checker = PPChecker()
        report = checker.check(AppBundle(
            package=PKG, apk=apk, policy=policy,
            description="A lovely app for everyone.",
        ))
        assert not report.is_incomplete, report.summary()
        assert not report.is_incorrect

    def test_closed_loop_over_corpus_sample(self, mid_store):
        """Regenerated policies fix the planted incomplete apps."""
        from repro.android.packer import unpack
        checker = PPChecker(lib_policy_source=mid_store.lib_policy)
        for app in mid_store.apps[64:80]:
            apk = app.bundle.apk
            if apk.packed:
                unpack(apk)
            policy = generate_policy(apk)
            report = checker.check(AppBundle(
                package=app.package, apk=apk, policy=policy,
                description=app.bundle.description,
            ))
            assert not report.incomplete_via("code"), app.package
