"""HTML-to-text extraction tests."""

from repro.policy.html_text import html_to_text


class TestHtmlToText:
    def test_plain_paragraphs(self):
        out = html_to_text("<p>We collect data.</p><p>We share it.</p>")
        assert "We collect data." in out
        assert "\n" in out

    def test_script_dropped(self):
        out = html_to_text(
            "<p>visible</p><script>var x = 'hidden';</script>"
        )
        assert "visible" in out
        assert "hidden" not in out

    def test_style_dropped(self):
        out = html_to_text("<style>p { color: red }</style><p>text</p>")
        assert "color" not in out

    def test_comments_dropped(self):
        out = html_to_text("<!-- secret --><p>public</p>")
        assert "secret" not in out

    def test_entities_decoded(self):
        out = html_to_text("<p>Terms &amp; Conditions &lt;2016&gt;</p>")
        assert "Terms & Conditions <2016>" in out

    def test_numeric_entities(self):
        assert "A" in html_to_text("&#65;")
        assert "A" in html_to_text("&#x41;")

    def test_non_ascii_removed(self):
        out = html_to_text("<p>café privacy ❤</p>")
        assert "é" not in out
        assert "privacy" in out

    def test_list_items_become_lines(self):
        out = html_to_text("<ul><li>your name</li><li>your id</li></ul>")
        assert "your name" in out
        assert "your id" in out

    def test_inline_tags_do_not_break_words(self):
        out = html_to_text("<p>we <b>collect</b> data</p>")
        assert "we" in out and "collect" in out and "data" in out

    def test_whitespace_collapsed(self):
        out = html_to_text("<p>a     b</p>")
        assert "a b" in out

    def test_plain_text_passthrough(self):
        assert html_to_text("no tags at all") == "no tags at all"

    def test_empty_input(self):
        assert html_to_text("") == ""

    def test_malformed_html_survives(self):
        out = html_to_text("<p>unclosed <div>nested<p>deep")
        assert "unclosed" in out and "deep" in out
