"""Sentence-selection (Step 4) tests."""

from repro.policy.selection import is_useful, select_sentences


class TestSelection:
    def test_useful_sentences_kept(self):
        selected = select_sentences([
            "We collect your location.",
            "The weather is nice.",
            "Your data will be shared with partners.",
        ])
        texts = [s.text for s in selected]
        assert "We collect your location." in texts
        assert "The weather is nice." not in texts
        assert len(selected) == 2

    def test_selected_carry_parse_and_matches(self):
        selected = select_sentences(["We collect your location."])
        assert selected[0].tree.root() is not None
        assert selected[0].matches

    def test_is_useful_positive(self):
        assert is_useful("We may share your email address.")

    def test_is_useful_negative(self):
        assert not is_useful("Please enjoy the app.")

    def test_is_useful_passive(self):
        assert is_useful("Your location will be collected.")

    def test_is_useful_allowed_pattern(self):
        assert is_useful("We are allowed to access your contacts.")

    def test_empty_list(self):
        assert select_sentences([]) == []

    def test_custom_verb_set(self):
        verbs = frozenset({"collect"})
        assert is_useful("We collect your data.", verbs=verbs)
        assert not is_useful("We share your data.", verbs=verbs)
