"""Internal-contradiction (PolicyLint-style) tests."""

import pytest

from repro.policy.analyzer import PolicyAnalyzer
from repro.policy.contradictions import detect_contradictions

_ANALYZER = PolicyAnalyzer()


def contradictions_of(policy):
    return detect_contradictions(_ANALYZER.analyze(policy))


class TestExact:
    def test_direct_contradiction(self):
        found = contradictions_of(
            "We may collect your contacts. "
            "We will not collect your contacts."
        )
        assert len(found) == 1
        assert found[0].kind == "exact"

    def test_alias_contradiction(self):
        found = contradictions_of(
            "We may collect your address book. "
            "We will not collect your contacts."
        )
        assert len(found) == 1

    def test_different_categories_not_contradictory(self):
        # using contacts while promising not to *disclose* them is
        # consistent
        found = contradictions_of(
            "We use your contacts to find friends. "
            "We will never share your contacts."
        )
        assert found == []

    def test_different_resources_not_contradictory(self):
        found = contradictions_of(
            "We may collect your location. "
            "We will not collect your contacts."
        )
        assert found == []

    def test_consistent_policy_clean(self):
        found = contradictions_of(
            "We may collect your location. "
            "We may share your device id with partners."
        )
        assert found == []


class TestSubsumption:
    def test_broad_denial_narrow_positive(self):
        found = contradictions_of(
            "We never collect personal information. "
            "We may collect your email address."
        )
        assert len(found) == 1
        assert found[0].kind == "subsumption"

    def test_generic_information_denial(self):
        found = contradictions_of(
            "We do not collect that information on our servers. "
            "We may collect your location."
        )
        # "information" is broad; location narrows it
        assert any(c.kind == "subsumption" for c in found)

    def test_narrow_denial_broad_positive_not_flagged(self):
        # denying a specific thing while collecting "information"
        # generally is not a subsumption conflict in this direction
        found = contradictions_of(
            "We will not collect your contacts. "
            "We may collect usage information."
        )
        assert all(c.kind != "subsumption" for c in found)


class TestReporting:
    def test_describe_mentions_both_sentences(self):
        found = contradictions_of(
            "We may collect your contacts. "
            "We will not collect your contacts."
        )
        text = found[0].describe()
        assert "asserts" in text and "denies" in text

    def test_corpus_clean_apps_have_no_contradictions(self, mid_store):
        analyzer = PolicyAnalyzer()
        for app in mid_store.apps[243:255]:
            analysis = analyzer.analyze(app.bundle.policy, html=True)
            # inconsistency plants deny resources the policy never
            # positively asserts -- no internal conflict
            assert detect_contradictions(analysis) == [], app.package

    def test_incorrect_corpus_app_flags_internal_tension(self,
                                                         full_store):
        """The birthdaylist-style app asserts use-of-contacts and
        denies collect-of-contacts -- not an exact contradiction (the
        categories differ), so the detector stays quiet; the zoho app
        has the same shape within one category pair."""
        from repro.corpus.plans import INCORRECT_TP
        analyzer = PolicyAnalyzer()
        app = full_store.apps[INCORRECT_TP.start]
        analysis = analyzer.analyze(app.bundle.policy, html=True)
        assert detect_contradictions(analysis) == []
