"""PolicyAnalysis / Statement model unit tests."""

import pytest

from repro.policy.model import PolicyAnalysis, Statement
from repro.policy.verbs import VerbCategory


def _stmt(category, resources, negated=False):
    return Statement(
        sentence="s", category=category, verb=category.value,
        executor="we", resources=tuple(resources), negated=negated,
    )


@pytest.fixture
def analysis():
    a = PolicyAnalysis()
    a.statements = [
        _stmt(VerbCategory.COLLECT, ["location", "device id"]),
        _stmt(VerbCategory.USE, ["cookies"]),
        _stmt(VerbCategory.RETAIN, ["photos"]),
        _stmt(VerbCategory.DISCLOSE, ["device id"]),
        _stmt(VerbCategory.COLLECT, ["contacts"], negated=True),
        _stmt(VerbCategory.DISCLOSE, ["email address"], negated=True),
    ]
    return a


class TestSets:
    def test_category_sets(self, analysis):
        assert analysis.collected == {"location", "device id"}
        assert analysis.used == {"cookies"}
        assert analysis.retained == {"photos"}
        assert analysis.disclosed == {"device id"}

    def test_negative_sets(self, analysis):
        assert analysis.not_collected == {"contacts"}
        assert analysis.not_disclosed == {"email address"}
        assert analysis.not_used == set()
        assert analysis.not_retained == set()

    def test_all_positive_union(self, analysis):
        assert analysis.all_positive() == {
            "location", "device id", "cookies", "photos",
        }

    def test_all_negative_union(self, analysis):
        assert analysis.all_negative() == {"contacts", "email address"}

    def test_statement_partitions(self, analysis):
        assert len(analysis.positive_statements()) == 4
        assert len(analysis.negative_statements()) == 2

    def test_resources_selector(self, analysis):
        assert analysis.resources(VerbCategory.COLLECT) == {
            "location", "device id",
        }
        assert analysis.resources(VerbCategory.COLLECT,
                                  negated=True) == {"contacts"}

    def test_empty_analysis(self):
        empty = PolicyAnalysis()
        assert empty.all_positive() == set()
        assert empty.all_negative() == set()
        assert not empty.has_third_party_disclaimer


class TestStatement:
    def test_mentions(self):
        stmt = _stmt(VerbCategory.COLLECT, ["location"])
        assert stmt.mentions("location")
        assert not stmt.mentions("contacts")

    def test_frozen(self):
        stmt = _stmt(VerbCategory.COLLECT, ["location"])
        with pytest.raises(AttributeError):
            stmt.negated = True
