"""Verb-category and blacklist tests."""

import pytest

from repro.policy.verbs import (
    ALL_CATEGORY_VERBS,
    CATEGORY_VERBS,
    OBJECT_BLACKLIST,
    SEED_VERBS,
    SUBJECT_BLACKLIST,
    VERB_BLACKLIST,
    VerbCategory,
    verb_category,
)


class TestCategories:
    @pytest.mark.parametrize("verb,category", [
        ("collect", VerbCategory.COLLECT),
        ("gather", VerbCategory.COLLECT),
        ("access", VerbCategory.COLLECT),
        ("receive", VerbCategory.COLLECT),
        ("use", VerbCategory.USE),
        ("process", VerbCategory.USE),
        ("retain", VerbCategory.RETAIN),
        ("store", VerbCategory.RETAIN),
        ("keep", VerbCategory.RETAIN),
        ("log", VerbCategory.RETAIN),
        ("disclose", VerbCategory.DISCLOSE),
        ("share", VerbCategory.DISCLOSE),
        ("transmit", VerbCategory.DISCLOSE),
        ("sell", VerbCategory.DISCLOSE),
    ])
    def test_verb_category(self, verb, category):
        assert verb_category(verb) is category

    def test_display_is_not_categorized(self):
        # the paper's false-negative verb, deliberately absent
        assert verb_category("display") is None

    def test_unknown_verb_none(self):
        assert verb_category("fly") is None

    def test_categories_disjoint(self):
        seen = set()
        for verbs in CATEGORY_VERBS.values():
            assert not (verbs & seen)
            seen |= verbs

    def test_all_category_verbs_union(self):
        union = set()
        for verbs in CATEGORY_VERBS.values():
            union |= verbs
        assert union == set(ALL_CATEGORY_VERBS)

    def test_seed_is_one_verb_per_category(self):
        assert set(SEED_VERBS) == set(VerbCategory)
        for verbs in SEED_VERBS.values():
            assert len(verbs) == 1


class TestBlacklists:
    def test_subject_blacklist_has_paper_entries(self):
        for word in ("you", "user", "visitor"):
            assert word in SUBJECT_BLACKLIST

    def test_verb_blacklist_has_paper_entries(self):
        for word in ("have", "make"):
            assert word in VERB_BLACKLIST

    def test_object_blacklist_has_paper_entries(self):
        assert "services" in OBJECT_BLACKLIST

    def test_we_is_not_blacklisted(self):
        assert "we" not in SUBJECT_BLACKLIST

    def test_blacklist_disjoint_from_categories(self):
        assert not (VERB_BLACKLIST & ALL_CATEGORY_VERBS)
