"""Bootstrapping (Step 3) tests: discovery, blacklists, Eq. 1 scoring."""

import math

import pytest

from repro.policy.bootstrap import (
    Bootstrapper,
    LabeledSentence,
    ScoredPattern,
    top_n_patterns,
)
from repro.policy.patterns import Pattern
from repro.policy.verbs import VerbCategory


def _corpus():
    pos = [
        ("we collect your location.", VerbCategory.COLLECT),
        ("we collect your contacts.", VerbCategory.COLLECT),
        ("we collect your device id.", VerbCategory.COLLECT),
        ("we use your device id.", VerbCategory.USE),
        ("we use your location.", VerbCategory.USE),
        ("we retain your contacts.", VerbCategory.RETAIN),
        ("we disclose your location.", VerbCategory.DISCLOSE),
        ("we are allowed to access your location.", VerbCategory.COLLECT),
        ("we are allowed to access your contacts.", VerbCategory.COLLECT),
        ("we are able to gather your device id.", VerbCategory.COLLECT),
    ]
    neg = [
        "you can manage your settings.",
        "the policy applies to everyone.",
        "our team loves great design.",
    ]
    corpus = [LabeledSentence(t, True, c) for t, c in pos]
    corpus += [LabeledSentence(t, False) for t in neg]
    return corpus


@pytest.fixture(scope="module")
def bootstrapper():
    return Bootstrapper(_corpus())


class TestDiscovery:
    def test_seed_patterns_cover_categories(self, bootstrapper):
        seeds = bootstrapper.seed_patterns()
        assert {p.category for p in seeds} == set(VerbCategory)

    def test_learns_fig7_style_pattern(self, bootstrapper):
        patterns = bootstrapper.run()
        chains = {p.chain for p in patterns}
        assert ("allow", "access") in chains

    def test_learns_able_chain(self, bootstrapper):
        patterns = bootstrapper.run()
        chains = {p.chain for p in patterns}
        assert ("able", "gather") in chains

    def test_terminates(self, bootstrapper):
        patterns = bootstrapper.run()
        assert len(patterns) < 100

    def test_blacklisted_verbs_not_learned(self):
        corpus = _corpus() + [
            LabeledSentence("we have your location.", True,
                            VerbCategory.COLLECT),
        ]
        patterns = Bootstrapper(corpus).run()
        assert ("have",) not in {p.chain for p in patterns}

    def test_user_subject_sentences_ignored_when_blacklisted(self):
        corpus = _corpus() + [
            LabeledSentence("you share your photos with friends.", True,
                            VerbCategory.DISCLOSE),
        ]
        with_bl = Bootstrapper(corpus, use_blacklists=True).run()
        without_bl = Bootstrapper(corpus, use_blacklists=False).run()
        assert len(without_bl) >= len(with_bl)


class TestScoring:
    def test_eq1_accuracy(self):
        sp = ScoredPattern(Pattern("x", ("collect",)), pos=9, neg=1,
                           unk=10)
        assert sp.accuracy == pytest.approx(0.9)

    def test_eq1_confidence(self):
        sp = ScoredPattern(Pattern("x", ("collect",)), pos=9, neg=1,
                           unk=10)
        assert sp.confidence == pytest.approx((9 - 1) / 20)

    def test_score_formula(self):
        sp = ScoredPattern(Pattern("x", ("collect",)), pos=9, neg=1,
                           unk=10)
        assert sp.score == pytest.approx(sp.confidence * math.log(10))

    def test_zero_pos_scores_neg_inf(self):
        sp = ScoredPattern(Pattern("x", ("collect",)), pos=0, neg=3,
                           unk=0)
        assert sp.score == float("-inf")

    def test_scoring_orders_frequent_first(self, bootstrapper):
        scored = bootstrapper.score(bootstrapper.run())
        assert scored[0].pos >= scored[-1].pos or scored[
            0
        ].score >= scored[-1].score

    def test_top_n_drops_unusable(self, bootstrapper):
        scored = bootstrapper.score(bootstrapper.run())
        top = top_n_patterns(scored, 1000)
        assert all(
            sp.pattern in top or sp.score == float("-inf")
            for sp in scored
        )

    def test_top_n_limits(self, bootstrapper):
        scored = bootstrapper.score(bootstrapper.run())
        assert len(top_n_patterns(scored, 2)) == 2
