"""Policy-analyzer pipeline tests (the six steps end to end)."""

import pytest

from repro.policy.analyzer import PolicyAnalyzer, detect_disclaimer
from repro.policy.verbs import VerbCategory

POLICY = """
<html><body>
<h1>Privacy Policy</h1>
<p>When you use our app, we may collect and process your location,
IP address and device identifiers.</p>
<p>We may share your personal information with advertising partners.</p>
<p>We will not store your real phone number, name and contacts.</p>
<p>We are allowed to access your contact list.</p>
<p>Your preferences may be retained on our servers.</p>
</body></html>
"""


@pytest.fixture(scope="module")
def analysis(analyzer):
    return analyzer.analyze(POLICY, html=True)


class TestPipeline:
    def test_sentences_extracted(self, analysis):
        assert len(analysis.sentences) >= 5

    def test_collect_statements(self, analysis):
        assert "location" in analysis.collected
        assert "contact list" in analysis.collected

    def test_use_statements(self, analysis):
        # "collect and process" coordination yields a use statement
        assert "location" in analysis.used

    def test_disclose_statements(self, analysis):
        assert "personal information" in analysis.disclosed

    def test_retain_statements(self, analysis):
        assert "preferences" in analysis.retained

    def test_negative_statements(self, analysis):
        assert "real phone number" in analysis.not_retained
        assert "contacts" in analysis.not_retained

    def test_all_positive_union(self, analysis):
        union = analysis.all_positive()
        assert "location" in union
        assert "personal information" in union
        assert "real phone number" not in union

    def test_all_negative_union(self, analysis):
        assert "contacts" in analysis.all_negative()

    def test_statement_partition(self, analysis):
        total = (len(analysis.positive_statements())
                 + len(analysis.negative_statements()))
        assert total == len(analysis.statements)

    def test_no_disclaimer_here(self, analysis):
        assert not analysis.has_third_party_disclaimer


class TestDisclaimer:
    def test_paper_disclaimer_detected(self):
        sentences = [
            "We encourage you to review the privacy practices of these "
            "third parties before disclosing any personally "
            "identifiable information, as we are not responsible for "
            "the privacy practices of those sites."
        ]
        assert detect_disclaimer(sentences)

    def test_not_responsible_plus_third(self):
        assert detect_disclaimer(
            ["We are not responsible for third party conduct."]
        )

    def test_ordinary_text_no_disclaimer(self):
        assert not detect_disclaimer(["We collect your location."])

    def test_analyzer_flags_disclaimer(self, analyzer):
        analysis = analyzer.analyze(
            "We are not responsible for the privacy practices of "
            "those sites."
        )
        assert analysis.has_third_party_disclaimer


class TestAnalyzerBehaviour:
    def test_plain_text_input(self, analyzer):
        analysis = analyzer.analyze("We collect your location.")
        assert "location" in analysis.collected

    def test_cache_returns_same_object(self, analyzer):
        first = analyzer.analyze("We collect your location.")
        second = analyzer.analyze("We collect your location.")
        assert first is second

    def test_empty_policy(self, analyzer):
        analysis = analyzer.analyze("")
        assert analysis.statements == []
        assert analysis.all_positive() == set()

    def test_boilerplate_produces_no_statements(self, analyzer):
        analysis = analyzer.analyze(
            "This privacy policy applies to all users of the app. "
            "We may update this policy from time to time. "
            "If you have any questions about this policy, please "
            "contact us."
        )
        assert analysis.statements == []

    def test_module_level_helper(self):
        from repro.policy.analyzer import analyze_policy
        analysis = analyze_policy("We collect your location.")
        assert "location" in analysis.collected
