"""Information-element extraction (Step 6) tests."""

import pytest

from repro.nlp.parser import parse
from repro.policy.extraction import (
    extract_constraint,
    extract_executor,
    extract_resources,
    extract_statement,
)
from repro.policy.patterns import match_any
from repro.policy.verbs import VerbCategory


def matched(sentence):
    tree = parse(sentence)
    match = match_any(tree)
    assert match is not None, sentence
    return tree, match


class TestResources:
    def test_direct_object(self):
        tree, match = matched("We will collect your location.")
        assert extract_resources(tree, match) == ["location"]

    def test_modifier_kept(self):
        tree, match = matched("We collect your precise location.")
        assert extract_resources(tree, match) == ["precise location"]

    def test_possessive_stripped(self):
        tree, match = matched("We collect your location.")
        assert "your" not in extract_resources(tree, match)[0]

    def test_coordinated_objects(self):
        tree, match = matched(
            "We will not store your phone number, name and contacts."
        )
        resources = extract_resources(tree, match)
        assert "phone number" in resources
        assert "name" in resources
        assert "contacts" in resources

    def test_passive_subject_is_resource(self):
        tree, match = matched("Your personal information will be used.")
        assert extract_resources(tree, match) == ["personal information"]

    def test_about_preposition_extends(self):
        tree, match = matched(
            "We collect information about your location."
        )
        resources = extract_resources(tree, match)
        assert "location" in resources

    def test_blacklisted_objects_dropped(self):
        tree, match = matched("We use cookies to improve our services.")
        resources = extract_resources(tree, match)
        assert "services" not in resources
        assert "cookies" in resources

    def test_shared_object_across_conjunction(self):
        tree = parse("We collect and store your location.")
        from repro.policy.patterns import match_all_verbs
        matches = match_all_verbs(tree)
        for match in matches:
            assert "location" in extract_resources(tree, match)

    def test_colon_enumeration(self):
        tree, match = matched(
            "we will collect the following information: your name; "
            "your ip address; your device id."
        )
        resources = extract_resources(tree, match)
        assert "name" in resources
        assert "ip address" in resources
        assert "device id" in resources


class TestExecutor:
    def test_active_subject(self):
        tree, match = matched("We collect your location.")
        assert extract_executor(tree, match) == "we"

    def test_passive_by_agent(self):
        tree, match = matched(
            "Your location will be collected by the application."
        )
        assert extract_executor(tree, match) == "application"

    def test_missing_subject(self):
        tree, match = matched("collect your location.")
        assert extract_executor(tree, match) in ("", "location")


class TestConstraint:
    def test_if_precondition(self):
        text, kind = extract_constraint(parse(
            "If you register an account, we may collect your email."
        ))
        assert kind == "pre"
        assert "register" in text

    def test_when_postcondition(self):
        text, kind = extract_constraint(parse(
            "We collect your location when you use the app."
        ))
        assert kind == "post"
        assert "use" in text

    def test_unless_precondition(self):
        text, kind = extract_constraint(parse(
            "We share your data unless you opt out."
        ))
        assert kind == "pre"

    def test_no_constraint(self):
        text, kind = extract_constraint(parse(
            "We collect your location."
        ))
        assert text is None and kind is None


class TestStatement:
    def test_full_statement(self):
        tree, match = matched("We will not collect your location.")
        stmt = extract_statement(tree, match,
                                 "We will not collect your location.")
        assert stmt is not None
        assert stmt.category is VerbCategory.COLLECT
        assert stmt.negated
        assert stmt.resources == ("location",)
        assert stmt.executor == "we"

    def test_user_subject_filtered(self):
        tree, match = matched("You may share your photos with friends.")
        assert extract_statement(tree, match, "x") is None

    def test_website_registration_constraint_filtered(self):
        sentence = ("We collect your email if you register an account "
                    "through our website.")
        tree, match = matched(sentence)
        assert extract_statement(tree, match, sentence) is None

    def test_website_visit_constraint_filtered(self):
        sentence = ("We collect your ip address when you visit our "
                    "website.")
        tree, match = matched(sentence)
        assert extract_statement(tree, match, sentence) is None

    def test_app_constraint_not_filtered(self):
        sentence = "We collect your location when you use the app."
        tree, match = matched(sentence)
        assert extract_statement(tree, match, sentence) is not None

    def test_no_resources_means_no_statement(self):
        tree = parse("We may collect.")
        match = match_any(tree)
        if match is not None:
            assert extract_statement(tree, match, "x") is None

    def test_statement_mentions(self):
        tree, match = matched("We collect your location.")
        stmt = extract_statement(tree, match, "s")
        assert stmt.mentions("location")
        assert not stmt.mentions("contacts")
