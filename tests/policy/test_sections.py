"""Policy-sectioning tests."""

import pytest

from repro.policy.sections import (
    analyze_sections,
    classify_heading,
    missing_topics,
    split_sections,
)

HTML_POLICY = """
<html><body>
<h1>Privacy Policy</h1>
<h2>Information We Collect</h2>
<p>We may collect your location and your device id.</p>
<h2>How We Use It</h2>
<p>We use your location to provide the service.</p>
<h2>Sharing With Third Parties</h2>
<p>We may share your device id with advertisers.</p>
<h2>Data Retention</h2>
<p>We will store your location for thirty days.</p>
<h2>Contact Us</h2>
<p>Write to privacy@example.com with questions.</p>
</body></html>
"""

TEXT_POLICY = """INFORMATION WE COLLECT
We may collect your location.

3. Sharing
We may share your device id with advertisers.

Contact
Write to us anytime.
"""


class TestHeadingClassification:
    @pytest.mark.parametrize("title,topic", [
        ("Information We Collect", "collection"),
        ("What We Gather", "collection"),
        ("How We Use Your Data", "use"),
        ("Data Retention", "retention"),
        ("Sharing With Third Parties", "sharing"),
        ("Disclosure", "sharing"),
        ("Security", "security"),
        ("Children's Privacy", "children"),
        ("Your Choices", "choices"),
        ("Changes To This Policy", "changes"),
        ("Contact Us", "contact"),
        ("Miscellaneous", "other"),
    ])
    def test_topics(self, title, topic):
        assert classify_heading(title) == topic


class TestSplitting:
    def test_html_sections(self):
        sections = split_sections(HTML_POLICY, html=True)
        titles = [s.title for s in sections]
        assert "Information We Collect" in titles
        assert "Data Retention" in titles

    def test_html_topics_assigned(self):
        sections = split_sections(HTML_POLICY, html=True)
        topics = {s.topic for s in sections}
        assert {"collection", "use", "sharing", "retention",
                "contact"} <= topics

    def test_text_sections(self):
        sections = split_sections(TEXT_POLICY)
        topics = {s.topic for s in sections}
        assert "collection" in topics
        assert "sharing" in topics

    def test_unstructured_falls_back_to_single_section(self):
        sections = split_sections("We collect your location. "
                                  "We share it.")
        assert len(sections) == 1
        assert sections[0].topic == "other"

    def test_section_sentences(self):
        sections = split_sections(HTML_POLICY, html=True)
        collect = next(s for s in sections if s.topic == "collection")
        assert any("location" in s for s in collect.sentences())


class TestAnalysis:
    def test_statements_attributed(self):
        sections = analyze_sections(HTML_POLICY, html=True)
        sharing = next(s for s in sections if s.topic == "sharing")
        assert any("device id" in stmt.resources
                   for stmt in sharing.statements)

    def test_contact_section_has_no_statements(self):
        sections = analyze_sections(HTML_POLICY, html=True)
        contact = next(s for s in sections if s.topic == "contact")
        assert contact.statements == []


class TestAudit:
    def test_complete_policy_has_no_missing_topics(self):
        sections = split_sections(HTML_POLICY, html=True)
        assert missing_topics(sections) == set()

    def test_missing_retention_detected(self):
        sections = split_sections(
            "<h2>Information We Collect</h2><p>x</p>"
            "<h2>Sharing</h2><p>y</p>", html=True,
        )
        assert missing_topics(sections) == {"retention"}

    def test_custom_required_topics(self):
        sections = split_sections(HTML_POLICY, html=True)
        assert missing_topics(sections,
                              required=("children",)) == {"children"}
