"""Pattern-persistence tests."""

import pytest

from repro.policy.bootstrap import Bootstrapper, LabeledSentence, top_n_patterns
from repro.policy.pattern_store import (
    load_patterns,
    pattern_from_dict,
    pattern_to_dict,
    save_patterns,
)
from repro.policy.patterns import Pattern
from repro.policy.verbs import VerbCategory
from repro.policy.bootstrap import ScoredPattern


def _scored():
    return [
        ScoredPattern(Pattern("seed:collect", ("collect",),
                              category=VerbCategory.COLLECT),
                      pos=10, neg=1, unk=5),
        ScoredPattern(Pattern("allow>access", ("allow", "access"),
                              voice="passive",
                              category=VerbCategory.COLLECT),
                      pos=4, neg=0, unk=5),
    ]


class TestRoundTrip:
    def test_dict_roundtrip(self):
        original = _scored()[1]
        restored = pattern_from_dict(pattern_to_dict(original))
        assert restored.pattern == original.pattern
        assert (restored.pos, restored.neg, restored.unk) == (4, 0, 5)

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "patterns.json")
        save_patterns(_scored(), path)
        restored = load_patterns(path)
        assert len(restored) == 2
        assert {sp.pattern.name for sp in restored} == {
            "seed:collect", "allow>access",
        }

    def test_loaded_patterns_sorted_by_score(self, tmp_path):
        path = str(tmp_path / "patterns.json")
        save_patterns(list(reversed(_scored())), path)
        restored = load_patterns(path)
        scores = [sp.score for sp in restored]
        assert scores == sorted(scores, reverse=True)

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "patterns": []}')
        with pytest.raises(ValueError):
            load_patterns(str(path))

    def test_bootstrap_to_store_to_analyzer(self, tmp_path):
        """Full loop: learn, persist, reload, analyze."""
        corpus = [
            LabeledSentence("we collect your location.", True,
                            VerbCategory.COLLECT),
            LabeledSentence("we share your location.", True,
                            VerbCategory.DISCLOSE),
            LabeledSentence("the policy applies to everyone.", False),
        ]
        bootstrapper = Bootstrapper(corpus)
        scored = bootstrapper.score(bootstrapper.run())
        path = str(tmp_path / "learned.json")
        save_patterns(scored, path)
        patterns = top_n_patterns(load_patterns(path), 10)

        from repro.policy.analyzer import PolicyAnalyzer
        analyzer = PolicyAnalyzer(patterns=tuple(patterns))
        analysis = analyzer.analyze("We collect your contacts.")
        assert "contacts" in analysis.collected
