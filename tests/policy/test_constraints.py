"""Constraint-modelling extension tests (Discussion, future work #1)."""

import pytest

from repro.policy.analyzer import PolicyAnalyzer
from repro.policy.constraints import (
    ConstraintKind,
    adjust_analysis,
    adjust_statement,
    classify_constraint,
)

_ANALYZER = PolicyAnalyzer()


class TestClassification:
    @pytest.mark.parametrize("text,kind", [
        ("without your consent", ConstraintKind.CONSENT),
        ("unless you agree to it", ConstraintKind.CONSENT),
        ("if you do not allow us to", ConstraintKind.CONSENT),
        ("unless you opt out", ConstraintKind.OPT_OUT),
        ("unless you disable tracking", ConstraintKind.OPT_OUT),
        ("if you register for the service", ConstraintKind.USER_ACTION),
        ("when you use the app", ConstraintKind.USER_ACTION),
        ("by third parties", ConstraintKind.THIRD_PARTY),
        ("to improve the service", ConstraintKind.PURPOSE),
        ("for analytics", ConstraintKind.PURPOSE),
    ])
    def test_kinds(self, text, kind):
        assert classify_constraint(text) is kind

    def test_none_for_plain_text(self):
        assert classify_constraint("on your device") is \
            ConstraintKind.NONE

    def test_none_for_empty(self):
        assert classify_constraint(None) is ConstraintKind.NONE
        assert classify_constraint("") is ConstraintKind.NONE


class TestAdjustment:
    def _statement(self, sentence):
        analysis = _ANALYZER.analyze(sentence)
        assert analysis.statements, sentence
        return analysis.statements[0]

    def test_consent_denial_becomes_conditional_positive(self):
        stmt = self._statement(
            "We will not share your location with partners without "
            "your consent."
        )
        assert stmt.negated
        adjusted = adjust_statement(stmt)
        assert not adjusted.negated
        assert adjusted.constraint_kind == "consent"

    def test_plain_denial_unchanged(self):
        stmt = self._statement("We will not share your location.")
        assert adjust_statement(stmt) is stmt

    def test_positive_statement_unchanged_by_consent(self):
        stmt = self._statement(
            "We may share your location with your consent."
        )
        adjusted = adjust_statement(stmt)
        assert not adjusted.negated

    def test_opt_out_marked(self):
        stmt = self._statement(
            "We collect your usage data unless you opt out."
        )
        adjusted = adjust_statement(stmt)
        assert adjusted.constraint_kind == "opt_out"
        assert not adjusted.negated


class TestAnalysisAdjustment:
    def test_consent_denial_moves_sets(self):
        analysis = _ANALYZER.analyze(
            "We will not share your location with partners without "
            "your consent."
        )
        assert "location" in analysis.all_negative()
        adjusted = adjust_analysis(analysis)
        assert "location" not in adjusted.all_negative()
        assert "location" in adjusted.all_positive()

    def test_third_party_statement_dropped(self):
        analysis = _ANALYZER.analyze(
            "Your location may be collected by third parties."
        )
        assert analysis.statements
        adjusted = adjust_analysis(analysis)
        assert adjusted.statements == []

    def test_disclaimer_flag_preserved(self):
        analysis = _ANALYZER.analyze(
            "We are not responsible for the privacy practices of "
            "those sites."
        )
        assert adjust_analysis(analysis).has_third_party_disclaimer

    def test_plain_analysis_unchanged(self):
        analysis = _ANALYZER.analyze("We may collect your location.")
        adjusted = adjust_analysis(analysis)
        assert adjusted.all_positive() == analysis.all_positive()

    def test_adjustment_prevents_false_incorrect(self):
        """End to end: a consent-scoped denial should not trip the
        incorrect detector once constraints are modelled."""
        from repro.core.incorrect import detect_incorrect_via_code
        from repro.core.matching import InfoMatcher
        from repro.android.static_analysis import analyze_apk
        from tests.android.appbuilder import (
            LOCATION_API, add_activity, empty_apk, invoke,
        )
        apk = empty_apk()
        add_activity(apk, instructions=[invoke(LOCATION_API, dest="v0")])
        static = analyze_apk(apk)
        matcher = InfoMatcher()
        analysis = _ANALYZER.analyze(
            "We will not collect your location without your consent."
        )
        with_plain = detect_incorrect_via_code(analysis, static, matcher)
        with_adjusted = detect_incorrect_via_code(
            adjust_analysis(analysis), static, matcher,
        )
        assert with_plain  # the base pipeline flags it (paper behaviour)
        assert not with_adjusted  # the extension fixes the context FP
