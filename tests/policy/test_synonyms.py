"""Verb-synonym expansion tests (Discussion, future work #2)."""

import pytest

from repro.policy.analyzer import PolicyAnalyzer
from repro.policy.synonyms import (
    expanded_pattern_set,
    expanded_verbs,
    synonym_patterns,
)
from repro.policy.verbs import ALL_CATEGORY_VERBS, VerbCategory


@pytest.fixture(scope="module")
def expanded_analyzer():
    return PolicyAnalyzer(patterns=expanded_pattern_set())


class TestExpansion:
    def test_display_in_disclose(self):
        assert "display" in expanded_verbs()[VerbCategory.DISCLOSE]

    def test_harvest_in_collect(self):
        assert "harvest" in expanded_verbs()[VerbCategory.COLLECT]

    def test_no_overlap_with_curated_sets(self):
        for verbs in expanded_verbs().values():
            assert not (verbs & ALL_CATEGORY_VERBS)

    def test_excluded_words_absent(self):
        all_expanded = set()
        for verbs in expanded_verbs().values():
            all_expanded |= verbs
        assert "review" not in all_expanded
        assert "record" not in all_expanded

    def test_patterns_carry_categories(self):
        for pattern in synonym_patterns():
            assert pattern.category is not None
            assert len(pattern.chain) == 1


class TestFalseNegativeFix:
    def test_paper_fn_sentence_now_matched(self, expanded_analyzer):
        """The com.starlitt.disableddating sentence the paper missed."""
        analysis = expanded_analyzer.analyze(
            "We will never display any of your personal information."
        )
        assert analysis.not_disclosed == {"personal information"}

    def test_base_analyzer_still_misses_it(self, analyzer):
        analysis = analyzer.analyze(
            "We will never display any of your personal information."
        )
        assert analysis.statements == []

    def test_harvest_denial_matched(self, expanded_analyzer):
        analysis = expanded_analyzer.analyze(
            "We will never harvest your contacts."
        )
        assert "contacts" in analysis.not_collected

    def test_view_denial_matched(self, expanded_analyzer):
        analysis = expanded_analyzer.analyze(
            "We will never view your location."
        )
        assert "location" in analysis.not_collected

    def test_positive_synonym_statement(self, expanded_analyzer):
        analysis = expanded_analyzer.analyze(
            "We may publish your name on leaderboards."
        )
        assert "name" in analysis.disclosed

    def test_fixes_planted_fn_apps(self, full_store):
        """The 7 planted FN apps become detectable with expansion."""
        from repro.core.checker import PPChecker
        from repro.corpus.plans import INCONSISTENT_FN

        expanded = PPChecker(
            lib_policy_source=full_store.lib_policy,
            policy_analyzer=PolicyAnalyzer(
                patterns=expanded_pattern_set()
            ),
        )
        fixed = 0
        for index in INCONSISTENT_FN:
            app = full_store.apps[index]
            if expanded.check(app.bundle).is_inconsistent:
                fixed += 1
        assert fixed == len(list(INCONSISTENT_FN))
