"""Every committed BENCH_*.json carries the payload schema version.

The benchmark emitters (pipeline, service, nlp, scale) stamp their output
through :func:`repro.core.schema.versioned`; this suite pins the
committed copies -- repo root and ``benchmarks/baselines/`` -- to the
shared validator so a benchmark file can never silently drift from
the payload contract ``benchmarks/compare.py`` relies on.
"""

import json
import os

import pytest

from repro.core.schema import (
    SCHEMA_VERSION,
    validate_versioned,
    versioned,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
BENCH_FILES = ("BENCH_nlp.json", "BENCH_pipeline.json",
               "BENCH_service.json", "BENCH_scale.json",
               "BENCH_cluster.json", "BENCH_resilience.json")


def bench_paths():
    for filename in BENCH_FILES:
        yield os.path.join(REPO_ROOT, filename)
        yield os.path.join(REPO_ROOT, "benchmarks", "baselines",
                           filename)


@pytest.mark.parametrize("path", list(bench_paths()),
                         ids=lambda p: os.path.relpath(p, REPO_ROOT))
def test_committed_bench_files_are_versioned(path):
    assert os.path.exists(path), f"missing benchmark file: {path}"
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    validate_versioned(payload, source=path)
    assert payload["schema_version"] == SCHEMA_VERSION


@pytest.mark.parametrize("path", [
    os.path.join(REPO_ROOT, "BENCH_nlp.json"),
    os.path.join(REPO_ROOT, "benchmarks", "baselines",
                 "BENCH_nlp.json"),
], ids=["root", "baseline"])
def test_nlp_bench_has_vectorized_cold_fields(path):
    """The compiled-data-plane PR's phase block: ``compare.py`` gates
    ``vectorized_cold_speedup``, so the committed copies must carry
    it alongside the historical phases."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    for phase in ("no_memo", "vectorized_cold", "cold", "warm"):
        row = payload[phase]
        assert row["seconds"] > 0.0
        assert row["pairs_per_second"] > 0.0
    assert payload["vectorized_cold_speedup"] >= 5.0
    assert payload["vectorized_cold"]["pairs_per_second"] \
        >= 5.0 * payload["no_memo"]["pairs_per_second"]


class TestValidateVersioned:
    def test_accepts_stamped_payload(self):
        validate_versioned(versioned({"x": 1}))

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError, match="expected a JSON object"):
            validate_versioned([1, 2, 3], source="bench")

    def test_rejects_missing_version(self):
        with pytest.raises(ValueError, match="missing schema_version"):
            validate_versioned({"x": 1})

    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError, match="schema_version"):
            validate_versioned({"schema_version": SCHEMA_VERSION + 1})
