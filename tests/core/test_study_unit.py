"""Study-aggregation unit tests + the parallel runner."""

import pytest

from repro.core.study import (
    RowMetrics,
    StudyResult,
    run_study,
    run_study_parallel,
)
from repro.corpus.appstore import generate_app_store


class TestRowMetrics:
    def test_precision_recall_f1(self):
        row = RowMetrics(tp=41, fp=5, fn=4)
        assert row.flagged == 46
        assert row.precision == pytest.approx(41 / 46)
        assert row.recall == pytest.approx(41 / 45)
        assert 0.0 < row.f1 < 1.0

    def test_zero_division_safe(self):
        row = RowMetrics()
        assert row.precision == row.recall == row.f1 == 0.0


class TestStudyResult:
    def test_limit_parameter(self, full_store, checker):
        result = run_study(full_store, checker=checker, limit=10)
        assert result.n_apps == 10
        assert len(result.reports) == 10

    def test_reports_and_plans_aligned(self, full_store, checker):
        result = run_study(full_store, checker=checker, limit=10)
        assert set(result.reports) == set(result.plans)

    def test_empty_summary(self):
        result = StudyResult(n_apps=0)
        summary = result.summary()
        assert summary["problem_apps"] == 0
        assert summary["problem_fraction"] == 0.0


class TestExport:
    def test_to_dict_json_serializable(self, full_store, checker):
        import json
        result = run_study(full_store, checker=checker, limit=80)
        payload = json.loads(json.dumps(result.to_dict()))
        assert "summary" in payload
        assert "table4" in payload

    def test_full_study_has_no_deviations(self, full_store, checker):
        result = run_study(full_store, checker=checker)
        assert result.deviations_from_paper() == {}

    def test_partial_study_reports_deviations(self, full_store,
                                              checker):
        result = run_study(full_store, checker=checker, limit=100)
        deviations = result.deviations_from_paper()
        assert "apps" in deviations


class TestParallelStudy:
    def test_parallel_matches_serial(self):
        serial = run_study(generate_app_store(n_apps=80))
        parallel = run_study_parallel(n_apps=80, jobs=2)
        assert parallel.n_apps == serial.n_apps
        assert set(parallel.reports) == set(serial.reports)
        for package in serial.reports:
            assert parallel.reports[package].to_dict() == \
                serial.reports[package].to_dict()

    def test_single_job(self):
        result = run_study_parallel(n_apps=20, jobs=1)
        assert result.n_apps == 20
