"""Metrics / confidence-interval tests."""

import pytest

from repro.core.metrics import (
    Confusion,
    Interval,
    bootstrap_interval,
    confusion_from_outcomes,
    wilson_interval,
)


class TestConfusion:
    def test_precision(self):
        assert Confusion(tp=9, fp=1).precision == pytest.approx(0.9)

    def test_recall(self):
        assert Confusion(tp=9, fn=3).recall == pytest.approx(0.75)

    def test_f1(self):
        c = Confusion(tp=8, fp=2, fn=2)
        assert c.f1 == pytest.approx(0.8)

    def test_accuracy(self):
        c = Confusion(tp=4, fp=1, fn=1, tn=4)
        assert c.accuracy == pytest.approx(0.8)

    def test_empty_matrix_zeroes(self):
        c = Confusion()
        assert c.precision == c.recall == c.f1 == c.accuracy == 0.0

    def test_addition(self):
        total = Confusion(tp=1, fp=2) + Confusion(tp=3, fn=4)
        assert (total.tp, total.fp, total.fn) == (4, 2, 4)

    def test_from_outcomes(self):
        c = confusion_from_outcomes([
            (True, True), (True, False), (False, True), (False, False),
        ])
        assert (c.tp, c.fp, c.fn, c.tn) == (1, 1, 1, 1)


class TestBootstrap:
    def test_interval_brackets_point(self):
        outcomes = [(True, True)] * 40 + [(True, False)] * 5 + \
            [(False, True)] * 4
        interval = bootstrap_interval(outcomes, metric="precision")
        assert interval.low <= interval.point <= interval.high
        assert interval.point == pytest.approx(40 / 45)

    def test_paper_value_inside_reproduction_interval(self):
        """Our Table IV recall CI covers the paper's 91.7%."""
        outcomes = [(True, True)] * 41 + [(False, True)] * 4 + \
            [(True, False)] * 5
        interval = bootstrap_interval(outcomes, metric="recall")
        assert interval.contains(0.917)

    def test_deterministic_given_seed(self):
        outcomes = [(True, True)] * 10 + [(False, True)] * 2
        a = bootstrap_interval(outcomes, seed=1)
        b = bootstrap_interval(outcomes, seed=1)
        assert (a.low, a.high) == (b.low, b.high)

    def test_empty_outcomes(self):
        interval = bootstrap_interval([])
        assert interval.point == 0.0

    def test_tight_for_large_samples(self):
        wide = bootstrap_interval([(True, True)] * 10
                                  + [(True, False)] * 2)
        narrow = bootstrap_interval([(True, True)] * 1000
                                    + [(True, False)] * 200)
        assert (narrow.high - narrow.low) < (wide.high - wide.low)


class TestWilson:
    def test_point_estimate(self):
        interval = wilson_interval(282, 1197)
        assert interval.point == pytest.approx(0.2356, abs=1e-3)

    def test_paper_fraction_in_interval(self):
        interval = wilson_interval(282, 1197)
        assert interval.contains(0.236)

    def test_bounds_clamped(self):
        assert wilson_interval(0, 10).low == 0.0
        assert wilson_interval(10, 10).high == 1.0

    def test_zero_total(self):
        assert wilson_interval(0, 0).point == 0.0
