"""Unit tests for the three detectors (Algorithms 1-5)."""

import pytest

from repro.core.incomplete import (
    detect_incomplete_via_code,
    detect_incomplete_via_description,
)
from repro.core.inconsistent import detect_inconsistent
from repro.core.incorrect import (
    detect_incorrect_via_code,
    detect_incorrect_via_description,
)
from repro.core.matching import InfoMatcher
from repro.android.static_analysis import analyze_apk
from repro.policy.analyzer import PolicyAnalyzer
from repro.semantics.resources import InfoType

from tests.android.appbuilder import (
    LOCATION_API,
    LOG_SINK,
    QUERY_API,
    URI_PARSE,
    add_activity,
    const_string,
    empty_apk,
    invoke,
)

_ANALYZER = PolicyAnalyzer()
_MATCHER = InfoMatcher()


def policy(text):
    return _ANALYZER.analyze(text)


def static_result(instructions):
    apk = empty_apk()
    add_activity(apk, instructions=instructions)
    return analyze_apk(apk)


class TestAlg1IncompleteViaDescription:
    def test_uncovered_info_flagged(self):
        findings = detect_incomplete_via_description(
            policy("We may collect your email address."),
            {"android.permission.ACCESS_FINE_LOCATION"},
            _MATCHER,
        )
        assert [f.info for f in findings] == [InfoType.LOCATION]
        assert findings[0].permission == \
            "android.permission.ACCESS_FINE_LOCATION"

    def test_covered_info_not_flagged(self):
        findings = detect_incomplete_via_description(
            policy("We may collect your location."),
            {"android.permission.ACCESS_FINE_LOCATION"},
            _MATCHER,
        )
        assert findings == []

    def test_coverage_by_any_category_counts(self):
        findings = detect_incomplete_via_description(
            policy("We may share your location with partners."),
            {"android.permission.ACCESS_FINE_LOCATION"},
            _MATCHER,
        )
        assert findings == []

    def test_negative_coverage_does_not_count(self):
        findings = detect_incomplete_via_description(
            policy("We will not collect your location."),
            {"android.permission.ACCESS_FINE_LOCATION"},
            _MATCHER,
        )
        assert len(findings) == 1

    def test_no_permissions_no_findings(self):
        assert detect_incomplete_via_description(
            policy("anything"), set(), _MATCHER) == []


class TestAlg2IncompleteViaCode:
    def test_uncovered_collection_flagged(self):
        result = static_result([invoke(LOCATION_API, dest="v0")])
        findings = detect_incomplete_via_code(
            policy("We may collect your email address."),
            result, _MATCHER,
        )
        assert [f.info for f in findings] == [InfoType.LOCATION]
        assert not findings[0].retained
        assert LOCATION_API in findings[0].evidence

    def test_retention_marked(self):
        result = static_result([
            invoke(LOCATION_API, dest="v0"),
            const_string("v1", "TAG"),
            invoke(LOG_SINK, args=("v1", "v0")),
        ])
        findings = detect_incomplete_via_code(
            policy("We may collect your email address."),
            result, _MATCHER,
        )
        assert findings[0].retained

    def test_covered_collection_clean(self):
        result = static_result([invoke(LOCATION_API, dest="v0")])
        assert detect_incomplete_via_code(
            policy("We may collect your location."), result, _MATCHER,
        ) == []

    def test_tricky_sentence_causes_fp(self):
        # the Section V-C false-positive shape: coverage hidden in a
        # fronted PP that element extraction misses
        result = static_result([
            invoke("android.telephony.TelephonyManager->getDeviceId()",
                   dest="v0"),
        ])
        findings = detect_incomplete_via_code(
            policy("In addition to your device identifiers, we may "
                   "also collect the nickname you have chosen for "
                   "your device."),
            result, _MATCHER,
        )
        assert [f.info for f in findings] == [InfoType.DEVICE_ID]


class TestAlg3IncorrectViaDescription:
    def test_denied_but_described(self):
        findings = detect_incorrect_via_description(
            policy("We will not collect your contacts."),
            {"android.permission.READ_CONTACTS"},
            _MATCHER,
        )
        assert [f.info for f in findings] == [InfoType.CONTACT]
        assert "not collect" in findings[0].denial_sentence

    def test_no_denial_clean(self):
        assert detect_incorrect_via_description(
            policy("We may collect your contacts."),
            {"android.permission.READ_CONTACTS"},
            _MATCHER,
        ) == []


class TestAlg4IncorrectViaCode:
    def test_collect_denial_vs_code(self):
        result = static_result([
            const_string("v0", "content://contacts"),
            invoke(URI_PARSE, dest="v1", args=("v0",)),
            invoke(QUERY_API, dest="v2", args=("v1",)),
        ])
        findings = detect_incorrect_via_code(
            policy("We will not collect your contacts."),
            result, _MATCHER,
        )
        assert [f.info for f in findings] == [InfoType.CONTACT]
        assert findings[0].kind == "collect"

    def test_retain_denial_vs_taint_path(self):
        result = static_result([
            invoke(LOCATION_API, dest="v0"),
            const_string("v1", "TAG"),
            invoke(LOG_SINK, args=("v1", "v0")),
        ])
        findings = detect_incorrect_via_code(
            policy("Your location will not be stored by the app."),
            result, _MATCHER,
        )
        assert any(
            f.kind == "retain" and f.info is InfoType.LOCATION
            for f in findings
        )

    def test_retain_denial_without_retention_clean(self):
        result = static_result([invoke(LOCATION_API, dest="v0")])
        findings = detect_incorrect_via_code(
            policy("Your location will not be stored by the app."),
            result, _MATCHER,
        )
        assert all(f.kind != "retain" for f in findings)


class TestAlg5Inconsistent:
    def _lib(self, text):
        return {"unity3d": policy(text)}

    def test_paper_templerun_case(self):
        findings = detect_inconsistent(
            policy("We do not collect your location information."),
            self._lib("We may receive your location information."),
            _MATCHER,
        )
        assert len(findings) == 1
        assert findings[0].lib_id == "unity3d"
        assert not findings[0].is_disclose

    def test_requires_same_category(self):
        findings = detect_inconsistent(
            policy("We will not share your location with third "
                   "parties."),
            self._lib("We may receive your location information."),
            _MATCHER,
        )
        assert findings == []

    def test_requires_same_resource(self):
        findings = detect_inconsistent(
            policy("We do not collect your contacts."),
            self._lib("We may receive your location information."),
            _MATCHER,
        )
        assert findings == []

    def test_positive_app_statement_no_conflict(self):
        findings = detect_inconsistent(
            policy("We may collect your location."),
            self._lib("We may receive your location information."),
            _MATCHER,
        )
        assert findings == []

    def test_disclose_row_flag(self):
        findings = detect_inconsistent(
            policy("We will never disclose your device identifiers."),
            self._lib("We will share your device identifiers with "
                      "companies we work with."),
            _MATCHER,
        )
        assert len(findings) == 1
        assert findings[0].is_disclose

    def test_disclaimer_suppresses(self):
        app_policy = policy(
            "We do not collect your location information. We are not "
            "responsible for the privacy practices of those sites."
        )
        findings = detect_inconsistent(
            app_policy,
            self._lib("We may receive your location information."),
            _MATCHER,
        )
        assert findings == []

    def test_disclaimer_ablation_flag(self):
        app_policy = policy(
            "We do not collect your location information. We are not "
            "responsible for the privacy practices of those sites."
        )
        findings = detect_inconsistent(
            app_policy,
            self._lib("We may receive your location information."),
            _MATCHER,
            honor_disclaimer=False,
        )
        assert len(findings) == 1

    def test_display_verb_is_missed(self):
        # the paper's false negative: "display" is outside the verb set
        findings = detect_inconsistent(
            policy("We will never display your personal information."),
            self._lib("We will share your personal information with "
                      "companies we work with."),
            _MATCHER,
        )
        assert findings == []
