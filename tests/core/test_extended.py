"""Extended-checker tests: the future-work configuration end to end."""

import pytest

from repro.core.extended import ExtendedPPChecker, make_extended_checker

from tests.android.appbuilder import (
    LOCATION_API,
    PKG,
    add_activity,
    add_class,
    empty_apk,
    invoke,
)
from repro.core.checker import AppBundle, PPChecker


def _lib_policies(lib_id):
    return {
        "unity3d": "We may receive your location information.",
        "admob": "We will share personal information with companies "
                 "we work with.",
    }.get(lib_id)


class TestSynonymIntegration:
    def test_display_denial_now_detected(self):
        from repro.android.dex import DexClass
        apk = empty_apk()
        add_activity(apk)
        apk.dex.add_class(DexClass(name="com.google.ads.AdView"))
        bundle = AppBundle(
            package=PKG, apk=apk,
            policy="We will never display any of your personal "
                   "information.",
            description="An app.",
        )
        base = PPChecker(lib_policy_source=_lib_policies)
        extended = make_extended_checker(_lib_policies)
        assert not base.check(bundle).is_inconsistent
        assert extended.check(bundle).is_inconsistent


class TestConstraintIntegration:
    def _bundle(self):
        apk = empty_apk()
        add_activity(apk, instructions=[invoke(LOCATION_API, dest="v0")])
        return AppBundle(
            package=PKG, apk=apk,
            policy="We will not collect your location without your "
                   "consent.",
            description="An app.",
        )

    def test_consent_denial_not_incorrect(self):
        base = PPChecker()
        extended = make_extended_checker()
        assert base.check(self._bundle()).is_incorrect
        assert not extended.check(self._bundle()).is_incorrect

    def test_consent_statement_counts_as_coverage(self):
        extended = make_extended_checker()
        report = extended.check(self._bundle())
        assert not report.incomplete_via("code")

    def test_constraints_can_be_disabled(self):
        checker = ExtendedPPChecker(use_constraints=False)
        assert checker.check(self._bundle()).is_incorrect


class TestDynamicVerification:
    def test_dead_code_fp_removed(self):
        """Without reachability the static side over-approximates;
        dynamic verification kills the spurious finding."""
        apk = empty_apk()
        add_activity(apk)
        add_class(apk, f"{PKG}.Dead", [("never", (), [
            invoke(LOCATION_API, dest="v0"),
        ])])
        bundle = AppBundle(
            package=PKG, apk=apk,
            policy="We may collect your email address.",
            description="An app.",
        )
        loose = ExtendedPPChecker(use_reachability=False,
                                  verify_dynamically=False)
        assert loose.check(bundle).incomplete_via("code")
        verified = ExtendedPPChecker(use_reachability=False,
                                     verify_dynamically=True)
        assert not verified.check(bundle).incomplete_via("code")

    def test_real_finding_survives_verification(self):
        apk = empty_apk()
        add_activity(apk, instructions=[invoke(LOCATION_API, dest="v0")])
        bundle = AppBundle(
            package=PKG, apk=apk,
            policy="We may collect your email address.",
            description="An app.",
        )
        verified = ExtendedPPChecker(verify_dynamically=True)
        assert verified.check(bundle).incomplete_via("code")


class TestOnCorpus:
    def test_extended_recovers_fns_keeps_summary(self, full_store):
        """On the corpus: the 7 FN apps become detectable; the
        calibrated true-positive counts are untouched."""
        from repro.corpus.plans import INCONSISTENT_FN
        extended = make_extended_checker(full_store.lib_policy)
        for index in INCONSISTENT_FN:
            app = full_store.apps[index]
            assert extended.check(app.bundle).is_inconsistent

    def test_extended_does_not_disturb_true_positives(self, full_store):
        from repro.corpus.plans import INCONSISTENT_NEW
        extended = make_extended_checker(full_store.lib_policy)
        for index in list(INCONSISTENT_NEW)[:8]:
            app = full_store.apps[index]
            assert extended.check(app.bundle).is_inconsistent
