"""CLI tests (in-process main() invocation)."""

import json

import pytest

from repro.android.serialization import save_bundle
from repro.cli import main
from repro.core.checker import AppBundle

from tests.android.appbuilder import (
    LOCATION_API,
    PKG,
    add_activity,
    empty_apk,
    invoke,
)


@pytest.fixture
def bad_bundle_path(tmp_path):
    apk = empty_apk()
    add_activity(apk, instructions=[invoke(LOCATION_API, dest="v0")])
    bundle = AppBundle(package=PKG, apk=apk,
                       policy="We collect your email.",
                       description="An app.")
    path = str(tmp_path / "bundle.json")
    save_bundle(bundle, path)
    return path


@pytest.fixture
def clean_bundle_path(tmp_path):
    apk = empty_apk()
    add_activity(apk)
    bundle = AppBundle(package=PKG, apk=apk,
                       policy="We may collect your email address.",
                       description="An app.")
    path = str(tmp_path / "clean.json")
    save_bundle(bundle, path)
    return path


class TestCheck:
    def test_problem_app_exits_0_by_default(self, bad_bundle_path,
                                            capsys):
        assert main(["check", bad_bundle_path]) == 0
        out = capsys.readouterr().out
        assert "INCOMPLETE" in out

    def test_fail_on_findings_exits_1(self, bad_bundle_path, capsys):
        assert main(["check", bad_bundle_path,
                     "--fail-on-findings"]) == 1
        assert "INCOMPLETE" in capsys.readouterr().out

    def test_clean_app_exits_0(self, clean_bundle_path, capsys):
        assert main(["check", clean_bundle_path,
                     "--fail-on-findings"]) == 0
        assert "no problems" in capsys.readouterr().out

    def test_json_output(self, bad_bundle_path, capsys):
        main(["check", bad_bundle_path, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["has_problem"]
        assert payload["incomplete"]

    def test_lib_policies_directory(self, tmp_path, capsys):
        from repro.android.dex import DexClass
        apk = empty_apk()
        add_activity(apk)
        apk.dex.add_class(DexClass(name="com.unity3d.player.Unity"))
        bundle = AppBundle(
            package=PKG, apk=apk,
            policy="We do not collect your location information.",
            description="A game.",
        )
        path = str(tmp_path / "b.json")
        save_bundle(bundle, path)
        libdir = tmp_path / "libs"
        libdir.mkdir()
        (libdir / "unity3d.txt").write_text(
            "We may receive your location information."
        )
        code = main(["check", path, "--lib-policies", str(libdir),
                     "--fail-on-findings"])
        assert code == 1
        assert "INCONSISTENT" in capsys.readouterr().out


class TestBatchCheck:
    def test_batch_over_two_bundles(self, bad_bundle_path,
                                    clean_bundle_path, capsys,
                                    tmp_path):
        out_json = str(tmp_path / "batch.json")
        code = main(["batch-check", bad_bundle_path,
                     clean_bundle_path, "--workers", "2",
                     "--json", out_json])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 apps checked, 1 with findings" in out
        assert "pipeline" in out
        with open(out_json) as handle:
            payload = json.load(handle)
        assert payload["schema_version"] == 1
        assert len(payload["reports"]) == 2
        assert "pipeline_stats" in payload
        assert payload["pipeline_stats"]["policy_analysis"][
            "executions"] == 2

    def test_fail_on_findings(self, bad_bundle_path):
        assert main(["batch-check", bad_bundle_path,
                     "--fail-on-findings"]) == 1

    def test_cache_dir_warm_rerun_hits(self, bad_bundle_path,
                                       tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["batch-check", bad_bundle_path,
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        out_json = str(tmp_path / "warm.json")
        assert main(["batch-check", bad_bundle_path,
                     "--cache-dir", cache, "--json", out_json]) == 0
        with open(out_json) as handle:
            stats = json.load(handle)["pipeline_stats"]
        for stage in ("policy_analysis", "static_analysis", "detect"):
            assert stats[stage]["executions"] == 0
            assert stats[stage]["cache_hits"] == 1


class TestStudy:
    def test_small_study_runs(self, capsys, tmp_path):
        out_json = str(tmp_path / "study.json")
        out_html = str(tmp_path / "study.html")
        assert main(["study", "--apps", "64", "--json", out_json,
                     "--html", out_html]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        with open(out_json) as handle:
            payload = json.load(handle)
        assert payload["schema_version"] == 1
        assert payload["summary"]["apps"] == 64
        with open(out_html) as handle:
            assert "PPChecker study report" in handle.read()

    def test_study_workers_and_cache_dir(self, capsys, tmp_path):
        serial_json = str(tmp_path / "serial.json")
        parallel_json = str(tmp_path / "parallel.json")
        assert main(["study", "--apps", "64",
                     "--json", serial_json]) == 0
        assert main(["study", "--apps", "64", "--workers", "2",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--json", parallel_json]) == 0
        with open(serial_json) as handle:
            serial = json.load(handle)
        with open(parallel_json) as handle:
            parallel = json.load(handle)
        # the tables must be identical; only the telemetry may differ
        for payload in (serial, parallel):
            payload.pop("pipeline_stats")
            payload.pop("nlp_caches")
            payload.pop("telemetry")
        assert serial == parallel

    def test_screen_command(self, capsys):
        assert main(["screen", "--apps", "250", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "score" in out


class TestVersion:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestOtherCommands:
    def test_bootstrap(self, capsys):
        assert main(["bootstrap", "--top", "3"]) == 0
        assert "patterns" in capsys.readouterr().out

    def test_genpolicy(self, bad_bundle_path, capsys):
        assert main(["genpolicy", bad_bundle_path]) == 0
        out = capsys.readouterr().out
        assert "Privacy Policy" in out
        assert "location" in out

    def test_export_corpus(self, tmp_path, capsys):
        path = str(tmp_path / "app.json")
        assert main(["export-corpus", "0", path]) == 0
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["package"].startswith("com.example.")

    def test_export_corpus_bad_index(self, tmp_path):
        assert main(["export-corpus", "999999",
                     str(tmp_path / "x.json")]) == 2
