"""AppReport model tests."""

import json

import pytest

from repro.core.report import (
    AppReport,
    IncompleteFinding,
    InconsistentFinding,
    IncorrectFinding,
)
from repro.policy.verbs import VerbCategory
from repro.semantics.resources import InfoType


def _full_report():
    return AppReport(
        package="com.x",
        incomplete=[
            IncompleteFinding(info=InfoType.LOCATION, source="code",
                              retained=True, evidence=("api",)),
            IncompleteFinding(info=InfoType.CONTACT,
                              source="description",
                              permission="android.permission."
                                         "READ_CONTACTS"),
        ],
        incorrect=[
            IncorrectFinding(info=InfoType.CONTACT, source="code",
                             denial_sentence="we will not ...",
                             kind="retain"),
        ],
        inconsistent=[
            InconsistentFinding(lib_id="admob",
                                category=VerbCategory.DISCLOSE,
                                app_sentence="a", lib_sentence="b",
                                app_resource="device id",
                                lib_resource="device identifiers"),
        ],
    )


class TestFlags:
    def test_clean_report(self):
        report = AppReport(package="x")
        assert not report.has_problem
        assert report.problem_kinds() == set()

    def test_full_report_kinds(self):
        assert _full_report().problem_kinds() == {
            "incomplete", "incorrect", "inconsistent",
        }

    def test_via_filters(self):
        report = _full_report()
        assert len(report.incomplete_via("code")) == 1
        assert len(report.incomplete_via("description")) == 1
        assert len(report.incorrect_via("code")) == 1
        assert report.incorrect_via("description") == []


class TestFindingProperties:
    def test_disclose_row_flag(self):
        finding = _full_report().inconsistent[0]
        assert finding.is_disclose

    def test_collect_row_flag(self):
        finding = InconsistentFinding(
            lib_id="x", category=VerbCategory.COLLECT,
            app_sentence="a", lib_sentence="b",
            app_resource="r", lib_resource="r",
        )
        assert not finding.is_disclose


class TestRendering:
    def test_summary_mentions_everything(self):
        text = _full_report().summary()
        assert "INCOMPLETE" in text
        assert "(retained)" in text
        assert "INCORRECT" in text
        assert "INCONSISTENT" in text
        assert "admob" in text

    def test_clean_summary(self):
        assert "no problems" in AppReport(package="x").summary()

    def test_to_dict_roundtrips_through_json(self):
        payload = json.loads(json.dumps(_full_report().to_dict()))
        assert payload["package"] == "com.x"
        assert payload["incomplete"][0]["info"] == "location"
        assert payload["incomplete"][0]["retained"] is True
        assert payload["incorrect"][0]["kind"] == "retain"
        assert payload["inconsistent"][0]["lib"] == "admob"
        assert set(payload["problem_kinds"]) == {
            "incomplete", "incorrect", "inconsistent",
        }

    def test_to_dict_clean(self):
        payload = AppReport(package="x").to_dict()
        assert payload["has_problem"] is False
        assert payload["incomplete"] == []
