"""InfoMatcher tests (the Similarity(Info, PPInfo) predicate)."""

import pytest

from repro.core.matching import InfoMatcher
from repro.semantics.resources import InfoType


class TestPhraseMatches:
    def test_exact_alias_short_circuit(self, matcher):
        assert matcher.phrase_matches(InfoType.LOCATION, "location")

    def test_alias_with_possessive(self, matcher):
        assert matcher.phrase_matches(InfoType.CONTACT, "your contacts")

    def test_esa_similarity_path(self, matcher):
        assert matcher.phrase_matches(InfoType.LOCATION,
                                      "precise location data")

    def test_unrelated_phrase_rejected(self, matcher):
        assert not matcher.phrase_matches(InfoType.LOCATION, "cookies")

    def test_generic_information_rejected_for_specific(self, matcher):
        # "information" alone lands on the personal-information concept,
        # not on location
        assert not matcher.phrase_matches(InfoType.LOCATION, "information")


class TestCovered:
    def test_covered_true(self, matcher):
        assert matcher.covered(InfoType.LOCATION,
                               {"location", "contacts"})

    def test_covered_false(self, matcher):
        assert not matcher.covered(InfoType.LOCATION,
                                   {"contacts", "cookies"})

    def test_covered_empty_set(self, matcher):
        assert not matcher.covered(InfoType.LOCATION, set())


class TestPhrasesMatch:
    def test_same_alias_phrases(self, matcher):
        assert matcher.phrases_match("contacts", "address book")

    def test_paper_fp_generic_information(self, matcher):
        # the StaffMark/AdMob false positive: "information" vs
        # "personal information"
        assert matcher.phrases_match("information",
                                     "personal information")

    def test_different_resources(self, matcher):
        assert not matcher.phrases_match("location", "contacts")

    def test_custom_threshold(self):
        # the ESA path honors the threshold (alias pairs short-circuit)
        strict = InfoMatcher(threshold=0.999)
        assert not strict.phrases_match("information",
                                        "personal information")

    def test_alias_pairs_ignore_threshold(self):
        strict = InfoMatcher(threshold=0.999)
        assert strict.phrases_match("contacts", "address book")
