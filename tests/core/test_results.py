"""Sharded NDJSON result files: atomic finalization, validating
readers, and the index-ordered merge."""

import json
import os

import pytest

from repro.core.report import AppFailure, AppReport
from repro.core.results import (
    RESULTS_FORMAT,
    ResultShardError,
    ShardedResultWriter,
    has_tmp_shards,
    iter_results,
    iter_shard,
    read_meta,
    shard_name,
    shard_paths,
)

META = {"kind": "study", "seed": 2016, "apps": 9}


def outcome_for(index):
    if index % 4 == 3:
        return AppFailure(package=f"pkg{index}", stage="detect",
                          error="Boom", message="m", attempts=1)
    return AppReport(package=f"pkg{index}")


def write_run(out_dir, n=9, shards=3, meta=META):
    with ShardedResultWriter(str(out_dir), meta, shards=shards) as w:
        for index in range(n):
            w.emit(index, f"pkg{index}", outcome_for(index))
    return str(out_dir)


class TestWriter:
    def test_round_trip_in_index_order(self, tmp_path):
        d = write_run(tmp_path)
        rows = list(iter_results(d))
        assert [index for index, _, _ in rows] == list(range(9))
        assert [key for _, key, _ in rows] \
            == [f"pkg{i}" for i in range(9)]
        for index, _, outcome in rows:
            assert outcome.to_dict() == outcome_for(index).to_dict()
            if index % 4 == 3:
                assert isinstance(outcome, AppFailure)
            else:
                assert isinstance(outcome, AppReport)

    def test_records_route_by_index_mod_shards(self, tmp_path):
        d = write_run(tmp_path, n=9, shards=3)
        for shard in range(3):
            path = os.path.join(d, shard_name(shard))
            indices = [rec[0] for rec in iter_shard(path)]
            assert indices == [i for i in range(9) if i % 3 == shard]

    def test_reruns_are_byte_identical(self, tmp_path):
        a = write_run(tmp_path / "a")
        b = write_run(tmp_path / "b")
        for path_a, path_b in zip(shard_paths(a), shard_paths(b)):
            with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
                assert fa.read() == fb.read()

    def test_abort_leaves_no_finalized_shards(self, tmp_path):
        writer = ShardedResultWriter(str(tmp_path), META, shards=2)
        writer.emit(0, "pkg0", outcome_for(0))
        writer.abort()
        assert shard_paths(str(tmp_path)) == []
        assert not has_tmp_shards(str(tmp_path))

    def test_crash_before_close_leaves_only_tmp(self, tmp_path):
        writer = ShardedResultWriter(str(tmp_path), META, shards=2)
        writer.emit(0, "pkg0", outcome_for(0))
        # simulated hard crash: nothing finalized, .tmp files remain
        del writer
        assert shard_paths(str(tmp_path)) == []
        assert has_tmp_shards(str(tmp_path))
        # a restarted run overwrites the torn temporaries cleanly
        write_run(tmp_path)
        assert not has_tmp_shards(str(tmp_path))
        assert len(list(iter_results(str(tmp_path)))) == 9

    def test_emit_after_close_raises(self, tmp_path):
        writer = ShardedResultWriter(str(tmp_path), META, shards=1)
        writer.close()
        with pytest.raises(ResultShardError, match="finalized"):
            writer.emit(0, "pkg0", outcome_for(0))

    def test_rejects_bad_shard_count(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedResultWriter(str(tmp_path), META, shards=0)


class TestReaders:
    def test_read_meta(self, tmp_path):
        d = write_run(tmp_path)
        assert read_meta(d) == META
        assert read_meta(str(tmp_path / "missing")) is None

    def test_header_is_schema_versioned(self, tmp_path):
        d = write_run(tmp_path, shards=1)
        with open(os.path.join(d, shard_name(0))) as handle:
            header = json.loads(handle.readline())
        assert header["schema_version"] == 1
        assert header["results_format"] == RESULTS_FORMAT

    def test_unfinalized_shard_is_rejected(self, tmp_path):
        d = write_run(tmp_path, shards=1)
        path = os.path.join(d, shard_name(0))
        with open(path) as handle:
            lines = handle.readlines()
        with open(path, "w") as handle:
            handle.writelines(lines[:-1])  # drop the footer
        with pytest.raises(ResultShardError, match="finalized"):
            list(iter_shard(path))

    def test_footer_count_mismatch_is_rejected(self, tmp_path):
        d = write_run(tmp_path, shards=1)
        path = os.path.join(d, shard_name(0))
        with open(path) as handle:
            lines = handle.readlines()
        del lines[2]  # lose one outcome, keep the footer
        with open(path, "w") as handle:
            handle.writelines(lines)
        with pytest.raises(ResultShardError, match="footer count"):
            list(iter_shard(path))

    def test_mixed_runs_are_rejected(self, tmp_path):
        d = write_run(tmp_path, shards=2)
        foreign = tmp_path / "foreign"
        write_run(foreign, shards=2,
                  meta={"kind": "study", "seed": 1, "apps": 9})
        os.replace(os.path.join(str(foreign), shard_name(1)),
                   os.path.join(d, shard_name(1)))
        with pytest.raises(ResultShardError, match="different run"):
            read_meta(d)

    def test_missing_shard_is_rejected(self, tmp_path):
        d = write_run(tmp_path, shards=3)
        os.remove(os.path.join(d, shard_name(1)))
        with pytest.raises(ResultShardError, match="incomplete"):
            read_meta(d)

    def test_empty_dir_has_no_results(self, tmp_path):
        with pytest.raises(ResultShardError, match="no finalized"):
            list(iter_results(str(tmp_path)))
