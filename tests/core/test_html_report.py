"""HTML study-report rendering tests."""

import pytest

from repro.core.html_report import render_study_html, write_study_html
from repro.core.study import run_study


@pytest.fixture(scope="module")
def small_result(mid_store, checker):
    return run_study(mid_store, checker=checker, limit=250)


class TestRendering:
    def test_page_structure(self, small_result):
        page = render_study_html(small_result)
        assert page.startswith("<!DOCTYPE html>")
        assert "</html>" in page
        assert "PPChecker study report" in page

    def test_summary_cards_present(self, small_result):
        page = render_study_html(small_result)
        assert "apps analyzed" in page
        assert "apps with problems" in page

    def test_tables_present(self, small_result):
        page = render_study_html(small_result)
        assert "Table III" in page
        assert "Fig. 13" in page
        assert "Table IV" in page
        assert "Screening worklist" in page

    def test_fig13_bars(self, small_result):
        page = render_study_html(small_result)
        assert 'class="bar"' in page
        assert "location" in page

    def test_top_parameter(self, small_result):
        short = render_study_html(small_result, top=3)
        long = render_study_html(small_result, top=30)
        assert long.count("<tr>") > short.count("<tr>")

    def test_packages_escaped(self, small_result):
        page = render_study_html(small_result)
        # no raw angle brackets leaking from content
        assert "<script>" not in page

    def test_write_to_file(self, small_result, tmp_path):
        path = str(tmp_path / "report.html")
        write_study_html(small_result, path)
        with open(path) as handle:
            assert "PPChecker" in handle.read()

    def test_empty_study(self):
        from repro.core.study import StudyResult
        page = render_study_html(StudyResult(n_apps=0))
        assert "apps analyzed" in page
