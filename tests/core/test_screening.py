"""Market-screening module tests."""

import json

import pytest

from repro.core.report import (
    AppReport,
    IncompleteFinding,
    InconsistentFinding,
    IncorrectFinding,
)
from repro.core.screening import screen, severity
from repro.policy.verbs import VerbCategory
from repro.semantics.resources import InfoType


def _incomplete(pkg="a", retained=False):
    return AppReport(package=pkg, incomplete=[
        IncompleteFinding(info=InfoType.LOCATION, source="code",
                          retained=retained),
    ])


def _incorrect(pkg="b", kind="collect"):
    return AppReport(package=pkg, incorrect=[
        IncorrectFinding(info=InfoType.CONTACT, source="code",
                         denial_sentence="...", kind=kind),
    ])


def _inconsistent(pkg="c"):
    return AppReport(package=pkg, inconsistent=[
        InconsistentFinding(lib_id="admob",
                            category=VerbCategory.COLLECT,
                            app_sentence="x", lib_sentence="y",
                            app_resource="location",
                            lib_resource="location"),
    ])


class TestSeverity:
    def test_clean_app_zero(self):
        assert severity(AppReport(package="x")) == 0.0

    def test_incorrect_outranks_inconsistent(self):
        assert severity(_incorrect()) > severity(_inconsistent())

    def test_inconsistent_outranks_incomplete(self):
        assert severity(_inconsistent()) > severity(_incomplete())

    def test_retention_bonus(self):
        assert severity(_incomplete(retained=True)) > severity(
            _incomplete(retained=False)
        )

    def test_retain_denial_bonus(self):
        assert severity(_incorrect(kind="retain")) > severity(
            _incorrect(kind="collect")
        )

    def test_more_findings_higher_score(self):
        one = _incomplete()
        two = AppReport(package="a", incomplete=[
            IncompleteFinding(info=InfoType.LOCATION, source="code"),
            IncompleteFinding(info=InfoType.CONTACT, source="code"),
        ])
        assert severity(two) > severity(one)


class TestScreen:
    def test_ranking_order(self):
        report = screen([_incomplete("low"), _incorrect("high"),
                         _inconsistent("mid")])
        assert [e.package for e in report.entries] == [
            "high", "mid", "low"
        ]

    def test_clean_apps_excluded(self):
        report = screen([AppReport(package="clean"), _incomplete("x")])
        assert [e.package for e in report.entries] == ["x"]

    def test_min_score_filter(self):
        report = screen([_incomplete("low"), _incorrect("high")],
                        min_score=5.0)
        assert [e.package for e in report.entries] == ["high"]

    def test_headlines(self):
        report = screen([_incorrect("a"), _inconsistent("b"),
                         _incomplete("c", retained=True)])
        headlines = {e.package: e.headline for e in report.entries}
        assert "denies" in headlines["a"]
        assert "admob" in headlines["b"]
        assert "(retained)" in headlines["c"]

    def test_top_k(self):
        report = screen([_incomplete(f"app{i}") for i in range(5)])
        assert len(report.top(3)) == 3

    def test_json_export(self):
        report = screen([_incorrect("a")])
        payload = json.loads(report.to_json())
        assert payload[0]["package"] == "a"
        assert payload[0]["kinds"] == ["incorrect"]

    def test_csv_export(self):
        report = screen([_incorrect("a")])
        lines = report.to_csv().strip().splitlines()
        assert lines[0].startswith("package,score")
        assert lines[1].startswith("a,")

    def test_dict_input(self):
        report = screen({"a": _incorrect("a")})
        assert report.entries[0].package == "a"


class TestOnStudy:
    def test_screening_the_corpus(self, full_store, checker):
        """The planted incorrect apps rank at the top of the market."""
        from repro.core.study import run_study
        result = run_study(full_store, checker=checker,
                           limit=320)
        report = screen(result.reports)
        top_kinds = {k for e in report.top(6) for k in e.kinds}
        assert "incorrect" in top_kinds
        # every flagged app appears exactly once
        packages = [e.package for e in report.entries]
        assert len(packages) == len(set(packages))
