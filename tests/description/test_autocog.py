"""Description-analysis (AutoCog substitute) tests."""

import pytest

from repro.description.autocog import AutoCog, infer_infos, infer_permissions
from repro.description.permission_map import (
    INFO_SURFACE,
    PERMISSION_INFO,
    info_for_permission,
    permissions_for_info,
)
from repro.semantics.resources import InfoType


class TestInference:
    @pytest.mark.parametrize("description,permission", [
        ("The app uses gps for accurate positioning.",
         "android.permission.ACCESS_FINE_LOCATION"),
        ("Get the local weather at a glance.",
         "android.permission.ACCESS_COARSE_LOCATION"),
        ("This app synchronizes all birthdays with your contacts list.",
         "android.permission.READ_CONTACTS"),
        ("You can sign in with your google account to sync progress.",
         "android.permission.GET_ACCOUNTS"),
        ("Take photos and apply beautiful effects.",
         "android.permission.CAMERA"),
        ("Keeps your calendar organized with smart reminders.",
         "android.permission.READ_CALENDAR"),
        ("Quickly save to contacts any number you receive.",
         "android.permission.WRITE_CONTACTS"),
        ("Record audio notes on the go.",
         "android.permission.RECORD_AUDIO"),
    ])
    def test_phrase_inference(self, description, permission):
        assert permission in infer_permissions(description)

    def test_clean_description_infers_nothing(self):
        assert infer_permissions(
            "A handy toolbox for everyday tasks. Small, fast, and free."
        ) == set()

    def test_infer_infos_maps_through_permissions(self):
        infos = infer_infos("The app uses gps for accurate positioning.")
        assert InfoType.LOCATION in infos

    def test_multi_permission_description(self):
        permissions = infer_permissions(
            "Take photos and tag them with gps coordinates."
        )
        assert "android.permission.CAMERA" in permissions
        assert "android.permission.ACCESS_FINE_LOCATION" in permissions

    def test_esa_fallback_off_by_default(self):
        assert not AutoCog().use_esa_fallback

    def test_esa_fallback_widens_recall(self):
        # "any place you choose" has no model phrase but lands on the
        # location concept through ESA
        text = "Hourly outlooks for any place you choose."
        strict = AutoCog().infer_permissions(text)
        loose = AutoCog(use_esa_fallback=True).infer_permissions(text)
        assert len(loose) >= len(strict)

    def test_empty_description(self):
        assert infer_permissions("") == set()


class TestPermissionMap:
    def test_fine_location_maps_to_location(self):
        assert info_for_permission(
            "android.permission.ACCESS_FINE_LOCATION"
        ) == (InfoType.LOCATION,)

    def test_phone_state_maps_to_two_infos(self):
        infos = info_for_permission("android.permission.READ_PHONE_STATE")
        assert InfoType.DEVICE_ID in infos
        assert InfoType.PHONE_NUMBER in infos

    def test_unknown_permission_empty(self):
        assert info_for_permission("android.permission.VIBRATE") == ()

    def test_reverse_lookup(self):
        perms = permissions_for_info(InfoType.CONTACT)
        assert "android.permission.READ_CONTACTS" in perms

    def test_every_mapped_permission_has_surface(self):
        for infos in PERMISSION_INFO.values():
            for info in infos:
                assert info in INFO_SURFACE
