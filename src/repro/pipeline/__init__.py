"""The staged, content-addressed PPChecker pipeline.

- :mod:`repro.pipeline.stages`    stage names, cache-key recipes, codecs
- :mod:`repro.pipeline.artifacts` artifact stores (memory LRU, disk
  JSON, tiered) and the per-stage counters
- :mod:`repro.pipeline.executor`  deterministic batch fan-out
- :mod:`repro.pipeline.pipeline`  the :class:`Pipeline` orchestrator

Typical use::

    from repro.pipeline import Pipeline, build_store

    pipeline = Pipeline(lib_policy_source=store.lib_policy,
                        store=build_store(cache_dir=".ppcache"))
    reports = pipeline.check_batch(bundles, workers=4)
    print(pipeline.stats.to_dict())
"""

from repro.pipeline.artifacts import (
    MISS,
    ArtifactStore,
    DiskStore,
    MemoryStore,
    PipelineStats,
    StageStats,
    TieredStore,
    build_store,
)
from repro.pipeline.executor import BatchExecutor
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.stages import STAGES

__all__ = [
    "MISS",
    "ArtifactStore",
    "MemoryStore",
    "DiskStore",
    "TieredStore",
    "build_store",
    "StageStats",
    "PipelineStats",
    "BatchExecutor",
    "Pipeline",
    "STAGES",
]
