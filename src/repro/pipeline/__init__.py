"""The staged, content-addressed PPChecker pipeline.

- :mod:`repro.pipeline.stages`     stage names, cache-key recipes, codecs
- :mod:`repro.pipeline.artifacts`  artifact stores (memory LRU, disk
  JSON, shared sqlite, tiered) and the per-stage counters
- :mod:`repro.pipeline.executor`   deterministic batch fan-out
- :mod:`repro.pipeline.resilience` per-stage timeouts, bounded retries
  with deterministic backoff, :class:`StageError`
- :mod:`repro.pipeline.faults`     injectable fault plans (the chaos
  harness tests and benchmarks drive)
- :mod:`repro.pipeline.pipeline`   the :class:`Pipeline` orchestrator

Typical use::

    from repro.pipeline import Pipeline, build_store

    pipeline = Pipeline(lib_policy_source=store.lib_policy,
                        store=build_store(cache_dir=".ppcache"))
    reports = pipeline.check_batch(bundles, workers=4)
    print(pipeline.stats.to_dict())
"""

from repro.pipeline.artifacts import (
    MISS,
    ArtifactStore,
    DiskStore,
    MemoryStore,
    PipelineStats,
    SharedDiskStore,
    StageStats,
    TieredStore,
    build_store,
)
from repro.pipeline.executor import BatchExecutor, BatchItemError
from repro.pipeline.faults import (
    CorruptArtifact,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.resilience import (
    Deadline,
    DeadlineExceeded,
    PipelineError,
    RetryBudget,
    RetryPolicy,
    StageError,
    StageTimeout,
    current_deadline,
    deadline_scope,
    is_deadline_error,
)
from repro.pipeline.stages import STAGES

__all__ = [
    "MISS",
    "ArtifactStore",
    "MemoryStore",
    "DiskStore",
    "SharedDiskStore",
    "TieredStore",
    "build_store",
    "StageStats",
    "PipelineStats",
    "BatchExecutor",
    "BatchItemError",
    "Pipeline",
    "STAGES",
    "PipelineError",
    "Deadline",
    "DeadlineExceeded",
    "RetryBudget",
    "RetryPolicy",
    "StageError",
    "StageTimeout",
    "current_deadline",
    "deadline_scope",
    "is_deadline_error",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "CorruptArtifact",
]
