"""Stage definitions: names, cache-key recipes, and disk codecs.

The pipeline decomposes one PPChecker run into five independently
cacheable stages.  Each stage is keyed by a content hash of exactly
the inputs that determine its output:

===========================  ===========================================
stage                        cache key = SHA-256 of
===========================  ===========================================
``policy_analysis``          analyzer fingerprint + html flag
                             + policy-text digest
``static_analysis``          APK content digest + analysis flags
``description_permissions``  AutoCog fingerprint + description digest
``lib_policy_analysis``      analyzer fingerprint + lib id
                             + lib-policy-text digest (or null)
``detect``                   package + content digests of the three
                             upstream artifacts + sorted permissions
                             + per-lib analysis digests + matcher
                             fingerprint + honor_disclaimer flag
===========================  ===========================================

``detect`` hashes the upstream *artifact contents* rather than reusing
the upstream keys, so a transformed analysis (e.g. the constraint
adjustment of :class:`repro.core.extended.ExtendedPPChecker`) gets its
own detect key even though the raw policy text is unchanged.

``STAGE_CODECS`` maps each stage to the ``(encode, decode)`` pair the
:class:`repro.pipeline.artifacts.DiskStore` uses; live artifacts keep
their types, documents are plain JSON (same idiom as
:mod:`repro.android.serialization`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.android.static_analysis import StaticAnalysisResult
from repro.core.report import AppReport
from repro.hashing import fingerprint, fingerprint_text
from repro.policy.model import PolicyAnalysis

if TYPE_CHECKING:  # pragma: no cover
    from repro.android.apk import Apk

POLICY_ANALYSIS = "policy_analysis"
STATIC_ANALYSIS = "static_analysis"
DESCRIPTION_PERMISSIONS = "description_permissions"
LIB_POLICY_ANALYSIS = "lib_policy_analysis"
DETECT = "detect"

STAGES = (
    POLICY_ANALYSIS,
    STATIC_ANALYSIS,
    DESCRIPTION_PERMISSIONS,
    LIB_POLICY_ANALYSIS,
    DETECT,
)


# -- cache keys ----------------------------------------------------------


def policy_key(analyzer_fingerprint: str, policy: str,
               html: bool) -> str:
    return fingerprint([POLICY_ANALYSIS, analyzer_fingerprint,
                        bool(html), fingerprint_text(policy)])


def static_key(apk: "Apk", *, use_reachability: bool,
               use_uri_analysis: bool) -> str:
    return fingerprint([STATIC_ANALYSIS, apk.content_digest(),
                        bool(use_reachability), bool(use_uri_analysis)])


def description_key(autocog_fingerprint: str, description: str) -> str:
    return fingerprint([DESCRIPTION_PERMISSIONS, autocog_fingerprint,
                        fingerprint_text(description)])


def lib_policy_key(analyzer_fingerprint: str, lib_id: str,
                   text: str | None) -> str:
    return fingerprint([LIB_POLICY_ANALYSIS, analyzer_fingerprint,
                        lib_id,
                        None if text is None else fingerprint_text(text)])


def detect_key(
    package: str,
    policy: PolicyAnalysis,
    static_result: StaticAnalysisResult,
    permissions: set[str],
    lib_analyses: dict[str, PolicyAnalysis],
    *,
    matcher_fingerprint: str,
    honor_disclaimer: bool,
) -> str:
    return fingerprint([
        DETECT,
        package,
        fingerprint(policy.to_dict()),
        fingerprint(static_result.to_dict()),
        sorted(permissions),
        {lib_id: fingerprint(analysis.to_dict())
         for lib_id, analysis in lib_analyses.items()},
        matcher_fingerprint,
        bool(honor_disclaimer),
    ])


# -- disk codecs ---------------------------------------------------------


def _encode_optional_policy(analysis: PolicyAnalysis | None) -> Any:
    return None if analysis is None else analysis.to_dict()


def _decode_optional_policy(doc: Any) -> PolicyAnalysis | None:
    return None if doc is None else PolicyAnalysis.from_dict(doc)


#: stage -> (encode to JSON document, decode back to a live artifact)
STAGE_CODECS: dict[str, tuple[Callable[[Any], Any],
                              Callable[[Any], Any]]] = {
    POLICY_ANALYSIS: (PolicyAnalysis.to_dict, PolicyAnalysis.from_dict),
    STATIC_ANALYSIS: (StaticAnalysisResult.to_dict,
                      StaticAnalysisResult.from_dict),
    DESCRIPTION_PERMISSIONS: (sorted, set),
    LIB_POLICY_ANALYSIS: (_encode_optional_policy,
                          _decode_optional_policy),
    DETECT: (AppReport.to_dict, AppReport.from_dict),
}


# -- defensive copies ----------------------------------------------------

def _clone_optional_policy(
    analysis: PolicyAnalysis | None,
) -> PolicyAnalysis | None:
    return None if analysis is None else analysis.clone()


#: stage -> copy handed to callers, so cached artifacts can never be
#: mutated through a returned reference.
STAGE_CLONES: dict[str, Callable[[Any], Any]] = {
    POLICY_ANALYSIS: PolicyAnalysis.clone,
    STATIC_ANALYSIS: StaticAnalysisResult.clone,
    DESCRIPTION_PERMISSIONS: set,
    LIB_POLICY_ANALYSIS: _clone_optional_policy,
    DETECT: AppReport.clone,
}


__all__ = [
    "POLICY_ANALYSIS",
    "STATIC_ANALYSIS",
    "DESCRIPTION_PERMISSIONS",
    "LIB_POLICY_ANALYSIS",
    "DETECT",
    "STAGES",
    "policy_key",
    "static_key",
    "description_key",
    "lib_policy_key",
    "detect_key",
    "STAGE_CODECS",
    "STAGE_CLONES",
]
