"""The staged PPChecker pipeline (Fig. 4, decomposed).

:class:`Pipeline` runs the five stages of :mod:`repro.pipeline.stages`
over app bundles, memoizing every stage result in an artifact store
keyed by content hashes of the stage inputs.  Re-checking an unchanged
app (or a changed app whose policy / APK / description stayed the
same) never re-runs the corresponding analysis; lib-policy analyses
are shared across *all* apps and checker instances that share a store.

:class:`repro.core.checker.PPChecker` is a thin facade over this
class; use the pipeline directly when you need batch fan-out, a disk
cache, or the per-stage counters.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from threading import Lock
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.android.static_analysis import (
    StaticAnalysisResult,
    analyze_apk,
)
from repro.core.incomplete import (
    detect_incomplete_via_code,
    detect_incomplete_via_description,
)
from repro.core.inconsistent import detect_inconsistent
from repro.core.incorrect import (
    detect_incorrect_via_code,
    detect_incorrect_via_description,
)
from repro.core.matching import InfoMatcher
from repro.core.report import AppFailure, AppReport
from repro.description.autocog import AutoCog
from repro.pipeline import stages
from repro.pipeline.artifacts import (
    MISS,
    ArtifactStore,
    MemoryStore,
    PipelineStats,
)
from repro.pipeline.executor import BatchExecutor
from repro.pipeline.faults import FaultPlan
from repro.pipeline.resilience import RetryPolicy, StageError
from repro.policy.analyzer import PolicyAnalyzer
from repro.policy.model import PolicyAnalysis

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.checker import AppBundle


@dataclass
class Pipeline:
    """Content-addressed, stage-cached PPChecker execution."""

    lib_policy_source: Callable[[str], str | None] = lambda lib_id: None
    policy_analyzer: PolicyAnalyzer = field(default_factory=PolicyAnalyzer)
    autocog: AutoCog = field(default_factory=AutoCog)
    matcher: InfoMatcher = field(default_factory=InfoMatcher)
    use_reachability: bool = True
    use_uri_analysis: bool = True
    honor_disclaimer: bool = True
    store: ArtifactStore = field(default_factory=MemoryStore)
    stats: PipelineStats = field(default_factory=PipelineStats)
    #: per-stage timeout / bounded-retry configuration
    resilience: RetryPolicy = field(default_factory=RetryPolicy)
    #: chaos hook for tests and benchmarks; None in production
    faults: FaultPlan | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self._lib_lock = Lock()

    # -- stage runner ------------------------------------------------------

    @contextmanager
    def _stage_guard(self, stage: str, context: str) -> Iterator[None]:
        """Attribute any failure in the block to *stage* -- key
        computation, input unpacking, codec encoding, and the compute
        itself all count as that stage failing for that app/lib."""
        try:
            yield
        except StageError:
            raise  # already attributed (possibly to an inner stage)
        except Exception as exc:
            raise StageError(stage, context, exc) from exc

    def _run(self, stage: str, digest: str,
             compute: Callable[[], Any], context: str = "") -> Any:
        """Look up ``(stage, digest)``; compute-and-store on a miss,
        under the resilience policy (timeout + bounded retries) and
        any armed fault plan.  Returns a defensive copy so cached
        artifacts stay pristine."""
        clone = stages.STAGE_CLONES[stage]
        started = time.perf_counter()
        artifact = self.store.get(stage, digest)
        if artifact is not MISS:
            self.stats.record(stage, hit=True,
                              seconds=time.perf_counter() - started)
            return clone(artifact)
        if self.faults is not None:
            compute = self.faults.wrap(stage, context, compute)
        try:
            artifact = self.resilience.execute(
                compute, stage=stage, context=context, digest=digest,
                ledger=self.stats,
            )
        except StageError:
            self.stats.record(stage, hit=False, failed=True,
                              seconds=time.perf_counter() - started)
            raise
        # clone before put: a malformed artifact (e.g. an injected
        # corruption) fails validation here, before it can poison the
        # shared cache entry for every app with the same digest
        try:
            out = clone(artifact)
            self.store.put(stage, digest, artifact)
        except Exception:
            self.stats.record(stage, hit=False, failed=True,
                              seconds=time.perf_counter() - started)
            raise
        self.stats.record(stage, hit=False,
                          seconds=time.perf_counter() - started)
        return out

    # -- the five stages ---------------------------------------------------

    def policy_analysis(self, bundle: "AppBundle") -> PolicyAnalysis:
        with self._stage_guard(stages.POLICY_ANALYSIS, bundle.package):
            digest = stages.policy_key(
                self.policy_analyzer.fingerprint(),
                bundle.policy, bundle.policy_is_html)
            return self._run(
                stages.POLICY_ANALYSIS, digest,
                lambda: self.policy_analyzer.analyze(
                    bundle.policy, html=bundle.policy_is_html),
                context=bundle.package,
            )

    def static_analysis(self, bundle: "AppBundle") -> StaticAnalysisResult:
        with self._stage_guard(stages.STATIC_ANALYSIS, bundle.package):
            # unpack before keying (in place, exactly what analyze_apk's
            # auto_unpack would do): the cache key must address the real
            # bytecode, not the packer stub, so a re-check of the same
            # bundle hits regardless of when the unpack happened
            was_packed = bundle.apk.packed
            if was_packed:
                from repro.android.packer import unpack

                unpack(bundle.apk)
            digest = stages.static_key(
                bundle.apk,
                use_reachability=self.use_reachability,
                use_uri_analysis=self.use_uri_analysis,
            )
            result = self._run(
                stages.STATIC_ANALYSIS, digest,
                lambda: analyze_apk(
                    bundle.apk,
                    use_reachability=self.use_reachability,
                    use_uri_analysis=self.use_uri_analysis,
                ),
                context=bundle.package,
            )
            if was_packed:
                result.was_packed = True  # mutates the clone, not the cache
            return result

    def description_permissions(self, bundle: "AppBundle") -> set[str]:
        """The raw inferred permission set (before the manifest
        intersection, which is app-specific and free)."""
        with self._stage_guard(stages.DESCRIPTION_PERMISSIONS,
                               bundle.package):
            digest = stages.description_key(self.autocog.fingerprint(),
                                            bundle.description)
            return self._run(
                stages.DESCRIPTION_PERMISSIONS, digest,
                lambda: self.autocog.infer_permissions(
                    bundle.description),
                context=bundle.package,
            )

    def lib_policy_analysis(self, lib_id: str) -> PolicyAnalysis | None:
        """The analyzed policy of one third-party lib (None when the
        lib publishes no policy), shared across apps and checkers."""
        with self._stage_guard(stages.LIB_POLICY_ANALYSIS, lib_id):
            text = self.lib_policy_source(lib_id)
            digest = stages.lib_policy_key(
                self.policy_analyzer.fingerprint(), lib_id, text)
            # serialize lib computes: the handful of shared lib policies
            # would otherwise be analyzed once per worker on a cold start
            with self._lib_lock:
                return self._run(
                    stages.LIB_POLICY_ANALYSIS, digest,
                    lambda: None if text is None
                    else self.policy_analyzer.analyze(text),
                    context=lib_id,
                )

    def detect(
        self,
        bundle: "AppBundle",
        policy: PolicyAnalysis,
        static_result: StaticAnalysisResult,
        permissions: set[str],
    ) -> AppReport:
        """The three detectors over precomputed stage artifacts."""
        with self._stage_guard(stages.DETECT, bundle.package):
            return self._detect(bundle, policy, static_result,
                                permissions)

    def _detect(
        self,
        bundle: "AppBundle",
        policy: PolicyAnalysis,
        static_result: StaticAnalysisResult,
        permissions: set[str],
    ) -> AppReport:
        lib_analyses = {
            spec.lib_id: analysis
            for spec in static_result.libraries
            if (analysis := self.lib_policy_analysis(spec.lib_id))
            is not None
        }
        digest = stages.detect_key(
            bundle.package, policy, static_result, permissions,
            lib_analyses,
            matcher_fingerprint=self.matcher.fingerprint(),
            honor_disclaimer=self.honor_disclaimer,
        )

        def compute() -> AppReport:
            report = AppReport(package=bundle.package)
            report.incomplete.extend(detect_incomplete_via_description(
                policy, permissions, self.matcher,
            ))
            report.incomplete.extend(detect_incomplete_via_code(
                policy, static_result, self.matcher,
            ))
            report.incorrect.extend(detect_incorrect_via_description(
                policy, permissions, self.matcher,
            ))
            report.incorrect.extend(detect_incorrect_via_code(
                policy, static_result, self.matcher,
            ))
            report.inconsistent.extend(detect_inconsistent(
                policy, lib_analyses, self.matcher,
                honor_disclaimer=self.honor_disclaimer,
            ))
            return report

        return self._run(stages.DETECT, digest, compute,
                         context=bundle.package)

    # -- whole-app and batch entry points ----------------------------------

    def check(self, bundle: "AppBundle") -> AppReport:
        """All five stages over one app (Alg. 1-5, cached)."""
        policy = self.policy_analysis(bundle)
        static_result = self.static_analysis(bundle)
        # Alg. 1 considers only permissions the app actually requests
        permissions = (self.description_permissions(bundle)
                       & bundle.apk.manifest.permissions)
        return self.detect(bundle, policy, static_result, permissions)

    def check_batch(
        self,
        bundles: list["AppBundle"],
        workers: int = 1,
        check: Callable[["AppBundle"], AppReport] | None = None,
        on_error: str = "raise",
        on_outcome: Callable[["AppBundle", AppReport | AppFailure],
                             None] | None = None,
    ) -> list[AppReport | AppFailure]:
        """``check`` over every bundle, fanned out over *workers*
        threads; results come back in input order.  ``check`` defaults
        to :meth:`check` -- pass a bound override (e.g. an
        :class:`~repro.core.extended.ExtendedPPChecker` method) to
        keep subclass behaviour under fan-out.

        ``on_error="raise"`` (the default) aborts the batch on the
        first failing bundle, as a
        :class:`~repro.pipeline.executor.BatchItemError` naming the
        item.  ``on_error="quarantine"`` isolates failures per app: a
        failing bundle yields an
        :class:`~repro.core.report.AppFailure` in its slot and the
        rest of the batch proceeds (split the mix with
        :func:`repro.core.report.partition_outcomes`).

        ``on_outcome`` (when given) observes every finished app from
        the worker thread that produced it, before the batch
        completes -- the durability layer checkpoints each outcome to
        its journal here.  It must be thread-safe; exceptions
        propagate as that bundle's failure."""
        check = check or self.check
        if on_error not in ("raise", "quarantine"):
            raise ValueError(f"unknown on_error mode: {on_error!r}")

        def run(bundle: "AppBundle") -> AppReport | AppFailure:
            if on_error == "raise":
                outcome: AppReport | AppFailure = check(bundle)
            else:
                try:
                    outcome = check(bundle)
                except Exception as exc:
                    outcome = AppFailure.from_exception(
                        bundle.package, exc)
            if on_outcome is not None:
                on_outcome(bundle, outcome)
            return outcome

        return BatchExecutor(workers=workers).map(run, bundles)


__all__ = ["Pipeline"]
