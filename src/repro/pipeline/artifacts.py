"""Artifact stores and per-stage counters for the staged pipeline.

An *artifact* is the output of one pipeline stage (a
:class:`~repro.policy.model.PolicyAnalysis`, a
:class:`~repro.android.static_analysis.StaticAnalysisResult`, an
inferred permission set, ...), addressed by ``(stage name, content
digest of the stage inputs)``.  Stores answer "have we computed this
before?":

- :class:`MemoryStore`     -- a bounded, thread-safe LRU holding live
  artifact objects; the default.
- :class:`DiskStore`       -- one JSON document per artifact under a
  cache directory, using the stage codecs from
  :mod:`repro.pipeline.stages`; survives across processes and runs.
- :class:`SharedDiskStore` -- one sqlite database shared by many
  *concurrent* processes (the ``--shards N`` worker plane): writes
  take a single-writer lease per key, readers always see either the
  old or the new complete document, and a cache hit in one worker is
  a hit in all.
- :class:`TieredStore`     -- memory in front of a disk tier,
  backfilling the memory layer on a disk hit.

:class:`PipelineStats` aggregates per-stage wall time, execution and
cache-hit counts; it is what ``StudyResult.stats`` and the CLI
``--json`` output surface.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
import threading
import time
import uuid
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

#: Sentinel distinguishing "never computed" from a stored ``None``
#: artifact (libs without a policy cache as ``None``).
MISS = object()


class ArtifactStore(Protocol):
    """Minimal store interface the pipeline drives."""

    def get(self, stage: str, digest: str) -> Any:
        """The stored artifact, or :data:`MISS`."""

    def put(self, stage: str, digest: str, artifact: Any) -> None:
        """Store *artifact* under ``(stage, digest)``."""


class MemoryStore:
    """Thread-safe in-memory LRU over ``(stage, digest)`` keys."""

    def __init__(self, max_entries: int = 8192) -> None:
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple[str, str], Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, stage: str, digest: str) -> Any:
        key = (stage, digest)
        with self._lock:
            if key not in self._entries:
                return MISS
            self._entries.move_to_end(key)
            return self._entries[key]

    def put(self, stage: str, digest: str, artifact: Any) -> None:
        key = (stage, digest)
        with self._lock:
            self._entries[key] = artifact
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class DiskStore:
    """One ``<cache_dir>/<stage>/<digest>.json`` document per artifact.

    ``codecs`` maps a stage name to an ``(encode, decode)`` pair
    translating between the live artifact and its JSON document (the
    registry lives in :data:`repro.pipeline.stages.STAGE_CODECS`).
    Stages without a codec are passed through untouched -- their
    artifacts must already be JSON-serializable.  Writes go through a
    temp file + atomic rename so concurrent writers can never expose a
    torn document; with ``durable`` (the default) the temp file is
    fsync'd before the rename and the directory after it, so a cached
    artifact survives power loss, not just process death (an
    un-fsync'd rename can be rolled back by the filesystem journal).
    """

    def __init__(
        self,
        cache_dir: str,
        codecs: dict[str, tuple[Callable[[Any], Any],
                                Callable[[Any], Any]]] | None = None,
        durable: bool = True,
    ) -> None:
        if codecs is None:
            from repro.pipeline.stages import STAGE_CODECS
            codecs = STAGE_CODECS
        self.cache_dir = cache_dir
        self.codecs = codecs
        self.durable = durable
        os.makedirs(cache_dir, exist_ok=True)

    def _path(self, stage: str, digest: str) -> str:
        return os.path.join(self.cache_dir, stage, digest + ".json")

    def get(self, stage: str, digest: str) -> Any:
        path = self._path(stage, digest)
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, ValueError):
            # missing, unreadable, truncated, or not-JSON documents
            # are cache misses, never crashes (ValueError covers both
            # JSONDecodeError and UnicodeDecodeError on binary garbage)
            return MISS
        codec = self.codecs.get(stage)
        if codec is None:
            return doc
        try:
            return codec[1](doc)
        except Exception:
            # valid JSON but the wrong shape (a torn write that
            # happened to parse, a document from an older schema):
            # recompute rather than crash the whole batch
            return MISS

    def put(self, stage: str, digest: str, artifact: Any) -> None:
        codec = self.codecs.get(stage)
        doc = artifact if codec is None else codec[0](artifact)
        path = self._path(stage, digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(doc, handle, sort_keys=True,
                          separators=(",", ":"))
                if self.durable:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp, path)
            if self.durable:
                from repro.durability.journal import fsync_dir

                fsync_dir(os.path.dirname(path))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise


class SharedDiskStore:
    """One sqlite database shared by many concurrent processes.

    The sharded worker plane (``serve --shards N`` / ``study --shards
    N``) points every worker at the same database so a cache hit in
    one process is a hit in all.  The concurrency contract:

    - **readers never tear**: an artifact row is replaced in a single
      transaction, so a reader racing a writer sees either the old or
      the new complete document, never a splice of both;
    - **single-writer leases**: :meth:`acquire_lease` hands exclusive
      compute rights for one ``(stage, digest)`` to one owner until it
      releases or the lease expires -- workers racing on the same key
      can elect one to run the stage while the rest wait for the row;
    - **writes are advisory**: :meth:`put` under a live foreign lease,
      or against a momentarily locked database, quietly drops the
      write.  A lost cache write is a future miss, never an error.

    Failure tolerance matches :class:`DiskStore`: a missing, corrupt,
    or wrong-schema row decodes to :data:`MISS` and is recomputed.
    """

    #: seconds before an unreleased lease is considered abandoned
    #: (a SIGKILL'd worker must not wedge its keys forever)
    LEASE_TTL = 60.0

    def __init__(
        self,
        cache_dir: str,
        codecs: dict[str, tuple[Callable[[Any], Any],
                                Callable[[Any], Any]]] | None = None,
        lease_ttl: float = LEASE_TTL,
        busy_timeout: float = 5.0,
    ) -> None:
        if codecs is None:
            from repro.pipeline.stages import STAGE_CODECS
            codecs = STAGE_CODECS
        self.codecs = codecs
        self.lease_ttl = lease_ttl
        self.busy_timeout = busy_timeout
        os.makedirs(cache_dir, exist_ok=True)
        self.path = os.path.join(cache_dir, "artifacts.sqlite")
        #: lease identity: unique per store instance so two stores in
        #: one process (or a respawned worker) never collide
        self.owner = f"{os.getpid()}-{uuid.uuid4().hex[:12]}"
        self._local = threading.local()
        with self._begin() as conn:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS artifacts ("
                " stage TEXT NOT NULL, digest TEXT NOT NULL,"
                " doc TEXT NOT NULL,"
                " PRIMARY KEY (stage, digest))")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS leases ("
                " stage TEXT NOT NULL, digest TEXT NOT NULL,"
                " owner TEXT NOT NULL, expires REAL NOT NULL,"
                " PRIMARY KEY (stage, digest))")

    # -- connection management --------------------------------------------

    def _conn(self) -> sqlite3.Connection:
        """A per-thread connection, re-opened after fork (sqlite
        handles must never cross a fork boundary)."""
        cached = getattr(self._local, "conn", None)
        if cached is not None and self._local.pid == os.getpid():
            return cached
        conn = sqlite3.connect(self.path,
                               timeout=self.busy_timeout,
                               isolation_level=None)
        conn.execute(f"PRAGMA busy_timeout = "
                     f"{int(self.busy_timeout * 1000)}")
        try:
            # WAL lets readers proceed under a writer; sqlite falls
            # back (e.g. some network filesystems) without breaking
            # the atomic-replacement contract
            conn.execute("PRAGMA journal_mode = WAL")
            conn.execute("PRAGMA synchronous = NORMAL")
        except sqlite3.Error:
            pass
        self._local.conn = conn
        self._local.pid = os.getpid()
        return conn

    @contextmanager
    def _begin(self) -> Any:
        """``with store._begin() as conn``: an IMMEDIATE (write-locked)
        transaction with commit/rollback handling."""
        conn = self._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            yield conn
        except BaseException:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            raise
        else:
            conn.execute("COMMIT")

    # -- ArtifactStore protocol -------------------------------------------

    def get(self, stage: str, digest: str) -> Any:
        try:
            row = self._conn().execute(
                "SELECT doc FROM artifacts WHERE stage = ? "
                "AND digest = ?", (stage, digest)).fetchone()
        except sqlite3.Error:
            return MISS
        if row is None:
            return MISS
        try:
            doc = json.loads(row[0])
        except ValueError:
            return MISS
        codec = self.codecs.get(stage)
        if codec is None:
            return doc
        try:
            return codec[1](doc)
        except Exception:
            # wrong-schema rows (an older writer, a corrupted page
            # that still parsed) are misses, never crashes
            return MISS

    def put(self, stage: str, digest: str, artifact: Any) -> None:
        codec = self.codecs.get(stage)
        doc = artifact if codec is None else codec[0](artifact)
        payload = json.dumps(doc, sort_keys=True,
                             separators=(",", ":"))
        try:
            with self._begin() as conn:
                if self._foreign_lease(conn, stage, digest):
                    return
                conn.execute(
                    "INSERT OR REPLACE INTO artifacts "
                    "(stage, digest, doc) VALUES (?, ?, ?)",
                    (stage, digest, payload))
                conn.execute(
                    "DELETE FROM leases WHERE stage = ? AND "
                    "digest = ? AND owner = ?",
                    (stage, digest, self.owner))
        except sqlite3.Error:
            # a contended or momentarily unavailable database drops
            # the write -- the artifact is recomputed on the next miss
            return

    # -- leases ------------------------------------------------------------

    def _foreign_lease(self, conn: sqlite3.Connection, stage: str,
                       digest: str) -> bool:
        row = conn.execute(
            "SELECT owner, expires FROM leases WHERE stage = ? "
            "AND digest = ?", (stage, digest)).fetchone()
        return (row is not None and row[0] != self.owner
                and row[1] > time.time())

    def acquire_lease(self, stage: str, digest: str) -> bool:
        """Try to become the single writer for ``(stage, digest)``.

        True when this store now holds the lease (fresh, re-entrant,
        or stolen from an expired owner); False while another live
        owner holds it."""
        now = time.time()
        try:
            with self._begin() as conn:
                row = conn.execute(
                    "SELECT owner, expires FROM leases WHERE "
                    "stage = ? AND digest = ?",
                    (stage, digest)).fetchone()
                if (row is not None and row[0] != self.owner
                        and row[1] > now):
                    return False
                conn.execute(
                    "INSERT OR REPLACE INTO leases "
                    "(stage, digest, owner, expires) "
                    "VALUES (?, ?, ?, ?)",
                    (stage, digest, self.owner,
                     now + self.lease_ttl))
                return True
        except sqlite3.Error:
            return False

    def release_lease(self, stage: str, digest: str) -> None:
        """Give up a held lease (no-op for leases held by others)."""
        try:
            with self._begin() as conn:
                conn.execute(
                    "DELETE FROM leases WHERE stage = ? AND "
                    "digest = ? AND owner = ?",
                    (stage, digest, self.owner))
        except sqlite3.Error:
            pass

    def lease_holder(self, stage: str, digest: str) -> str | None:
        """The live lease owner id, or None (expired counts as none)."""
        try:
            row = self._conn().execute(
                "SELECT owner, expires FROM leases WHERE stage = ? "
                "AND digest = ?", (stage, digest)).fetchone()
        except sqlite3.Error:
            return None
        if row is None or row[1] <= time.time():
            return None
        return row[0]

    def __len__(self) -> int:
        try:
            row = self._conn().execute(
                "SELECT COUNT(*) FROM artifacts").fetchone()
        except sqlite3.Error:
            return 0
        return int(row[0])

    def close(self) -> None:
        cached = getattr(self._local, "conn", None)
        if cached is not None:
            try:
                cached.close()
            except sqlite3.Error:
                pass
            self._local.conn = None


class TieredStore:
    """Memory in front of a disk tier (:class:`DiskStore` or
    :class:`SharedDiskStore`); disk hits backfill the memory layer."""

    def __init__(self, memory: MemoryStore,
                 disk: "DiskStore | SharedDiskStore") -> None:
        self.memory = memory
        self.disk = disk

    def get(self, stage: str, digest: str) -> Any:
        artifact = self.memory.get(stage, digest)
        if artifact is not MISS:
            return artifact
        artifact = self.disk.get(stage, digest)
        if artifact is not MISS:
            self.memory.put(stage, digest, artifact)
        return artifact

    def put(self, stage: str, digest: str, artifact: Any) -> None:
        self.memory.put(stage, digest, artifact)
        self.disk.put(stage, digest, artifact)


def build_store(cache_dir: str | None = None,
                max_entries: int = 8192,
                backend: str = "json") -> ArtifactStore:
    """The default store layout: in-memory LRU, plus a disk tier when
    a cache directory is given.

    ``backend`` selects the disk tier: ``"json"`` (one file per
    artifact, single-process writers) or ``"sqlite"`` (one shared
    database safe for many concurrent worker processes -- what the
    ``--shards N`` planes use).
    """
    memory = MemoryStore(max_entries=max_entries)
    if cache_dir is None:
        return memory
    if backend == "json":
        disk: DiskStore | SharedDiskStore = DiskStore(cache_dir)
    elif backend == "sqlite":
        disk = SharedDiskStore(cache_dir)
    else:
        raise ValueError(
            f"unknown artifact store backend {backend!r} "
            "(expected 'json' or 'sqlite')")
    return TieredStore(memory, disk)


# -- counters ------------------------------------------------------------


@dataclass
class StageStats:
    """Counters for one stage."""

    executions: int = 0
    cache_hits: int = 0
    failures: int = 0
    seconds: float = 0.0

    @property
    def requests(self) -> int:
        return self.executions + self.cache_hits + self.failures

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.requests if self.requests else 0.0

    def to_dict(self) -> dict[str, int | float]:
        return {
            "executions": self.executions,
            "cache_hits": self.cache_hits,
            "failures": self.failures,
            "hit_rate": self.hit_rate,
            "seconds": self.seconds,
        }


class PipelineStats:
    """Thread-safe per-stage counters for one pipeline instance.

    Listeners registered with :meth:`add_listener` observe every
    recorded stage event (the serving layer's metrics registry hooks
    in here); they run outside the counter lock and after the
    counters are updated, and never change stage behaviour.
    """

    def __init__(self) -> None:
        self._stages: dict[str, StageStats] = {}
        self._lock = threading.Lock()
        self._listeners: list[Callable[..., None]] = []
        self._abandoned_live = 0
        self._abandoned_total = 0

    def add_listener(
        self, listener: Callable[..., None],
    ) -> None:
        """Call ``listener(stage, hit=..., failed=..., seconds=...)``
        for every subsequent :meth:`record`.  Listeners must be
        thread-safe and cheap; exceptions propagate to the recording
        thread."""
        with self._lock:
            self._listeners.append(listener)

    def record(self, stage: str, *, hit: bool, seconds: float,
               failed: bool = False) -> None:
        with self._lock:
            stats = self._stages.setdefault(stage, StageStats())
            if failed:
                stats.failures += 1
            elif hit:
                stats.cache_hits += 1
            else:
                stats.executions += 1
            stats.seconds += seconds
            listeners = tuple(self._listeners)
        for listener in listeners:
            listener(stage, hit=hit, failed=failed, seconds=seconds)

    # -- abandoned stage threads (the call_with_timeout ledger) ------------

    def thread_abandoned(self) -> None:
        """A timed-out stage thread was left behind (it cannot be
        killed; the cancellation event asks it to unwind)."""
        with self._lock:
            self._abandoned_live += 1
            self._abandoned_total += 1

    def thread_reclaimed(self) -> None:
        """An abandoned stage thread finally returned (usually by
        observing its cancellation event at a poll point)."""
        with self._lock:
            self._abandoned_live -= 1

    @property
    def abandoned_threads(self) -> int:
        """Stage threads abandoned by a timeout and still running.
        Bounded in a healthy process: cooperative stages unwind at
        their next cancellation poll."""
        with self._lock:
            return self._abandoned_live

    @property
    def abandoned_threads_total(self) -> int:
        """Stage threads ever abandoned by a timeout."""
        with self._lock:
            return self._abandoned_total

    def stage(self, name: str) -> StageStats:
        with self._lock:
            return self._stages.setdefault(name, StageStats())

    def snapshot(self) -> dict[str, dict[str, int | float]]:
        """A point-in-time copy (diff two snapshots to scope a run)."""
        with self._lock:
            return {name: stats.to_dict()
                    for name, stats in sorted(self._stages.items())}

    def to_dict(self) -> dict[str, dict[str, int | float]]:
        return self.snapshot()

    @staticmethod
    def nlp_caches() -> dict[str, dict[str, int]]:
        """Hit/miss/size counters of the process-wide NLP/ESA memo
        caches (ESA interpretation vectors, pair similarities, parsed
        sentences; see :mod:`repro.memo`).  Process-wide rather than
        per-pipeline: the caches sit below the stage layer and are
        shared by every pipeline in the process."""
        from repro.memo import cache_stats

        return cache_stats()


__all__ = [
    "MISS",
    "ArtifactStore",
    "MemoryStore",
    "DiskStore",
    "SharedDiskStore",
    "TieredStore",
    "build_store",
    "StageStats",
    "PipelineStats",
]
