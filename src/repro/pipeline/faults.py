"""Injectable fault plans: the pipeline's chaos harness.

A :class:`FaultPlan` is handed to :class:`repro.pipeline.Pipeline`
(or ``PPChecker(fault_plan=...)``, or the CLI ``--fault-plan`` flag)
and fires at stage boundaries, forcing the failure shapes real
corpora produce:

- ``raise``   -- the stage throws (:class:`InjectedFault`),
- ``hang``    -- the stage sleeps past any reasonable budget, so a
  configured stage timeout must cut it off,
- ``slow``    -- the stage completes *correctly* but only after a
  configurable latency (the brownout shape: a slow fetch or wedged
  analyzer that still answers),
- ``flaky``   -- the stage throws with a seeded probability (the
  intermittent-failure shape retries are for),
- ``corrupt`` -- the stage completes but yields a garbage artifact
  (:class:`CorruptArtifact`) that poisons downstream consumers,
- ``crash``   -- the whole process dies on the spot (``os._exit``, no
  cleanup, no atexit -- the scriptable ``kill -9``), which is what
  the durability layer's crash-recovery suite restarts from.

Each :class:`FaultSpec` matches a stage name (or ``"*"``) and an
app/lib context substring (or ``"*"``), and can be budgeted to fire
only the first ``times`` matching attempts per context (the recipe
for "fails twice, then the retry succeeds") or the first ``total``
attempts across *all* contexts (the recipe for "this shard is slow
for a while, then recovers").  Every spec also takes a
``probability`` in ``(0, 1]``: the firing roll is seeded from
``(seed, spec, stage, context, attempt-ordinal)``, so probabilistic
plans are exactly reproducible and behave identically under serial
and parallel batch execution -- firing decisions are counted per
``(spec, stage, context)`` under a lock.

The latency kinds sleep through
:func:`repro.pipeline.resilience.sleep_cancellable`, so a stage
thread abandoned by its timeout guard unwinds at the next poll
instead of leaking forever.

Plans serialize to/from JSON (:meth:`FaultPlan.to_dict`,
:meth:`FaultPlan.from_dict`, :meth:`FaultPlan.from_json_file`) so the
CLI and CI can replay the exact same fault schedule.
"""

from __future__ import annotations

import json
import os
import random
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.hashing import fingerprint
from repro.pipeline.resilience import sleep_cancellable

RAISE = "raise"
HANG = "hang"
SLOW = "slow"
FLAKY = "flaky"
CORRUPT = "corrupt"
CRASH = "crash"

KINDS = (RAISE, HANG, SLOW, FLAKY, CORRUPT, CRASH)

#: the exit status a ``crash`` fault dies with (recognizable in a
#: harness's ``process.returncode``)
CRASH_EXIT_CODE = 70

#: indirection so unit tests can observe a crash without dying;
#: real runs hard-exit exactly like a SIGKILL'd process would
_hard_exit: Callable[[int], None] = os._exit


class InjectedFault(RuntimeError):
    """The exception a ``raise``/``flaky``-kind fault throws."""


class CorruptArtifact:
    """A deliberately unusable stand-in for a stage artifact.

    It carries none of the attributes downstream stages expect, so the
    first consumer blows up -- exactly how a corrupt cached document
    or a half-written analysis manifests in the wild.
    """

    def __init__(self, message: str = "corrupt artifact") -> None:
        self.message = message

    def __repr__(self) -> str:
        return f"CorruptArtifact({self.message!r})"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault."""

    stage: str = "*"            # stage name or "*" for any
    match: str = "*"            # context substring or "*" for any
    kind: str = RAISE           # one of KINDS
    message: str = "injected fault"
    times: int | None = None    # fire only the first N attempts per
                                # (stage, context); None = always
    total: int | None = None    # fire only the first N attempts across
                                # every context; None = unbounded
    hang_seconds: float = 60.0
    delay_seconds: float = 0.5  # the ``slow`` kind's added latency
    probability: float = 1.0    # chance an eligible attempt fires
    seed: int = 0               # seeds the probabilistic roll

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"probability must be in (0, 1]: {self.probability!r}")

    def applies_to(self, stage: str, context: str) -> bool:
        if self.stage not in ("*", stage):
            return False
        return self.match == "*" or self.match in context

    def to_dict(self) -> dict[str, Any]:
        return {
            "stage": self.stage,
            "match": self.match,
            "kind": self.kind,
            "message": self.message,
            "times": self.times,
            "total": self.total,
            "hang_seconds": self.hang_seconds,
            "delay_seconds": self.delay_seconds,
            "probability": self.probability,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> FaultSpec:
        return cls(
            stage=doc.get("stage", "*"),
            match=doc.get("match", "*"),
            kind=doc.get("kind", RAISE),
            message=doc.get("message", "injected fault"),
            times=doc.get("times"),
            total=doc.get("total"),
            hang_seconds=doc.get("hang_seconds", 60.0),
            delay_seconds=doc.get("delay_seconds", 0.5),
            probability=doc.get("probability", 1.0),
            seed=doc.get("seed", 0),
        )


@dataclass
class FaultPlan:
    """An ordered list of :class:`FaultSpec`; first match fires."""

    faults: list[FaultSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        # (spec index, stage, context) -> attempts the spec fired on
        self._fired: dict[tuple[int, str, str], int] = {}
        # (spec index, stage, context) -> eligible attempts consulted
        # (the probabilistic roll is seeded from this ordinal, so the
        # schedule replays exactly)
        self._consulted: dict[tuple[int, str, str], int] = {}
        # spec index -> attempts the spec fired on, across contexts
        self._fired_total: dict[int, int] = {}

    # -- firing ------------------------------------------------------------

    def fire(self, stage: str, context: str) -> FaultSpec | None:
        """The spec that fires for this attempt, consuming one unit of
        its budget; ``None`` when no spec applies (or all budgets are
        spent, or every eligible spec's probability roll passed)."""
        with self._lock:
            for index, spec in enumerate(self.faults):
                if not spec.applies_to(stage, context):
                    continue
                key = (index, stage, context)
                used = self._fired.get(key, 0)
                if spec.times is not None and used >= spec.times:
                    continue
                if spec.total is not None \
                        and self._fired_total.get(index, 0) >= spec.total:
                    continue
                if spec.probability < 1.0:
                    ordinal = self._consulted.get(key, 0)
                    self._consulted[key] = ordinal + 1
                    roll = random.Random(fingerprint(
                        [spec.seed, index, stage, context, ordinal]
                    )).random()
                    if roll >= spec.probability:
                        continue  # this attempt dodged the fault
                self._fired[key] = used + 1
                self._fired_total[index] = \
                    self._fired_total.get(index, 0) + 1
                return spec
        return None

    def wrap(self, stage: str, context: str,
             compute: Callable[[], Any]) -> Callable[[], Any]:
        """*compute* with this plan's faults applied; the plan is
        consulted per call, so every retry attempt re-rolls."""

        def invoke() -> Any:
            spec = self.fire(stage, context)
            if spec is None:
                return compute()
            if spec.kind in (RAISE, FLAKY):
                raise InjectedFault(
                    f"{context}:{stage}: {spec.message}"
                )
            if spec.kind == HANG:
                sleep_cancellable(spec.hang_seconds)
                return compute()
            if spec.kind == SLOW:
                # brownout: the answer is still correct, just late
                sleep_cancellable(spec.delay_seconds)
                return compute()
            if spec.kind == CRASH:
                # the process dies here: no stack unwinding, no
                # flushes -- exactly the failure a power loss or
                # OOM kill produces mid-stage
                _hard_exit(CRASH_EXIT_CODE)
                raise InjectedFault(  # pragma: no cover - tests stub
                    f"{context}:{stage}: crash fault did not exit")
            compute()  # pay the real cost, then hand back garbage
            return CorruptArtifact(
                f"{context}:{stage}: {spec.message}"
            )

        return invoke

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"faults": [spec.to_dict() for spec in self.faults]}

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> FaultPlan:
        return cls(faults=[FaultSpec.from_dict(f)
                           for f in doc.get("faults", ())])

    @classmethod
    def from_json_file(cls, path: str) -> FaultPlan:
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


__all__ = [
    "RAISE",
    "HANG",
    "SLOW",
    "FLAKY",
    "CORRUPT",
    "CRASH",
    "CRASH_EXIT_CODE",
    "KINDS",
    "InjectedFault",
    "CorruptArtifact",
    "FaultSpec",
    "FaultPlan",
]
