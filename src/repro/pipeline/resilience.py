"""Per-stage resilience: bounded retries, timeouts, and backoff.

Large compliance batches (the ROADMAP's longitudinal re-checking
workload) run over inputs where broken policies, truncated APKs, and
wedged analyses are the norm, so a stage execution must be allowed to
fail *bounded* -- retried a configurable number of times with
deterministic exponential backoff, cut off by a wall-clock timeout --
and then fail *loud but contained*: every terminal stage failure is a
:class:`StageError` carrying the stage name, the app/lib context, the
attempt count, and the original exception, which the batch layer turns
into a quarantine record instead of aborting the run.

Backoff jitter is seeded from the stage/digest/attempt triple, so two
runs of the same batch (serial or parallel) sleep the same schedule --
determinism is a repo-wide invariant the fault-injection suite checks.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.hashing import fingerprint


class PipelineError(Exception):
    """Base class for pipeline execution failures."""


class StageTimeout(PipelineError):
    """A stage execution exceeded its wall-clock budget."""

    def __init__(self, stage: str, context: str,
                 timeout: float) -> None:
        self.stage = stage
        self.context = context
        self.timeout = timeout
        super().__init__(
            f"{context or '<no context>'}: stage {stage!r} exceeded "
            f"its {timeout:g}s timeout"
        )


class StageError(PipelineError):
    """Terminal failure of one stage for one app/lib.

    ``stage`` is the pipeline stage name, ``context`` the package or
    lib id being processed, ``attempts`` how many executions were
    tried; the original exception rides along as ``__cause__``.
    """

    def __init__(self, stage: str, context: str,
                 cause: BaseException, attempts: int = 1) -> None:
        self.stage = stage
        self.context = context
        self.attempts = attempts
        super().__init__(
            f"{context or '<no context>'}: stage {stage!r} failed "
            f"after {attempts} attempt(s): {cause!r}"
        )
        self.__cause__ = cause


def call_with_timeout(
    fn: Callable[[], Any],
    timeout: float | None,
    *,
    stage: str = "",
    context: str = "",
) -> Any:
    """``fn()``, bounded by *timeout* seconds (``None`` = unbounded).

    The callable runs on a daemon thread; on timeout the thread is
    abandoned (Python cannot kill it) and :class:`StageTimeout` is
    raised, so a wedged analysis costs one parked thread instead of a
    hung batch.
    """
    if timeout is None:
        return fn()
    box: dict[str, Any] = {}

    def runner() -> None:
        try:
            box["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            box["error"] = exc

    thread = threading.Thread(
        target=runner, daemon=True,
        name=f"stage-{stage or 'anon'}",
    )
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        raise StageTimeout(stage, context, timeout)
    if "error" in box:
        raise box["error"]
    return box["value"]


@dataclass
class RetryPolicy:
    """How hard one stage execution tries before giving up.

    ``max_retries`` extra attempts follow a failed first one; between
    attempts the policy sleeps an exponential backoff with jitter
    seeded from ``(seed, stage, digest, attempt)`` -- fully
    deterministic, so retrying batches stay reproducible.
    ``stage_timeout`` bounds every attempt's wall clock (None =
    unbounded, the default).
    """

    max_retries: int = 0
    stage_timeout: float | None = None
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    #: injectable for tests; real runs sleep for real
    sleep: Callable[[float], None] = field(default=time.sleep,
                                           repr=False, compare=False)

    def delay_for(self, stage: str, digest: str,
                  attempt: int) -> float:
        """The backoff before retrying *attempt* (1-based) -- a pure
        function of the policy and the stage/digest/attempt triple."""
        if self.backoff_base <= 0:
            return 0.0
        base = self.backoff_base * self.backoff_multiplier ** (attempt - 1)
        rng = random.Random(
            fingerprint([self.seed, stage, digest, attempt])
        )
        return base * (1.0 + self.jitter * rng.random())

    def execute(
        self,
        fn: Callable[[], Any],
        *,
        stage: str,
        context: str = "",
        digest: str = "",
    ) -> Any:
        """Run *fn* under the policy; terminal failure raises
        :class:`StageError` wrapping the last exception."""
        attempts = self.max_retries + 1
        last: BaseException | None = None
        for attempt in range(1, attempts + 1):
            try:
                return call_with_timeout(
                    fn, self.stage_timeout, stage=stage, context=context,
                )
            except Exception as exc:  # noqa: BLE001 - policy boundary
                last = exc
                if attempt < attempts:
                    self.sleep(self.delay_for(stage, digest, attempt))
        assert last is not None
        raise StageError(stage, context, last, attempts=attempts)


__all__ = [
    "PipelineError",
    "StageTimeout",
    "StageError",
    "call_with_timeout",
    "RetryPolicy",
]
