"""Per-stage resilience: bounded retries, timeouts, deadlines, and
retry budgets.

Large compliance batches (the ROADMAP's longitudinal re-checking
workload) run over inputs where broken policies, truncated APKs, and
wedged analyses are the norm, so a stage execution must be allowed to
fail *bounded* -- retried a configurable number of times with
deterministic exponential backoff, cut off by a wall-clock timeout --
and then fail *loud but contained*: every terminal stage failure is a
:class:`StageError` carrying the stage name, the app/lib context, the
attempt count, and the original exception, which the batch layer turns
into a quarantine record instead of aborting the run.

Backoff jitter is seeded from the stage/digest/attempt triple, so two
runs of the same batch (serial or parallel) sleep the same schedule --
determinism is a repo-wide invariant the fault-injection suite checks.

Two brownout primitives ride on top of the per-stage policy:

- :class:`Deadline` -- a request-level wall-clock budget.  Callers
  open a :func:`deadline_scope` around a check; every stage attempt
  inside it clamps its timeout to the *remaining* budget, backoff
  sleeps never overshoot it, and an exhausted budget fails fast with
  :class:`DeadlineExceeded` instead of burning pipeline work.
- :class:`RetryBudget` -- a token bucket shared across a whole
  service or cluster front.  Each retry (or reroute) must win a
  token; when the bucket is dry, retries stop immediately so a
  brownout does not amplify into a retry storm.

Timed-out stage threads cannot be killed (Python), but they are no
longer silently leaked either: :func:`call_with_timeout` arms a
per-thread cancellation event that cooperative stages (and injected
``hang``/``slow`` faults) poll via :func:`cancel_requested`, and an
optional ledger (:class:`repro.pipeline.artifacts.PipelineStats`)
counts threads that are currently abandoned vs. reclaimed.
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Protocol

from repro.hashing import fingerprint


class PipelineError(Exception):
    """Base class for pipeline execution failures."""


class StageTimeout(PipelineError):
    """A stage execution exceeded its wall-clock budget."""

    def __init__(self, stage: str, context: str,
                 timeout: float) -> None:
        self.stage = stage
        self.context = context
        self.timeout = timeout
        super().__init__(
            f"{context or '<no context>'}: stage {stage!r} exceeded "
            f"its {timeout:g}s timeout"
        )


class StageCancelled(PipelineError):
    """Raised inside an abandoned stage thread when it observes the
    cancellation event -- the thread unwinds instead of running its
    doomed work to completion."""


class DeadlineExceeded(PipelineError):
    """A request-level deadline ran out before the work finished."""

    def __init__(self, stage: str = "", context: str = "") -> None:
        self.stage = stage
        self.context = context
        where = f" at stage {stage!r}" if stage else ""
        super().__init__(
            f"{context or '<no context>'}: deadline exhausted{where}"
        )


class StageError(PipelineError):
    """Terminal failure of one stage for one app/lib.

    ``stage`` is the pipeline stage name, ``context`` the package or
    lib id being processed, ``attempts`` how many executions were
    tried; the original exception rides along as ``__cause__``.
    """

    def __init__(self, stage: str, context: str,
                 cause: BaseException, attempts: int = 1) -> None:
        self.stage = stage
        self.context = context
        self.attempts = attempts
        super().__init__(
            f"{context or '<no context>'}: stage {stage!r} failed "
            f"after {attempts} attempt(s): {cause!r}"
        )
        self.__cause__ = cause


def is_deadline_error(exc: BaseException | None) -> bool:
    """Whether *exc* (or anything on its cause chain) is a
    :class:`DeadlineExceeded` -- the service uses this to shed a job
    instead of quarantining it."""
    seen: set[int] = set()
    while exc is not None and id(exc) not in seen:
        if isinstance(exc, DeadlineExceeded):
            return True
        seen.add(id(exc))
        exc = exc.__cause__ or exc.__context__
    return False


# -- deadlines -------------------------------------------------------------


class Deadline:
    """An absolute wall-clock budget (monotonic under the hood).

    Built once at the request edge (HTTP header, CLI flag) and carried
    by reference through ``Job`` -> ``PipelineRunner`` ->
    :class:`RetryPolicy`, so every layer derives its own timeout from
    the single *remaining* budget instead of stacking fixed ones.
    """

    __slots__ = ("expires_at", "budget", "clock")

    def __init__(self, expires_at: float, *, budget: float | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.expires_at = expires_at
        #: the original relative budget in seconds, when known
        #: (surfaced in shed payloads)
        self.budget = budget
        self.clock = clock

    @classmethod
    def after(cls, seconds: float, *,
              clock: Callable[[], float] = time.monotonic,
              ) -> "Deadline":
        return cls(clock() + seconds, budget=seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self.expires_at - self.clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


_deadline_local = threading.local()


def current_deadline() -> Deadline | None:
    """The ambient deadline of the calling thread, if any."""
    return getattr(_deadline_local, "deadline", None)


@contextlib.contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[None]:
    """Make *deadline* ambient for the calling thread.  ``None`` is a
    no-op scope, so call sites need no conditional."""
    if deadline is None:
        yield
        return
    previous = current_deadline()
    _deadline_local.deadline = deadline
    try:
        yield
    finally:
        _deadline_local.deadline = previous


# -- cancellation ----------------------------------------------------------

_cancel_local = threading.local()


def cancel_requested() -> bool:
    """Whether the calling stage thread has been abandoned by its
    timeout guard.  Cooperative stages poll this at loop/fault
    boundaries and raise :class:`StageCancelled` to unwind."""
    event = getattr(_cancel_local, "event", None)
    return event is not None and event.is_set()


def sleep_cancellable(seconds: float, *,
                      interval: float = 0.02) -> None:
    """``time.sleep(seconds)`` that polls the cancellation event every
    *interval* seconds and raises :class:`StageCancelled` when the
    owning :func:`call_with_timeout` has given up on this thread.
    The fault kinds (``hang``/``slow``) sleep through this, which is
    what lets abandoned stage threads be reclaimed."""
    event = getattr(_cancel_local, "event", None)
    if event is None:
        time.sleep(seconds)
        return
    end = time.monotonic() + seconds
    while True:
        if event.is_set():
            raise StageCancelled("stage thread cancelled mid-sleep")
        left = end - time.monotonic()
        if left <= 0:
            return
        event.wait(min(interval, left))
    # unreachable


class ThreadLedger(Protocol):
    """Anything that counts abandoned stage threads
    (:class:`repro.pipeline.artifacts.PipelineStats` implements it)."""

    def thread_abandoned(self) -> None: ...

    def thread_reclaimed(self) -> None: ...


def call_with_timeout(
    fn: Callable[[], Any],
    timeout: float | None,
    *,
    stage: str = "",
    context: str = "",
    ledger: ThreadLedger | None = None,
) -> Any:
    """``fn()``, bounded by *timeout* seconds (``None`` = unbounded).

    The callable runs on a daemon thread; on timeout the thread is
    abandoned (Python cannot kill it) and :class:`StageTimeout` is
    raised.  The abandoned thread is armed with a cancellation event
    (:func:`cancel_requested`) so cooperative code inside it can
    unwind at its next poll point, and *ledger* -- when given --
    counts the abandon/reclaim pair, keeping the live leak observable
    and testable.  A non-positive timeout fails immediately without
    spawning a thread (an exhausted deadline must not burn work).
    """
    if timeout is None:
        return fn()
    if timeout <= 0:
        raise StageTimeout(stage, context, timeout)
    box: dict[str, Any] = {}
    cancel = threading.Event()
    state = {"abandoned": False, "done": False}
    state_lock = threading.Lock()

    def runner() -> None:
        _cancel_local.event = cancel
        try:
            box["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            box["error"] = exc
        finally:
            _cancel_local.event = None
            with state_lock:
                state["done"] = True
                if state["abandoned"] and ledger is not None:
                    ledger.thread_reclaimed()

    thread = threading.Thread(
        target=runner, daemon=True,
        name=f"stage-{stage or 'anon'}",
    )
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        cancel.set()
        with state_lock:
            if not state["done"]:
                state["abandoned"] = True
                if ledger is not None:
                    ledger.thread_abandoned()
        raise StageTimeout(stage, context, timeout)
    if "error" in box:
        raise box["error"]
    return box["value"]


# -- retry budget ----------------------------------------------------------


class RetryBudget:
    """A thread-safe token bucket bounding how many retries a whole
    process may issue.

    Every retry (and, at the cluster front, every reroute or hedge)
    must :meth:`try_acquire` a token first; a dry bucket denies the
    retry outright, so a browned-out dependency sees load *shrink*
    instead of multiplying.  Refill is continuous at ``refill_rate``
    tokens per second up to ``capacity``.  The clock is injectable so
    the property suite can drive it deterministically.
    """

    def __init__(self, capacity: float = 10.0,
                 refill_rate: float = 1.0, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        if refill_rate < 0:
            raise ValueError("refill_rate must be >= 0")
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self.clock = clock
        self._tokens = float(capacity)
        self._updated = clock()
        self._lock = threading.Lock()
        self._denied = 0

    def _refill_locked(self) -> None:
        now = self.clock()
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.capacity,
                               self._tokens + elapsed * self.refill_rate)
        self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take *tokens* if available; ``False`` (and no side effect
        beyond the denial counter) otherwise."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            self._denied += 1
            return False

    @property
    def remaining(self) -> float:
        """Tokens currently in the bucket (refreshes refill first)."""
        with self._lock:
            self._refill_locked()
            return self._tokens

    @property
    def denied(self) -> int:
        """Retries refused since construction."""
        with self._lock:
            return self._denied

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RetryBudget(remaining={self.remaining:.2f}/"
                f"{self.capacity:g})")


@dataclass
class RetryPolicy:
    """How hard one stage execution tries before giving up.

    ``max_retries`` extra attempts follow a failed first one; between
    attempts the policy sleeps an exponential backoff with jitter
    seeded from ``(seed, stage, digest, attempt)`` -- fully
    deterministic, so retrying batches stay reproducible.
    ``stage_timeout`` bounds every attempt's wall clock (None =
    unbounded, the default).

    When an ambient :class:`Deadline` is in scope (or passed
    explicitly), each attempt's timeout is clamped to the remaining
    budget, backoff never sleeps past it, and an exhausted budget
    raises :class:`StageError` wrapping :class:`DeadlineExceeded`.
    When a :class:`RetryBudget` is attached, each retry must win a
    token; a dry bucket ends the attempt loop immediately.
    """

    max_retries: int = 0
    stage_timeout: float | None = None
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    #: injectable for tests; real runs sleep for real
    sleep: Callable[[float], None] = field(default=time.sleep,
                                           repr=False, compare=False)
    #: optional process-wide token bucket consulted before each retry
    budget: RetryBudget | None = field(default=None, repr=False,
                                       compare=False)

    def delay_for(self, stage: str, digest: str,
                  attempt: int) -> float:
        """The backoff before retrying *attempt* (1-based) -- a pure
        function of the policy and the stage/digest/attempt triple."""
        if self.backoff_base <= 0:
            return 0.0
        base = self.backoff_base * self.backoff_multiplier ** (attempt - 1)
        rng = random.Random(
            fingerprint([self.seed, stage, digest, attempt])
        )
        return base * (1.0 + self.jitter * rng.random())

    def backoff_for(self, stage: str, digest: str, attempt: int,
                    remaining: float | None = None) -> float:
        """The backoff actually slept: :meth:`delay_for` clamped to
        *remaining* deadline seconds (never negative) -- sleeping past
        the request's budget would be pure waste."""
        delay = self.delay_for(stage, digest, attempt)
        if remaining is not None:
            delay = min(delay, max(0.0, remaining))
        return delay

    def _attempt_timeout(self, deadline: Deadline | None,
                         ) -> float | None:
        if deadline is None:
            return self.stage_timeout
        remaining = deadline.remaining()
        if self.stage_timeout is None:
            return remaining
        return min(self.stage_timeout, remaining)

    def execute(
        self,
        fn: Callable[[], Any],
        *,
        stage: str,
        context: str = "",
        digest: str = "",
        deadline: Deadline | None = None,
        ledger: ThreadLedger | None = None,
    ) -> Any:
        """Run *fn* under the policy; terminal failure raises
        :class:`StageError` wrapping the last exception.  *deadline*
        defaults to the ambient :func:`current_deadline`."""
        if deadline is None:
            deadline = current_deadline()
        attempts = self.max_retries + 1
        last: BaseException | None = None
        for attempt in range(1, attempts + 1):
            if deadline is not None and deadline.expired:
                raise StageError(
                    stage, context, DeadlineExceeded(stage, context),
                    attempts=attempt - 1 or 1)
            try:
                return call_with_timeout(
                    fn, self._attempt_timeout(deadline),
                    stage=stage, context=context, ledger=ledger,
                )
            except Exception as exc:  # noqa: BLE001 - policy boundary
                last = exc
                if attempt < attempts:
                    if self.budget is not None \
                            and not self.budget.try_acquire():
                        # retry storm guard: the shared budget is
                        # dry, so this failure is terminal now
                        raise StageError(stage, context, last,
                                         attempts=attempt)
                    remaining = (deadline.remaining()
                                 if deadline is not None else None)
                    self.sleep(self.backoff_for(
                        stage, digest, attempt, remaining))
        assert last is not None
        raise StageError(stage, context, last, attempts=attempts)


__all__ = [
    "PipelineError",
    "StageTimeout",
    "StageCancelled",
    "StageError",
    "Deadline",
    "DeadlineExceeded",
    "RetryBudget",
    "call_with_timeout",
    "cancel_requested",
    "current_deadline",
    "deadline_scope",
    "is_deadline_error",
    "sleep_cancellable",
    "RetryPolicy",
]
