"""Batch fan-out with deterministic result ordering.

``BatchExecutor.map`` is the one primitive the batch entry points
(``run_study``, ``repro.cli study``, ``repro.cli batch-check``) build
on: apply a function to every item, return results in *input* order
regardless of completion order, run serially when ``workers <= 1`` so
the default path is byte-identical to the pre-pipeline behaviour.

A worker exception surfaces as :class:`BatchItemError` naming the
failing item's index (and a truncated repr of the item), in every
mode -- the naive ``pool.map`` would lose the index in process pools,
leaving a thousand-app batch with no way to tell which input broke.
The original exception rides along as ``__cause__``.

Threads are the default worker kind: checker objects (closures over
lib-policy sources, shared artifact stores) do not need to pickle, and
the artifact store plus stats counters are shared and lock-protected.
``kind="process"`` switches to a process pool for picklable workloads
(see :func:`repro.core.study.run_study_parallel` for the
regenerate-in-worker pattern that keeps APKs off the wire).
"""

from __future__ import annotations

import concurrent.futures
import reprlib
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class BatchItemError(RuntimeError):
    """``fn(items[index])`` raised; the cause is ``__cause__``."""

    def __init__(self, index: int, item: object,
                 cause: BaseException) -> None:
        self.index = index
        self.item = item
        super().__init__(
            f"batch item {index} ({reprlib.repr(item)}) failed: "
            f"{cause!r}"
        )


@dataclass
class BatchExecutor:
    """Maps a function over items with bounded parallelism."""

    workers: int = 1
    kind: str = "thread"  # "thread" | "process"

    def __post_init__(self) -> None:
        if self.kind not in ("thread", "process"):
            raise ValueError(f"unknown executor kind: {self.kind!r}")

    def map(self, fn: Callable[[T], R],
            items: Iterable[T]) -> list[R]:
        """``[fn(item) for item in items]``, possibly in parallel;
        result order always matches input order.  The first failing
        item (by input order) raises :class:`BatchItemError`."""
        todo: Sequence[T] = list(items)
        workers = max(1, min(self.workers, len(todo) or 1))
        if workers == 1:
            results = []
            for index, item in enumerate(todo):
                try:
                    results.append(fn(item))
                except Exception as exc:
                    raise BatchItemError(index, item, exc) from exc
            return results
        pool_cls = (
            concurrent.futures.ThreadPoolExecutor
            if self.kind == "thread"
            else concurrent.futures.ProcessPoolExecutor
        )
        # submit per item (not pool.map) so a failure still knows its
        # index; futures are drained in input order.
        with pool_cls(max_workers=workers) as pool:
            futures = [pool.submit(fn, item) for item in todo]
            results = []
            for index, future in enumerate(futures):
                try:
                    results.append(future.result())
                except Exception as exc:
                    raise BatchItemError(index, todo[index],
                                         exc) from exc
            return results


__all__ = ["BatchExecutor", "BatchItemError"]
