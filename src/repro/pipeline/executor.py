"""Batch fan-out with deterministic result ordering.

``BatchExecutor.map`` is the one primitive the batch entry points
(``run_study``, ``repro.cli study``, ``repro.cli batch-check``) build
on: apply a function to every item, return results in *input* order
regardless of completion order, run serially when ``workers <= 1`` so
the default path is byte-identical to the pre-pipeline behaviour.

Threads are the default worker kind: checker objects (closures over
lib-policy sources, shared artifact stores) do not need to pickle, and
the artifact store plus stats counters are shared and lock-protected.
``kind="process"`` switches to a process pool for picklable workloads
(see :func:`repro.core.study.run_study_parallel` for the
regenerate-in-worker pattern that keeps APKs off the wire).
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


@dataclass
class BatchExecutor:
    """Maps a function over items with bounded parallelism."""

    workers: int = 1
    kind: str = "thread"  # "thread" | "process"

    def __post_init__(self) -> None:
        if self.kind not in ("thread", "process"):
            raise ValueError(f"unknown executor kind: {self.kind!r}")

    def map(self, fn: Callable[[T], R],
            items: Iterable[T]) -> list[R]:
        """``[fn(item) for item in items]``, possibly in parallel;
        result order always matches input order."""
        todo: Sequence[T] = list(items)
        workers = max(1, min(self.workers, len(todo) or 1))
        if workers == 1:
            return [fn(item) for item in todo]
        pool_cls = (
            concurrent.futures.ThreadPoolExecutor
            if self.kind == "thread"
            else concurrent.futures.ProcessPoolExecutor
        )
        with pool_cls(max_workers=workers) as pool:
            return list(pool.map(fn, todo))


__all__ = ["BatchExecutor"]
