"""Process-wide memoization for the NLP/ESA hot paths.

The matching algorithms (Algs. 1-5) call ``EsaModel.similarity`` once
per (information surface, policy phrase) pair and re-parse every
policy sentence once per stage.  At study scale the same phrases and
sentences recur across thousands of apps, so both computations are
overwhelmingly redundant.  This module provides the shared cache
primitive those hot paths memoize through:

- :class:`MemoCache` -- a bounded, thread-safe LRU with hit/miss
  counters, registered in a process-wide registry so
  :meth:`repro.pipeline.artifacts.PipelineStats.nlp_caches` and the
  service ``/metrics`` endpoint can surface cache effectiveness.
- :func:`memo_enabled` -- the escape hatch.  ``REPRO_NO_MEMO=1`` in
  the environment (or :func:`set_memo_enabled` ``(False)`` in-process)
  disables every memo cache and candidate-pruning fast path, restoring
  the original compute-everything code paths.  The differential suite
  (``tests/integration/test_hotpath_equivalence.py``) proves both
  modes produce byte-identical detector output.
- :func:`vector_enabled` -- the second escape hatch, for the
  *representation* layer.  ``REPRO_NO_VECTOR=1`` (or
  :func:`set_vector_enabled` ``(False)``) turns off the compiled
  merge-join ESA data plane (:mod:`repro.semantics.compiled`) and
  restores the original dict-of-dicts scalar plane.  The two hatches
  are orthogonal: all four combinations run, and
  ``tests/integration/test_vector_equivalence.py`` proves the study
  output is byte-identical across them.

Caches hold values that callers treat as immutable (interpretation
vectors, similarity floats, parsed dependency trees); nothing in the
pipeline mutates a cached object after construction.
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import OrderedDict
from typing import Any, Hashable

#: sentinel distinguishing "never cached" from a cached ``None``
MISS = object()

#: environment variable that disables all memo caches and pruning
NO_MEMO_ENV = "REPRO_NO_MEMO"

#: environment variable that disables the compiled/merge-join ESA
#: data plane (the scalar dict-of-dicts plane runs instead)
NO_VECTOR_ENV = "REPRO_NO_VECTOR"

_TRUTHY = ("1", "true", "yes", "on")

#: in-process override: None defers to the environment
_override: bool | None = None

#: in-process override for the vector plane: None defers to the env
_vector_override: bool | None = None

_registry: list["weakref.ref[MemoCache]"] = []
_registry_lock = threading.Lock()


def memo_enabled() -> bool:
    """Whether the memo caches and pruning fast paths are active."""
    if _override is not None:
        return _override
    return os.environ.get(NO_MEMO_ENV, "").strip().lower() not in _TRUTHY


def set_memo_enabled(flag: bool | None) -> None:
    """Force memoization on/off in-process; ``None`` restores the
    environment-variable control.  Used by the differential tests and
    the benchmark harness."""
    global _override
    _override = flag


def vector_enabled() -> bool:
    """Whether the compiled merge-join ESA data plane is active.
    ``REPRO_NO_VECTOR=1`` (or :func:`set_vector_enabled` ``(False)``)
    selects the scalar dict-of-dicts plane instead."""
    if _vector_override is not None:
        return _vector_override
    return os.environ.get(NO_VECTOR_ENV, "").strip().lower() \
        not in _TRUTHY


def set_vector_enabled(flag: bool | None) -> None:
    """Force the vector plane on/off in-process; ``None`` restores
    the environment-variable control."""
    global _vector_override
    _vector_override = flag


class MemoCache:
    """A bounded, thread-safe LRU with hit/miss counters.

    ``get`` returns :data:`MISS` when the key is absent *or* when
    memoization is disabled (so callers need a single branch).  Caches
    register themselves by name; :func:`cache_stats` aggregates live
    caches per name.
    """

    def __init__(self, name: str, max_entries: int = 65536) -> None:
        self.name = name
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        with _registry_lock:
            _registry.append(weakref.ref(self))

    def get(self, key: Hashable) -> Any:
        if not memo_enabled():
            return MISS
        with self._lock:
            if key not in self._entries:
                self.misses += 1
                return MISS
            self.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]

    def put(self, key: Hashable, value: Any) -> None:
        if not memo_enabled():
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
            }


def _live_caches() -> list[MemoCache]:
    with _registry_lock:
        alive: list[MemoCache] = []
        dead: list[weakref.ref[MemoCache]] = []
        for ref in _registry:
            cache = ref()
            if cache is None:
                dead.append(ref)
            else:
                alive.append(cache)
        for ref in dead:
            _registry.remove(ref)
    return alive


def cache_stats() -> dict[str, dict[str, int]]:
    """Aggregated counters per cache name, over all live caches.

    Multiple caches may share a name (every :class:`EsaModel` instance
    owns its own interpretation cache); their counters sum.  Cache
    subclasses may report extra counters (e.g. the compiled-KB
    artifact loader's ``warnings``); any numeric key beyond
    ``max_entries`` sums like the standard ones.
    """
    out: dict[str, dict[str, int]] = {}
    for cache in _live_caches():
        row = out.setdefault(cache.name, {
            "hits": 0, "misses": 0, "entries": 0, "max_entries": 0,
        })
        stats = cache.stats()
        for key, value in stats.items():
            if key == "max_entries":
                row[key] = max(row[key], value)
            else:
                row[key] = row.get(key, 0) + value
    return {name: out[name] for name in sorted(out)}


def clear_caches() -> None:
    """Empty every live cache and reset its counters (test isolation
    and the cold-phase of the benchmark harness)."""
    for cache in _live_caches():
        cache.clear()


__all__ = [
    "MISS",
    "NO_MEMO_ENV",
    "NO_VECTOR_ENV",
    "MemoCache",
    "memo_enabled",
    "set_memo_enabled",
    "vector_enabled",
    "set_vector_enabled",
    "cache_stats",
    "clear_caches",
]
