"""Result types of the policy-analysis module.

A :class:`Statement` is one useful sentence reduced to its information
elements (Step 6): main verb + category, action executor, resources,
constraint, and polarity.  A :class:`PolicyAnalysis` aggregates the
statements of one policy into the sets the problem-identification
module consumes (Collect_pp, NotCollect_pp, ... in the paper's
notation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.policy.verbs import VerbCategory


@dataclass(frozen=True)
class Statement:
    """One useful sentence with its extracted information elements."""

    sentence: str
    category: VerbCategory
    verb: str
    executor: str
    resources: tuple[str, ...]
    negated: bool
    constraint: str | None = None
    constraint_kind: str | None = None  # "pre" | "post"
    pattern: str = ""

    def mentions(self, resource: str) -> bool:
        return resource in self.resources

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable rendering (pipeline disk cache)."""
        return {
            "sentence": self.sentence,
            "category": self.category.value,
            "verb": self.verb,
            "executor": self.executor,
            "resources": list(self.resources),
            "negated": self.negated,
            "constraint": self.constraint,
            "constraint_kind": self.constraint_kind,
            "pattern": self.pattern,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> Statement:
        return cls(
            sentence=doc["sentence"],
            category=VerbCategory(doc["category"]),
            verb=doc["verb"],
            executor=doc["executor"],
            resources=tuple(doc.get("resources", ())),
            negated=doc["negated"],
            constraint=doc.get("constraint"),
            constraint_kind=doc.get("constraint_kind"),
            pattern=doc.get("pattern", ""),
        )


@dataclass
class PolicyAnalysis:
    """The analyzed policy: statements plus derived resource sets."""

    statements: list[Statement] = field(default_factory=list)
    sentences: list[str] = field(default_factory=list)
    has_third_party_disclaimer: bool = False

    # -- resource sets (paper's Collect_pp / NotCollect_pp etc.) ----------

    def resources(
        self, category: VerbCategory, negated: bool = False
    ) -> set[str]:
        return {
            res
            for stmt in self.statements
            if stmt.category is category and stmt.negated == negated
            for res in stmt.resources
        }

    @property
    def collected(self) -> set[str]:
        return self.resources(VerbCategory.COLLECT)

    @property
    def used(self) -> set[str]:
        return self.resources(VerbCategory.USE)

    @property
    def retained(self) -> set[str]:
        return self.resources(VerbCategory.RETAIN)

    @property
    def disclosed(self) -> set[str]:
        return self.resources(VerbCategory.DISCLOSE)

    @property
    def not_collected(self) -> set[str]:
        return self.resources(VerbCategory.COLLECT, negated=True)

    @property
    def not_used(self) -> set[str]:
        return self.resources(VerbCategory.USE, negated=True)

    @property
    def not_retained(self) -> set[str]:
        return self.resources(VerbCategory.RETAIN, negated=True)

    @property
    def not_disclosed(self) -> set[str]:
        return self.resources(VerbCategory.DISCLOSE, negated=True)

    def all_positive(self) -> set[str]:
        """PPInfos = Collect ∪ Use ∪ Retain ∪ Disclose (Alg. 1 line 1)."""
        return self.collected | self.used | self.retained | self.disclosed

    def all_negative(self) -> set[str]:
        return (
            self.not_collected | self.not_used | self.not_retained
            | self.not_disclosed
        )

    def positive_statements(self) -> list[Statement]:
        return [s for s in self.statements if not s.negated]

    def negative_statements(self) -> list[Statement]:
        return [s for s in self.statements if s.negated]

    # -- pipeline artifact protocol ---------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable rendering (pipeline disk cache)."""
        return {
            "statements": [s.to_dict() for s in self.statements],
            "sentences": list(self.sentences),
            "has_third_party_disclaimer": self.has_third_party_disclaimer,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> PolicyAnalysis:
        return cls(
            statements=[Statement.from_dict(s)
                        for s in doc.get("statements", ())],
            sentences=list(doc.get("sentences", ())),
            has_third_party_disclaimer=doc.get(
                "has_third_party_disclaimer", False),
        )

    def clone(self) -> PolicyAnalysis:
        """A defensive copy handed out by the artifact cache
        (statements are frozen, so shallow list copies suffice)."""
        return PolicyAnalysis(
            statements=list(self.statements),
            sentences=list(self.sentences),
            has_third_party_disclaimer=self.has_third_party_disclaimer,
        )


__all__ = ["Statement", "PolicyAnalysis"]
