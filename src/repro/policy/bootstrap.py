"""Bootstrapped pattern generation (Step 3, Fig. 7, Eq. 1).

Starting from the seed subject-verb-object pattern with the four
initial verbs ("collect", "use", "retain", "disclose"), the algorithm

1. matches the current pattern set against a corpus, harvesting the
   subjects and objects of matched sentences whose frequency exceeds
   the median (semantic-drift control: the subject / verb / object
   blacklists prune user-describing, behaviour-unrelated, and
   non-personal-information terms);
2. finds new patterns: for any corpus sentence whose subject and
   object both appear in the harvested lists, the shortest dependency
   path from the root to the object-governing verb becomes a new
   pattern (Fig. 7's ``subject-"allowed"-"access"-object``);
3. iterates until no new pattern is found.

Patterns are then scored against a labelled positive/negative sentence
set (Eq. 1)::

    acc(p)  = pos(p) / (pos(p) + neg(p))
    conf(p) = (pos(p) - neg(p)) / (pos(p) + neg(p) + unk(p))
    Score(p) = conf(p) * log(pos(p))

and the top-n patterns feed sentence selection (Fig. 12 sweeps n).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

from repro.nlp.deptree import DependencyTree
from repro.nlp.parser import parse
from repro.policy.patterns import Pattern, match_pattern
from repro.policy.verbs import (
    OBJECT_BLACKLIST,
    SEED_VERBS,
    SUBJECT_BLACKLIST,
    VERB_BLACKLIST,
    VerbCategory,
)

_CHAIN_RELS = ("xcomp", "advcl", "ccomp", "conj", "dep")


@dataclass(frozen=True)
class LabeledSentence:
    """A corpus sentence with its ground-truth label.

    ``positive`` marks sentences about information collection, usage,
    retention, or disclosure; ``category`` carries the behaviour for
    positive sentences.
    """

    text: str
    positive: bool
    category: VerbCategory | None = None


@dataclass
class ScoredPattern:
    pattern: Pattern
    pos: int
    neg: int
    unk: int

    @property
    def accuracy(self) -> float:
        total = self.pos + self.neg
        return self.pos / total if total else 0.0

    @property
    def confidence(self) -> float:
        denom = self.pos + self.neg + self.unk
        return (self.pos - self.neg) / denom if denom else 0.0

    @property
    def score(self) -> float:
        if self.pos <= 0:
            return float("-inf")
        return self.confidence * math.log(self.pos + 1.0)


@dataclass
class Bootstrapper:
    """Runs the enhanced bootstrapping over a labelled corpus."""

    corpus: list[LabeledSentence]
    max_iterations: int = 10
    use_blacklists: bool = True
    _trees: list[DependencyTree] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self._trees = [parse(s.text.lower()) for s in self.corpus]

    # -- tree feature helpers ----------------------------------------------

    def _subject_of(self, tree: DependencyTree) -> str | None:
        root = tree.root()
        if root is None:
            return None
        for rel in ("nsubj", "nsubjpass"):
            subj = tree.child(root, rel)
            if subj is not None:
                return tree.token(subj).lemma
        return None

    def _object_nodes(self, tree: DependencyTree) -> list[tuple[int, int]]:
        """(verb node, object node) pairs reachable from the root."""
        root = tree.root()
        if root is None:
            return []
        pairs: list[tuple[int, int]] = []
        frontier = [root]
        seen = {root}
        while frontier:
            node = frontier.pop()
            for obj_rel in ("dobj", "nsubjpass"):
                obj = tree.child(node, obj_rel)
                if obj is not None:
                    pairs.append((node, obj))
            for rel in _CHAIN_RELS:
                for kid in tree.children(node, rel):
                    if kid not in seen:
                        seen.add(kid)
                        frontier.append(kid)
        return pairs

    def _chain_to(self, tree: DependencyTree, target: int) -> tuple[str, ...] | None:
        """Lemma chain from the root down to *target* (the shortest
        dependency path of Fig. 7, restricted to clausal relations)."""
        root = tree.root()
        if root is None:
            return None
        chain: list[str] = []
        node = target
        while node != root:
            arc = tree.head_of(node)
            if arc is None or arc.rel not in _CHAIN_RELS:
                return None
            chain.append(tree.token(node).lemma)
            node = arc.head
        chain.append(tree.token(root).lemma)
        return tuple(reversed(chain))

    # -- bootstrap proper ---------------------------------------------------

    def seed_patterns(self) -> list[Pattern]:
        patterns = []
        for category, verbs in SEED_VERBS.items():
            for verb in verbs:
                patterns.append(Pattern(
                    name=f"seed:{verb}", chain=(verb,), voice="any",
                    category=category,
                ))
        return patterns

    def _harvest(self, patterns: list[Pattern]) -> tuple[set[str], set[str]]:
        """Frequent subjects/objects of pattern-matched sentences."""
        subj_freq: Counter[str] = Counter()
        obj_freq: Counter[str] = Counter()
        for tree in self._trees:
            matched = None
            for pattern in patterns:
                matched = match_pattern(pattern, tree)
                if matched is not None:
                    break
            if matched is None:
                continue
            subj = self._subject_of(tree)
            if subj:
                subj_freq[subj] += 1
            for verb_node, obj in self._object_nodes(tree):
                obj_freq[tree.token(obj).lemma] += 1

        def over_median(freq: Counter[str], blacklist: frozenset[str]) -> set[str]:
            if not freq:
                return set()
            counts = sorted(freq.values())
            median = counts[len(counts) // 2]
            chosen = {w for w, c in freq.items() if c >= median}
            if self.use_blacklists:
                chosen -= blacklist
            return chosen

        return (
            over_median(subj_freq, SUBJECT_BLACKLIST),
            over_median(obj_freq, OBJECT_BLACKLIST),
        )

    def _discover(
        self,
        subjects: set[str],
        objects: set[str],
        known: set[tuple],
    ) -> list[Pattern]:
        """New chain patterns from sentences with harvested subj+obj."""
        new: list[Pattern] = []
        for sentence, tree in zip(self.corpus, self._trees):
            subj = self._subject_of(tree)
            if subj is None or subj not in subjects:
                continue
            for verb_node, obj in self._object_nodes(tree):
                if tree.token(obj).lemma not in objects:
                    continue
                chain = self._chain_to(tree, verb_node)
                if chain is None:
                    continue
                if self.use_blacklists and any(
                    lemma in VERB_BLACKLIST for lemma in chain
                ):
                    continue
                category = sentence.category
                if category is None:
                    continue
                key = (chain, "any", False)
                if key in known:
                    continue
                known.add(key)
                new.append(Pattern(
                    name=">".join(chain), chain=chain, voice="any",
                    category=category,
                ))
        return new

    def run(self) -> list[Pattern]:
        """Iterate matching/harvesting/discovery to a fixed point."""
        patterns = self.seed_patterns()
        known = {p.key() for p in patterns}
        for _ in range(self.max_iterations):
            subjects, objects = self._harvest(patterns)
            new = self._discover(subjects, objects, known)
            if not new:
                break
            patterns.extend(new)
        return patterns

    # -- scoring (Eq. 1) ------------------------------------------------------

    def score(self, patterns: list[Pattern]) -> list[ScoredPattern]:
        """Score each pattern against the labelled corpus."""
        match_table: list[list[bool]] = []
        for pattern in patterns:
            row = [
                match_pattern(pattern, tree) is not None
                for tree in self._trees
            ]
            match_table.append(row)
        any_match = [any(col) for col in zip(*match_table)] if match_table \
            else [False] * len(self.corpus)
        unk = sum(1 for m in any_match if not m)

        scored: list[ScoredPattern] = []
        for pattern, row in zip(patterns, match_table):
            pos = sum(
                1 for s, hit in zip(self.corpus, row) if hit and s.positive
            )
            neg = sum(
                1 for s, hit in zip(self.corpus, row) if hit and not s.positive
            )
            scored.append(ScoredPattern(pattern, pos=pos, neg=neg, unk=unk))
        scored.sort(key=lambda sp: sp.score, reverse=True)
        return scored


def top_n_patterns(scored: list[ScoredPattern], n: int) -> list[Pattern]:
    """The top-n patterns by Score(p), dropping unusable (-inf) ones."""
    usable = [sp for sp in scored if sp.score != float("-inf")]
    return [sp.pattern for sp in usable[:n]]


__all__ = [
    "LabeledSentence",
    "ScoredPattern",
    "Bootstrapper",
    "top_n_patterns",
]
