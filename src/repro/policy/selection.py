"""Sentence selection (Step 4).

Applies the ranked pattern list to each parsed sentence; matched
sentences are *useful* and continue into negation analysis and element
extraction, others are discarded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nlp.deptree import DependencyTree
from repro.nlp.parser import parse
from repro.policy.patterns import (
    Pattern,
    PatternMatch,
    SEED_PATTERNS,
    match_all_verbs,
)
from repro.policy.verbs import ALL_CATEGORY_VERBS


@dataclass
class SelectedSentence:
    """A useful sentence with its parse and pattern matches."""

    text: str
    tree: DependencyTree
    matches: list[PatternMatch]


def select_sentences(
    sentences: list[str],
    patterns: tuple[Pattern, ...] | list[Pattern] = SEED_PATTERNS,
    verbs: frozenset[str] = ALL_CATEGORY_VERBS,
) -> list[SelectedSentence]:
    """Parse each sentence and keep those matched by any pattern."""
    selected: list[SelectedSentence] = []
    for text in sentences:
        tree = parse(text)
        matches = match_all_verbs(tree, patterns, verbs)
        if matches:
            selected.append(SelectedSentence(text, tree, matches))
    return selected


def is_useful(
    sentence: str,
    patterns: tuple[Pattern, ...] | list[Pattern] = SEED_PATTERNS,
    verbs: frozenset[str] = ALL_CATEGORY_VERBS,
) -> bool:
    """Convenience predicate used by the Fig. 12 experiment."""
    return bool(match_all_verbs(parse(sentence), patterns, verbs))


__all__ = ["SelectedSentence", "select_sentences", "is_useful"]
