"""Information-element extraction (Step 6).

From each useful sentence PPChecker extracts four elements: the main
verb, the action executor (subject), the resource(s), and the
constraint.  Resources come from the direct object (active voice) or
the passive subject (nsubjpass), expanded through ``conj``
coordination and "about/regarding/of" prepositional attachments.
Constraints are pre-conditions ("if", "upon", "unless") or
post-conditions ("when", "before") and are used to discard sentences
describing website-registration or website-visit behaviour, which the
app itself does not perform.
"""

from __future__ import annotations

from repro.nlp.deptree import DependencyTree
from repro.nlp.negation import is_negated
from repro.policy.model import Statement
from repro.policy.patterns import PatternMatch
from repro.policy.verbs import OBJECT_BLACKLIST, SUBJECT_BLACKLIST

_PRE_MARKERS = {"if", "upon", "unless"}
_POST_MARKERS = {"when", "before", "whenever", "after", "while"}

#: prepositions whose object extends the resource ("information about
#: your location").
_RESOURCE_PREPS = {"about", "regarding", "concerning", "of", "including"}

_SKIP_RESOURCE_TOKENS = {"following", "certain", "other", "such"}


_PRUNE_RELS = ("det", "poss", "possessive", "punct", "cc", "conj",
               "prep", "neg", "rcmod", "advcl", "dep")


def _phrase(tree: DependencyTree, head: int) -> str:
    """Clean resource phrase: the head's subtree, pruned at determiners,
    possessives, coordination, and clausal modifiers (their whole
    subtrees are excluded, not just the token)."""
    keep: list[int] = []

    def visit(node: int) -> None:
        keep.append(node)
        for kid in tree.children(node):
            if tree.rel_of(kid) in _PRUNE_RELS:
                continue
            visit(kid)

    visit(head)
    words = []
    for idx in sorted(keep):
        tok = tree.token(idx)
        if tok.pos in ("PRP$", "DT", "POS"):
            continue
        if tok.lower in _SKIP_RESOURCE_TOKENS:
            continue
        words.append(tok.lower)
    return " ".join(words)


def _expand_conj(tree: DependencyTree, head: int) -> list[int]:
    heads = [head]
    frontier = [head]
    while frontier:
        node = frontier.pop()
        for kid in tree.children(node, "conj"):
            if kid not in heads:
                heads.append(kid)
                frontier.append(kid)
    return heads


def extract_resources(tree: DependencyTree, match: PatternMatch) -> list[str]:
    """Resource phrases governed by the matched action verb."""
    verb = match.verb_index
    heads: list[int] = []
    if match.passive:
        subj = tree.child(verb, "nsubjpass")
        if subj is None:
            # passive root with chain (P3): subject sits at the chain root
            root = tree.root()
            if root is not None:
                subj = tree.child(root, "nsubjpass")
        if subj is not None:
            heads.extend(_expand_conj(tree, subj))
    else:
        dobj = tree.child(verb, "dobj")
        if dobj is None:
            # coordinated VPs share the object: "collect and process X"
            arc = tree.head_of(verb)
            siblings = list(tree.children(verb, "conj"))
            if arc is not None and arc.rel == "conj":
                siblings.append(arc.head)
            for sib in siblings:
                dobj = tree.child(sib, "dobj")
                if dobj is not None:
                    break
        if dobj is not None:
            heads.extend(_expand_conj(tree, dobj))

    # prepositional extension of the resource; "such as" examples
    # extend it too ("personal information such as your name")
    extended: list[int] = list(heads)
    for base in list(heads) + [verb]:
        for prep in tree.children(base, "prep"):
            prep_token = tree.token(prep)
            is_such_as = (
                prep_token.lemma == "as"
                and prep > 0
                and tree.token(prep - 1).lower == "such"
            )
            if prep_token.lemma not in _RESOURCE_PREPS and not is_such_as:
                continue
            for pobj in tree.children(prep, "pobj"):
                extended.extend(_expand_conj(tree, pobj))

    resources: list[str] = []
    for head in extended:
        phrase = _phrase(tree, head)
        if not phrase:
            continue
        if phrase in OBJECT_BLACKLIST:
            continue
        head_word = tree.token(head).lower
        if head_word in OBJECT_BLACKLIST:
            continue
        if phrase not in resources:
            resources.append(phrase)
    return resources


def extract_executor(tree: DependencyTree, match: PatternMatch) -> str:
    """The action executor: active subject or passive "by"-agent."""
    root = tree.root()
    if root is None:
        return ""
    for rel in ("nsubj", "nsubjpass"):
        subj = tree.child(root, rel)
        if subj is not None and rel == "nsubj":
            return tree.token(subj).lower
        if subj is not None and rel == "nsubjpass" and not match.passive:
            return tree.token(subj).lower
    # passive agent: prep "by"
    for node in (match.verb_index, root):
        for prep in tree.children(node, "prep"):
            if tree.token(prep).lemma == "by":
                pobj = tree.child(prep, "pobj")
                if pobj is not None:
                    return tree.token(pobj).lower
    return ""


def extract_constraint(tree: DependencyTree) -> tuple[str | None, str | None]:
    """(constraint text, kind) from the first advcl with a known marker."""
    root = tree.root()
    if root is None:
        return None, None
    for clause in tree.children(root, "advcl"):
        mark = tree.child(clause, "mark")
        if mark is None:
            continue
        marker = tree.token(mark).lower
        if marker in _PRE_MARKERS:
            return tree.subtree_text(clause), "pre"
        if marker in _POST_MARKERS:
            return tree.subtree_text(clause), "post"
    return None, None


def _constraint_excludes(constraint: str | None) -> bool:
    """Paper's filter: registration-through-website and website-visit
    constraints describe behaviour the *website* performs, not the app."""
    if not constraint:
        return False
    low = constraint.lower()
    website = "website" in low or "web site" in low or "our site" in low
    action = ("register" in low or "visit" in low or "sign up" in low
              or "signup" in low)
    return website and action


def extract_statement(
    tree: DependencyTree,
    match: PatternMatch,
    sentence: str,
) -> Statement | None:
    """Build the Statement for a matched sentence, or None if filtered."""
    executor = extract_executor(tree, match)
    # the subject blacklist removes sentences about the app's users --
    # but only in active voice, where the subject is the executor
    if executor in SUBJECT_BLACKLIST:
        return None

    resources = extract_resources(tree, match)
    if not resources:
        return None

    constraint, kind = extract_constraint(tree)
    if _constraint_excludes(constraint):
        return None

    negated = is_negated(tree, match.verb_index) or is_negated(tree)
    return Statement(
        sentence=sentence,
        category=match.category,
        verb=match.verb_lemma,
        executor=executor,
        resources=tuple(resources),
        negated=negated,
        constraint=constraint,
        constraint_kind=kind,
        pattern=match.pattern.name,
    )


__all__ = [
    "extract_resources",
    "extract_executor",
    "extract_constraint",
    "extract_statement",
]
