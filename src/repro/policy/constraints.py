"""Constraint modelling (the paper's Discussion, future work #1).

Section VI: "the constraints in complex sentences, such as 'without
your consent', 'if you do not allow us to', etc., may affect the
actual meaning of the sentence.  We will create models for these
constraints and then adjust the meaning of the corresponding sentence
if necessary."

This module implements that extension.  A constraint is classified
into one of several kinds; two of them flip or soften the statement's
effective polarity:

- ``consent``: "without your consent", "unless you agree" -- a
  *negative* statement under a consent constraint really means the
  behaviour happens once consent is given, so for incompleteness
  checking it counts as positive coverage;
- ``opt_out``: "unless you opt out" on a *positive* statement keeps it
  positive (the default is collection);
- ``user_action``: "if you register", "when you use the app" --
  behaviour conditional on ordinary app usage; no polarity change;
- ``third_party``: "by third parties", "through our partners" -- the
  behaviour is not the app's own;
- ``purpose``: "to improve the service" -- purpose limitation only.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.policy.model import PolicyAnalysis, Statement


class ConstraintKind(enum.Enum):
    CONSENT = "consent"
    OPT_OUT = "opt_out"
    USER_ACTION = "user_action"
    THIRD_PARTY = "third_party"
    PURPOSE = "purpose"
    NONE = "none"


_CONSENT_CUES = (
    "without your consent", "without your permission",
    "without your explicit consent", "unless you agree",
    "unless you consent", "unless you give us permission",
    "without asking", "if you do not allow us",
    "unless you allow us", "without first obtaining",
)
_OPT_OUT_CUES = (
    "unless you opt out", "unless you opt-out",
    "until you opt out", "unless you disable",
    "unless you turn off", "if you do not opt out",
)
_THIRD_PARTY_CUES = (
    "by third parties", "by third party", "by our partners",
    "through our partners", "by advertisers", "by those sites",
)
_PURPOSE_CUES = (
    "to improve", "to provide", "to personalize", "to serve",
    "for analytics", "for advertising", "to enhance",
)
_USER_ACTION_CUES = (
    "if you register", "when you register", "if you sign up",
    "when you use", "if you use", "when you install",
    "if you contact", "when you contact", "if you submit",
    "upon registration", "before you",
)


def classify_constraint(text: str | None) -> ConstraintKind:
    """Classify a constraint clause (or a whole sentence's tail)."""
    if not text:
        return ConstraintKind.NONE
    low = text.lower()
    for cues, kind in (
        (_CONSENT_CUES, ConstraintKind.CONSENT),
        (_OPT_OUT_CUES, ConstraintKind.OPT_OUT),
        (_THIRD_PARTY_CUES, ConstraintKind.THIRD_PARTY),
        (_USER_ACTION_CUES, ConstraintKind.USER_ACTION),
        (_PURPOSE_CUES, ConstraintKind.PURPOSE),
    ):
        if any(cue in low for cue in cues):
            return kind
    return ConstraintKind.NONE


def adjust_statement(statement: Statement) -> Statement:
    """Adjust one statement's effective meaning for its constraint.

    The sentence text is consulted as well as the extracted constraint
    clause, because "without your consent" attaches as a prepositional
    phrase rather than an adverbial clause.
    """
    kind = classify_constraint(statement.constraint)
    if kind is ConstraintKind.NONE:
        kind = classify_constraint(statement.sentence)

    if kind is ConstraintKind.CONSENT and statement.negated:
        # "we will not share your data without your consent" ==
        # "with consent, we share" -> counts as (conditional) positive
        return replace(statement, negated=False,
                       constraint_kind="consent")
    if kind is ConstraintKind.OPT_OUT and not statement.negated:
        return replace(statement, constraint_kind="opt_out")
    if kind is ConstraintKind.THIRD_PARTY:
        return replace(statement, constraint_kind="third_party")
    return statement


def adjust_analysis(analysis: PolicyAnalysis) -> PolicyAnalysis:
    """A constraint-adjusted copy of a policy analysis.

    Consent-conditioned denials move from the Not* sets to the
    positive sets, so they neither trigger the incorrect detector nor
    conflict with lib policies, while still providing coverage for the
    incompleteness check.  Third-party-attributed statements are
    dropped (the behaviour is not the app's).
    """
    adjusted = PolicyAnalysis(
        sentences=list(analysis.sentences),
        has_third_party_disclaimer=analysis.has_third_party_disclaimer,
    )
    for statement in analysis.statements:
        new = adjust_statement(statement)
        if new.constraint_kind == "third_party":
            continue
        adjusted.statements.append(new)
    return adjusted


__all__ = [
    "ConstraintKind",
    "classify_constraint",
    "adjust_statement",
    "adjust_analysis",
]
