"""The privacy-policy analyzer: orchestrates the six pipeline steps.

Input: a policy as plain text or HTML.  Output: a
:class:`repro.policy.model.PolicyAnalysis` with useful sentences,
per-category resource sets (Collect_pp ... NotDisclose_pp), and the
third-party disclaimer flag used by the inconsistency detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hashing import fingerprint, fingerprint_text
from repro.nlp.sentences import split_sentences
from repro.policy.extraction import extract_statement
from repro.policy.html_text import html_to_text
from repro.policy.model import PolicyAnalysis
from repro.policy.patterns import Pattern, SEED_PATTERNS
from repro.policy.selection import select_sentences
from repro.policy.verbs import ALL_CATEGORY_VERBS

#: Phrases announcing a disclaimer of responsibility for third parties.
_DISCLAIMER_CUES = (
    "not responsible for the privacy practices",
    "not responsible for the practices",
    "not responsible for the content or privacy",
    "no responsibility for the privacy practices",
    "review the privacy practices of these third parties",
    "review the privacy policies of these third parties",
    "review the privacy policy of any third party",
)


def detect_disclaimer(sentences: list[str]) -> bool:
    """True if the policy disclaims responsibility for third parties."""
    for sentence in sentences:
        low = sentence.lower()
        if any(cue in low for cue in _DISCLAIMER_CUES):
            return True
        if "not responsible" in low and (
            "third" in low or "other sites" in low or "those sites" in low
        ):
            return True
    return False


@dataclass
class PolicyAnalyzer:
    """Analyzes privacy policies with a configurable pattern list.

    The default configuration corresponds to the paper's converged
    bootstrap (Table II shapes over the full verb-category sets).
    Custom pattern lists -- e.g. the top-n output of
    :mod:`repro.policy.bootstrap` -- plug in unchanged.
    """

    patterns: tuple[Pattern, ...] = SEED_PATTERNS
    verbs: frozenset[str] = ALL_CATEGORY_VERBS
    _cache: dict[str, PolicyAnalysis] = field(default_factory=dict,
                                              repr=False)
    _fingerprint: str | None = field(default=None, repr=False)

    def fingerprint(self) -> str:
        """Content hash of the analyzer configuration.

        Part of every ``policy_analysis`` / ``lib_policy_analysis``
        cache key: two analyzers with the same patterns and verb sets
        share artifacts; a custom pattern list (e.g. a bootstrap
        top-n) gets its own key space.
        """
        if self._fingerprint is None:
            self._fingerprint = fingerprint({
                "patterns": [
                    {
                        "name": p.name,
                        "chain": list(p.chain),
                        "voice": p.voice,
                        "require_advcl": p.require_advcl,
                        "category": p.category.value if p.category
                        else None,
                    }
                    for p in self.patterns
                ],
                "verbs": sorted(self.verbs),
            })
        return self._fingerprint

    def analyze(self, policy: str, html: bool = False) -> PolicyAnalysis:
        """Run the six-step pipeline over one policy document."""
        # content digest, not hash(): hash collisions must never alias
        # two different policies to one analysis
        key = f"{int(html)}:{fingerprint_text(policy)}"
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        text = html_to_text(policy) if html else policy
        sentences = split_sentences(text)

        analysis = PolicyAnalysis(sentences=sentences)
        analysis.has_third_party_disclaimer = detect_disclaimer(sentences)

        for selected in select_sentences(sentences, self.patterns,
                                         self.verbs):
            for match in selected.matches:
                statement = extract_statement(selected.tree, match,
                                              selected.text)
                if statement is not None:
                    analysis.statements.append(statement)

        self._cache[key] = analysis
        return analysis


_DEFAULT_ANALYZER: PolicyAnalyzer | None = None


def analyze_policy(policy: str, html: bool = False) -> PolicyAnalysis:
    """Analyze with the process-wide default :class:`PolicyAnalyzer`."""
    global _DEFAULT_ANALYZER
    if _DEFAULT_ANALYZER is None:
        _DEFAULT_ANALYZER = PolicyAnalyzer()
    return _DEFAULT_ANALYZER.analyze(policy, html=html)


__all__ = ["PolicyAnalyzer", "analyze_policy", "detect_disclaimer"]
