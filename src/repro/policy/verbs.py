"""Main-verb categories (Section III-B.1).

Four verb categories following Breaux et al.'s privacy-requirements
vocabulary: collect, use, retain, disclose.  ``SEED_VERBS`` holds the
four initial verbs the bootstrapping starts from; the full category
sets below are what a converged bootstrap run discovers (and what the
production analyzer uses).

Also hosts the three semantic-drift blacklists the paper adds to the
bootstrapping: subjects describing the app's *users*, verbs unrelated
to the four behaviours, and objects that are not personal information.
"""

from __future__ import annotations

import enum


class VerbCategory(enum.Enum):
    COLLECT = "collect"
    USE = "use"
    RETAIN = "retain"
    DISCLOSE = "disclose"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The bootstrap seed: one verb per category (Section III-B Step 3).
SEED_VERBS: dict[VerbCategory, tuple[str, ...]] = {
    VerbCategory.COLLECT: ("collect",),
    VerbCategory.USE: ("use",),
    VerbCategory.RETAIN: ("retain",),
    VerbCategory.DISCLOSE: ("disclose",),
}

#: Converged category sets (verb lemmas).
COLLECT_VERBS = frozenset({
    "collect", "gather", "obtain", "acquire", "receive", "access",
    "record", "track", "monitor", "request", "check", "read", "get",
    "take", "capture", "scan",
})
USE_VERBS = frozenset({
    "use", "process", "utilize", "employ", "analyze", "combine",
    "aggregate", "personalize", "customize",
})
RETAIN_VERBS = frozenset({
    "retain", "store", "keep", "save", "hold", "preserve", "cache",
    "log", "archive", "maintain",
})
DISCLOSE_VERBS = frozenset({
    "disclose", "share", "transfer", "provide", "send", "transmit",
    "sell", "rent", "trade", "release", "distribute", "disseminate",
    "give", "supply", "report", "expose", "forward", "upload",
    "reveal", "pass", "deliver",
})
# NOTE: "display" is deliberately absent -- the paper reports it as the
# source of a false negative ("we will not display any of your personal
# information") and defers it to future work.

CATEGORY_VERBS: dict[VerbCategory, frozenset[str]] = {
    VerbCategory.COLLECT: COLLECT_VERBS,
    VerbCategory.USE: USE_VERBS,
    VerbCategory.RETAIN: RETAIN_VERBS,
    VerbCategory.DISCLOSE: DISCLOSE_VERBS,
}

ALL_CATEGORY_VERBS = (
    COLLECT_VERBS | USE_VERBS | RETAIN_VERBS | DISCLOSE_VERBS
)


def verb_category(lemma: str) -> VerbCategory | None:
    """The category of a verb lemma, or None if outside all four."""
    for category, verbs in CATEGORY_VERBS.items():
        if lemma in verbs:
            return category
    return None


# ---------------------------------------------------------------------------
# Semantic-drift blacklists (paper's enhancement #1 to bootstrapping)
# ---------------------------------------------------------------------------

#: Sentences whose subject is the *user* describe user actions, not app
#: behaviour; they are removed.
SUBJECT_BLACKLIST = frozenset({
    "you", "user", "users", "visitor", "visitors", "customer",
    "customers", "member", "members", "child", "children", "minor",
    "minors", "parent", "parents",
})

#: Verbs unrelated to the four behaviours.
VERB_BLACKLIST = frozenset({
    "have", "make", "be", "do", "become", "seem", "appear", "include",
    "contain", "mean", "want", "like", "see", "say", "go", "come",
    "encourage", "recommend", "agree", "review", "contact", "visit",
})

#: Objects that are not personal information.
OBJECT_BLACKLIST = frozenset({
    "service", "services", "website", "site", "page", "pages",
    "question", "questions", "right", "rights", "policy", "policies",
    "term", "terms", "agreement", "law", "laws", "measure",
    "measures", "step", "steps", "effort", "efforts", "experience",
    "support", "functionality", "feature", "features", "content",
    "product", "products", "practice", "practices",
})

#: Action executors accepted as "the app / the company".
FIRST_PARTY_SUBJECTS = frozenset({
    "we", "app", "application", "company", "service", "it", "i",
    "developer", "team", "site", "website", "library", "sdk",
})


__all__ = [
    "VerbCategory",
    "SEED_VERBS",
    "COLLECT_VERBS",
    "USE_VERBS",
    "RETAIN_VERBS",
    "DISCLOSE_VERBS",
    "CATEGORY_VERBS",
    "ALL_CATEGORY_VERBS",
    "verb_category",
    "SUBJECT_BLACKLIST",
    "VERB_BLACKLIST",
    "OBJECT_BLACKLIST",
    "FIRST_PARTY_SUBJECTS",
]
