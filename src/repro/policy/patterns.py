"""Semantic patterns for sentence selection (Steps 3-4, Table II).

A pattern is a lexicalized chain of lemmas from the sentence root down
to the *action verb* (the verb that governs the resource), plus a
voice constraint.  The wildcard ``*`` matches any verb of the four
main-verb categories.

The five sample patterns of Table II map onto this representation:

=====  ======================================  =======================
 id    paper pattern                           chain / voice
=====  ======================================  =======================
 P1    active voice                            ("*",), active
 P2    passive voice                           ("*",), passive
 P3    passive allow ("we are allowed to V")   ("allow", "*"), passive
 P4    ability ("we are able to V")            ("able", "*"), active
 P5    purpose ("we V X to V2 ...")            ("*",), active, advcl
=====  ======================================  =======================

Bootstrapping (:mod:`repro.policy.bootstrap`) produces further chains
with concrete verbs, e.g. ``("allow", "access")`` from the paper's
Fig. 7 example.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nlp.deptree import DependencyTree
from repro.policy.verbs import (
    ALL_CATEGORY_VERBS,
    VerbCategory,
    verb_category,
)

WILDCARD = "*"

#: Dependency relations a pattern chain may descend through.
_CHAIN_RELS = ("xcomp", "advcl", "ccomp", "conj", "dep")


@dataclass(frozen=True)
class Pattern:
    """A sentence-selection pattern.

    Attributes:
        name:     identifier for reporting ("P1", learned "allow>access").
        chain:    lemma chain from root to action verb; ``*`` matches any
                  verb in the four categories.
        voice:    "active", "passive", or "any".
        require_advcl: the root must carry an adverbial clause (P5).
        category: fixed category for learned patterns whose action verb
                  lies outside the curated category sets.
    """

    name: str
    chain: tuple[str, ...]
    voice: str = "any"
    require_advcl: bool = False
    category: VerbCategory | None = None

    def key(self) -> tuple:
        return (self.chain, self.voice, self.require_advcl)


@dataclass(frozen=True)
class PatternMatch:
    """A successful pattern application to a parsed sentence."""

    pattern: Pattern
    verb_index: int
    verb_lemma: str
    category: VerbCategory
    passive: bool


#: Table II seed patterns.
SEED_PATTERNS: tuple[Pattern, ...] = (
    Pattern("P1", (WILDCARD,), voice="active"),
    Pattern("P2", (WILDCARD,), voice="passive"),
    Pattern("P3", ("allow", WILDCARD), voice="passive"),
    Pattern("P4", ("able", WILDCARD), voice="active"),
    Pattern("P5", (WILDCARD,), voice="active", require_advcl=True),
)


def _node_is_passive(tree: DependencyTree, node: int) -> bool:
    return tree.has_relation(node, "auxpass") or tree.has_relation(
        node, "nsubjpass"
    )


def _element_matches(lemma: str, element: str,
                     verbs: frozenset[str]) -> bool:
    if element == WILDCARD:
        return lemma in verbs
    return lemma == element


def match_pattern(
    pattern: Pattern,
    tree: DependencyTree,
    verbs: frozenset[str] = ALL_CATEGORY_VERBS,
) -> PatternMatch | None:
    """Try *pattern* against *tree*; return the match or None."""
    root = tree.root()
    if root is None:
        return None
    node = root
    lemma = tree.token(node).lemma
    if not _element_matches(lemma, pattern.chain[0], verbs):
        return None

    # voice is judged at the root of the chain
    passive_root = _node_is_passive(tree, root)
    if pattern.voice == "active" and passive_root and len(pattern.chain) == 1:
        return None
    if pattern.voice == "passive" and not passive_root:
        return None

    for element in pattern.chain[1:]:
        found = None
        for rel in _CHAIN_RELS:
            for kid in tree.children(node, rel):
                if _element_matches(tree.token(kid).lemma, element, verbs):
                    found = kid
                    break
            if found is not None:
                break
        if found is None:
            return None
        node = found

    if pattern.require_advcl and not tree.has_relation(root, "advcl"):
        return None

    verb_lemma = tree.token(node).lemma
    category = pattern.category or verb_category(verb_lemma)
    if category is None:
        return None
    # the action verb's own voice decides where the resource sits
    passive = _node_is_passive(tree, node)
    return PatternMatch(
        pattern=pattern,
        verb_index=node,
        verb_lemma=verb_lemma,
        category=category,
        passive=passive,
    )


def match_any(
    tree: DependencyTree,
    patterns: tuple[Pattern, ...] | list[Pattern] = SEED_PATTERNS,
    verbs: frozenset[str] = ALL_CATEGORY_VERBS,
) -> PatternMatch | None:
    """First matching pattern wins (patterns are ranked by score)."""
    for pattern in patterns:
        result = match_pattern(pattern, tree, verbs)
        if result is not None:
            return result
    return None


def match_all_verbs(
    tree: DependencyTree,
    patterns: tuple[Pattern, ...] | list[Pattern] = SEED_PATTERNS,
    verbs: frozenset[str] = ALL_CATEGORY_VERBS,
) -> list[PatternMatch]:
    """All matches, including coordinated verbs ("collect and store").

    After the root match, conj verbs of the root that carry their own
    category yield additional matches so "we collect and store X"
    produces both a collect and a retain statement.
    """
    matches: list[PatternMatch] = []
    first = match_any(tree, patterns, verbs)
    if first is None:
        return matches
    matches.append(first)
    root = tree.root()
    if root is None:
        return matches
    for kid in tree.children(root, "conj"):
        lemma = tree.token(kid).lemma
        category = verb_category(lemma)
        if category is None:
            continue
        matches.append(
            PatternMatch(
                pattern=first.pattern,
                verb_index=kid,
                verb_lemma=lemma,
                category=category,
                passive=_node_is_passive(tree, kid),
            )
        )
    return matches


__all__ = [
    "WILDCARD",
    "Pattern",
    "PatternMatch",
    "SEED_PATTERNS",
    "match_pattern",
    "match_any",
    "match_all_verbs",
]
