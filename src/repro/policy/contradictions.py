"""Internal policy contradictions (a PolicyLint-style extension).

PPChecker contrasts the policy against *external* evidence
(description, code, lib policies).  A policy can also contradict
*itself*: "we may collect your contacts" alongside "we will not
collect your contacts", or a broad denial ("we never collect personal
information") alongside a narrow positive ("we collect your email
address").  Follow-up research (PolicyLint, USENIX Security 2019)
built exactly this analysis; this module provides it over the same
statement representation.

Two contradiction shapes:

- **exact**: same verb category, same resource, opposite polarity;
- **subsumption**: a negative statement about a *broader* term
  contradicted by a positive statement about a *narrower* one (the
  narrowing relation comes from the ontology: every specific
  information type narrows "personal information" / "information" /
  "personal data").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.matching import InfoMatcher
from repro.policy.model import PolicyAnalysis, Statement
from repro.semantics.resources import normalize_resource

#: broad terms every specific information type narrows.
BROAD_TERMS = frozenset({
    "personal information", "personal data", "information",
    "personally identifiable information", "any information",
    "user information", "data",
})


@dataclass(frozen=True)
class Contradiction:
    """One internal conflict between two statements of a policy."""

    kind: str                    # "exact" | "subsumption"
    positive: Statement
    negative: Statement
    positive_resource: str
    negative_resource: str

    def describe(self) -> str:
        return (
            f"[{self.kind}] policy both asserts "
            f"\"{self.positive.sentence}\" and denies "
            f"\"{self.negative.sentence}\" "
            f"({self.positive_resource} vs {self.negative_resource})"
        )


def _is_broad(resource: str) -> bool:
    return resource in BROAD_TERMS


def _flatten(statements) -> tuple[list[str], list[int]]:
    """All resources of *statements* in statement order, plus each
    statement's start offset into the flat list."""
    flat: list[str] = []
    offsets: list[int] = []
    for statement in statements:
        offsets.append(len(flat))
        flat.extend(statement.resources)
    return flat, offsets


def detect_contradictions(
    analysis: PolicyAnalysis,
    matcher: InfoMatcher | None = None,
) -> list[Contradiction]:
    """All internal contradictions of one analyzed policy.

    Every (negative resource, positive resource) ESA pair of the
    policy scores through a single
    :meth:`~repro.semantics.esa.EsaModel.match_sets` pass (one
    inverted-index build per policy); each statement pair then
    replays its nested-loop decision against the shared hit set, so
    the selected pairs are byte-identical to the per-pair scan.
    """
    if matcher is None:
        matcher = InfoMatcher()
    contradictions: list[Contradiction] = []
    seen: set[tuple[str, str, str]] = set()

    negatives = analysis.negative_statements()
    positives = analysis.positive_statements()
    neg_flat, neg_offsets = _flatten(negatives)
    pos_flat, pos_offsets = _flatten(positives)
    esa_hits = {
        (i, j) for i, j, _sim in matcher.esa.match_sets(
            neg_flat, pos_flat, matcher.threshold)
    }

    for negative, neg_offset in zip(negatives, neg_offsets):
        for positive, pos_offset in zip(positives, pos_offsets):
            if positive.category is not negative.category:
                continue
            hit = _match(positive, negative, esa_hits,
                         pos_offset, neg_offset)
            if hit is None:
                continue
            kind, pos_res, neg_res = hit
            key = (kind, positive.sentence, negative.sentence)
            if key in seen:
                continue
            seen.add(key)
            contradictions.append(Contradiction(
                kind=kind, positive=positive, negative=negative,
                positive_resource=pos_res, negative_resource=neg_res,
            ))
    return contradictions


def _match(
    positive: Statement,
    negative: Statement,
    esa_hits: set[tuple[int, int]],
    pos_offset: int,
    neg_offset: int,
) -> tuple[str, str, str] | None:
    neg_infos = [normalize_resource(r) for r in negative.resources]
    pos_infos = [normalize_resource(r) for r in positive.resources]
    # ESA pairs were scored in one per-policy batch; the decision
    # replays in nested-loop order so the selected pair is unchanged
    for i, neg_res in enumerate(negative.resources):
        for j, pos_res in enumerate(positive.resources):
            # exact: the two resources are the same thing
            if neg_infos[i] is not None and neg_infos[i] is pos_infos[j]:
                return "exact", pos_res, neg_res
            if neg_infos[i] is None and pos_infos[j] is None and \
                    (neg_offset + i, pos_offset + j) in esa_hits:
                return "exact", pos_res, neg_res
            # subsumption: broad denial vs narrow specific positive
            if _is_broad(neg_res) and pos_infos[j] is not None:
                return "subsumption", pos_res, neg_res
    return None


__all__ = ["BROAD_TERMS", "Contradiction", "detect_contradictions"]
