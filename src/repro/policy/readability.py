"""Policy readability metrics.

Privacy-policy research consistently finds that policies are written
far above the average reading level; regulators (and the FTC guidance
the paper cites) ask for "clear and conspicuous" disclosures.  This
module computes the standard indicators over a policy document:

- Flesch reading ease and Flesch-Kincaid grade (syllables estimated
  from vowel groups),
- sentence/word counts, average sentence length,
- the share of *useful* sentences (those carrying an extractable
  statement), a PPChecker-specific signal: a long policy where only a
  sliver talks about data practices is padding.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.nlp.sentences import split_sentences
from repro.policy.html_text import html_to_text
from repro.policy.selection import select_sentences

_WORD_RE = re.compile(r"[A-Za-z]+(?:'[A-Za-z]+)?")
_VOWEL_GROUP_RE = re.compile(r"[aeiouy]+")


def count_syllables(word: str) -> int:
    """Vowel-group syllable estimate (min 1)."""
    low = word.lower()
    groups = _VOWEL_GROUP_RE.findall(low)
    count = len(groups)
    if low.endswith("e") and count > 1 and not low.endswith(
        ("le", "ee", "ie")
    ):
        count -= 1
    return max(1, count)


@dataclass(frozen=True)
class ReadabilityReport:
    sentences: int
    words: int
    syllables: int
    useful_sentences: int

    @property
    def words_per_sentence(self) -> float:
        return self.words / self.sentences if self.sentences else 0.0

    @property
    def syllables_per_word(self) -> float:
        return self.syllables / self.words if self.words else 0.0

    @property
    def flesch_reading_ease(self) -> float:
        if not self.sentences or not self.words:
            return 0.0
        return (206.835 - 1.015 * self.words_per_sentence
                - 84.6 * self.syllables_per_word)

    @property
    def flesch_kincaid_grade(self) -> float:
        if not self.sentences or not self.words:
            return 0.0
        return (0.39 * self.words_per_sentence
                + 11.8 * self.syllables_per_word - 15.59)

    @property
    def useful_fraction(self) -> float:
        return (self.useful_sentences / self.sentences
                if self.sentences else 0.0)


def assess_readability(policy: str, html: bool = False) -> ReadabilityReport:
    """Readability metrics for one policy document."""
    text = html_to_text(policy) if html else policy
    sentences = split_sentences(text)
    words = [w for s in sentences for w in _WORD_RE.findall(s)]
    syllables = sum(count_syllables(w) for w in words)
    useful = len(select_sentences(sentences))
    return ReadabilityReport(
        sentences=len(sentences),
        words=len(words),
        syllables=syllables,
        useful_sentences=useful,
    )


__all__ = ["count_syllables", "ReadabilityReport", "assess_readability"]
