"""Policy version diffing.

Policies change ("we may update this policy from time to time"); the
FTC's Path action was precisely about behaviour a policy *stopped*
mentioning.  This module compares two versions of a policy at the
statement level:

- coverage gained / lost per verb category,
- denials added / withdrawn,
- a verdict on whether the change *weakened* the policy (coverage
  lost or a denial silently withdrawn -- both reviewer-worthy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.policy.analyzer import PolicyAnalyzer
from repro.policy.model import PolicyAnalysis
from repro.policy.verbs import VerbCategory


@dataclass(frozen=True)
class ResourceChange:
    category: VerbCategory
    resource: str
    negated: bool


@dataclass
class PolicyDiff:
    """Statement-level difference between two policy versions."""

    added: list[ResourceChange] = field(default_factory=list)
    removed: list[ResourceChange] = field(default_factory=list)

    @property
    def coverage_lost(self) -> list[ResourceChange]:
        """Positive statements present before, gone now."""
        return [c for c in self.removed if not c.negated]

    @property
    def coverage_gained(self) -> list[ResourceChange]:
        return [c for c in self.added if not c.negated]

    @property
    def denials_withdrawn(self) -> list[ResourceChange]:
        """Promises ("we will not ...") that disappeared."""
        return [c for c in self.removed if c.negated]

    @property
    def denials_added(self) -> list[ResourceChange]:
        return [c for c in self.added if c.negated]

    @property
    def weakened(self) -> bool:
        return bool(self.coverage_lost or self.denials_withdrawn)

    @property
    def unchanged(self) -> bool:
        return not self.added and not self.removed

    def describe(self) -> str:
        lines: list[str] = []
        for change in self.coverage_gained:
            lines.append(f"+ now covers {change.category.value} of "
                         f"'{change.resource}'")
        for change in self.denials_added:
            lines.append(f"+ now promises not to "
                         f"{change.category.value} '{change.resource}'")
        for change in self.coverage_lost:
            lines.append(f"- no longer mentions "
                         f"{change.category.value} of "
                         f"'{change.resource}'")
        for change in self.denials_withdrawn:
            lines.append(f"- withdrew the promise not to "
                         f"{change.category.value} "
                         f"'{change.resource}'")
        if not lines:
            lines.append("no statement-level changes")
        return "\n".join(lines)


def _statement_set(analysis: PolicyAnalysis) -> set[ResourceChange]:
    return {
        ResourceChange(category=stmt.category, resource=res,
                       negated=stmt.negated)
        for stmt in analysis.statements
        for res in stmt.resources
    }


def diff_policies(
    old_policy: str,
    new_policy: str,
    html: bool = False,
    analyzer: PolicyAnalyzer | None = None,
) -> PolicyDiff:
    """Compare two policy versions at the statement level."""
    if analyzer is None:
        analyzer = PolicyAnalyzer()
    old_set = _statement_set(analyzer.analyze(old_policy, html=html))
    new_set = _statement_set(analyzer.analyze(new_policy, html=html))

    def ordered(changes: set[ResourceChange]) -> list[ResourceChange]:
        return sorted(changes,
                      key=lambda c: (c.category.value, c.resource,
                                     c.negated))

    return PolicyDiff(
        added=ordered(new_set - old_set),
        removed=ordered(old_set - new_set),
    )


__all__ = ["ResourceChange", "PolicyDiff", "diff_policies"]
