"""HTML-to-text extraction (replaces Beautiful Soup for Step 1).

Privacy policies are served as simple HTML.  This extractor:

- drops ``<script>``, ``<style>``, ``<head>``, and comments wholesale,
- turns block-level tags into paragraph breaks and ``<li>`` into
  bullet lines,
- decodes the HTML entities that occur in practice,
- removes non-ASCII symbols and meaningless ASCII control characters
  (the paper restricts itself to English-letter content).
"""

from __future__ import annotations

import re

_BLOCK_TAGS = {
    "p", "div", "br", "li", "ul", "ol", "h1", "h2", "h3", "h4", "h5",
    "h6", "tr", "table", "section", "article", "header", "footer",
    "blockquote", "pre",
}

_DROP_TAGS = {"script", "style", "head", "noscript", "template"}

_ENTITIES = {
    "&amp;": "&", "&lt;": "<", "&gt;": ">", "&quot;": '"',
    "&apos;": "'", "&#39;": "'", "&#34;": '"', "&nbsp;": " ",
    "&mdash;": "-", "&ndash;": "-", "&rsquo;": "'", "&lsquo;": "'",
    "&rdquo;": '"', "&ldquo;": '"', "&hellip;": "...", "&copy;": "",
    "&reg;": "", "&trade;": "", "&bull;": "-", "&middot;": "-",
}

_TAG_RE = re.compile(r"<(/?)([a-zA-Z][a-zA-Z0-9]*)[^>]*>")
_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)
_DOCTYPE_RE = re.compile(r"<!DOCTYPE[^>]*>", re.IGNORECASE)
_NUMERIC_ENTITY_RE = re.compile(r"&#(x?[0-9a-fA-F]+);")


def _decode_entities(text: str) -> str:
    for entity, repl in _ENTITIES.items():
        text = text.replace(entity, repl)

    def _numeric(match: re.Match[str]) -> str:
        body = match.group(1)
        try:
            code = int(body[1:], 16) if body.startswith(("x", "X")) else int(body)
        except ValueError:
            return " "
        if 32 <= code < 127:
            return chr(code)
        return " "

    return _NUMERIC_ENTITY_RE.sub(_numeric, text)


def html_to_text(html: str) -> str:
    """Extract readable ASCII text from an HTML privacy policy."""
    text = _COMMENT_RE.sub(" ", html)
    text = _DOCTYPE_RE.sub(" ", text)

    # Remove drop-tag bodies.
    for tag in _DROP_TAGS:
        text = re.sub(
            rf"<{tag}\b[^>]*>.*?</{tag}>", " ", text,
            flags=re.DOTALL | re.IGNORECASE,
        )

    out: list[str] = []
    pos = 0
    for match in _TAG_RE.finditer(text):
        out.append(text[pos:match.start()])
        tag = match.group(2).lower()
        if tag == "li":
            out.append("\n\n- " if not match.group(1) else "\n")
        elif tag in _BLOCK_TAGS:
            out.append("\n\n")
        else:
            out.append(" ")
        pos = match.end()
    out.append(text[pos:])

    flat = _decode_entities("".join(out))
    # Strip non-ASCII and ASCII control characters (keep \n).
    flat = "".join(
        ch for ch in flat
        if ch == "\n" or (32 <= ord(ch) < 127)
    )
    # Collapse runs of spaces, keep paragraph breaks.
    flat = re.sub(r"[ \t]+", " ", flat)
    flat = re.sub(r" ?\n ?", "\n", flat)
    flat = re.sub(r"\n{3,}", "\n\n", flat)
    return flat.strip()


__all__ = ["html_to_text"]
