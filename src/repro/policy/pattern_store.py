"""Pattern persistence: save and reload bootstrapped pattern lists.

A bootstrap run is deterministic but not free; persisting the ranked
patterns lets a deployment train once and analyze many policies.  The
format is plain JSON with the Eq. 1 statistics alongside each pattern,
so the top-n cut can be re-chosen at load time.
"""

from __future__ import annotations

import json
from typing import Any

from repro.policy.bootstrap import ScoredPattern
from repro.policy.patterns import Pattern
from repro.policy.verbs import VerbCategory

FORMAT_VERSION = 1


def pattern_to_dict(scored: ScoredPattern) -> dict[str, Any]:
    pattern = scored.pattern
    return {
        "name": pattern.name,
        "chain": list(pattern.chain),
        "voice": pattern.voice,
        "require_advcl": pattern.require_advcl,
        "category": pattern.category.value if pattern.category else None,
        "pos": scored.pos,
        "neg": scored.neg,
        "unk": scored.unk,
    }


def pattern_from_dict(doc: dict[str, Any]) -> ScoredPattern:
    category = (VerbCategory(doc["category"])
                if doc.get("category") else None)
    return ScoredPattern(
        pattern=Pattern(
            name=doc["name"],
            chain=tuple(doc["chain"]),
            voice=doc.get("voice", "any"),
            require_advcl=doc.get("require_advcl", False),
            category=category,
        ),
        pos=doc.get("pos", 0),
        neg=doc.get("neg", 0),
        unk=doc.get("unk", 0),
    )


def save_patterns(scored: list[ScoredPattern], path: str) -> None:
    payload = {
        "version": FORMAT_VERSION,
        "patterns": [pattern_to_dict(sp) for sp in scored],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


def load_patterns(path: str) -> list[ScoredPattern]:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported pattern-store version: "
            f"{payload.get('version')!r}"
        )
    scored = [pattern_from_dict(doc) for doc in payload["patterns"]]
    scored.sort(key=lambda sp: sp.score, reverse=True)
    return scored


__all__ = [
    "FORMAT_VERSION",
    "pattern_to_dict",
    "pattern_from_dict",
    "save_patterns",
    "load_patterns",
]
