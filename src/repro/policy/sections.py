"""Policy-document sectioning.

Real privacy policies are structured documents (the paper's Fig. 1
excerpt has "what we collect" / "sharing" blocks).  This module
segments a policy -- HTML headings or ALL-CAPS / numbered heading
lines in plain text -- into titled sections and attributes the
analyzer's statements to them, so reports can cite *where* a policy
covers (or denies) a behaviour, and audits can check for expected
sections ("data retention", "third parties", "children").
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.nlp.sentences import split_sentences
from repro.policy.analyzer import PolicyAnalyzer
from repro.policy.html_text import html_to_text
from repro.policy.model import Statement

_HTML_HEADING_RE = re.compile(
    r"<h([1-6])[^>]*>(.*?)</h\1>", re.IGNORECASE | re.DOTALL
)
_TAG_RE = re.compile(r"<[^>]+>")

#: a plain-text heading: numbered ("3. Data Retention") or short
#: title-case/ALL-CAPS line without terminal punctuation.
_TEXT_HEADING_RE = re.compile(
    r"^(?:\d+[.)]\s+)?[A-Z][A-Za-z ,&/-]{2,60}$"
)

#: canonical section topics and the cue words that signal them.
SECTION_TOPICS: dict[str, tuple[str, ...]] = {
    "collection": ("collect", "information we", "what we", "gather"),
    "use": ("use", "how we use", "purposes"),
    "retention": ("retention", "retain", "storage", "store",
                  "how long"),
    "sharing": ("shar", "disclos", "third part", "partners"),
    "security": ("security", "protect", "safeguard"),
    "children": ("child", "minor", "coppa"),
    "choices": ("choice", "opt", "rights", "access and control"),
    "changes": ("change", "update", "amendment"),
    "contact": ("contact", "questions"),
}


@dataclass
class PolicySection:
    """One titled block of a policy."""

    title: str
    text: str
    topic: str = "other"
    statements: list[Statement] = field(default_factory=list)

    def sentences(self) -> list[str]:
        return split_sentences(self.text)


def classify_heading(title: str) -> str:
    """Map a heading to a canonical topic."""
    low = title.lower()
    for topic, cues in SECTION_TOPICS.items():
        if any(cue in low for cue in cues):
            return topic
    return "other"


def _split_html_sections(html: str) -> list[tuple[str, str]]:
    pieces: list[tuple[str, str]] = []
    last_title = ""
    last_end = 0
    for match in _HTML_HEADING_RE.finditer(html):
        body = html[last_end:match.start()]
        if last_title or body.strip():
            pieces.append((last_title, html_to_text(body)))
        last_title = _TAG_RE.sub("", match.group(2)).strip()
        last_end = match.end()
    pieces.append((last_title, html_to_text(html[last_end:])))
    return [(title, text) for title, text in pieces if text.strip()]


def _split_text_sections(text: str) -> list[tuple[str, str]]:
    pieces: list[tuple[str, str]] = []
    title = ""
    buffer: list[str] = []
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and _TEXT_HEADING_RE.match(stripped) and \
                not stripped.endswith((".", ",", ";", ":")):
            if buffer:
                pieces.append((title, "\n".join(buffer)))
                buffer = []
            title = stripped
            continue
        buffer.append(line)
    if buffer:
        pieces.append((title, "\n".join(buffer)))
    return [(t, b) for t, b in pieces if b.strip()]


def split_sections(policy: str, html: bool = False) -> list[PolicySection]:
    """Segment a policy document into titled sections."""
    raw = _split_html_sections(policy) if html else \
        _split_text_sections(policy)
    if not raw:
        raw = [("", html_to_text(policy) if html else policy)]
    return [
        PolicySection(title=title, text=text,
                      topic=classify_heading(title))
        for title, text in raw
    ]


def analyze_sections(
    policy: str,
    html: bool = False,
    analyzer: PolicyAnalyzer | None = None,
) -> list[PolicySection]:
    """Sections with their extracted statements attached."""
    if analyzer is None:
        analyzer = PolicyAnalyzer()
    sections = split_sections(policy, html=html)
    for section in sections:
        analysis = analyzer.analyze(section.text)
        section.statements = list(analysis.statements)
    return sections


def missing_topics(sections: list[PolicySection],
                   required: tuple[str, ...] = (
                       "collection", "sharing", "retention",
                   )) -> set[str]:
    """Expected topics with no dedicated section (audit helper)."""
    present = {section.topic for section in sections}
    return set(required) - present


__all__ = [
    "PolicySection",
    "SECTION_TOPICS",
    "classify_heading",
    "split_sections",
    "analyze_sections",
    "missing_topics",
]
