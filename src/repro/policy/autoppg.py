"""Automatic privacy-policy generation from static analysis (AutoPPG).

The authors' companion system [53] "automatically generate[s] privacy
policies for Android apps."  This module closes the loop for the
reproduction: given an APK, the static-analysis facts are rendered
into a policy document that *covers* everything the app does -- by
construction, PPChecker finds no incomplete/incorrect problem in the
generated text (a property the test suite enforces).

The generated document:

- one collection sentence per collected information type, citing the
  trigger ("when you use the app"),
- one retention sentence per retained type, naming the sink family,
- a third-party section enumerating detected libraries with a pointer
  to their own policies,
- standard sections (changes, contact).
"""

from __future__ import annotations

from repro.android.api_db import SinkKind
from repro.android.apk import Apk
from repro.android.static_analysis import StaticAnalysisResult, analyze_apk
from repro.corpus.policygen import INFO_PHRASES
from repro.semantics.resources import InfoType

_SINK_PHRASES = {
    SinkKind.LOG: "in diagnostic logs on your device",
    SinkKind.FILE: "in local files on your device",
    SinkKind.NETWORK: "on our servers",
    SinkKind.SMS: "in outgoing messages",
    SinkKind.BLUETOOTH: "on paired devices",
}


def _phrase(info: InfoType) -> str:
    phrases = INFO_PHRASES.get(info)
    return phrases[0] if phrases else info.value


def generate_policy(
    apk: Apk,
    static_result: StaticAnalysisResult | None = None,
    app_name: str | None = None,
) -> str:
    """Generate a covering privacy policy for *apk*."""
    if static_result is None:
        static_result = analyze_apk(apk)
    name = app_name or apk.package

    lines: list[str] = [
        f"Privacy Policy for {name}.",
        "This policy describes what information the app handles and "
        "why.",
    ]

    collected = sorted(static_result.collected_infos(),
                       key=lambda i: i.value)
    if collected:
        for info in collected:
            lines.append(
                f"When you use the app, we may collect your "
                f"{_phrase(info)}."
            )
    else:
        lines.append("The app does not collect personal information.")

    retained_kinds: dict[InfoType, set[str]] = {}
    for path in static_result.retained:
        retained_kinds.setdefault(path.info, set()).add(path.sink_kind)
    for info in sorted(retained_kinds, key=lambda i: i.value):
        places = sorted(retained_kinds[info])
        where = _SINK_PHRASES.get(places[0], "on your device")
        lines.append(
            f"We may store your {_phrase(info)} {where}."
        )

    if static_result.libraries:
        lib_names = ", ".join(
            spec.name for spec in static_result.libraries
        )
        lines.append(
            f"The app embeds the following third party components: "
            f"{lib_names}."
        )
        lines.append(
            "These components handle information under their own "
            "privacy policies, which we encourage you to review."
        )

    lines.append("We may update this policy from time to time.")
    lines.append(
        "If you have any questions about this policy, please "
        "contact us."
    )
    return " ".join(lines)


__all__ = ["generate_policy"]
