"""Verb-synonym expansion (the paper's Discussion, future work #2).

Section V-E traces the inconsistency false negative to the verb set:
"the app com.starlitt.disableddating declares ... 'we will not display
any of your personal information'.  PPChecker fails to match such
sentence since 'display' is not included in our extracted patterns.
We will use the synonyms of major verbs to tackle this issue in
future work."

This module implements that extension: a curated synonym table per
verb category, ESA-verified against the category's seed verbs, is
compiled into additional chain patterns (one per synonym, with the
category fixed).  Plug the result into
:class:`repro.policy.analyzer.PolicyAnalyzer`::

    analyzer = PolicyAnalyzer(patterns=SEED_PATTERNS
                              + synonym_patterns())
"""

from __future__ import annotations

from repro.policy.patterns import Pattern, SEED_PATTERNS
from repro.policy.verbs import ALL_CATEGORY_VERBS, VerbCategory

#: candidate synonyms per category, outside the curated verb sets.
SYNONYM_CANDIDATES: dict[VerbCategory, tuple[str, ...]] = {
    VerbCategory.COLLECT: (
        "harvest", "mine", "view", "capture", "intercept", "extract",
        "retrieve", "fetch", "query", "look up", "solicit",
    ),
    VerbCategory.USE: (
        "leverage", "exploit", "consume", "evaluate", "examine",
        "review",
    ),
    VerbCategory.RETAIN: (
        "stash", "warehouse", "persist", "backup", "record",
        "memorize",
    ),
    VerbCategory.DISCLOSE: (
        "display", "show", "publish", "broadcast", "expose", "leak",
        "surrender", "divulge", "present",
    ),
}

#: synonyms excluded because they collide with blacklisted or
#: already-claimed verbs ("review" is verb-blacklisted; "record" and
#: "capture" and "expose" already sit in a category).
_EXCLUDED = frozenset({"review", "record", "capture", "expose",
                       "look up"})


def expanded_verbs() -> dict[VerbCategory, frozenset[str]]:
    """Per-category synonym sets (single-word lemmas, deduplicated)."""
    expanded: dict[VerbCategory, frozenset[str]] = {}
    for category, candidates in SYNONYM_CANDIDATES.items():
        keep = frozenset(
            verb for verb in candidates
            if verb not in _EXCLUDED
            and " " not in verb
            and verb not in ALL_CATEGORY_VERBS
        )
        expanded[category] = keep
    return expanded


def synonym_patterns() -> tuple[Pattern, ...]:
    """One chain pattern per synonym verb, category fixed."""
    patterns: list[Pattern] = []
    for category, verbs in expanded_verbs().items():
        for verb in sorted(verbs):
            patterns.append(Pattern(
                name=f"syn:{verb}",
                chain=(verb,),
                voice="any",
                category=category,
            ))
    return tuple(patterns)


def expanded_pattern_set() -> tuple[Pattern, ...]:
    """Seed patterns plus the synonym chains, ready for the analyzer."""
    return SEED_PATTERNS + synonym_patterns()


__all__ = [
    "SYNONYM_CANDIDATES",
    "expanded_verbs",
    "synonym_patterns",
    "expanded_pattern_set",
]
