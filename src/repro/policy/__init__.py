"""Privacy-policy analysis module (Section III-B of the paper).

The six-step pipeline:

1. sentence extraction  (:mod:`repro.policy.html_text`,
   :mod:`repro.nlp.sentences`)
2. syntactic analysis   (:mod:`repro.nlp.parser`)
3. pattern generation   (:mod:`repro.policy.bootstrap`)
4. sentence selection   (:mod:`repro.policy.selection`)
5. negation analysis    (:mod:`repro.nlp.negation`)
6. information-element extraction (:mod:`repro.policy.extraction`)

:class:`repro.policy.analyzer.PolicyAnalyzer` orchestrates the steps
and produces a :class:`repro.policy.model.PolicyAnalysis` holding the
Collect/Use/Retain/Disclose (and Not*) resource sets.
"""

from repro.policy.verbs import VerbCategory, verb_category
from repro.policy.model import Statement, PolicyAnalysis
from repro.policy.analyzer import PolicyAnalyzer, analyze_policy
from repro.policy.html_text import html_to_text

__all__ = [
    "VerbCategory",
    "verb_category",
    "Statement",
    "PolicyAnalysis",
    "PolicyAnalyzer",
    "analyze_policy",
    "html_to_text",
]
