"""An append-only, checksummed JSONL write-ahead journal.

The durability primitive everything in :mod:`repro.durability` builds
on.  One journal is one file of newline-terminated records::

    {"crc":"4f2c1a9b","record":{"payload":{...},"seq":1,"type":"meta"}}

- **Commit point.** :meth:`Journal.append` serializes the record,
  writes the full line, flushes, and ``fsync``\\ s the file descriptor
  before returning -- once ``append`` returns, the record survives a
  ``kill -9`` or power loss.  The journal's parent directory is
  fsync'd when the file is created, so the *file itself* survives
  too.
- **Torn-tail tolerance.** A crash mid-append leaves a partial last
  line.  :func:`replay` verifies, per line: newline-terminated, valid
  JSON, CRC32 over the canonical record body matches, and sequence
  numbers are contiguous from 1.  The first violation ends replay --
  every record before it is returned, everything from it on is the
  torn tail.  Committed records can therefore never be dropped by a
  later torn append (the hypothesis suite truncates at every byte
  offset to prove it).
- **Truncation repair.** :meth:`Journal.open` replays, truncates the
  file back to the last committed byte, and resumes appending with
  the next sequence number -- so a journal that survived a crash is
  immediately appendable again.

Records are plain dicts; interpretation (study checkpoints, service
jobs) lives in :mod:`repro.durability.study_log` and
:mod:`repro.durability.service_log`.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.hashing import canonical_json

#: bump when the line format (not the payload contents) changes
JOURNAL_FORMAT = 1


def fsync_dir(path: str) -> None:
    """fsync the directory *path* so a just-created or just-renamed
    entry inside it survives power loss (no-op where directories
    cannot be opened, e.g. Windows)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _crc(record_json: str) -> str:
    return format(zlib.crc32(record_json.encode("utf-8")) & 0xFFFFFFFF,
                  "08x")


def encode_record(seq: int, type: str, payload: Any) -> bytes:
    """One journal line (newline-terminated UTF-8) for the record."""
    record = {"payload": payload, "seq": seq, "type": type}
    body = canonical_json(record)
    line = canonical_json({"crc": _crc(body), "record": record})
    return line.encode("utf-8") + b"\n"


def decode_record(line: bytes) -> dict[str, Any]:
    """Parse and verify one journal line back into its record dict.

    Raises ``ValueError`` when the line is torn: not newline-
    terminated, not JSON, the wrong shape, or failing its checksum.
    """
    if not line.endswith(b"\n"):
        raise ValueError("torn line: missing trailing newline")
    try:
        doc = json.loads(line)
    except ValueError as exc:
        raise ValueError(f"torn line: not JSON ({exc})") from exc
    if not isinstance(doc, dict) or "record" not in doc \
            or "crc" not in doc:
        raise ValueError("torn line: not a journal record")
    record = doc["record"]
    if not isinstance(record, dict) or "seq" not in record \
            or "type" not in record or "payload" not in record:
        raise ValueError("torn line: incomplete record body")
    if _crc(canonical_json(record)) != doc["crc"]:
        raise ValueError("torn line: checksum mismatch")
    return record


@dataclass
class ReplayResult:
    """What :func:`replay` recovered from a journal file."""

    records: list[dict[str, Any]] = field(default_factory=list)
    #: byte offset just past the last committed record -- the point
    #: :meth:`Journal.open` truncates back to
    committed_bytes: int = 0
    #: bytes of torn tail discarded (0 for a cleanly closed journal)
    torn_bytes: int = 0

    @property
    def torn(self) -> bool:
        return self.torn_bytes > 0


def replay(path: str) -> ReplayResult:
    """Read every committed record of the journal at *path*.

    Never raises on a torn or corrupt tail: replay stops at the first
    unverifiable line and reports how many bytes it discarded.  A
    missing file replays as empty.
    """
    result = ReplayResult()
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return result
    offset = 0
    expected_seq = 1
    while offset < len(data):
        end = data.find(b"\n", offset)
        line = data[offset:] if end < 0 else data[offset:end + 1]
        try:
            record = decode_record(line)
        except ValueError:
            break
        if record["seq"] != expected_seq:
            # a record from a recycled file or an overwritten tail:
            # everything from here is untrustworthy
            break
        result.records.append(record)
        result.committed_bytes = offset + len(line)
        expected_seq += 1
        offset += len(line)
    result.torn_bytes = len(data) - result.committed_bytes
    return result


class Journal:
    """An open, appendable write-ahead journal.

    ``listener(type, nbytes)`` (optional) observes every committed
    append -- the service's metrics bridge.  Instances are not
    thread-safe by themselves; callers serialize appends (the
    higher-level logs hold a lock).
    """

    def __init__(self, path: str,
                 listener: Callable[[str, int], None] | None = None,
                 ) -> None:
        self.path = path
        self.listener = listener
        self.appended = 0
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        existed = os.path.exists(path)
        self.replayed = replay(path)
        self._next_seq = len(self.replayed.records) + 1
        # repair: drop any torn tail so new appends land on a
        # committed boundary
        self._fd = os.open(path, os.O_WRONLY | os.O_CREAT, 0o644)
        try:
            os.ftruncate(self._fd, self.replayed.committed_bytes)
            os.lseek(self._fd, 0, os.SEEK_END)
            if not existed:
                fsync_dir(parent)
        except BaseException:
            os.close(self._fd)
            raise

    # -- appending ---------------------------------------------------------

    def append(self, type: str, payload: Any) -> dict[str, Any]:
        """Durably append one record; returns it once committed."""
        line = encode_record(self._next_seq, type, payload)
        os.write(self._fd, line)
        os.fsync(self._fd)
        record = {"payload": payload, "seq": self._next_seq,
                  "type": type}
        self._next_seq += 1
        self.appended += 1
        if self.listener is not None:
            self.listener(type, len(line))
        return record

    # -- introspection -----------------------------------------------------

    @property
    def size_bytes(self) -> int:
        try:
            return os.fstat(self._fd).st_size
        except OSError:  # pragma: no cover - closed journal
            return 0

    def records(self) -> Iterator[dict[str, Any]]:
        """The records committed before this journal was opened."""
        return iter(self.replayed.records)

    def close(self) -> None:
        try:
            os.close(self._fd)
        except OSError:  # pragma: no cover - double close
            pass

    def __enter__(self) -> Journal:
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


__all__ = [
    "JOURNAL_FORMAT",
    "fsync_dir",
    "encode_record",
    "decode_record",
    "ReplayResult",
    "replay",
    "Journal",
]
