"""Persistent service jobs: accept-time journaling, crash replay,
and dead-lettering for poison pills.

``ppchecker serve --state-dir DIR`` opens a :class:`ServiceLog` over
``DIR/jobs.jsonl``.  The record vocabulary:

- ``accepted``     -- a job entered the queue: id, content key,
  package, and the full canonical bundle document (enough to rebuild
  and re-run the job after a crash).  Written before the ``202`` is
  answered, so an acknowledged job is never lost.
- ``started``      -- a worker picked the job up (one per delivery;
  the redelivery counter is the number of these records).
- ``completed`` / ``quarantined`` -- the job reached a terminal
  state; replay skips it.
- ``deadlettered`` -- recovery decided the job is a poison pill.

Recovery (:meth:`ServiceLog.recover`) folds the journal into per-job
state.  A job that was accepted but never finished is *redelivered*
-- re-queued exactly as submitted -- unless it has already been
delivered ``max_redeliveries`` times, in which case it is
dead-lettered: recorded as such in the journal (so the decision
itself survives the next crash), surfaced on ``GET /v1/deadletter``,
and never run again.  That bounds the damage of a job that crashes
the process (e.g. a ``crash``-kind fault): at most
``max_redeliveries`` process deaths, then the job is parked and the
service keeps serving everyone else.
"""

from __future__ import annotations

import os
import re
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.durability.journal import Journal

JOB_ACCEPTED = "accepted"
JOB_STARTED = "started"
JOB_COMPLETED = "completed"
JOB_QUARANTINED = "quarantined"
JOB_DEADLETTERED = "deadlettered"
#: the job's request deadline expired and the work was dropped;
#: terminal for replay (the submitter stopped waiting -- a restart
#: must not resurrect work nobody wants)
JOB_SHED = "shed"

_JOB_NUMBER = re.compile(r"^job-(\d+)$")


@dataclass
class RecoveredJob:
    """One journaled job and everything replay learned about it."""

    id: str
    key: str
    package: str
    bundle_doc: dict[str, Any]
    deliveries: int = 0
    state: str = "queued"
    error: dict[str, Any] | None = None

    @property
    def terminal(self) -> bool:
        return self.state in (JOB_COMPLETED, JOB_QUARANTINED,
                              JOB_DEADLETTERED, JOB_SHED)


@dataclass
class RecoveredState:
    """What :meth:`ServiceLog.recover` hands the starting service."""

    #: journaled-but-unfinished jobs to re-queue, in acceptance order
    requeue: list[RecoveredJob] = field(default_factory=list)
    #: poison pills parked by this or an earlier recovery
    deadletters: list[RecoveredJob] = field(default_factory=list)
    #: highest job number ever issued (the index counter resumes past it)
    max_job_number: int = 0
    records_replayed: int = 0
    torn_bytes: int = 0


def deadletter_doc(job_id: str, key: str, package: str,
                   deliveries: int) -> dict[str, Any]:
    """The structured 422-style payload for one dead-lettered job."""
    return {
        "id": job_id,
        "key": key,
        "package": package,
        "deliveries": deliveries,
        "state": JOB_DEADLETTERED,
        "error": {
            "kind": "deadlettered",
            "package": package,
            "error": "DeadLettered",
            "message": (
                f"job crashed the service in {deliveries} "
                f"deliver{'y' if deliveries == 1 else 'ies'} and "
                f"was dead-lettered"),
            "attempts": deliveries,
        },
    }


class ServiceLog:
    """The service's write-ahead job journal (thread-safe appends)."""

    FILENAME = "jobs.jsonl"

    def __init__(self, state_dir: str,
                 listener: Callable[[str, int], None] | None = None,
                 ) -> None:
        os.makedirs(state_dir, exist_ok=True)
        self.state_dir = state_dir
        self.journal = Journal(os.path.join(state_dir, self.FILENAME),
                               listener=listener)
        self._lock = threading.Lock()

    # -- append sites (accept path + worker loop) --------------------------

    def _append(self, type: str, payload: dict[str, Any]) -> None:
        with self._lock:
            self.journal.append(type, payload)

    def job_accepted(self, job_id: str, key: str, package: str,
                     bundle_doc: dict[str, Any]) -> None:
        self._append(JOB_ACCEPTED, {
            "id": job_id, "key": key, "package": package,
            "bundle": bundle_doc,
        })

    def job_started(self, job_id: str, delivery: int) -> None:
        self._append(JOB_STARTED, {"id": job_id,
                                   "delivery": delivery})

    def job_completed(self, job_id: str) -> None:
        self._append(JOB_COMPLETED, {"id": job_id})

    def job_quarantined(self, job_id: str,
                        error: dict[str, Any]) -> None:
        self._append(JOB_QUARANTINED, {"id": job_id, "error": error})

    def job_deadlettered(self, job_id: str, deliveries: int) -> None:
        self._append(JOB_DEADLETTERED, {"id": job_id,
                                        "deliveries": deliveries})

    def job_shed(self, job_id: str, error: dict[str, Any]) -> None:
        self._append(JOB_SHED, {"id": job_id, "error": error})

    # -- recovery ----------------------------------------------------------

    def recover(self, max_redeliveries: int) -> RecoveredState:
        """Fold the journal into live state, dead-lettering poison
        pills that already burned *max_redeliveries* deliveries.

        Newly dead-lettered jobs are journaled immediately, so the
        decision is itself crash-safe (a second recovery sees the
        ``deadlettered`` record, not a fresh delivery budget).
        """
        state = RecoveredState(
            torn_bytes=self.journal.replayed.torn_bytes)
        jobs: dict[str, RecoveredJob] = {}
        order: list[str] = []
        deliveries_only: dict[str, int] = {}
        for record in self.journal.records():
            state.records_replayed += 1
            payload = record["payload"]
            job_id = payload.get("id")
            if record["type"] == JOB_ACCEPTED:
                job = RecoveredJob(
                    id=job_id, key=payload["key"],
                    package=payload["package"],
                    bundle_doc=payload["bundle"],
                    deliveries=deliveries_only.pop(job_id, 0),
                )
                jobs[job_id] = job
                order.append(job_id)
                match = _JOB_NUMBER.match(job_id or "")
                if match:
                    state.max_job_number = max(
                        state.max_job_number, int(match.group(1)))
                continue
            job = jobs.get(job_id)
            if record["type"] == JOB_STARTED:
                if job is None:
                    # started landed before its accepted record (the
                    # two appends race only across threads); keep the
                    # count until the accepted record shows up
                    deliveries_only[job_id] = \
                        deliveries_only.get(job_id, 0) + 1
                else:
                    job.deliveries += 1
            elif job is not None:
                job.state = record["type"]
                if record["type"] == JOB_QUARANTINED:
                    job.error = payload.get("error")
        for job_id in order:
            job = jobs[job_id]
            if job.terminal:
                if job.state == JOB_DEADLETTERED:
                    state.deadletters.append(job)
                continue
            if job.deliveries >= max_redeliveries:
                self.job_deadlettered(job.id, job.deliveries)
                job.state = JOB_DEADLETTERED
                state.deadletters.append(job)
            else:
                state.requeue.append(job)
        return state

    @property
    def size_bytes(self) -> int:
        return self.journal.size_bytes

    def close(self) -> None:
        self.journal.close()


__all__ = [
    "JOB_ACCEPTED",
    "JOB_STARTED",
    "JOB_COMPLETED",
    "JOB_QUARANTINED",
    "JOB_DEADLETTERED",
    "JOB_SHED",
    "RecoveredJob",
    "RecoveredState",
    "deadletter_doc",
    "ServiceLog",
]
