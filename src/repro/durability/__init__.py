"""Durable execution: write-ahead journaling and crash recovery.

Long batch runs and a long-running service both die ungracefully in
the real world -- OOM kills, node preemption, power loss.  This
package makes that survivable:

- :mod:`repro.durability.journal` -- the primitive: an append-only,
  CRC-checksummed JSONL journal with fsync'd commits and
  torn-tail-tolerant replay.
- :mod:`repro.durability.study_log` -- per-app outcome checkpoints
  for ``study --journal`` / ``batch-check --journal``; ``--resume``
  replays finished apps and recomputes only the rest, reproducing
  the uninterrupted run's report byte for byte.
- :mod:`repro.durability.service_log` -- accept-time job persistence
  for ``serve --state-dir``: queued/in-flight jobs are replayed on
  startup, and jobs that repeatedly crash the process are
  dead-lettered after a bounded number of redeliveries.

See DESIGN.md §12 for the journal format, commit points, replay
rules, and the dead-letter policy.
"""

from repro.durability.journal import (
    Journal,
    ReplayResult,
    decode_record,
    encode_record,
    fsync_dir,
    replay,
)
from repro.durability.service_log import (
    RecoveredJob,
    RecoveredState,
    ServiceLog,
    deadletter_doc,
)
from repro.durability.study_log import (
    RecoveryInfo,
    RunLog,
    RunLogError,
    open_run_log,
)

__all__ = [
    "Journal",
    "ReplayResult",
    "decode_record",
    "encode_record",
    "fsync_dir",
    "replay",
    "RecoveredJob",
    "RecoveredState",
    "ServiceLog",
    "deadletter_doc",
    "RecoveryInfo",
    "RunLog",
    "RunLogError",
    "open_run_log",
]
