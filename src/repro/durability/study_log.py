"""Crash-safe checkpointing for ``study`` and ``batch-check`` runs.

A :class:`RunLog` wraps one :class:`~repro.durability.journal.Journal`
with the record vocabulary of a batch run:

- ``meta``    -- written once at the head: what run this journal
  belongs to (``study`` seed/app-count, or the content digest of a
  ``batch-check`` bundle set).  ``--resume`` refuses a journal whose
  meta does not match the current invocation -- a journal can never
  silently splice two different runs together.
- ``outcome`` -- one per finished app: the key (package for studies,
  bundle content digest for batch-check), whether the app produced a
  report or a quarantine record, and the full
  :meth:`~repro.core.report.AppReport.to_dict` /
  :meth:`~repro.core.report.AppFailure.to_dict` payload.

The commit point is per app: an outcome is journaled the moment the
app's check finishes (from whichever worker thread finished it), so a
``kill -9`` loses at most the apps still in flight.  On resume the
replayed outcomes are handed back to the caller, which skips those
apps and recomputes only the rest -- the final report is byte-
identical to an uninterrupted run because report/failure documents
round-trip exactly and every aggregate is derived from them.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any

from repro.core.report import AppFailure, AppReport
from repro.durability.journal import JOURNAL_FORMAT, Journal, replay

META = "meta"
OUTCOME = "outcome"

REPORT = "report"
QUARANTINE = "quarantine"


class RunLogError(RuntimeError):
    """The journal cannot back this run (meta mismatch, clobber)."""


@dataclass
class RecoveryInfo:
    """What a resumed run replayed (the ``== recovery ==`` table)."""

    path: str
    records_replayed: int = 0
    reports_replayed: int = 0
    quarantine_replayed: int = 0
    torn_bytes: int = 0
    resumed: bool = False

    def to_dict(self) -> dict[str, int | str | bool]:
        return {
            "path": self.path,
            "resumed": self.resumed,
            "records_replayed": self.records_replayed,
            "reports_replayed": self.reports_replayed,
            "quarantine_replayed": self.quarantine_replayed,
            "torn_bytes": self.torn_bytes,
        }


class RunLog:
    """One batch run's write-ahead journal (thread-safe appends)."""

    def __init__(self, journal: Journal, meta: dict[str, Any],
                 recovery: RecoveryInfo) -> None:
        self.journal = journal
        self.meta = meta
        self.recovery = recovery
        self._lock = threading.Lock()

    # -- opening -----------------------------------------------------------

    @staticmethod
    def _meta_record(meta: dict[str, Any]) -> dict[str, Any]:
        return {"format": JOURNAL_FORMAT, **meta}

    @classmethod
    def fresh(cls, path: str, meta: dict[str, Any]) -> RunLog:
        """Start a new run journal at *path*.

        Refuses to clobber an existing journal with committed records
        -- pass ``--resume`` (use :meth:`resume`) or delete the file.
        """
        if replay(path).records:
            raise RunLogError(
                f"{path}: journal already holds a run; resume it "
                f"or remove the file")
        journal = Journal(path)
        journal.append(META, cls._meta_record(meta))
        return cls(journal, meta, RecoveryInfo(path=path))

    @classmethod
    def resume(cls, path: str, meta: dict[str, Any],
               ) -> tuple[RunLog, dict[str, AppReport | AppFailure]]:
        """Reopen the journal at *path* and replay its outcomes.

        Returns ``(runlog, outcomes)`` where ``outcomes`` maps each
        replayed key to its reconstructed report or failure.  A
        missing/empty journal resumes as a fresh run.  Raises
        :class:`RunLogError` when the journal's meta record does not
        match *meta*.
        """
        journal = Journal(path)
        records = list(journal.records())
        recovery = RecoveryInfo(
            path=path,
            torn_bytes=journal.replayed.torn_bytes,
        )
        if not records:
            journal.append(META, cls._meta_record(meta))
            return cls(journal, meta, recovery), {}
        head = records[0]
        expected = cls._meta_record(meta)
        if head["type"] != META or head["payload"] != expected:
            journal.close()
            raise RunLogError(
                f"{path}: journal belongs to a different run "
                f"(journal meta {head.get('payload')!r} != expected "
                f"{expected!r})")
        outcomes: dict[str, AppReport | AppFailure] = {}
        recovery.resumed = True
        for record in records[1:]:
            if record["type"] != OUTCOME:
                continue
            payload = record["payload"]
            key = payload["key"]
            if payload["kind"] == QUARANTINE:
                outcomes[key] = AppFailure.from_dict(payload["doc"])
                recovery.quarantine_replayed += 1
            else:
                outcomes[key] = AppReport.from_dict(payload["doc"])
                recovery.reports_replayed += 1
        recovery.records_replayed = len(records)
        # re-replayed keys may repeat after an overlapping crash
        # window; last record wins, but count distinct keys
        recovery.reports_replayed = sum(
            1 for o in outcomes.values() if isinstance(o, AppReport))
        recovery.quarantine_replayed = sum(
            1 for o in outcomes.values() if isinstance(o, AppFailure))
        return cls(journal, meta, recovery), outcomes

    # -- checkpointing -----------------------------------------------------

    def record_outcome(self, key: str,
                       outcome: AppReport | AppFailure) -> None:
        """Durably checkpoint one finished app (any worker thread)."""
        if isinstance(outcome, AppFailure):
            kind, doc = QUARANTINE, outcome.to_dict()
        else:
            kind, doc = REPORT, outcome.to_dict()
        with self._lock:
            self.journal.append(
                OUTCOME, {"key": key, "kind": kind, "doc": doc})

    @property
    def size_bytes(self) -> int:
        return self.journal.size_bytes

    def close(self) -> None:
        self.journal.close()


def open_run_log(
    path: str, meta: dict[str, Any], resume: bool,
) -> tuple[RunLog, dict[str, AppReport | AppFailure]]:
    """The CLI entry point: ``--journal path`` (+ ``--resume``).

    Without *resume* the journal must be fresh (or absent); with it,
    committed outcomes are replayed and skipped by the caller.
    """
    if resume:
        return RunLog.resume(path, meta)
    if os.path.exists(path) and replay(path).records:
        raise RunLogError(
            f"{path}: journal already exists; pass --resume to "
            f"continue that run or remove the file")
    return RunLog.fresh(path, meta), {}


__all__ = [
    "META",
    "OUTCOME",
    "REPORT",
    "QUARANTINE",
    "RunLogError",
    "RecoveryInfo",
    "RunLog",
    "open_run_log",
]
