"""Third-party library registry and detection (Section IV-C).

PPChecker maintains a list of class-name prefixes of third-party libs;
the static-analysis module walks the dex's class names to find the
libs an app embeds.  The registry below covers the paper's corpus of
lib privacy policies: 52 advertising libraries, 9 social-network
libraries, and 20 development tools (81 total).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.android.dex import DexFile


@dataclass(frozen=True)
class LibSpec:
    """One third-party library: identity, class prefix, category."""

    lib_id: str
    name: str
    prefix: str
    category: str  # "ad" | "social" | "devtool"


_AD_LIBS: tuple[tuple[str, str], ...] = (
    ("admob", "com.google.ads"),
    ("doubleclick", "com.google.android.gms.ads.doubleclick"),
    ("flurry", "com.flurry.android"),
    ("inmobi", "com.inmobi"),
    ("mopub", "com.mopub"),
    ("millennialmedia", "com.millennialmedia"),
    ("chartboost", "com.chartboost.sdk"),
    ("unityads", "com.unity3d.ads"),
    ("applovin", "com.applovin"),
    ("vungle", "com.vungle"),
    ("adcolony", "com.jirbo.adcolony"),
    ("tapjoy", "com.tapjoy"),
    ("startapp", "com.startapp.android"),
    ("airpush", "com.airpush.android"),
    ("leadbolt", "com.pad.android"),
    ("amazonads", "com.amazon.device.ads"),
    ("facebookads", "com.facebook.ads"),
    ("smaato", "com.smaato.soma"),
    ("inneractive", "com.inneractive.api.ads"),
    ("adbuddiz", "com.purplebrain.adbuddiz"),
    ("revmob", "com.revmob"),
    ("heyzap", "com.heyzap"),
    ("appbrain", "com.appbrain"),
    ("mobfox", "com.adsdk.sdk"),
    ("madvertise", "de.madvertise.android"),
    ("admarvel", "com.admarvel.android"),
    ("adwhirl", "com.adwhirl"),
    ("mdotm", "com.mdotm.android"),
    ("jumptap", "com.jumptap.adtag"),
    ("greystripe", "com.greystripe.sdk"),
    ("medialets", "com.medialets"),
    ("pontiflex", "com.pontiflex.mobile"),
    ("tapit", "com.tapit"),
    ("adfonic", "com.adfonic.android"),
    ("mobclix", "com.mobclix.android"),
    ("nexage", "com.nexage.android"),
    ("rhythmone", "com.rhythmnewmedia"),
    ("smartadserver", "com.smartadserver.android"),
    ("phunware", "com.phunware"),
    ("widespace", "com.widespace"),
    ("zucks", "net.zucks"),
    ("nend", "net.nend.android"),
    ("cauly", "com.cauly.android.ad"),
    ("imobile", "jp.co.imobile"),
    ("microad", "jp.co.microad.smartphone"),
    ("fluct", "jp.fluct"),
    ("five", "com.five_corp.ad"),
    ("adlantis", "jp.adlantis.android"),
    ("mediba", "mediba.ad.sdk.android"),
    ("domob", "cn.domob.android"),
    ("youmi", "net.youmi.android"),
    ("waps", "com.waps"),
)

_SOCIAL_LIBS: tuple[tuple[str, str], ...] = (
    ("facebook", "com.facebook.android"),
    ("twitter", "com.twitter.sdk"),
    ("googleplus", "com.google.android.gms.plus"),
    ("linkedin", "com.linkedin.android"),
    ("weibo", "com.sina.weibo.sdk"),
    ("wechat", "com.tencent.mm.sdk"),
    ("vkontakte", "com.vk.sdk"),
    ("line", "jp.line.android.sdk"),
    ("kakao", "com.kakao.sdk"),
)

_DEVTOOL_LIBS: tuple[tuple[str, str], ...] = (
    ("unity3d", "com.unity3d.player"),
    ("crashlytics", "com.crashlytics.android"),
    ("mixpanel", "com.mixpanel.android"),
    ("googleanalytics", "com.google.analytics"),
    ("localytics", "com.localytics.android"),
    ("newrelic", "com.newrelic.agent.android"),
    ("testflight", "com.testflightapp.lib"),
    ("hockeyapp", "net.hockeyapp.android"),
    ("bugsense", "com.bugsense.trace"),
    ("apsalar", "com.apsalar.sdk"),
    ("kontagent", "com.kontagent"),
    ("amplitude", "com.amplitude.api"),
    ("segment", "com.segment.analytics"),
    ("urbanairship", "com.urbanairship"),
    ("parse", "com.parse"),
    ("onesignal", "com.onesignal"),
    ("pushwoosh", "com.pushwoosh"),
    ("branch", "io.branch.referral"),
    ("adjust", "com.adjust.sdk"),
    ("appsflyer", "com.appsflyer"),
)


def _build_registry() -> dict[str, LibSpec]:
    registry: dict[str, LibSpec] = {}
    for lib_id, prefix in _AD_LIBS:
        registry[lib_id] = LibSpec(lib_id, lib_id, prefix, "ad")
    for lib_id, prefix in _SOCIAL_LIBS:
        registry[lib_id] = LibSpec(lib_id, lib_id, prefix, "social")
    for lib_id, prefix in _DEVTOOL_LIBS:
        registry[lib_id] = LibSpec(lib_id, lib_id, prefix, "devtool")
    return registry


#: lib id -> spec; 52 ad + 9 social + 20 devtool = 81 entries.
LIB_REGISTRY: dict[str, LibSpec] = _build_registry()


def detect_libraries(dex: DexFile) -> list[LibSpec]:
    """The third-party libs embedded in an app, by class-name prefix."""
    found: dict[str, LibSpec] = {}
    for class_name in dex.class_names():
        for spec in LIB_REGISTRY.values():
            if class_name.startswith(spec.prefix):
                found[spec.lib_id] = spec
    return sorted(found.values(), key=lambda s: s.lib_id)


def libs_by_category(category: str) -> list[LibSpec]:
    return sorted(
        (spec for spec in LIB_REGISTRY.values()
         if spec.category == category),
        key=lambda s: s.lib_id,
    )


__all__ = ["LibSpec", "LIB_REGISTRY", "detect_libraries",
           "libs_by_category"]
