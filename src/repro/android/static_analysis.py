"""Static-analysis module facade (Section III-C).

Produces the two code-derived facts the problem-identification module
consumes:

- ``Collect_code``: information collected by the app -- sensitive API
  invocations and content-provider URI queries that are (a) reachable
  from an entry point and (b) attributed to the app (caller class name
  shares the app's package prefix), gated on the manifest actually
  requesting the needed permission;
- ``Retain_code``: information retained by the app -- source-to-sink
  taint paths (log, file, network, SMS, Bluetooth).

Library-attributed collection is reported separately (used by the
inconsistency detector and the ablations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.android.apg import build_apg
from repro.android.api_db import (
    API_PERMISSIONS,
    SENSITIVE_APIS,
    permission_for_uri,
)
from repro.android.apk import Apk
from repro.android.libs import LibSpec, detect_libraries
from repro.android.packer import unpack
from repro.android.reachability import reachable_methods
from repro.android.taint import TaintPath, find_taint_paths
from repro.android.uris import find_uri_accesses
from repro.semantics.resources import InfoType


@dataclass(frozen=True)
class CollectionFact:
    """One observed collection: which evidence, from where."""

    info: InfoType
    evidence: str      # API signature or URI literal
    caller: str        # caller method signature
    attributed_to_app: bool
    reachable: bool


@dataclass
class StaticAnalysisResult:
    """Everything the detectors need to know about an app's code."""

    package: str
    facts: list[CollectionFact] = field(default_factory=list)
    retained: list[TaintPath] = field(default_factory=list)
    libraries: list[LibSpec] = field(default_factory=list)
    was_packed: bool = False

    def collected_infos(self) -> set[InfoType]:
        """Collect_code: app-attributed, reachable collection."""
        return {
            fact.info
            for fact in self.facts
            if fact.attributed_to_app and fact.reachable
        }

    def lib_collected_infos(self) -> set[InfoType]:
        return {
            fact.info
            for fact in self.facts
            if not fact.attributed_to_app and fact.reachable
        }

    def retained_infos(self) -> set[InfoType]:
        """Retain_code: information with a source-to-sink path."""
        return {path.info for path in self.retained}

    def evidence_for(self, info: InfoType) -> list[str]:
        return sorted({
            fact.evidence
            for fact in self.facts
            if fact.info is info and fact.attributed_to_app
            and fact.reachable
        })

    # -- pipeline artifact protocol ---------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable rendering (pipeline disk cache)."""
        return {
            "package": self.package,
            "was_packed": self.was_packed,
            "facts": [
                {
                    "info": fact.info.value,
                    "evidence": fact.evidence,
                    "caller": fact.caller,
                    "attributed_to_app": fact.attributed_to_app,
                    "reachable": fact.reachable,
                }
                for fact in self.facts
            ],
            "retained": [
                {
                    "info": path.info.value,
                    "source_api": path.source_api,
                    "source_method": path.source_method,
                    "sink_api": path.sink_api,
                    "sink_method": path.sink_method,
                    "sink_kind": path.sink_kind,
                    "hops": list(path.hops),
                }
                for path in self.retained
            ],
            "libraries": [
                {
                    "lib_id": spec.lib_id,
                    "name": spec.name,
                    "prefix": spec.prefix,
                    "category": spec.category,
                }
                for spec in self.libraries
            ],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> StaticAnalysisResult:
        result = cls(package=doc["package"],
                     was_packed=doc.get("was_packed", False))
        result.facts = [
            CollectionFact(
                info=InfoType(f["info"]),
                evidence=f["evidence"],
                caller=f["caller"],
                attributed_to_app=f["attributed_to_app"],
                reachable=f["reachable"],
            )
            for f in doc.get("facts", ())
        ]
        result.retained = [
            TaintPath(
                info=InfoType(p["info"]),
                source_api=p["source_api"],
                source_method=p["source_method"],
                sink_api=p["sink_api"],
                sink_method=p["sink_method"],
                sink_kind=p["sink_kind"],
                hops=tuple(p.get("hops", ())),
            )
            for p in doc.get("retained", ())
        ]
        result.libraries = [
            LibSpec(
                lib_id=s["lib_id"],
                name=s["name"],
                prefix=s["prefix"],
                category=s["category"],
            )
            for s in doc.get("libraries", ())
        ]
        return result

    def clone(self) -> StaticAnalysisResult:
        """A defensive copy handed out by the artifact cache (facts,
        paths, and specs are frozen; shallow list copies suffice)."""
        return StaticAnalysisResult(
            package=self.package,
            facts=list(self.facts),
            retained=list(self.retained),
            libraries=list(self.libraries),
            was_packed=self.was_packed,
        )


def _attributed_to_app(caller_class: str, package: str) -> bool:
    return caller_class.startswith(package)


def _permission_ok(apk: Apk, permission: str) -> bool:
    return not permission or apk.manifest.has_permission(permission)


def analyze_apk(
    apk: Apk,
    *,
    use_reachability: bool = True,
    use_uri_analysis: bool = True,
    auto_unpack: bool = True,
) -> StaticAnalysisResult:
    """Run the full static-analysis module over one APK.

    ``use_reachability`` and ``use_uri_analysis`` exist for the
    ablation benchmarks; the paper's configuration is both on.
    """
    if apk.packed and auto_unpack:
        unpack(apk)
        was_packed = True
    else:
        was_packed = False

    dex = apk.effective_dex()
    apg = build_apg(apk)
    reached = reachable_methods(apg) if use_reachability else None
    package = apk.package

    result = StaticAnalysisResult(package=package, was_packed=was_packed)
    result.libraries = detect_libraries(dex)

    # sensitive API invocations
    for method in dex.all_methods():
        for ins in method.invocations():
            info = SENSITIVE_APIS.get(ins.target)
            if info is None:
                continue
            permission = API_PERMISSIONS.get(ins.target, "")
            if not _permission_ok(apk, permission):
                continue
            reachable = (
                True if reached is None
                else method.signature in reached
            )
            result.facts.append(CollectionFact(
                info=info,
                evidence=ins.target,
                caller=method.signature,
                attributed_to_app=_attributed_to_app(
                    method.class_name, package
                ),
                reachable=reachable,
            ))

    # content-provider URI accesses
    if use_uri_analysis:
        for access in find_uri_accesses(dex):
            permission = permission_for_uri(access.uri) \
                if not access.via_field else ""
            if not access.via_field and not _permission_ok(apk, permission):
                continue
            caller_class = access.method.split("->", 1)[0]
            reachable = (
                True if reached is None else access.method in reached
            )
            result.facts.append(CollectionFact(
                info=access.info,
                evidence=access.uri,
                caller=access.method,
                attributed_to_app=_attributed_to_app(caller_class, package),
                reachable=reachable,
            ))

    # retention: taint paths (only from reachable sources, same gate)
    for path in find_taint_paths(dex):
        if reached is not None and path.source_method not in reached:
            continue
        result.retained.append(path)

    return result


__all__ = ["CollectionFact", "StaticAnalysisResult", "analyze_apk"]
