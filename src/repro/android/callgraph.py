"""Method call graph (MCG) construction.

Nodes are method signatures; a directed edge caller -> callee exists
for every ``invoke`` instruction.  Invocations of framework methods
(not present in the dex) become *external* nodes so sensitive-API call
sites stay visible in the graph.
"""

from __future__ import annotations

import networkx as nx

from repro.android.dex import DexFile, Method

EDGE_CALL = "call"


def build_call_graph(dex: DexFile) -> "nx.DiGraph":
    """The MCG as a networkx DiGraph.

    Node attributes: ``internal`` (bool), ``class_name``, ``method``.
    Edge attributes: ``kind`` = "call".
    """
    graph = nx.DiGraph()
    for method in dex.all_methods():
        _ensure_node(graph, method.signature, method)
        for ins in method.invocations():
            callee = ins.target
            if callee not in graph:
                resolved = dex.resolve(callee)
                _ensure_node(graph, callee, resolved)
            graph.add_edge(method.signature, callee, kind=EDGE_CALL)
    return graph


def _ensure_node(graph: "nx.DiGraph", signature: str,
                 method: Method | None) -> None:
    if signature in graph:
        if method is not None and not graph.nodes[signature]["internal"]:
            graph.nodes[signature].update(
                internal=True, class_name=method.class_name,
                method=method.name,
            )
        return
    if method is not None:
        graph.add_node(signature, internal=True,
                       class_name=method.class_name, method=method.name)
    else:
        class_name = signature.split("->", 1)[0]
        name = signature.split("->", 1)[1].split("(", 1)[0] \
            if "->" in signature else signature
        graph.add_node(signature, internal=False, class_name=class_name,
                       method=name)


def callers_of(graph: "nx.DiGraph", signature: str) -> list[str]:
    if signature not in graph:
        return []
    return sorted(graph.predecessors(signature))


def callees_of(graph: "nx.DiGraph", signature: str) -> list[str]:
    if signature not in graph:
        return []
    return sorted(graph.successors(signature))


__all__ = ["build_call_graph", "callers_of", "callees_of", "EDGE_CALL"]
