"""APK packing and DexHunter-style unpacking.

Commercial packers replace ``classes.dex`` with a loader stub and
decrypt the real bytecode only at runtime; DexHunter [34] dumps the
decrypted dex from memory.  We simulate the mechanism: ``pack()``
serializes the dex into an XOR-"encrypted" payload and substitutes a
stub, ``unpack()`` recovers the original so the static analyses can
run.  The encoding is deliberately trivial -- what matters is that a
packed APK exercises the unpack code path before analysis.
"""

from __future__ import annotations

import json

from repro.android.apk import Apk
from repro.android.dex import DexClass, DexFile, Instruction, Method

_XOR_KEY = b"dexhunter"

_STUB_CLASS = "com.packer.StubApplication"


def _serialize(dex: DexFile) -> bytes:
    doc = {
        cls.name: {
            "superclass": cls.superclass,
            "interfaces": list(cls.interfaces),
            "methods": {
                m.name: {
                    "params": list(m.params),
                    "returns": m.returns,
                    "instructions": [
                        {
                            "op": i.op,
                            "dest": i.dest,
                            "args": list(i.args),
                            "target": i.target,
                            "literal": i.literal,
                        }
                        for i in m.instructions
                    ],
                }
                for m in cls.methods.values()
            },
        }
        for cls in dex.classes.values()
    }
    return json.dumps(doc, sort_keys=True).encode("utf-8")


def _deserialize(blob: bytes) -> DexFile:
    doc = json.loads(blob.decode("utf-8"))
    dex = DexFile()
    for class_name, cdoc in doc.items():
        cls = DexClass(
            name=class_name,
            superclass=cdoc["superclass"],
            interfaces=tuple(cdoc["interfaces"]),
        )
        for method_name, mdoc in cdoc["methods"].items():
            method = Method(
                class_name=class_name,
                name=method_name,
                params=tuple(mdoc["params"]),
                returns=mdoc["returns"],
            )
            for idoc in mdoc["instructions"]:
                method.instructions.append(Instruction(
                    op=idoc["op"],
                    dest=idoc["dest"],
                    args=tuple(idoc["args"]),
                    target=idoc["target"],
                    literal=idoc["literal"],
                ))
            cls.add_method(method)
        dex.add_class(cls)
    return dex


def _xor(blob: bytes) -> bytes:
    key = _XOR_KEY
    return bytes(b ^ key[i % len(key)] for i, b in enumerate(blob))


def _stub_dex() -> DexFile:
    """The loader stub a packer leaves in classes.dex."""
    dex = DexFile()
    stub = DexClass(name=_STUB_CLASS, superclass="android.app.Application")
    method = Method(class_name=_STUB_CLASS, name="attachBaseContext",
                    params=("context",))
    method.instructions = [
        Instruction(op="const-string", dest="v0",
                    literal="assets/payload.enc"),
        Instruction(op="invoke", dest="v1",
                    target="com.packer.Loader->decrypt(path)",
                    args=("v0",)),
        Instruction(op="invoke",
                    target="dalvik.system.DexClassLoader-><init>(path)",
                    args=("v1",)),
        Instruction(op="return"),
    ]
    stub.add_method(method)
    dex.add_class(stub)
    return dex


def pack(apk: Apk) -> Apk:
    """Pack *apk* in place: hide the dex behind an encrypted payload."""
    if apk.packed:
        return apk
    apk.packed_payload = _xor(_serialize(apk.dex))
    apk.dex = _stub_dex()
    apk.packed = True
    return apk


def unpack(apk: Apk) -> Apk:
    """DexHunter: recover the real dex of a packed APK, in place."""
    if not apk.packed:
        return apk
    if apk.packed_payload is None:
        raise ValueError(f"{apk.package}: packed APK has no payload")
    apk.dex = _deserialize(_xor(apk.packed_payload))
    apk.packed = False
    apk.packed_payload = None
    return apk


def is_packer_stub(dex: DexFile) -> bool:
    """Heuristic DexHunter uses: a lone loader class touching
    DexClassLoader marks a packed app."""
    if len(dex.classes) > 3:
        return False
    for method in dex.all_methods():
        for ins in method.invocations():
            if "DexClassLoader" in ins.target:
                return True
    return False


__all__ = ["pack", "unpack", "is_packer_stub"]
