"""App entry points (Section III-C.2, reachability analysis).

The paper enumerates three entry families:

1. life-cycle callbacks of declared components
   (``Activity.onCreate()`` and friends),
2. major components' entry functions (a content provider's
   ``query()``/``insert()``/...),
3. UI-related callbacks (``onClick()`` etc.).
"""

from __future__ import annotations

from repro.android.apk import Apk
from repro.android.callbacks import CALLBACK_METHOD_NAMES

#: callback names that are NOT entry points by themselves: a Runnable's
#: ``run()`` or an AsyncTask's ``doInBackground()`` only executes when
#: something posts/executes it -- that edge is EdgeMiner's job
#: (repro.android.callbacks), not the entry-point enumeration's.
_REGISTRATION_ONLY_CALLBACKS = frozenset({"run", "doInBackground"})

UI_CALLBACK_NAMES: frozenset[str] = (
    CALLBACK_METHOD_NAMES - _REGISTRATION_ONLY_CALLBACKS
)

LIFECYCLE_METHODS: dict[str, tuple[str, ...]] = {
    "activity": ("onCreate", "onStart", "onResume", "onPause", "onStop",
                 "onDestroy", "onRestart", "onNewIntent",
                 "onActivityResult", "onSaveInstanceState"),
    "service": ("onCreate", "onStartCommand", "onBind", "onUnbind",
                "onDestroy", "onHandleIntent"),
    "receiver": ("onReceive",),
    "provider": ("onCreate", "query", "insert", "update", "delete",
                 "getType"),
}


def entry_points(apk: Apk) -> set[str]:
    """All entry-point method signatures of the app."""
    dex = apk.effective_dex()
    entries: set[str] = set()

    # component life-cycle + provider entry functions
    for component in apk.manifest.components:
        cls = dex.get_class(component.name)
        if cls is None:
            continue
        for name in LIFECYCLE_METHODS[component.kind]:
            method = cls.method(name)
            if method is not None:
                entries.add(method.signature)

    # UI callbacks anywhere in the app's code (run()/doInBackground()
    # excluded: those are only reachable through registration edges)
    for method in dex.all_methods():
        if method.name in UI_CALLBACK_NAMES:
            entries.add(method.signature)

    # the Application subclass, if declared as a component-like class
    for cls in dex.classes.values():
        if cls.superclass == "android.app.Application":
            for name in ("onCreate", "attachBaseContext"):
                method = cls.method(name)
                if method is not None:
                    entries.add(method.signature)
    return entries


__all__ = ["LIFECYCLE_METHODS", "UI_CALLBACK_NAMES", "entry_points"]
