"""JSON serialization of APKs and app bundles.

Lets the CLI and downstream users persist the analysis inputs: an app
bundle (package, manifest, dex, policy, description) round-trips
through a single JSON document.
"""

from __future__ import annotations

import json
from typing import Any

from repro.android.apk import Apk
from repro.android.dex import DexClass, DexFile, Instruction, Method
from repro.android.manifest import AndroidManifest, Component, IntentFilter
from repro.core.checker import AppBundle

FORMAT_VERSION = 1


def instruction_to_dict(ins: Instruction) -> dict[str, Any]:
    out: dict[str, Any] = {"op": ins.op}
    if ins.dest:
        out["dest"] = ins.dest
    if ins.args:
        out["args"] = list(ins.args)
    if ins.target:
        out["target"] = ins.target
    if ins.literal:
        out["literal"] = ins.literal
    return out


def instruction_from_dict(doc: dict[str, Any]) -> Instruction:
    return Instruction(
        op=doc["op"],
        dest=doc.get("dest", ""),
        args=tuple(doc.get("args", ())),
        target=doc.get("target", ""),
        literal=doc.get("literal", ""),
    )


def dex_to_dict(dex: DexFile) -> dict[str, Any]:
    return {
        cls.name: {
            "superclass": cls.superclass,
            "interfaces": list(cls.interfaces),
            "methods": {
                method.name: {
                    "params": list(method.params),
                    "returns": method.returns,
                    "instructions": [
                        instruction_to_dict(ins)
                        for ins in method.instructions
                    ],
                }
                for method in cls.methods.values()
            },
        }
        for cls in dex.classes.values()
    }


def dex_from_dict(doc: dict[str, Any]) -> DexFile:
    dex = DexFile()
    for class_name, cdoc in doc.items():
        cls = DexClass(
            name=class_name,
            superclass=cdoc.get("superclass", "java.lang.Object"),
            interfaces=tuple(cdoc.get("interfaces", ())),
        )
        for method_name, mdoc in cdoc.get("methods", {}).items():
            method = Method(
                class_name=class_name,
                name=method_name,
                params=tuple(mdoc.get("params", ())),
                returns=mdoc.get("returns", "void"),
            )
            method.instructions = [
                instruction_from_dict(idoc)
                for idoc in mdoc.get("instructions", ())
            ]
            cls.add_method(method)
        dex.add_class(cls)
    return dex


def manifest_to_dict(manifest: AndroidManifest) -> dict[str, Any]:
    return {
        "package": manifest.package,
        "permissions": sorted(manifest.permissions),
        "main_activity": manifest.main_activity,
        "min_sdk": manifest.min_sdk,
        "target_sdk": manifest.target_sdk,
        "components": [
            {
                "name": component.name,
                "kind": component.kind,
                "exported": component.exported,
                "authority": component.authority,
                "intent_filters": [
                    {"actions": list(f.actions),
                     "categories": list(f.categories)}
                    for f in component.intent_filters
                ],
            }
            for component in manifest.components
        ],
    }


def manifest_from_dict(doc: dict[str, Any]) -> AndroidManifest:
    manifest = AndroidManifest(
        package=doc["package"],
        permissions=set(doc.get("permissions", ())),
        main_activity=doc.get("main_activity", ""),
        min_sdk=doc.get("min_sdk", 9),
        target_sdk=doc.get("target_sdk", 22),
    )
    for cdoc in doc.get("components", ()):
        manifest.add_component(Component(
            name=cdoc["name"],
            kind=cdoc["kind"],
            exported=cdoc.get("exported", False),
            authority=cdoc.get("authority", ""),
            intent_filters=[
                IntentFilter(actions=tuple(f.get("actions", ())),
                             categories=tuple(f.get("categories", ())))
                for f in cdoc.get("intent_filters", ())
            ],
        ))
    return manifest


def apk_to_dict(apk: Apk) -> dict[str, Any]:
    if apk.packed:
        raise ValueError("unpack the APK before serializing")
    return {
        "version": FORMAT_VERSION,
        "manifest": manifest_to_dict(apk.manifest),
        "dex": dex_to_dict(apk.dex),
    }


def apk_from_dict(doc: dict[str, Any]) -> Apk:
    return Apk(
        manifest=manifest_from_dict(doc["manifest"]),
        dex=dex_from_dict(doc["dex"]),
    )


def bundle_to_dict(bundle: AppBundle) -> dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "package": bundle.package,
        "policy": bundle.policy,
        "policy_is_html": bundle.policy_is_html,
        "description": bundle.description,
        "apk": apk_to_dict(bundle.apk),
    }


def bundle_from_dict(doc: dict[str, Any]) -> AppBundle:
    return AppBundle(
        package=doc["package"],
        apk=apk_from_dict(doc["apk"]),
        policy=doc.get("policy", ""),
        description=doc.get("description", ""),
        policy_is_html=doc.get("policy_is_html", False),
    )


def save_bundle(bundle: AppBundle, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(bundle_to_dict(bundle), handle, indent=2,
                  sort_keys=True)


def load_bundle(path: str) -> AppBundle:
    with open(path, encoding="utf-8") as handle:
        return bundle_from_dict(json.load(handle))


__all__ = [
    "FORMAT_VERSION",
    "instruction_to_dict", "instruction_from_dict",
    "dex_to_dict", "dex_from_dict",
    "manifest_to_dict", "manifest_from_dict",
    "apk_to_dict", "apk_from_dict",
    "bundle_to_dict", "bundle_from_dict",
    "save_bundle", "load_bundle",
]
