"""Sensitive API / URI / sink database (Section III-C.2 and III-C.3).

The paper selects **68 sensitive APIs** covering device ID, IP address,
cookie, location, account, contact, calendar, telephone number,
camera, audio, and app list, plus **12 content-provider URI strings**
and **615 URI fields** from the PScout data set, and a sink list (log,
file, network, SMS, Bluetooth).

The API table below is hand-curated to the same 68-entry size and the
same information coverage.  The 615 URI fields are reproduced
programmatically: PScout's list is a per-provider enumeration of
``CONTENT_URI``-typed fields; we embed the well-known fields literally
and synthesize the remaining per-table sub-URIs deterministically so
the lookup surface (field -> permission -> information) behaves like
the original.
"""

from __future__ import annotations

from repro.semantics.resources import InfoType

# ---------------------------------------------------------------------------
# 68 sensitive APIs: signature -> information type
# ---------------------------------------------------------------------------

SENSITIVE_APIS: dict[str, InfoType] = {
    # location (12)
    "android.location.LocationManager->getLastKnownLocation(provider)": InfoType.LOCATION,
    "android.location.LocationManager->requestLocationUpdates(provider,minTime,minDistance,listener)": InfoType.LOCATION,
    "android.location.LocationManager->requestSingleUpdate(provider,listener,looper)": InfoType.LOCATION,
    "android.location.LocationManager->getBestProvider(criteria,enabledOnly)": InfoType.LOCATION,
    "android.location.LocationManager->addGpsStatusListener(listener)": InfoType.LOCATION,
    "android.location.Location->getLatitude()": InfoType.LOCATION,
    "android.location.Location->getLongitude()": InfoType.LOCATION,
    "android.location.Location->getAltitude()": InfoType.LOCATION,
    "android.location.Location->getAccuracy()": InfoType.LOCATION,
    "android.location.Location->getSpeed()": InfoType.LOCATION,
    "android.telephony.TelephonyManager->getCellLocation()": InfoType.LOCATION,
    "com.google.android.gms.location.FusedLocationProviderApi->getLastLocation(client)": InfoType.LOCATION,
    # device ID (10)
    "android.telephony.TelephonyManager->getDeviceId()": InfoType.DEVICE_ID,
    "android.telephony.TelephonyManager->getImei()": InfoType.DEVICE_ID,
    "android.telephony.TelephonyManager->getMeid()": InfoType.DEVICE_ID,
    "android.telephony.TelephonyManager->getSubscriberId()": InfoType.DEVICE_ID,
    "android.telephony.TelephonyManager->getSimSerialNumber()": InfoType.DEVICE_ID,
    "android.provider.Settings$Secure->getString(resolver,ANDROID_ID)": InfoType.DEVICE_ID,
    "android.os.Build->getSerial()": InfoType.DEVICE_ID,
    "android.net.wifi.WifiInfo->getMacAddress()": InfoType.DEVICE_ID,
    "android.bluetooth.BluetoothAdapter->getAddress()": InfoType.DEVICE_ID,
    "com.google.android.gms.ads.identifier.AdvertisingIdClient->getAdvertisingIdInfo(context)": InfoType.DEVICE_ID,
    # telephone number (4)
    "android.telephony.TelephonyManager->getLine1Number()": InfoType.PHONE_NUMBER,
    "android.telephony.TelephonyManager->getVoiceMailNumber()": InfoType.PHONE_NUMBER,
    "android.telephony.SmsMessage->getOriginatingAddress()": InfoType.PHONE_NUMBER,
    "android.provider.CallLog$Calls->getLastOutgoingCall(context)": InfoType.PHONE_NUMBER,
    # IP address (4)
    "android.net.wifi.WifiInfo->getIpAddress()": InfoType.IP_ADDRESS,
    "java.net.NetworkInterface->getInetAddresses()": InfoType.IP_ADDRESS,
    "java.net.InetAddress->getHostAddress()": InfoType.IP_ADDRESS,
    "android.net.ConnectivityManager->getActiveNetworkInfo()": InfoType.IP_ADDRESS,
    # cookie (4)
    "android.webkit.CookieManager->getCookie(url)": InfoType.COOKIE,
    "java.net.CookieStore->getCookies()": InfoType.COOKIE,
    "java.net.HttpCookie->getValue()": InfoType.COOKIE,
    "org.apache.http.client.CookieStore->getCookies()": InfoType.COOKIE,
    # account (5)
    "android.accounts.AccountManager->getAccounts()": InfoType.ACCOUNT,
    "android.accounts.AccountManager->getAccountsByType(type)": InfoType.ACCOUNT,
    "android.accounts.AccountManager->getAuthToken(account,authTokenType,options,activity,callback,handler)": InfoType.ACCOUNT,
    "android.accounts.AccountManager->getUserData(account,key)": InfoType.ACCOUNT,
    "android.accounts.AccountManager->getPassword(account)": InfoType.ACCOUNT,
    # contact (3; bulk contact access goes through URIs)
    "android.provider.ContactsContract$Contacts->getLookupUri(resolver,contentUri)": InfoType.CONTACT,
    "android.provider.ContactsContract$PhoneLookup->lookup(resolver,number)": InfoType.CONTACT,
    "android.app.Activity->managedQuery(uri,projection,selection,selectionArgs,sortOrder)": InfoType.CONTACT,
    # calendar (2; bulk calendar access goes through URIs)
    "android.provider.CalendarContract$Instances->query(resolver,projection,begin,end)": InfoType.CALENDAR,
    "android.provider.CalendarContract$Events->query(resolver)": InfoType.CALENDAR,
    # camera (6)
    "android.hardware.Camera->open()": InfoType.CAMERA,
    "android.hardware.Camera->open(cameraId)": InfoType.CAMERA,
    "android.hardware.Camera->takePicture(shutter,raw,jpeg)": InfoType.CAMERA,
    "android.hardware.camera2.CameraManager->openCamera(cameraId,callback,handler)": InfoType.CAMERA,
    "android.media.MediaRecorder->setVideoSource(source)": InfoType.CAMERA,
    "android.view.SurfaceView->getHolder()": InfoType.CAMERA,
    # audio (6)
    "android.media.MediaRecorder->setAudioSource(source)": InfoType.AUDIO,
    "android.media.MediaRecorder->start()": InfoType.AUDIO,
    "android.media.AudioRecord-><init>(audioSource,sampleRate,channelConfig,audioFormat,bufferSize)": InfoType.AUDIO,
    "android.media.AudioRecord->startRecording()": InfoType.AUDIO,
    "android.media.AudioRecord->read(audioData,offset,size)": InfoType.AUDIO,
    "android.speech.SpeechRecognizer->startListening(intent)": InfoType.AUDIO,
    # app list (6)
    "android.content.pm.PackageManager->getInstalledPackages(flags)": InfoType.APP_LIST,
    "android.content.pm.PackageManager->getInstalledApplications(flags)": InfoType.APP_LIST,
    "android.content.pm.PackageManager->queryIntentActivities(intent,flags)": InfoType.APP_LIST,
    "android.app.ActivityManager->getRunningAppProcesses()": InfoType.APP_LIST,
    "android.app.ActivityManager->getRunningTasks(maxNum)": InfoType.APP_LIST,
    "android.app.ActivityManager->getRecentTasks(maxNum,flags)": InfoType.APP_LIST,
    # SMS (4)
    "android.telephony.SmsMessage->getMessageBody()": InfoType.SMS,
    "android.telephony.SmsMessage->getDisplayMessageBody()": InfoType.SMS,
    "android.telephony.SmsMessage->createFromPdu(pdu)": InfoType.SMS,
    "android.telephony.gsm.SmsMessage->getMessageBody()": InfoType.SMS,
    # browser history (2)
    "android.webkit.WebBackForwardList->getItemAtIndex(index)": InfoType.BROWSER_HISTORY,
    "android.webkit.WebView->copyBackForwardList()": InfoType.BROWSER_HISTORY,
}

#: Permission an API call needs (Alg. 2's permission gate).
API_PERMISSIONS: dict[str, str] = {}
for _sig, _info in SENSITIVE_APIS.items():
    if _info is InfoType.LOCATION:
        API_PERMISSIONS[_sig] = "android.permission.ACCESS_FINE_LOCATION"
    elif _info in (InfoType.DEVICE_ID, InfoType.PHONE_NUMBER):
        API_PERMISSIONS[_sig] = "android.permission.READ_PHONE_STATE"
    elif _info is InfoType.ACCOUNT:
        API_PERMISSIONS[_sig] = "android.permission.GET_ACCOUNTS"
    elif _info is InfoType.CONTACT:
        API_PERMISSIONS[_sig] = "android.permission.READ_CONTACTS"
    elif _info is InfoType.CALENDAR:
        API_PERMISSIONS[_sig] = "android.permission.READ_CALENDAR"
    elif _info is InfoType.CAMERA:
        API_PERMISSIONS[_sig] = "android.permission.CAMERA"
    elif _info is InfoType.AUDIO:
        API_PERMISSIONS[_sig] = "android.permission.RECORD_AUDIO"
    elif _info is InfoType.SMS:
        API_PERMISSIONS[_sig] = "android.permission.READ_SMS"
    elif _info is InfoType.BROWSER_HISTORY:
        API_PERMISSIONS[_sig] = (
            "com.android.browser.permission.READ_HISTORY_BOOKMARKS"
        )
    # IP address, cookie, app list need no dangerous permission

# ---------------------------------------------------------------------------
# 12 content-provider URI strings
# ---------------------------------------------------------------------------

CONTENT_URIS: dict[str, InfoType] = {
    "content://com.android.calendar": InfoType.CALENDAR,
    "content://calendar": InfoType.CALENDAR,
    "content://contacts": InfoType.CONTACT,
    "content://com.android.contacts": InfoType.CONTACT,
    "content://icc/adn": InfoType.CONTACT,
    "content://sms": InfoType.SMS,
    "content://mms": InfoType.SMS,
    "content://call_log/calls": InfoType.PHONE_NUMBER,
    "content://browser/bookmarks": InfoType.BROWSER_HISTORY,
    "content://com.android.chrome.browser": InfoType.BROWSER_HISTORY,
    "content://settings/secure": InfoType.DEVICE_ID,
    "content://media/external/images": InfoType.CAMERA,
}

URI_PERMISSIONS: dict[str, str] = {
    "content://com.android.calendar": "android.permission.READ_CALENDAR",
    "content://calendar": "android.permission.READ_CALENDAR",
    "content://contacts": "android.permission.READ_CONTACTS",
    "content://com.android.contacts": "android.permission.READ_CONTACTS",
    "content://icc/adn": "android.permission.READ_CONTACTS",
    "content://sms": "android.permission.READ_SMS",
    "content://mms": "android.permission.READ_SMS",
    "content://call_log/calls": "android.permission.READ_CALL_LOG",
    "content://browser/bookmarks":
        "com.android.browser.permission.READ_HISTORY_BOOKMARKS",
    "content://com.android.chrome.browser":
        "com.android.browser.permission.READ_HISTORY_BOOKMARKS",
    "content://settings/secure": "",
    "content://media/external/images": "",
}

# ---------------------------------------------------------------------------
# 615 URI fields (PScout substitute)
# ---------------------------------------------------------------------------

#: (provider class, permission, info, number of per-table sub-fields)
_URI_FIELD_SPEC: tuple[tuple[str, str, InfoType, int], ...] = (
    ("android.provider.ContactsContract",
     "android.permission.READ_CONTACTS", InfoType.CONTACT, 170),
    ("android.provider.CalendarContract",
     "android.permission.READ_CALENDAR", InfoType.CALENDAR, 95),
    ("android.provider.Telephony",
     "android.permission.RECEIVE_SMS", InfoType.SMS, 120),
    ("android.provider.CallLog",
     "android.permission.READ_CALL_LOG", InfoType.PHONE_NUMBER, 40),
    ("android.provider.Browser",
     "com.android.browser.permission.READ_HISTORY_BOOKMARKS",
     InfoType.BROWSER_HISTORY, 45),
    ("android.provider.MediaStore",
     "android.permission.CAMERA", InfoType.CAMERA, 80),
    ("android.provider.Settings",
     "", InfoType.DEVICE_ID, 35),
    ("android.provider.UserDictionary",
     "android.permission.READ_USER_DICTIONARY", InfoType.PERSON_NAME, 15),
    ("android.provider.VoicemailContract",
     "com.android.voicemail.permission.READ_VOICEMAIL",
     InfoType.PHONE_NUMBER, 15),
)

_WELL_KNOWN_FIELDS: tuple[tuple[str, str, InfoType], ...] = (
    ("<android.provider.ContactsContract$CommonDataKinds$Phone: "
     "android.net.Uri CONTENT_URI>",
     "android.permission.READ_CONTACTS", InfoType.CONTACT),
    ("<android.provider.ContactsContract$Contacts: "
     "android.net.Uri CONTENT_URI>",
     "android.permission.READ_CONTACTS", InfoType.CONTACT),
    ("<android.provider.Telephony$Sms: android.net.Uri CONTENT_URI>",
     "android.permission.RECEIVE_SMS", InfoType.SMS),
    ("<android.provider.CalendarContract$Events: "
     "android.net.Uri CONTENT_URI>",
     "android.permission.READ_CALENDAR", InfoType.CALENDAR),
    ("<android.provider.CallLog$Calls: android.net.Uri CONTENT_URI>",
     "android.permission.READ_CALL_LOG", InfoType.PHONE_NUMBER),
)


def _build_uri_fields() -> dict[str, tuple[str, InfoType]]:
    fields: dict[str, tuple[str, InfoType]] = {}
    for name, permission, info in _WELL_KNOWN_FIELDS:
        fields[name] = (permission, info)
    for provider, permission, info, count in _URI_FIELD_SPEC:
        made = 0
        table = 1
        while made < count:
            name = (
                f"<{provider}$Table{table}: android.net.Uri CONTENT_URI>"
            )
            if name not in fields:
                fields[name] = (permission, info)
                made += 1
            table += 1
    # trim/extend to exactly 615 entries, matching PScout's count
    target = 615
    names = sorted(fields)
    if len(names) > target:
        for name in names[target:]:
            del fields[name]
    return fields


#: field literal -> (permission, info); exactly 615 entries.
URI_FIELDS: dict[str, tuple[str, InfoType]] = _build_uri_fields()

# ---------------------------------------------------------------------------
# Query functions and sinks
# ---------------------------------------------------------------------------

#: APIs that read a content provider given a URI argument.
QUERY_APIS: frozenset[str] = frozenset({
    "android.content.ContentResolver->query(uri,projection,selection,selectionArgs,sortOrder)",
    "android.content.ContentResolver->query(uri,projection,selection,selectionArgs,sortOrder,cancellationSignal)",
    "android.app.Activity->managedQuery(uri,projection,selection,selectionArgs,sortOrder)",
    "android.content.ContentProviderClient->query(uri,projection,selection,selectionArgs,sortOrder)",
})

#: android.net.Uri.parse -- the bridge from string constants to URIs.
URI_PARSE_API = "android.net.Uri->parse(uriString)"


class SinkKind:
    LOG = "log"
    FILE = "file"
    NETWORK = "network"
    SMS = "sms"
    BLUETOOTH = "bluetooth"


SINK_APIS: dict[str, str] = {
    # log
    "android.util.Log->d(tag,msg)": SinkKind.LOG,
    "android.util.Log->e(tag,msg)": SinkKind.LOG,
    "android.util.Log->i(tag,msg)": SinkKind.LOG,
    "android.util.Log->v(tag,msg)": SinkKind.LOG,
    "android.util.Log->w(tag,msg)": SinkKind.LOG,
    "android.util.Log->println(priority,tag,msg)": SinkKind.LOG,
    "java.io.PrintStream->println(msg)": SinkKind.LOG,
    # file
    "java.io.FileOutputStream->write(bytes)": SinkKind.FILE,
    "java.io.OutputStreamWriter->write(str)": SinkKind.FILE,
    "java.io.FileWriter->write(str)": SinkKind.FILE,
    "java.io.BufferedWriter->write(str)": SinkKind.FILE,
    "android.content.SharedPreferences$Editor->putString(key,value)": SinkKind.FILE,
    "android.database.sqlite.SQLiteDatabase->insert(table,nullColumnHack,values)": SinkKind.FILE,
    "android.database.sqlite.SQLiteDatabase->execSQL(sql)": SinkKind.FILE,
    # network
    "android.net.http.AndroidHttpClient->execute(request)": SinkKind.NETWORK,
    "org.apache.http.impl.client.DefaultHttpClient->execute(request)": SinkKind.NETWORK,
    "java.net.HttpURLConnection->getOutputStream()": SinkKind.NETWORK,
    "java.net.URLConnection->getOutputStream()": SinkKind.NETWORK,
    "java.net.Socket->getOutputStream()": SinkKind.NETWORK,
    "java.io.DataOutputStream->writeBytes(str)": SinkKind.NETWORK,
    "android.webkit.WebView->loadUrl(url)": SinkKind.NETWORK,
    # SMS
    "android.telephony.SmsManager->sendTextMessage(destinationAddress,scAddress,text,sentIntent,deliveryIntent)": SinkKind.SMS,
    "android.telephony.SmsManager->sendMultipartTextMessage(destinationAddress,scAddress,parts,sentIntents,deliveryIntents)": SinkKind.SMS,
    "android.telephony.gsm.SmsManager->sendTextMessage(destinationAddress,scAddress,text,sentIntent,deliveryIntent)": SinkKind.SMS,
    # bluetooth
    "android.bluetooth.BluetoothSocket->getOutputStream()": SinkKind.BLUETOOTH,
    "java.io.OutputStream->write(bytes)": SinkKind.BLUETOOTH,
}


def info_for_api(signature: str) -> InfoType | None:
    return SENSITIVE_APIS.get(signature)


def info_for_uri(uri: str) -> InfoType | None:
    """Longest-prefix match of a URI string against the 12-entry table."""
    best: tuple[int, InfoType] | None = None
    for known, info in CONTENT_URIS.items():
        if uri.startswith(known) and (best is None or len(known) > best[0]):
            best = (len(known), info)
    return best[1] if best else None


def permission_for_uri(uri: str) -> str:
    best_len = -1
    best = ""
    for known, permission in URI_PERMISSIONS.items():
        if uri.startswith(known) and len(known) > best_len:
            best_len = len(known)
            best = permission
    return best


def info_for_uri_field(field: str) -> InfoType | None:
    entry = URI_FIELDS.get(field)
    return entry[1] if entry else None


def is_sink(signature: str) -> bool:
    return signature in SINK_APIS


def is_source(signature: str) -> bool:
    return signature in SENSITIVE_APIS


__all__ = [
    "SENSITIVE_APIS",
    "API_PERMISSIONS",
    "CONTENT_URIS",
    "URI_PERMISSIONS",
    "URI_FIELDS",
    "QUERY_APIS",
    "URI_PARSE_API",
    "SinkKind",
    "SINK_APIS",
    "info_for_api",
    "info_for_uri",
    "permission_for_uri",
    "info_for_uri_field",
    "is_sink",
    "is_source",
]
