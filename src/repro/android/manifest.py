"""AndroidManifest.xml model.

Holds the pieces the analyses read: the package name (used for
app-vs-library attribution of sensitive API calls), requested
permissions (Alg. 2 only considers information whose permission the
app requests), and the declared components with their intent filters
(entry points and IccTA-style implicit intent resolution).
"""

from __future__ import annotations

from dataclasses import dataclass, field

COMPONENT_KINDS = ("activity", "service", "receiver", "provider")


@dataclass
class IntentFilter:
    actions: tuple[str, ...] = ()
    categories: tuple[str, ...] = ()

    def matches(self, action: str, category: str | None = None) -> bool:
        if action not in self.actions:
            return False
        if category is not None and category not in self.categories:
            return False
        return True


@dataclass
class Component:
    """A declared app component."""

    name: str          # class name
    kind: str          # activity | service | receiver | provider
    exported: bool = False
    intent_filters: list[IntentFilter] = field(default_factory=list)
    authority: str = ""  # providers only

    def __post_init__(self) -> None:
        if self.kind not in COMPONENT_KINDS:
            raise ValueError(f"unknown component kind: {self.kind!r}")


@dataclass
class AndroidManifest:
    """The manifest: package, permissions, components."""

    package: str
    permissions: set[str] = field(default_factory=set)
    components: list[Component] = field(default_factory=list)
    main_activity: str = ""
    min_sdk: int = 9
    target_sdk: int = 22

    def add_component(self, component: Component) -> Component:
        self.components.append(component)
        return component

    def components_of_kind(self, kind: str) -> list[Component]:
        return [c for c in self.components if c.kind == kind]

    def has_permission(self, permission: str) -> bool:
        return permission in self.permissions

    def component_by_name(self, name: str) -> Component | None:
        for component in self.components:
            if component.name == name:
                return component
        return None

    def resolve_implicit_intent(
        self, action: str, category: str | None = None
    ) -> list[Component]:
        """Components whose intent filters accept (action, category)."""
        return [
            c
            for c in self.components
            for f in c.intent_filters
            if f.matches(action, category)
        ]


__all__ = ["IntentFilter", "Component", "AndroidManifest", "COMPONENT_KINDS"]
