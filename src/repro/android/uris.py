"""Content-provider URI analysis (Section III-C.2, steps from [40]).

Finds the URIs flowing into content-provider query functions:

1. locate query call sites,
2. collect the statements on paths reaching each call site (here: a
   def-use walk over the caller, plus one level of interprocedural
   argument propagation),
3. record string constants ("content://...") and
   ``CONTENT_URI``-style field literals that reach the query's URI
   parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.android.api_db import (
    QUERY_APIS,
    URI_FIELDS,
    URI_PARSE_API,
    info_for_uri,
    info_for_uri_field,
)
from repro.android.dex import DexFile, Method
from repro.semantics.resources import InfoType


@dataclass(frozen=True)
class UriAccess:
    """One content-provider access: who queried which URI."""

    method: str      # caller signature
    uri: str         # URI string or field literal
    info: InfoType
    via_field: bool


def _uri_registers(method: Method) -> dict[str, str]:
    """register -> URI literal, via const-string / Uri.parse / iget."""
    uris: dict[str, str] = {}
    for ins in method.instructions:
        if ins.op == "const-string" and ins.dest:
            if ins.literal.startswith("content://"):
                uris[ins.dest] = ins.literal
        elif ins.op == "iget" and ins.dest:
            if ins.literal in URI_FIELDS:
                uris[ins.dest] = ins.literal
        elif ins.op == "invoke" and ins.target == URI_PARSE_API:
            if ins.dest and ins.args and ins.args[0] in uris:
                uris[ins.dest] = uris[ins.args[0]]
        elif ins.op == "move" and ins.args and ins.args[0] in uris:
            uris[ins.dest] = uris[ins.args[0]]
    return uris


def find_uri_accesses(dex: DexFile) -> list[UriAccess]:
    """All resolved content-provider accesses in the app."""
    accesses: list[UriAccess] = []
    # pass 1: local resolution + remember URI constants passed onward
    param_uris: dict[tuple[str, int], str] = {}
    for method in dex.all_methods():
        uris = _uri_registers(method)
        for ins in method.invocations():
            if ins.target in QUERY_APIS:
                for reg in ins.args:
                    literal = uris.get(reg)
                    if literal is not None:
                        accesses.append(_make_access(method, literal))
            else:
                callee = dex.resolve(ins.target)
                if callee is None:
                    continue
                for position, reg in enumerate(ins.args):
                    literal = uris.get(reg)
                    if literal is not None:
                        param_uris[(callee.signature, position)] = literal

    # pass 2: one level of interprocedural propagation
    for method in dex.all_methods():
        incoming = {
            method.params[pos]: literal
            for (sig, pos), literal in param_uris.items()
            if sig == method.signature and pos < len(method.params)
        }
        if not incoming:
            continue
        local = dict(incoming)
        for ins in method.instructions:
            if ins.op == "move" and ins.args and ins.args[0] in local:
                local[ins.dest] = local[ins.args[0]]
            elif ins.op == "invoke" and ins.target == URI_PARSE_API:
                if ins.dest and ins.args and ins.args[0] in local:
                    local[ins.dest] = local[ins.args[0]]
            elif ins.op == "invoke" and ins.target in QUERY_APIS:
                for reg in ins.args:
                    literal = local.get(reg)
                    if literal is not None:
                        accesses.append(_make_access(method, literal))
    # deduplicate, preserving order
    unique: list[UriAccess] = []
    seen: set[tuple[str, str]] = set()
    for access in accesses:
        if access is None:
            continue
        key = (access.method, access.uri)
        if key not in seen:
            seen.add(key)
            unique.append(access)
    return unique


def _make_access(method: Method, literal: str) -> UriAccess | None:
    if literal.startswith("content://"):
        info = info_for_uri(literal)
        if info is None:
            return None
        return UriAccess(method.signature, literal, info, via_field=False)
    info = info_for_uri_field(literal)
    if info is None:
        return None
    return UriAccess(method.signature, literal, info, via_field=True)


__all__ = ["UriAccess", "find_uri_accesses"]
