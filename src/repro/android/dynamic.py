"""Dynamic analysis: execute the app and verify the static results.

The paper's Discussion proposes verifying static findings dynamically:
"One potential approach is to conduct dynamic analysis for verifying
the result of static analysis."  This module implements that
extension as a concrete interpreter over the dex IR:

- every entry point is executed with a bounded call depth and step
  budget;
- sensitive API results and sensitive content-provider query results
  become *tainted* runtime values carrying their information type;
- taint propagates through moves, calls (arguments, returns), field
  stores/loads, and external calls (argument -> result);
- sink invocations record which tainted information reached them.

:func:`verify_static` then cross-checks the observation against the
static-analysis result: facts seen both ways are *confirmed*; facts
only the static analysis produced are *unconfirmed* (imprecision or
paths the concrete run did not take); facts only the dynamic run
produced would indicate a static-analysis miss.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.android.api_db import (
    QUERY_APIS,
    SENSITIVE_APIS,
    SINK_APIS,
    URI_PARSE_API,
    info_for_uri,
    info_for_uri_field,
    URI_FIELDS,
)
from repro.android.apk import Apk
from repro.android.entrypoints import entry_points
from repro.android.static_analysis import StaticAnalysisResult
from repro.semantics.resources import InfoType

_MAX_DEPTH = 16
_MAX_STEPS = 100_000


@dataclass(frozen=True)
class Value:
    """An abstract runtime value.

    ``infos`` carries the taint labels; ``uri`` a tracked URI
    literal; ``obj_class`` the dynamic type of an instantiated object
    (needed to dispatch registered callbacks like ``Runnable.run``).
    """

    infos: frozenset[InfoType] = frozenset()
    uri: str = ""
    obj_class: str = ""

    def tainted(self) -> bool:
        return bool(self.infos)

    def merge(self, other: "Value") -> "Value":
        return Value(infos=self.infos | other.infos,
                     uri=self.uri or other.uri,
                     obj_class=self.obj_class or other.obj_class)


_CLEAN = Value()


@dataclass(frozen=True)
class ApiCall:
    api: str
    caller: str
    info: InfoType


@dataclass(frozen=True)
class SinkWrite:
    sink: str
    caller: str
    kind: str
    infos: frozenset[InfoType]


@dataclass
class DynamicObservation:
    """Everything one concrete run observed."""

    api_calls: list[ApiCall] = field(default_factory=list)
    sink_writes: list[SinkWrite] = field(default_factory=list)
    executed_methods: set[str] = field(default_factory=set)
    steps: int = 0
    truncated: bool = False

    def collected_infos(self) -> set[InfoType]:
        return {call.info for call in self.api_calls}

    def retained_infos(self) -> set[InfoType]:
        return {
            info
            for write in self.sink_writes
            for info in write.infos
        }


class DynamicAnalyzer:
    """A bounded concrete interpreter over the dex IR."""

    def __init__(self, apk: Apk, max_depth: int = _MAX_DEPTH,
                 max_steps: int = _MAX_STEPS):
        self.apk = apk
        self.dex = apk.effective_dex()
        self.max_depth = max_depth
        self.max_steps = max_steps

    def run(self, rounds: int = 2) -> DynamicObservation:
        """Execute every entry point, *rounds* times over.

        Two rounds by default: values stored into fields by one entry
        point (e.g. ``onCreate``) become visible to entry points that
        sorted earlier (e.g. a UI callback), modelling repeated user
        interaction with the running app.
        """
        observation = DynamicObservation()
        fields: dict[str, Value] = {}
        entries = sorted(entry_points(self.apk))
        for _round in range(rounds):
            for entry in entries:
                method = self.dex.resolve(entry)
                if method is None:
                    continue
                args = [_CLEAN] * len(method.params)
                self._execute(method, args, 0, observation, fields)
        return observation

    # -- interpreter -------------------------------------------------------

    def _execute(self, method, args, depth, observation, fields) -> Value:
        if depth > self.max_depth:
            observation.truncated = True
            return _CLEAN
        observation.executed_methods.add(method.signature)
        registers: dict[str, Value] = dict(zip(method.params, args))

        def get(reg: str) -> Value:
            return registers.get(reg, _CLEAN)

        for ins in method.instructions:
            observation.steps += 1
            if observation.steps > self.max_steps:
                observation.truncated = True
                return _CLEAN
            if ins.op == "const-string":
                registers[ins.dest] = Value(uri=ins.literal)
            elif ins.op == "new-instance" and ins.dest:
                registers[ins.dest] = Value(obj_class=ins.literal)
            elif ins.op == "move" and ins.args:
                registers[ins.dest] = get(ins.args[0])
            elif ins.op == "iput" and ins.args:
                stored = fields.get(ins.literal, _CLEAN)
                fields[ins.literal] = stored.merge(get(ins.args[0]))
            elif ins.op == "iget":
                value = fields.get(ins.literal, _CLEAN)
                if ins.literal in URI_FIELDS:
                    value = Value(infos=value.infos, uri=ins.literal)
                registers[ins.dest] = value
            elif ins.op == "return":
                return get(ins.args[0]) if ins.args else _CLEAN
            elif ins.op == "invoke":
                result = self._invoke(method, ins, get, depth,
                                      observation, fields)
                if ins.dest:
                    registers[ins.dest] = result
        return _CLEAN

    def _invoke(self, method, ins, get, depth, observation,
                fields) -> Value:
        target = ins.target
        arg_values = [get(register) for register in ins.args]

        info = SENSITIVE_APIS.get(target)
        if info is not None:
            observation.api_calls.append(ApiCall(
                api=target, caller=method.signature, info=info,
            ))
            return Value(infos=frozenset({info}))

        if target == URI_PARSE_API:
            return arg_values[0] if arg_values else _CLEAN

        if target in QUERY_APIS:
            for value in arg_values:
                queried = None
                if value.uri.startswith("content://"):
                    queried = info_for_uri(value.uri)
                elif value.uri:
                    queried = info_for_uri_field(value.uri)
                if queried is not None:
                    observation.api_calls.append(ApiCall(
                        api=f"query({value.uri})",
                        caller=method.signature, info=queried,
                    ))
                    return Value(infos=frozenset({queried}))
            return _CLEAN

        kind = SINK_APIS.get(target)
        if kind is not None:
            tainted = frozenset(
                info
                for value in arg_values
                for info in value.infos
            )
            if tainted:
                observation.sink_writes.append(SinkWrite(
                    sink=target, caller=method.signature, kind=kind,
                    infos=tainted,
                ))
            return _CLEAN

        # registered callbacks fire immediately (a pessimistic but
        # sound event model: post()/setOnClickListener() deliver)
        from repro.android.callbacks import CALLBACK_REGISTRATIONS
        method_name = target.split("->", 1)[-1].split("(", 1)[0]
        callback_name = CALLBACK_REGISTRATIONS.get(method_name)
        if callback_name is not None:
            for value in arg_values:
                if not value.obj_class:
                    continue
                listener_class = self.dex.get_class(value.obj_class)
                if listener_class is None:
                    continue
                callback = listener_class.method(callback_name)
                if callback is None:
                    continue
                callback_args = [_CLEAN] * len(callback.params)
                self._execute(callback, callback_args, depth + 1,
                              observation, fields)
            return _CLEAN

        callee = self.dex.resolve(target)
        if callee is not None:
            return self._execute(callee, arg_values, depth + 1,
                                 observation, fields)

        # unknown external call: arguments taint the result
        merged = _CLEAN
        for value in arg_values:
            merged = merged.merge(value)
        return Value(infos=merged.infos)


# ---------------------------------------------------------------------------
# Static-vs-dynamic verification
# ---------------------------------------------------------------------------


@dataclass
class VerificationReport:
    """Cross-check of static findings against a concrete run."""

    confirmed_collected: set[InfoType] = field(default_factory=set)
    unconfirmed_collected: set[InfoType] = field(default_factory=set)
    missed_collected: set[InfoType] = field(default_factory=set)
    confirmed_retained: set[InfoType] = field(default_factory=set)
    unconfirmed_retained: set[InfoType] = field(default_factory=set)
    missed_retained: set[InfoType] = field(default_factory=set)

    @property
    def static_is_sound(self) -> bool:
        """Did the static analysis cover everything the run observed?"""
        return not self.missed_collected and not self.missed_retained


def verify_static(
    apk: Apk,
    static_result: StaticAnalysisResult,
    observation: DynamicObservation | None = None,
) -> VerificationReport:
    """Compare static Collect/Retain facts with a dynamic run."""
    if observation is None:
        observation = DynamicAnalyzer(apk).run()

    static_collected = (static_result.collected_infos()
                        | static_result.lib_collected_infos())
    dynamic_collected = observation.collected_infos()
    static_retained = static_result.retained_infos()
    dynamic_retained = observation.retained_infos()

    return VerificationReport(
        confirmed_collected=static_collected & dynamic_collected,
        unconfirmed_collected=static_collected - dynamic_collected,
        missed_collected=dynamic_collected - static_collected,
        confirmed_retained=static_retained & dynamic_retained,
        unconfirmed_retained=static_retained - dynamic_retained,
        missed_retained=dynamic_retained - static_retained,
    )


__all__ = [
    "Value",
    "ApiCall",
    "SinkWrite",
    "DynamicObservation",
    "DynamicAnalyzer",
    "VerificationReport",
    "verify_static",
]
