"""Implicit callback resolution (EdgeMiner substitute).

EdgeMiner [36] mines the Android framework for registration ->
callback pairs (e.g. ``setOnClickListener`` eventually invokes
``onClick`` on the registered listener).  We embed the pairs that
matter for app analysis and, when a registration invoke passes a
listener object whose class is known (via ``new-instance`` def-use in
the same method), add an implicit edge from the registering method to
the listener class's callback method.
"""

from __future__ import annotations

import networkx as nx

from repro.android.dex import DexFile, Method

#: registration method name -> callback method name on the listener.
CALLBACK_REGISTRATIONS: dict[str, str] = {
    "setOnClickListener": "onClick",
    "setOnLongClickListener": "onLongClick",
    "setOnChangeListener": "onClick",
    "setOnCheckedChangeListener": "onCheckedChanged",
    "setOnItemClickListener": "onItemClick",
    "setOnItemSelectedListener": "onItemSelected",
    "setOnTouchListener": "onTouch",
    "setOnKeyListener": "onKey",
    "setOnEditorActionListener": "onEditorAction",
    "setOnSeekBarChangeListener": "onProgressChanged",
    "requestLocationUpdates": "onLocationChanged",
    "registerListener": "onSensorChanged",
    "addTextChangedListener": "onTextChanged",
    "setOnPreparedListener": "onPrepared",
    "setOnCompletionListener": "onCompletion",
    "schedule": "run",
    "post": "run",
    "postDelayed": "run",
    "execute": "doInBackground",
}

EDGE_CALLBACK = "callback"

#: callback method names; these are also treated as UI entry points.
CALLBACK_METHOD_NAMES: frozenset[str] = frozenset(
    CALLBACK_REGISTRATIONS.values()
)


def _listener_classes(method: Method) -> dict[str, str]:
    """register -> class map from new-instance instructions."""
    classes: dict[str, str] = {}
    for ins in method.instructions:
        if ins.op == "new-instance" and ins.dest:
            classes[ins.dest] = ins.literal
        elif ins.op == "move" and ins.args and ins.args[0] in classes:
            classes[ins.dest] = classes[ins.args[0]]
    return classes


def add_callback_edges(graph: "nx.DiGraph", dex: DexFile) -> int:
    """Add implicit registration->callback edges to the call graph.

    Returns the number of edges added.
    """
    added = 0
    for method in dex.all_methods():
        listener_of = _listener_classes(method)
        for ins in method.invocations():
            target_name = ins.target.split("->", 1)[-1].split("(", 1)[0]
            callback = CALLBACK_REGISTRATIONS.get(target_name)
            if callback is None:
                continue
            # the listener is any argument register with a known class
            for reg in ins.args:
                listener_class = listener_of.get(reg)
                if listener_class is None:
                    continue
                cls = dex.get_class(listener_class)
                if cls is None or cls.method(callback) is None:
                    continue
                callback_sig = cls.method(callback).signature
                if callback_sig not in graph:
                    graph.add_node(callback_sig, internal=True,
                                   class_name=listener_class,
                                   method=callback)
                if not graph.has_edge(method.signature, callback_sig):
                    graph.add_edge(method.signature, callback_sig,
                                   kind=EDGE_CALLBACK)
                    added += 1
    return added


__all__ = [
    "CALLBACK_REGISTRATIONS",
    "CALLBACK_METHOD_NAMES",
    "EDGE_CALLBACK",
    "add_callback_edges",
]
