"""Static taint analysis: source-to-sink paths (FlowDroid substitute).

Sources are the sensitive APIs (and content-provider queries of
sensitive URIs); sinks write to log/file or send over
network/SMS/Bluetooth.  The analysis builds a data-flow graph whose
nodes are (method, register) pairs plus per-method RETURN nodes and
per-field global nodes, with edges for

- register moves,
- invoke argument -> callee parameter (internal calls),
- callee return -> caller result register,
- external call results (conservatively: arguments taint the result,
  modelling ``StringBuilder.append`` and friends),
- field stores/loads (``iput`` / ``iget``).

A sensitive invoke's result register seeds taint; any sink-argument
node reachable in the flow graph yields a
:class:`TaintPath`.  The analysis is flow-insensitive within a method
(instruction order is ignored), which is sound for the retention facts
PPChecker consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.android.api_db import QUERY_APIS, SENSITIVE_APIS, SINK_APIS
from repro.android.dex import DexFile
from repro.android.uris import find_uri_accesses
from repro.semantics.resources import InfoType


@dataclass(frozen=True)
class TaintPath:
    """An information-retention fact: source API -> ... -> sink API."""

    info: InfoType
    source_api: str
    source_method: str
    sink_api: str
    sink_method: str
    sink_kind: str
    hops: tuple[str, ...] = ()

    def describe(self) -> str:
        return (
            f"{self.info}: {self.source_api} ({self.source_method}) -> "
            f"{self.sink_api} ({self.sink_method}) [{self.sink_kind}]"
        )


def _reg(method_sig: str, register: str) -> tuple[str, str]:
    return (method_sig, register)


def _ret(method_sig: str) -> tuple[str, str]:
    return (method_sig, "<RET>")


def _field(literal: str) -> tuple[str, str]:
    return ("<FIELD>", literal)


def build_flow_graph(dex: DexFile) -> "nx.DiGraph":
    """The interprocedural data-flow graph over registers."""
    flow = nx.DiGraph()
    for method in dex.all_methods():
        sig = method.signature
        for ins in method.instructions:
            if ins.op == "move" and ins.args and ins.dest:
                flow.add_edge(_reg(sig, ins.args[0]), _reg(sig, ins.dest))
            elif ins.op == "return" and ins.args:
                flow.add_edge(_reg(sig, ins.args[0]), _ret(sig))
            elif ins.op == "iput" and ins.args:
                flow.add_edge(_reg(sig, ins.args[0]), _field(ins.literal))
            elif ins.op == "iget" and ins.dest:
                flow.add_edge(_field(ins.literal), _reg(sig, ins.dest))
            elif ins.op == "invoke":
                callee = dex.resolve(ins.target)
                if callee is not None:
                    for position, arg in enumerate(ins.args):
                        if position < len(callee.params):
                            flow.add_edge(
                                _reg(sig, arg),
                                _reg(callee.signature,
                                     callee.params[position]),
                            )
                    if ins.dest:
                        flow.add_edge(_ret(callee.signature),
                                      _reg(sig, ins.dest))
                elif ins.dest and ins.target not in SINK_APIS:
                    # external call: arguments conservatively taint the
                    # result (string building, formatting, boxing)
                    for arg in ins.args:
                        flow.add_edge(_reg(sig, arg), _reg(sig, ins.dest))
    return flow


def _source_seeds(dex: DexFile) -> dict[tuple[str, str], tuple[str, InfoType]]:
    """Flow-graph nodes seeded by sensitive API results."""
    seeds: dict[tuple[str, str], tuple[str, InfoType]] = {}
    for method in dex.all_methods():
        for ins in method.invocations():
            info = SENSITIVE_APIS.get(ins.target)
            if info is not None and ins.dest:
                seeds[_reg(method.signature, ins.dest)] = (ins.target, info)
    # content-provider queries of sensitive URIs are sources too
    uri_info = {
        (access.method, access.uri): access.info
        for access in find_uri_accesses(dex)
    }
    if uri_info:
        for method in dex.all_methods():
            local_uris = _local_uris(method)
            for ins in method.invocations():
                if ins.target in QUERY_APIS and ins.dest:
                    for reg in ins.args:
                        literal = local_uris.get(reg)
                        if literal is None:
                            continue
                        info = uri_info.get((method.signature, literal))
                        if info is not None:
                            seeds[_reg(method.signature, ins.dest)] = (
                                literal, info
                            )
    return seeds


def _local_uris(method) -> dict[str, str]:
    from repro.android.uris import _uri_registers
    return _uri_registers(method)


def _sink_args(dex: DexFile) -> list[tuple[tuple[str, str], str, str, str]]:
    """(flow node, sink api, sink method, kind) for each sink argument."""
    out = []
    for method in dex.all_methods():
        for ins in method.invocations():
            kind = SINK_APIS.get(ins.target)
            if kind is None:
                continue
            for arg in ins.args:
                out.append((
                    _reg(method.signature, arg), ins.target,
                    method.signature, kind,
                ))
    return out


def find_taint_paths(dex: DexFile) -> list[TaintPath]:
    """All source-to-sink retention facts in the app."""
    flow = build_flow_graph(dex)
    seeds = _source_seeds(dex)
    sinks = _sink_args(dex)
    if not seeds or not sinks:
        return []

    paths: list[TaintPath] = []
    seen: set[tuple] = set()
    for seed_node, (source_api, info) in seeds.items():
        if seed_node not in flow:
            reachable = {seed_node}
            parents: dict = {}
        else:
            parents = {}
            reachable = {seed_node}
            stack = [seed_node]
            while stack:
                node = stack.pop()
                for nxt in flow.successors(node):
                    if nxt not in reachable:
                        reachable.add(nxt)
                        parents[nxt] = node
                        stack.append(nxt)
        for node, sink_api, sink_method, kind in sinks:
            if node not in reachable:
                continue
            hops: list[str] = []
            cursor = node
            while cursor in parents:
                hops.append(f"{cursor[0]}::{cursor[1]}")
                cursor = parents[cursor]
            hops.append(f"{seed_node[0]}::{seed_node[1]}")
            key = (info, source_api, sink_api, sink_method)
            if key in seen:
                continue
            seen.add(key)
            paths.append(TaintPath(
                info=info,
                source_api=source_api,
                source_method=seed_node[0],
                sink_api=sink_api,
                sink_method=sink_method,
                sink_kind=kind,
                hops=tuple(reversed(hops)),
            ))
    return paths


__all__ = ["TaintPath", "build_flow_graph", "find_taint_paths"]
