"""Permission-usage analysis: over- and under-permission detection.

Related-work adjacent (Whyper [51] / AutoCog [41] study the
description-permission gap): this module contrasts the *manifest*
against the *code*:

- **over-permissioned**: the manifest requests a dangerous permission
  but no reachable code needs it (a privacy smell the screening
  report surfaces);
- **under-permissioned**: reachable code invokes an API whose
  permission the manifest lacks (such calls fail at runtime; the
  static-analysis module already excludes them from Collect_code --
  this view makes them visible for auditing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.android.api_db import (
    API_PERMISSIONS,
    SENSITIVE_APIS,
    permission_for_uri,
)
from repro.android.apk import Apk
from repro.android.apg import build_apg
from repro.android.reachability import reachable_methods
from repro.android.uris import find_uri_accesses

#: permissions whose presence matters for privacy auditing.
DANGEROUS_PERMISSIONS: frozenset[str] = frozenset({
    "android.permission.ACCESS_FINE_LOCATION",
    "android.permission.ACCESS_COARSE_LOCATION",
    "android.permission.READ_PHONE_STATE",
    "android.permission.READ_CONTACTS",
    "android.permission.WRITE_CONTACTS",
    "android.permission.GET_ACCOUNTS",
    "android.permission.READ_CALENDAR",
    "android.permission.WRITE_CALENDAR",
    "android.permission.CAMERA",
    "android.permission.RECORD_AUDIO",
    "android.permission.READ_SMS",
    "android.permission.RECEIVE_SMS",
    "android.permission.READ_CALL_LOG",
    "com.android.browser.permission.READ_HISTORY_BOOKMARKS",
})


@dataclass
class PermissionAudit:
    """The outcome of auditing one app's permission usage."""

    requested: set[str] = field(default_factory=set)
    used: set[str] = field(default_factory=set)

    @property
    def over_permissions(self) -> set[str]:
        """Requested dangerous permissions no reachable code uses."""
        return (self.requested & DANGEROUS_PERMISSIONS) - self.used

    @property
    def under_permissions(self) -> set[str]:
        """Permissions reachable code needs but the manifest lacks."""
        return self.used - self.requested


def _permissions_used(apk: Apk) -> set[str]:
    dex = apk.effective_dex()
    apg = build_apg(apk)
    reached = reachable_methods(apg)

    used: set[str] = set()
    for method in dex.all_methods():
        if method.signature not in reached:
            continue
        for ins in method.invocations():
            if ins.target in SENSITIVE_APIS:
                permission = API_PERMISSIONS.get(ins.target, "")
                if permission:
                    used.add(permission)
    for access in find_uri_accesses(dex):
        if access.method not in reached:
            continue
        if access.via_field:
            from repro.android.api_db import URI_FIELDS
            permission = URI_FIELDS[access.uri][0]
        else:
            permission = permission_for_uri(access.uri)
        if permission:
            used.add(permission)
    return used


def audit_permissions(apk: Apk) -> PermissionAudit:
    """Audit one app's requested-vs-used permissions."""
    return PermissionAudit(
        requested=set(apk.manifest.permissions),
        used=_permissions_used(apk),
    )


__all__ = ["DANGEROUS_PERMISSIONS", "PermissionAudit",
           "audit_permissions"]
