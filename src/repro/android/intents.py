"""Intent source/target resolution (IccTA substitute).

IccTA [35] connects inter-component control flow: an
``startActivity`` / ``startService`` / ``sendBroadcast`` call site is
linked to the lifecycle entry method of the target component.  We
resolve explicit intents through the class literal flowing into the
Intent constructor and implicit intents through the manifest's intent
filters.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.android.dex import DexFile, Method
from repro.android.manifest import AndroidManifest

EDGE_ICC = "icc"

_LAUNCH_METHODS: dict[str, str] = {
    "startActivity": "onCreate",
    "startActivityForResult": "onCreate",
    "startService": "onStartCommand",
    "bindService": "onBind",
    "sendBroadcast": "onReceive",
    "sendOrderedBroadcast": "onReceive",
}

_INTENT_INIT = "android.content.Intent-><init>"


@dataclass(frozen=True)
class IccLink:
    """A resolved inter-component edge."""

    source_method: str
    target_component: str
    target_method: str
    explicit: bool


def _intent_targets(method: Method) -> dict[str, tuple[str, bool]]:
    """register -> (component class or action, explicit?) map."""
    targets: dict[str, tuple[str, bool]] = {}
    last_string: dict[str, str] = {}
    for ins in method.instructions:
        if ins.op == "const-string" and ins.dest:
            last_string[ins.dest] = ins.literal
        elif ins.op == "invoke" and ins.target.startswith(_INTENT_INIT):
            if ins.dest:
                # explicit: class literal; implicit: action string
                if ins.literal:
                    targets[ins.dest] = (ins.literal, True)
                elif ins.args:
                    action = last_string.get(ins.args[-1], "")
                    if action:
                        targets[ins.dest] = (action, False)
        elif ins.op == "move" and ins.args and ins.args[0] in targets:
            targets[ins.dest] = targets[ins.args[0]]
    return targets


def resolve_icc_links(dex: DexFile,
                      manifest: AndroidManifest) -> list[IccLink]:
    """All inter-component links in the app."""
    links: list[IccLink] = []
    for method in dex.all_methods():
        intents = _intent_targets(method)
        for ins in method.invocations():
            name = ins.target.split("->", 1)[-1].split("(", 1)[0]
            entry = _LAUNCH_METHODS.get(name)
            if entry is None:
                continue
            for reg in ins.args:
                resolved = intents.get(reg)
                if resolved is None:
                    continue
                target, explicit = resolved
                if explicit:
                    components = [manifest.component_by_name(target)]
                else:
                    components = manifest.resolve_implicit_intent(target)
                for component in components:
                    if component is None:
                        continue
                    links.append(IccLink(
                        source_method=method.signature,
                        target_component=component.name,
                        target_method=entry,
                        explicit=explicit,
                    ))
    return links


def add_icc_edges(graph: "nx.DiGraph", dex: DexFile,
                  manifest: AndroidManifest) -> int:
    """Add ICC edges source method -> target lifecycle method."""
    added = 0
    for link in resolve_icc_links(dex, manifest):
        cls = dex.get_class(link.target_component)
        if cls is None:
            continue
        target = cls.method(link.target_method)
        if target is None:
            continue
        if target.signature not in graph:
            graph.add_node(target.signature, internal=True,
                           class_name=cls.name,
                           method=link.target_method)
        if not graph.has_edge(link.source_method, target.signature):
            graph.add_edge(link.source_method, target.signature,
                           kind=EDGE_ICC)
            added += 1
    return added


__all__ = ["IccLink", "resolve_icc_links", "add_icc_edges", "EDGE_ICC"]
