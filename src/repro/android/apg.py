"""The Android property graph (ValHunter substitute).

ValHunter [33] stores an APG -- AST, interprocedural CFG, method call
graph, and system dependency graph -- in a graph database and answers
analyses as queries.  Our APG is a networkx DiGraph combining

- call edges (MCG),
- implicit callback edges (EdgeMiner),
- inter-component edges (IccTA),

plus per-method instruction access.  Reachability, URI analysis and
taint analysis all query this object, mirroring the paper's
"store the graph, then query it" architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.android.apk import Apk
from repro.android.callbacks import add_callback_edges
from repro.android.callgraph import build_call_graph
from repro.android.dex import DexFile, Method
from repro.android.intents import add_icc_edges


@dataclass
class AndroidPropertyGraph:
    """The queryable program representation of one app."""

    apk: Apk
    graph: "nx.DiGraph" = field(default_factory=nx.DiGraph)
    callback_edges: int = 0
    icc_edges: int = 0

    @property
    def dex(self) -> DexFile:
        return self.apk.effective_dex()

    # -- queries ------------------------------------------------------------

    def method(self, signature: str) -> Method | None:
        return self.dex.resolve(signature)

    def methods_calling(self, callee: str) -> list[str]:
        if callee not in self.graph:
            return []
        return sorted(self.graph.predecessors(callee))

    def call_sites_of(self, callee: str) -> list[tuple[Method, int]]:
        """(caller method, instruction index) pairs invoking *callee*."""
        sites: list[tuple[Method, int]] = []
        for caller_sig in self.methods_calling(callee):
            caller = self.method(caller_sig)
            if caller is None:
                continue
            for idx, ins in enumerate(caller.instructions):
                if ins.is_invoke() and ins.target == callee:
                    sites.append((caller, idx))
        return sites

    def external_invocations(self) -> dict[str, list[str]]:
        """external target -> caller signatures."""
        result: dict[str, list[str]] = {}
        for node, data in self.graph.nodes(data=True):
            if data.get("internal"):
                continue
            result[node] = sorted(self.graph.predecessors(node))
        return result

    def reachable_from(self, sources: set[str]) -> set[str]:
        """All graph nodes reachable from *sources* (inclusive)."""
        seen: set[str] = set()
        frontier = [s for s in sources if s in self.graph]
        seen.update(frontier)
        while frontier:
            node = frontier.pop()
            for nxt in self.graph.successors(node):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen


def build_apg(apk: Apk) -> AndroidPropertyGraph:
    """Construct the APG: MCG + callback edges + ICC edges."""
    dex = apk.effective_dex()
    graph = build_call_graph(dex)
    apg = AndroidPropertyGraph(apk=apk, graph=graph)
    apg.callback_edges = add_callback_edges(graph, dex)
    apg.icc_edges = add_icc_edges(graph, dex, apk.manifest)
    return apg


__all__ = ["AndroidPropertyGraph", "build_apg"]
