"""The APK container: manifest + dex, possibly packed.

A packed APK carries a stub dex (the packer's loader) and hides the
real bytecode in an encrypted payload; :mod:`repro.android.packer`
recovers it the way DexHunter does before analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.android.dex import DexFile
from repro.android.manifest import AndroidManifest


@dataclass
class Apk:
    """An Android application package."""

    manifest: AndroidManifest
    dex: DexFile = field(default_factory=DexFile)
    packed: bool = False
    packed_payload: bytes | None = None

    @property
    def package(self) -> str:
        return self.manifest.package

    def effective_dex(self) -> DexFile:
        """The dex to analyze; packed APKs must be unpacked first."""
        if self.packed:
            raise PackedApkError(
                f"{self.package}: APK is packed; run "
                "repro.android.packer.unpack() first"
            )
        return self.dex


class PackedApkError(RuntimeError):
    """Raised when analysis is attempted on a still-packed APK."""


__all__ = ["Apk", "PackedApkError"]
