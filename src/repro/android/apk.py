"""The APK container: manifest + dex, possibly packed.

A packed APK carries a stub dex (the packer's loader) and hides the
real bytecode in an encrypted payload; :mod:`repro.android.packer`
recovers it the way DexHunter does before analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.android.dex import DexFile
from repro.android.manifest import AndroidManifest


@dataclass
class Apk:
    """An Android application package."""

    manifest: AndroidManifest
    dex: DexFile = field(default_factory=DexFile)
    packed: bool = False
    packed_payload: bytes | None = None

    @property
    def package(self) -> str:
        return self.manifest.package

    def effective_dex(self) -> DexFile:
        """The dex to analyze; packed APKs must be unpacked first."""
        if self.packed:
            raise PackedApkError(
                f"{self.package}: APK is packed; run "
                "repro.android.packer.unpack() first"
            )
        return self.dex

    def content_digest(self) -> str:
        """SHA-256 of the APK's canonical content (the pipeline's
        "APK bytes"): manifest + dex, or manifest + encrypted payload
        for a still-packed APK.  Identical APKs share a digest across
        processes, which is what makes static-analysis artifacts
        content-addressable."""
        from repro.android.serialization import (  # runtime: avoids cycle
            dex_to_dict,
            manifest_to_dict,
        )
        from repro.hashing import fingerprint

        doc: dict[str, object] = {
            "manifest": manifest_to_dict(self.manifest),
            "dex": dex_to_dict(self.dex),
            "packed": self.packed,
        }
        if self.packed_payload is not None:
            doc["payload"] = self.packed_payload.hex()
        return fingerprint(doc)


class PackedApkError(RuntimeError):
    """Raised when analysis is attempted on a still-packed APK."""


__all__ = ["Apk", "PackedApkError"]
