"""Entry-point reachability analysis (Section III-C.2).

The paper discards sensitive API invocations with no feasible path
from any entry point (dead third-party code, unreferenced classes):
"We do not consider those sensitive APIs to which there are not
feasible paths from entry points."
"""

from __future__ import annotations

from repro.android.apg import AndroidPropertyGraph
from repro.android.entrypoints import entry_points


def reachable_methods(apg: AndroidPropertyGraph) -> set[str]:
    """All method signatures reachable from the app's entry points."""
    return apg.reachable_from(entry_points(apg.apk))


def is_reachable(apg: AndroidPropertyGraph, signature: str,
                 cache: set[str] | None = None) -> bool:
    """Is *signature* reachable from an entry point?"""
    reached = cache if cache is not None else reachable_methods(apg)
    return signature in reached


def reachable_call_sites(
    apg: AndroidPropertyGraph,
    callee: str,
    cache: set[str] | None = None,
) -> list[str]:
    """Caller signatures of *callee* that are themselves reachable."""
    reached = cache if cache is not None else reachable_methods(apg)
    return [
        caller
        for caller in apg.methods_calling(callee)
        if caller in reached
    ]


__all__ = ["reachable_methods", "is_reachable", "reachable_call_sites"]
