"""Identifier obfuscation (ProGuard-style) and its analysis impact.

Production apps ship name-obfuscated: app classes become ``a.a.b``.
Two of PPChecker's heuristics depend on names --

- app-vs-lib attribution compares the caller's class prefix against
  the manifest package, and
- lib detection matches class-name prefixes --

so obfuscation degrades them in characteristic ways.  This module
implements the transformation so the limitation can be measured (see
the obfuscation ablation) rather than just stated:

- ``obfuscate()`` renames classes under the given prefixes to short
  meaningless names, consistently rewriting invoke targets,
  new-instance literals, and intent targets;
- framework classes (android.*, java.*, com.google.android.gms.*)
  keep their names, exactly as ProGuard keep-rules do, so sensitive
  API *calls* remain visible.
"""

from __future__ import annotations

import itertools
import string
from dataclasses import dataclass, field

from repro.android.apk import Apk
from repro.android.dex import DexClass, DexFile, Instruction, Method
from repro.android.manifest import Component

_KEEP_PREFIXES = ("android.", "java.", "javax.", "dalvik.",
                  "org.apache.", "com.google.android.gms.")


def _short_names():
    alphabet = string.ascii_lowercase
    for length in itertools.count(1):
        for combo in itertools.product(alphabet, repeat=length):
            yield "".join(combo)


@dataclass
class ObfuscationMap:
    """class-name renaming produced by one obfuscation run."""

    renames: dict[str, str] = field(default_factory=dict)

    def resolve(self, class_name: str) -> str:
        return self.renames.get(class_name, class_name)

    def resolve_signature(self, signature: str) -> str:
        if "->" not in signature:
            return signature
        class_name, rest = signature.split("->", 1)
        return f"{self.resolve(class_name)}->{rest}"


def _should_rename(class_name: str, keep_libs: bool) -> bool:
    if any(class_name.startswith(p) for p in _KEEP_PREFIXES):
        return False
    if keep_libs:
        from repro.android.libs import LIB_REGISTRY
        for spec in LIB_REGISTRY.values():
            if class_name.startswith(spec.prefix):
                return False
    return True


def obfuscate(apk: Apk, keep_libs: bool = False) -> ObfuscationMap:
    """Obfuscate *apk* in place; returns the renaming map.

    ``keep_libs=True`` models apps that exclude SDKs from obfuscation
    (common, since many SDKs require keep-rules); ``False`` models
    full obfuscation, under which prefix-based lib detection fails.
    """
    dex = apk.effective_dex()
    mapping = ObfuscationMap()
    names = _short_names()
    for class_name in dex.class_names():
        if _should_rename(class_name, keep_libs):
            mapping.renames[class_name] = f"o.{next(names)}"

    new_dex = DexFile()
    for cls in dex.classes.values():
        new_name = mapping.resolve(cls.name)
        new_cls = DexClass(
            name=new_name,
            superclass=mapping.resolve(cls.superclass),
            interfaces=tuple(mapping.resolve(i) for i in cls.interfaces),
        )
        for method in cls.methods.values():
            new_method = Method(
                class_name=new_name,
                name=method.name,
                params=method.params,
                returns=method.returns,
            )
            for ins in method.instructions:
                new_method.instructions.append(Instruction(
                    op=ins.op,
                    dest=ins.dest,
                    args=ins.args,
                    target=mapping.resolve_signature(ins.target),
                    literal=mapping.resolve(ins.literal)
                    if ins.literal in mapping.renames else ins.literal,
                ))
            new_cls.add_method(new_method)
        new_dex.add_class(new_cls)
    apk.dex = new_dex

    for component in apk.manifest.components:
        renamed = mapping.resolve(component.name)
        if renamed != component.name:
            index = apk.manifest.components.index(component)
            apk.manifest.components[index] = Component(
                name=renamed,
                kind=component.kind,
                exported=component.exported,
                intent_filters=component.intent_filters,
                authority=component.authority,
            )
    return mapping


__all__ = ["ObfuscationMap", "obfuscate"]
