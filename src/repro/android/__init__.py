"""Android app substrate and static-analysis module (Section III-C).

The paper analyzes real APKs with a toolchain of ValHunter (Android
property graph over a graph database), DexHunter (unpacking), IccTA
(intent resolution), EdgeMiner (implicit callbacks), and FlowDroid
(taint paths).  Offline we model the APK itself -- a manifest plus a
dex-like register-based bytecode IR -- and implement each analysis
against that model:

- :mod:`repro.android.dex`          bytecode IR (classes, methods,
  instructions)
- :mod:`repro.android.manifest`     AndroidManifest model
- :mod:`repro.android.apk`          the APK container
- :mod:`repro.android.packer`       packing / DexHunter-style unpacking
- :mod:`repro.android.api_db`       sensitive APIs, content-provider
  URIs, URI fields (PScout), sink APIs
- :mod:`repro.android.callgraph`    method call graph
- :mod:`repro.android.callbacks`    implicit callback edges (EdgeMiner)
- :mod:`repro.android.intents`      intent source/target resolution (IccTA)
- :mod:`repro.android.apg`          the Android property graph
- :mod:`repro.android.entrypoints`  lifecycle / component / UI entries
- :mod:`repro.android.reachability` entry-point reachability
- :mod:`repro.android.uris`         content-provider URI constant analysis
- :mod:`repro.android.taint`        source-to-sink taint paths (FlowDroid)
- :mod:`repro.android.libs`         third-party library detection
- :mod:`repro.android.static_analysis`  the module facade producing
  Collect_code and Retain_code
"""

from repro.android.dex import DexClass, DexFile, Instruction, Method
from repro.android.manifest import AndroidManifest, Component
from repro.android.apk import Apk
from repro.android.static_analysis import (
    StaticAnalysisResult,
    analyze_apk,
)

__all__ = [
    "DexClass",
    "DexFile",
    "Instruction",
    "Method",
    "AndroidManifest",
    "Component",
    "Apk",
    "StaticAnalysisResult",
    "analyze_apk",
]
