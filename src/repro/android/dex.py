"""A dex-like register-based bytecode IR.

The IR keeps exactly the structure the paper's static analyses need:
invocations (for the call graph, sensitive-API detection, sinks),
string constants (for content-provider URI analysis), register moves
and returns (for def-use chains feeding taint analysis), and branches
(for the intraprocedural CFG).

Instruction set:

=================  ====================================================
op                 semantics
=================  ====================================================
``const-string``   dest := literal
``invoke``         call *target* with ``args`` registers; ``dest``
                   receives the result when non-empty (fused
                   move-result)
``move``           dest := args[0]
``new-instance``   dest := new object of class ``literal``
``iput`` /         store/load a field: ``literal`` names the field,
``iget``           args[0]/dest the registers
``return``         return args[0] (or void with no args)
``if`` / ``goto``  control flow to ``literal`` label
``label``          branch target marker
``nop``            padding
=================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Instruction:
    """One IR instruction."""

    op: str
    dest: str = ""
    args: tuple[str, ...] = ()
    target: str = ""   # invoked method signature for "invoke"
    literal: str = ""  # string constant / class / field / label

    def is_invoke(self) -> bool:
        return self.op == "invoke"


@dataclass
class Method:
    """A method body: parameters plus a linear instruction list."""

    class_name: str
    name: str
    params: tuple[str, ...] = ()
    instructions: list[Instruction] = field(default_factory=list)
    returns: str = "void"

    @property
    def signature(self) -> str:
        return f"{self.class_name}->{self.name}({','.join(self.params)})"

    def invocations(self) -> list[Instruction]:
        return [ins for ins in self.instructions if ins.is_invoke()]

    def string_constants(self) -> list[str]:
        return [
            ins.literal
            for ins in self.instructions
            if ins.op == "const-string"
        ]


@dataclass
class DexClass:
    """A class: named methods, superclass, interfaces."""

    name: str
    superclass: str = "java.lang.Object"
    interfaces: tuple[str, ...] = ()
    methods: dict[str, Method] = field(default_factory=dict)

    def add_method(self, method: Method) -> Method:
        self.methods[method.name] = method
        return method

    def method(self, name: str) -> Method | None:
        return self.methods.get(name)


@dataclass
class DexFile:
    """The classes.dex contents: a class dictionary."""

    classes: dict[str, DexClass] = field(default_factory=dict)

    def add_class(self, cls: DexClass) -> DexClass:
        self.classes[cls.name] = cls
        return cls

    def get_class(self, name: str) -> DexClass | None:
        return self.classes.get(name)

    def all_methods(self) -> list[Method]:
        return [
            method
            for cls in self.classes.values()
            for method in cls.methods.values()
        ]

    def resolve(self, signature: str) -> Method | None:
        """Resolve an invoke target signature to a method body."""
        if "->" not in signature:
            return None
        class_name, rest = signature.split("->", 1)
        method_name = rest.split("(", 1)[0]
        cls = self.classes.get(class_name)
        if cls is None:
            return None
        return cls.method(method_name)

    def class_names(self) -> list[str]:
        return sorted(self.classes)


def make_signature(class_name: str, method_name: str,
                   params: tuple[str, ...] = ()) -> str:
    """Canonical signature format used across the analyses."""
    return f"{class_name}->{method_name}({','.join(params)})"


__all__ = ["Instruction", "Method", "DexClass", "DexFile", "make_signature"]
