"""PPChecker reproduction.

A from-scratch Python reproduction of *"Can We Trust the Privacy
Policies of Android Apps?"* (Yu, Luo, Liu, Zhang -- DSN 2016):
automatic detection of incomplete, incorrect, and inconsistent Android
privacy policies, together with every substrate the paper depends on
(an English NLP pipeline, ESA semantic similarity, an Android
app/bytecode model with static analyses, AutoCog-style description
analysis, and a synthetic 1,197-app evaluation corpus).

Quickstart::

    from repro import PPChecker, AppBundle

    checker = PPChecker(lib_policy_source=my_lib_policies)
    report = checker.check(AppBundle(
        package="com.example.app",
        apk=apk, policy=policy_html, description=description,
        policy_is_html=True,
    ))
    print(report.summary())

Reproducing the paper's study::

    from repro.corpus import generate_app_store
    from repro.core.study import run_study

    store = generate_app_store()          # 1,197 synthetic apps
    result = run_study(store)
    print(result.summary())               # 282 apps, 23.6%, ...
"""

from repro.core.checker import AppBundle, PPChecker
from repro.pipeline import Pipeline, build_store
from repro.core.report import (
    AppFailure,
    AppReport,
    IncompleteFinding,
    InconsistentFinding,
    IncorrectFinding,
)
from repro.policy.analyzer import PolicyAnalyzer, analyze_policy
from repro.policy.model import PolicyAnalysis, Statement
from repro.policy.verbs import VerbCategory
from repro.semantics.resources import InfoType
from repro.android.apk import Apk
from repro.android.manifest import AndroidManifest, Component
from repro.android.static_analysis import analyze_apk

__version__ = "1.0.0"

__all__ = [
    "AppBundle",
    "PPChecker",
    "Pipeline",
    "build_store",
    "AppFailure",
    "AppReport",
    "IncompleteFinding",
    "IncorrectFinding",
    "InconsistentFinding",
    "PolicyAnalyzer",
    "analyze_policy",
    "PolicyAnalysis",
    "Statement",
    "VerbCategory",
    "InfoType",
    "Apk",
    "AndroidManifest",
    "Component",
    "analyze_apk",
    "__version__",
]
