"""Word tokenization and lemmatization.

The tokenizer is deliberately simple and deterministic: privacy policies
are edited prose, not tweets.  It handles contractions ("don't" ->
"do" + "n't"), possessives ("user's" -> "user" + "'s"), hyphenated
compounds (kept whole: "third-party"), URLs and e-mail addresses (kept
whole), and trailing/leading punctuation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

# ---------------------------------------------------------------------------
# Token
# ---------------------------------------------------------------------------


@dataclass
class Token:
    """A single token of a sentence.

    Attributes:
        index: 0-based position within the sentence.
        text:  surface form as it appeared (case preserved).
        lemma: lower-cased dictionary form.
        pos:   Penn-Treebank part-of-speech tag ("" until tagged).
    """

    index: int
    text: str
    lemma: str = ""
    pos: str = ""

    @property
    def lower(self) -> str:
        return self.text.lower()

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.text}/{self.pos or '?'}"


# ---------------------------------------------------------------------------
# Tokenization
# ---------------------------------------------------------------------------

_URL_RE = re.compile(r"""(?:https?://|www\.)[^\s<>"']+""", re.IGNORECASE)
_EMAIL_RE = re.compile(r"[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}")
_NUMBER_RE = re.compile(r"\d+(?:[,.]\d+)+")
# Word: letters/digits with internal hyphens, dots (e.g. package names) or
# slashes are split, but "e-mail"-style hyphenations are kept whole.
_WORD_RE = re.compile(r"[A-Za-z0-9]+(?:[-'][A-Za-z0-9]+)*")

_CONTRACTIONS = {
    "n't": ("n't",),
    "'ll": ("'ll",),
    "'re": ("'re",),
    "'ve": ("'ve",),
    "'d": ("'d",),
    "'m": ("'m",),
    "'s": ("'s",),
}

# Irregular contraction expansions handled as whole words.
_SPECIAL_CONTRACTIONS = {
    "can't": ["can", "n't"],
    "won't": ["will", "n't"],
    "shan't": ["shall", "n't"],
    "cannot": ["can", "not"],
    "don't": ["do", "n't"],
    "doesn't": ["does", "n't"],
    "didn't": ["did", "n't"],
    "isn't": ["is", "n't"],
    "aren't": ["are", "n't"],
    "wasn't": ["was", "n't"],
    "weren't": ["were", "n't"],
    "hasn't": ["has", "n't"],
    "haven't": ["have", "n't"],
    "hadn't": ["had", "n't"],
    "shouldn't": ["should", "n't"],
    "wouldn't": ["would", "n't"],
    "couldn't": ["could", "n't"],
    "mustn't": ["must", "n't"],
}


def _split_word(word: str) -> list[str]:
    """Split a raw word into tokens, peeling contractions."""
    low = word.lower()
    if low in _SPECIAL_CONTRACTIONS:
        parts = _SPECIAL_CONTRACTIONS[low]
        # Preserve original capitalisation of the first piece.
        if word[0].isupper():
            return [parts[0].capitalize()] + list(parts[1:])
        return list(parts)
    for suffix in ("n't", "'ll", "'re", "'ve", "'d", "'m", "'s"):
        if low.endswith(suffix) and len(word) > len(suffix):
            return [word[: -len(suffix)], word[-len(suffix):]]
    return [word]


def tokenize(sentence: str) -> list[Token]:
    """Tokenize one sentence into :class:`Token` objects (lemmas filled)."""
    raw: list[str] = []
    pos = 0
    text = sentence.strip()
    while pos < len(text):
        ch = text[pos]
        if ch.isspace():
            pos += 1
            continue
        m = (_URL_RE.match(text, pos) or _EMAIL_RE.match(text, pos)
             or _NUMBER_RE.match(text, pos))
        if m:
            raw.append(m.group(0))
            pos = m.end()
            continue
        m = _WORD_RE.match(text, pos)
        if m:
            word = m.group(0)
            # Re-attach an apostrophe suffix the regex may have missed
            # ("users'" possessive plural).
            end = m.end()
            if end < len(text) and text[end] in "'’" and (
                end + 1 >= len(text) or not text[end + 1].isalnum()
            ):
                raw.append(word)
                raw.append("'")
                pos = end + 1
                continue
            raw.extend(_split_word(word))
            pos = end
            continue
        # Apostrophe followed by letters -> contraction piece like 's.
        if ch in "'’":
            m2 = _WORD_RE.match(text, pos + 1)
            if m2:
                raw.append("'" + m2.group(0))
                pos = m2.end()
                continue
        raw.append(ch)
        pos += 1

    tokens = [Token(index=i, text=t) for i, t in enumerate(raw)]
    for tok in tokens:
        tok.lemma = lemmatize(tok.text)
    return tokens


# ---------------------------------------------------------------------------
# Lemmatization
# ---------------------------------------------------------------------------

# Irregular verb and noun forms that matter for verb-category matching and
# resource extraction.  Maps inflected form -> lemma.
_IRREGULAR = {
    # verbs
    "is": "be", "are": "be", "was": "be", "were": "be", "been": "be",
    "being": "be", "am": "be",
    "has": "have", "had": "have", "having": "have",
    "does": "do", "did": "do", "done": "do", "doing": "do",
    "gave": "give", "given": "give",
    "took": "take", "taken": "take",
    "kept": "keep",
    "held": "hold",
    "got": "get", "gotten": "get",
    "made": "make",
    "sent": "send",
    "sold": "sell",
    "told": "tell",
    "knew": "know", "known": "know",
    "saw": "see", "seen": "see",
    "went": "go", "gone": "go",
    "stored": "store", "stores": "store", "storing": "store",
    "shared": "share", "shares": "share", "sharing": "share",
    "used": "use", "uses": "use", "using": "use",
    "chose": "choose", "chosen": "choose",
    "wrote": "write", "written": "write",
    "let": "let",
    "left": "leave",
    "met": "meet",
    "n't": "not",
    "'ll": "will",
    "'re": "be",
    "'ve": "have",
    "'m": "be",
    "'d": "would",
    # -ing words that are not progressive verb forms
    "nothing": "nothing", "something": "something",
    "anything": "anything", "everything": "everything",
    "during": "during", "according": "according",
    "advertising": "advertising", "marketing": "marketing",
    "string": "string", "thing": "thing", "king": "king",
    "ring": "ring", "spring": "spring", "evening": "evening",
    "morning": "morning",
    # nouns with irregular plurals
    "children": "child",
    "people": "person",
    "data": "data",
    "media": "media",
    "cookies": "cookie",
    "parties": "party",
    "policies": "policy",
    "libraries": "library",
    "addresses": "address",
    "services": "service",
    "devices": "device",
    "identities": "identity",
    "activities": "activity",
    "technologies": "technology",
    "countries": "country",
    "companies": "company",
    "agencies": "agency",
    "authorities": "authority",
    "entities": "entity",
    "bodies": "body",
    "copies": "copy",
    "histories": "history",
    "queries": "query",
    "categories": "category",
}

# Words ending in 's' that are NOT plurals/3rd-person forms.
_S_FINAL = {
    "address", "access", "business", "process", "les", "this", "is",
    "its", "his", "us", "bus", "plus", "status", "analysis", "gps",
    "sms", "was", "has", "does", "news", "various", "previous",
    "anonymous", "always", "perhaps", "across", "unless", "express",
    "wireless", "virus", "campus", "basis", "analytics", "contents",
    "yes", "as", "thus", "less",
}

_DOUBLE_FINAL = {
    "stopped": "stop", "stopping": "stop",
    "logged": "log", "logging": "log",
    "tagged": "tag", "tagging": "tag",
    "planned": "plan", "planning": "plan",
    "submitted": "submit", "submitting": "submit",
    "transmitted": "transmit", "transmitting": "transmit",
    "permitted": "permit", "permitting": "permit",
    "referred": "refer", "referring": "refer",
    "transferred": "transfer", "transferring": "transfer",
    "occurred": "occur", "occurring": "occur",
    "setting": "set",
    "getting": "get",
    "letting": "let",
    "putting": "put",
    "embedded": "embed", "embedding": "embed",
}

# Verbs ending in -e whose -ing/-ed forms drop the e.
_E_RESTORE = {
    "stor", "shar", "us", "disclos", "provid", "receiv",
    "sav", "delet", "updat", "creat", "analyz", "combin", "declar",
    "describ", "requir", "acquir", "retriev", "captur", "measur",
    "improv", "serv", "mak", "tak", "giv", "manag", "exchang",
    "locat", "operat", "integrat", "aggregat", "generat", "complet",
    "communicat", "calculat", "indicat", "activat", "deactivat",
    "associat", "relat", "regulat", "stat", "cit", "not", "compil",
    "releas", "leas", "purchas", "advertis", "personaliz", "customiz",
    "recogniz", "authoriz", "utiliz", "monetiz", "synchroniz",
    "subscrib", "unsubscrib", "distribut", "execut", "comput",
    "configur", "secur", "ensur", "expos", "enabl", "disabl",
    "handl", "compar", "prepar", "acknowledg", "charg", "merg",
    "brows", "clos", "caus", "choos", "databas", "eras",
    "involv", "observ", "preserv", "reserv", "resolv",
    "trac", "plac", "replac", "produc", "reduc", "introduc",
    "trad", "cach", "archiv", "disseminat", "renam", "shap",
    "fil", "profil", "whil", "decid", "resid",
    "includ", "exclud", "conclud", "guid",
    "determin", "examin", "combin", "declin", "defin", "onlin",
    "imagin", "machin",
}


def lemmatize(word: str) -> str:
    """Return a lower-case lemma using exception tables + suffix rules."""
    low = word.lower()
    if low in _IRREGULAR:
        return _IRREGULAR[low]
    if low in _DOUBLE_FINAL:
        return _DOUBLE_FINAL[low]
    if low in _S_FINAL or len(low) <= 3:
        return low
    if not low.isalpha() and "-" not in low:
        return low

    # -ies / -ied
    if low.endswith("ies") and len(low) > 4:
        return low[:-3] + "y"
    if low.endswith("ied") and len(low) > 4:
        return low[:-3] + "y"
    # -sses, -shes, -ches, -xes, -zes, -oes
    for suf in ("sses", "shes", "ches", "xes", "zes", "oes"):
        if low.endswith(suf):
            return low[:-2]
    # -ing
    if low.endswith("ing") and len(low) > 5:
        stem = low[:-3]
        if stem in _E_RESTORE:
            return stem + "e"
        return stem
    # -ed
    if low.endswith("ed") and len(low) > 4:
        stem = low[:-2]
        if stem in _E_RESTORE:
            return stem + "e"
        if stem.endswith("i"):
            return stem[:-1] + "y"
        return stem
    # plain plural / 3rd person -s
    if low.endswith("s") and not low.endswith("ss") and not low.endswith("us"):
        return low[:-1]
    return low


__all__ = ["Token", "tokenize", "lemmatize"]
