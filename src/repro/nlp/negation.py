"""Negation analysis (Step 5 of the policy-analysis pipeline).

PPChecker checks for negation in two places (following Text2Policy):

1. the *subject* ("nothing will be collected"), and
2. the modifiers of the *root verb* ("we will not collect information").

The negation-word list follows the paper's source [32] and contains
negative verbs, adverbs, adjectives, and determiners.
"""

from __future__ import annotations

from repro.nlp.deptree import DependencyTree

#: Negation words, grouped as in Text2Policy's list.
NEGATIVE_VERBS = {
    "prevent", "prohibit", "forbid", "refuse", "decline", "deny",
    "avoid", "cease", "stop", "ban", "bar", "oppose", "reject",
}
NEGATIVE_ADVERBS = {
    "not", "never", "n't", "hardly", "rarely", "seldom", "barely",
    "scarcely", "neither", "nor", "no-longer",
}
NEGATIVE_ADJECTIVES = {
    "unable", "unwilling", "unauthorized", "impossible", "unlawful",
}
NEGATIVE_DETERMINERS = {"no", "none", "neither", "nothing", "nobody"}

NEGATION_WORDS = (
    NEGATIVE_VERBS | NEGATIVE_ADVERBS | NEGATIVE_ADJECTIVES
    | NEGATIVE_DETERMINERS
)


def subject_is_negative(tree: DependencyTree) -> bool:
    """True when the (passive) subject itself is a negative word.

    Catches "nothing will be collected", "no information is shared".
    """
    root = tree.root()
    if root is None:
        return False
    for rel in ("nsubj", "nsubjpass"):
        subj = tree.child(root, rel)
        if subj is None:
            continue
        tok = tree.token(subj)
        if tok.lemma in NEGATIVE_DETERMINERS or tok.lower in NEGATIVE_DETERMINERS:
            return True
        for kid in tree.children(subj, "det"):
            if tree.token(kid).lower in NEGATIVE_DETERMINERS:
                return True
    return False


def verb_is_negated(tree: DependencyTree, verb: int | None = None) -> bool:
    """True when the root verb (or *verb*) carries a negation modifier."""
    target = verb if verb is not None else tree.root()
    if target is None:
        return False
    for kid in tree.children(target, "neg"):
        if tree.token(kid).lemma in NEGATIVE_ADVERBS or tree.token(
            kid
        ).lower in NEGATIVE_ADVERBS:
            return True
    # negative root lemma itself ("we refuse to collect ...") negates the
    # complement verb, and negative adverb attached as plain RB
    tok = tree.token(target)
    if tok.lemma in NEGATIVE_VERBS:
        return True
    if tok.lemma in NEGATIVE_ADJECTIVES or tok.lower in NEGATIVE_ADJECTIVES:
        return True
    # a negated governor propagates to its xcomp verb
    arc = tree.head_of(target)
    if arc is not None and arc.rel == "xcomp":
        return verb_is_negated(tree, arc.head)
    return False


def is_negated(tree: DependencyTree, verb: int | None = None) -> bool:
    """Paper's Step 5: negative subject OR negated root verb."""
    return subject_is_negative(tree) or verb_is_negated(tree, verb)


__all__ = [
    "NEGATION_WORDS",
    "NEGATIVE_VERBS",
    "NEGATIVE_ADVERBS",
    "NEGATIVE_ADJECTIVES",
    "NEGATIVE_DETERMINERS",
    "subject_is_negative",
    "verb_is_negated",
    "is_negated",
]
