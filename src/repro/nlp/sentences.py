"""Sentence extraction (Step 1 of the policy-analysis pipeline).

Splits policy text into sentences with two PPChecker-specific behaviours
from the paper:

1. Abbreviation-aware splitting (so "e.g." / "Inc." do not end sentences),
   replacing NLTK's Punkt model.
2. The enumeration-list fix: NLTK-style splitting breaks
   ``"we will collect the following information: your name; your IP
   address; your device ID"`` into pieces.  PPChecker walks the sentence
   sequence and, when the previous sentence ends with ";" or ",", or the
   current piece starts with a lower-case letter, appends the current
   piece to the previous one.  Finally all letters are lower-cased by the
   caller (the policy analyzer keeps the original for reporting).
"""

from __future__ import annotations

import re

# Common abbreviations that end with a period but do not end a sentence.
_ABBREVIATIONS = {
    "e.g", "i.e", "etc", "inc", "ltd", "llc", "corp", "co", "vs",
    "mr", "mrs", "ms", "dr", "prof", "st", "no", "dept", "u.s",
    "u.k", "approx", "est", "sec", "fig", "al", "cf", "viz",
}

_TERMINATORS = ".!?"


def _is_abbreviation(text: str, dot_index: int) -> bool:
    """True if the period at *dot_index* terminates an abbreviation."""
    start = dot_index
    while start > 0 and (text[start - 1].isalnum() or text[start - 1] == "."):
        start -= 1
    word = text[start:dot_index].lower().rstrip(".")
    if word in _ABBREVIATIONS:
        return True
    # Single letters ("a.", initials) and dotted acronyms ("u.s.a").
    if len(word) == 1 and word.isalpha():
        return True
    if "." in text[start:dot_index]:
        return True
    return False


def _raw_split(text: str) -> list[str]:
    """First-pass split at sentence terminators."""
    sentences: list[str] = []
    buf: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        buf.append(ch)
        if ch in _TERMINATORS:
            if ch == "." and _is_abbreviation(text, i):
                i += 1
                continue
            # Decimal numbers: "2.5 million".
            if (
                ch == "."
                and 0 < i < n - 1
                and text[i - 1].isdigit()
                and text[i + 1].isdigit()
            ):
                i += 1
                continue
            # Consume trailing quote/bracket.
            j = i + 1
            while j < n and text[j] in "\"')]”’":
                buf.append(text[j])
                j += 1
            sentence = "".join(buf).strip()
            if sentence:
                sentences.append(sentence)
            buf = []
            i = j
            continue
        i += 1
    tail = "".join(buf).strip()
    if tail:
        sentences.append(tail)
    return sentences


def _split_newlines(pieces: list[str]) -> list[str]:
    """Treat blank lines and bullet markers as sentence boundaries."""
    out: list[str] = []
    for piece in pieces:
        for part in re.split(r"\n\s*\n|\n\s*(?=[-*•])", piece):
            part = re.sub(r"\s+", " ", part).strip()
            part = re.sub(r"^[-*•]\s*", "", part)
            if part:
                out.append(part)
    return out


def merge_enumerations(sentences: list[str]) -> list[str]:
    """Re-join enumeration lists that the splitter broke apart.

    Implements the paper's rule: if the previous sentence ends with ";"
    or "," or the current sentence starts with a lower-case letter, the
    current sentence is appended to the previous one.
    """
    merged: list[str] = []
    for sent in sentences:
        if merged:
            prev = merged[-1]
            starts_lower = sent[:1].islower()
            prev_open = prev.rstrip().endswith((";", ",", ":"))
            if prev_open or (starts_lower and prev.rstrip().endswith((";", ","))):
                merged[-1] = prev.rstrip() + " " + sent
                continue
        merged.append(sent)
    return merged


def split_sentences(text: str) -> list[str]:
    """Split *text* into sentences, applying the enumeration merge."""
    pieces = _split_newlines([text])
    raw: list[str] = []
    for piece in pieces:
        raw.extend(_raw_split(piece))
    # The enumeration merge also needs ";"-separated fragments that the
    # raw splitter kept inside one piece -- NLTK splits on ";", we emulate
    # that first and then merge back, exercising the paper's fix.
    fragments: list[str] = []
    for sent in raw:
        if ";" in sent:
            parts = [p.strip() for p in sent.split(";")]
            for k, part in enumerate(parts):
                if not part:
                    continue
                fragments.append(part + (";" if k < len(parts) - 1 else ""))
        else:
            fragments.append(sent)
    return merge_enumerations(fragments)


__all__ = ["split_sentences", "merge_enumerations"]
