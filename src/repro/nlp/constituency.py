"""Shallow constituency trees (the paper's Fig. 6, left side).

Step 2 of the policy pipeline produces both a parse tree and typed
dependencies.  The dependency side drives extraction; the parse tree
is what Fig. 6 renders ("each phrase occupies one line") and what the
paper's constraint extraction reads ("extract the sub-tree that starts
with these words").  This module derives the constituency view from
the pieces the deterministic parser already computes: NP chunks, verb
groups, prepositional phrases, and subordinate clauses.

The node inventory: S, NP, VP, PP, SBAR, and pre-terminal POS nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nlp.chunker import chunk_noun_phrases
from repro.nlp.parser import _find_subordinate_spans, _find_verb_groups
from repro.nlp.postag import pos_tag
from repro.nlp.tokenizer import Token, tokenize


@dataclass
class PhraseNode:
    """A constituency node: a label over a token span."""

    label: str
    start: int
    end: int  # inclusive
    children: list["PhraseNode"] = field(default_factory=list)
    token: Token | None = None  # pre-terminals only

    def is_leaf(self) -> bool:
        return self.token is not None

    def text(self, tokens: list[Token]) -> str:
        return " ".join(t.text for t in tokens[self.start:self.end + 1])

    def pretty(self, tokens: list[Token], indent: int = 0) -> str:
        pad = "  " * indent
        if self.is_leaf():
            return f"{pad}({self.label} {self.token.text})"
        lines = [f"{pad}({self.label}"]
        for child in self.children:
            lines.append(child.pretty(tokens, indent + 1))
        lines.append(f"{pad})")
        return "\n".join(lines)

    def find(self, label: str) -> list["PhraseNode"]:
        """All descendants (and self) with the given label."""
        found = [self] if self.label == label else []
        for child in self.children:
            found.extend(child.find(label))
        return found


def _leaf(token: Token) -> PhraseNode:
    return PhraseNode(label=token.pos or "X", start=token.index,
                      end=token.index, token=token)


def build_constituency(sentence: str | list[Token]) -> tuple[
    PhraseNode, list[Token]
]:
    """Build the shallow parse tree of one sentence."""
    if isinstance(sentence, str):
        tokens = tokenize(sentence)
    else:
        tokens = sentence
    if tokens and not tokens[0].pos:
        pos_tag(tokens)

    n = len(tokens)
    root = PhraseNode(label="S", start=0, end=max(0, n - 1))
    if n == 0:
        return root, tokens

    groups = _find_verb_groups(tokens)
    group_spans = [(g.start, g.end) for g in groups]
    in_group = {
        idx for start, end in group_spans
        for idx in range(start, end + 1)
    }
    chunks = {
        c.start: c for c in chunk_noun_phrases(tokens, exclude=in_group)
    }
    sub_spans = {(s.start, s.end) for s in
                 _find_subordinate_spans(tokens)}

    def build_range(start: int, stop: int) -> list[PhraseNode]:
        nodes: list[PhraseNode] = []
        i = start
        while i <= stop:
            # subordinate clause -> SBAR
            span = next(
                ((s, e) for s, e in sub_spans if s == i and e <= stop),
                None,
            )
            if span is not None:
                sbar = PhraseNode(label="SBAR", start=span[0],
                                  end=span[1])
                sbar.children.append(_leaf(tokens[span[0]]))
                sbar.children.extend(
                    build_range(span[0] + 1, span[1])
                )
                nodes.append(sbar)
                i = span[1] + 1
                continue
            # verb group -> VP (spanning to the next top-level break)
            group = next((g for g in groups if g.start == i), None)
            if group is not None:
                vp_end = stop
                for s, _e in sub_spans:
                    if s > group.end:
                        vp_end = min(vp_end, s - 1)
                vp = PhraseNode(label="VP", start=group.start,
                                end=vp_end)
                for k in range(group.start, group.end + 1):
                    vp.children.append(_leaf(tokens[k]))
                vp.children.extend(
                    build_range(group.end + 1, vp_end)
                )
                nodes.append(vp)
                i = vp_end + 1
                continue
            # NP chunk
            chunk = chunks.get(i)
            if chunk is not None and chunk.end <= stop:
                np = PhraseNode(label="NP", start=chunk.start,
                                end=chunk.end)
                for k in chunk.indices():
                    np.children.append(_leaf(tokens[k]))
                nodes.append(np)
                i = chunk.end + 1
                continue
            # preposition heading a PP
            if tokens[i].pos in ("IN", "TO") and i + 1 <= stop and \
                    (i + 1) in chunks:
                inner = chunks[i + 1]
                pp = PhraseNode(label="PP", start=i,
                                end=min(inner.end, stop))
                pp.children.append(_leaf(tokens[i]))
                pp.children.extend(build_range(i + 1, pp.end))
                nodes.append(pp)
                i = pp.end + 1
                continue
            nodes.append(_leaf(tokens[i]))
            i += 1
        return nodes

    root.children = build_range(0, n - 1)
    return root, tokens


def subtree_starting_with(
    root: PhraseNode, tokens: list[Token], words: tuple[str, ...]
) -> PhraseNode | None:
    """The paper's constraint lookup: the phrase node whose first
    token is one of *words* ("if", "when", "unless", ...)."""
    targets = {w.lower() for w in words}
    best: PhraseNode | None = None

    def visit(node: PhraseNode) -> None:
        nonlocal best
        first = tokens[node.start]
        if not node.is_leaf() and first.lower in targets:
            if best is None or node.start < best.start:
                best = node
        for child in node.children:
            visit(child)

    visit(root)
    return best


__all__ = ["PhraseNode", "build_constituency", "subtree_starting_with"]
