"""English NLP substrate for privacy-policy analysis.

PPChecker (DSN 2016) used NLTK for sentence splitting and the Stanford
Parser for syntactic analysis.  Neither is available offline, so this
package implements the parts PPChecker actually consumes:

- :mod:`repro.nlp.tokenizer` -- word tokenization with lemmatization,
- :mod:`repro.nlp.sentences` -- sentence splitting, including the paper's
  fix for enumeration lists broken at ";" / ",",
- :mod:`repro.nlp.postag`   -- lexicon + rule part-of-speech tagger,
- :mod:`repro.nlp.parser`   -- a deterministic dependency parser emitting
  the typed relations PPChecker queries (root, nsubj, dobj, nsubjpass,
  auxpass, xcomp, advcl, prep, pobj, conj, neg, ...),
- :mod:`repro.nlp.chunker`  -- noun-phrase chunking used for resource
  extraction,
- :mod:`repro.nlp.negation` -- the negation-word list of Text2Policy and
  subject/verb negation analysis.
"""

from repro.nlp.tokenizer import Token, tokenize, lemmatize
from repro.nlp.sentences import split_sentences
from repro.nlp.postag import pos_tag
from repro.nlp.deptree import Arc, DependencyTree
from repro.nlp.parser import parse
from repro.nlp.chunker import NounPhrase, chunk_noun_phrases
from repro.nlp.negation import NEGATION_WORDS, is_negated
from repro.nlp.constituency import (
    PhraseNode,
    build_constituency,
    subtree_starting_with,
)

__all__ = [
    "Token",
    "tokenize",
    "lemmatize",
    "split_sentences",
    "pos_tag",
    "Arc",
    "DependencyTree",
    "parse",
    "NounPhrase",
    "chunk_noun_phrases",
    "NEGATION_WORDS",
    "is_negated",
    "PhraseNode",
    "build_constituency",
    "subtree_starting_with",
]
