"""Noun-phrase chunking.

A maximal-munch NP chunker over POS tags.  Resource extraction (Step 6)
and subject/object attachment in the parser both operate on NP chunks:
the chunk head is the last nominal token, pre-head tokens become det /
amod / poss / nn dependents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nlp.tokenizer import Token

_NP_HEAD_TAGS = {"NN", "NNS", "NNP", "NNPS", "PRP", "CD", "VBG"}
_NP_MOD_TAGS = {"DT", "PDT", "PRP$", "JJ", "JJR", "JJS", "CD", "POS",
                "NN", "NNS", "NNP", "NNPS"}


@dataclass
class NounPhrase:
    """A contiguous noun phrase: token span [start, end] with head index."""

    start: int
    end: int  # inclusive
    head: int

    def indices(self) -> range:
        return range(self.start, self.end + 1)

    def text(self, tokens: list[Token]) -> str:
        return " ".join(tokens[i].text for i in self.indices())


def chunk_noun_phrases(
    tokens: list[Token],
    exclude: set[int] | None = None,
) -> list[NounPhrase]:
    """Find maximal NP chunks left-to-right.

    A chunk is a run of modifier tags ending at one or more nominal
    tags; the head is the final nominal.  Pronouns form single-token
    chunks.  A possessive 's continues the chunk ("the user's name").
    ``exclude`` marks indices that may not join any chunk (the parser
    passes verb-group tokens, so a VBG main verb is never mistaken for
    a gerund chunk head).
    """
    banned = exclude or set()
    chunks: list[NounPhrase] = []
    i = 0
    n = len(tokens)
    while i < n:
        if i in banned:
            i += 1
            continue
        tag = tokens[i].pos
        if tag == "PRP":
            chunks.append(NounPhrase(i, i, i))
            i += 1
            continue
        if tag in _NP_MOD_TAGS or tag in _NP_HEAD_TAGS:
            start = i
            last_head = -1
            j = i
            while j < n:
                if j in banned:
                    break
                t = tokens[j].pos
                if t in _NP_HEAD_TAGS and t != "VBG":
                    last_head = j
                    j += 1
                    continue
                if t == "VBG" and last_head == -1:
                    # gerund heading a chunk only if followed by nothing
                    # nominal ("tracking" in "ad tracking")
                    last_head = j
                    j += 1
                    continue
                if t in _NP_MOD_TAGS:
                    j += 1
                    continue
                if t == "POS" and last_head != -1:
                    j += 1
                    continue
                break
            if last_head == -1:
                # a bare demonstrative or quantifier heads its own
                # chunk ("nor those of your contacts", "any of your
                # personal information" -- the PP supplies the content)
                if tokens[i].lower in ("those", "these", "this", "that",
                                       "any", "all", "some", "none",
                                       "each", "both", "either",
                                       "neither"):
                    chunks.append(NounPhrase(i, i, i))
                i += 1
                continue
            # trim trailing modifiers after the last head
            end = last_head
            # possessive continuation: "user 's name"
            chunks.append(NounPhrase(start, end, last_head))
            i = j if j > last_head else last_head + 1
            continue
        i += 1
    return chunks


def chunk_covering(chunks: list[NounPhrase], index: int) -> NounPhrase | None:
    """The chunk whose span covers *index*, if any."""
    for chunk in chunks:
        if chunk.start <= index <= chunk.end:
            return chunk
    return None


__all__ = ["NounPhrase", "chunk_noun_phrases", "chunk_covering"]
