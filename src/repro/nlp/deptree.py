"""Typed dependency tree structures.

The relation inventory follows the Stanford typed dependencies that
PPChecker consumes: ``root``, ``nsubj``, ``nsubjpass``, ``dobj``,
``auxpass``, ``aux``, ``cop``, ``xcomp``, ``advcl``, ``mark``, ``neg``,
``prep``, ``pobj``, ``conj``, ``cc``, ``det``, ``amod``, ``poss``,
``nn``, ``rcmod``, ``dep``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nlp.tokenizer import Token

ROOT_INDEX = -1


@dataclass(frozen=True)
class Arc:
    """A typed dependency arc ``rel(head, dependent)``.

    ``head`` is ``ROOT_INDEX`` (-1) for the virtual ROOT-0 node.
    """

    head: int
    dep: int
    rel: str


@dataclass
class DependencyTree:
    """Tokens plus typed dependency arcs for one sentence."""

    tokens: list[Token]
    arcs: list[Arc] = field(default_factory=list)

    # -- construction -----------------------------------------------------

    def add(self, head: int, dep: int, rel: str) -> None:
        if self.head_of(dep) is not None:
            return  # single-head invariant: first attachment wins
        self.arcs.append(Arc(head, dep, rel))

    # -- queries ----------------------------------------------------------

    def root(self) -> int | None:
        """Index of the root token, or None for an empty parse."""
        for arc in self.arcs:
            if arc.rel == "root":
                return arc.dep
        return None

    def root_token(self) -> Token | None:
        idx = self.root()
        return self.tokens[idx] if idx is not None else None

    def head_of(self, index: int) -> Arc | None:
        for arc in self.arcs:
            if arc.dep == index:
                return arc
        return None

    def rel_of(self, index: int) -> str | None:
        arc = self.head_of(index)
        return arc.rel if arc else None

    def children(self, index: int, rel: str | None = None) -> list[int]:
        return [
            a.dep
            for a in self.arcs
            if a.head == index and (rel is None or a.rel == rel)
        ]

    def child(self, index: int, rel: str) -> int | None:
        kids = self.children(index, rel)
        return kids[0] if kids else None

    def has_relation(self, index: int, rel: str) -> bool:
        return bool(self.children(index, rel))

    def subtree(self, index: int) -> list[int]:
        """All indices in the subtree rooted at *index* (sorted)."""
        seen = {index}
        frontier = [index]
        while frontier:
            node = frontier.pop()
            for kid in self.children(node):
                if kid not in seen:
                    seen.add(kid)
                    frontier.append(kid)
        return sorted(seen)

    def subtree_text(self, index: int) -> str:
        return " ".join(self.tokens[i].text for i in self.subtree(index))

    def token(self, index: int) -> Token:
        return self.tokens[index]

    # -- invariants (used by property tests) -------------------------------

    def is_single_headed(self) -> bool:
        heads: dict[int, int] = {}
        for arc in self.arcs:
            if arc.dep in heads:
                return False
            heads[arc.dep] = arc.head
        return True

    def is_acyclic(self) -> bool:
        heads = {a.dep: a.head for a in self.arcs}
        for start in heads:
            node = start
            seen = set()
            while node in heads and node != ROOT_INDEX:
                if node in seen:
                    return False
                seen.add(node)
                node = heads[node]
        return True

    def to_conll(self) -> str:
        """CoNLL-style rendering, handy for debugging and golden tests."""
        heads = {a.dep: (a.head, a.rel) for a in self.arcs}
        lines = []
        for tok in self.tokens:
            head, rel = heads.get(tok.index, (ROOT_INDEX, "dep"))
            lines.append(
                f"{tok.index + 1}\t{tok.text}\t{tok.lemma}\t{tok.pos}"
                f"\t{head + 1}\t{rel}"
            )
        return "\n".join(lines)


__all__ = ["Arc", "DependencyTree", "ROOT_INDEX"]
