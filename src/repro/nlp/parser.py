"""Deterministic typed-dependency parser.

Replaces the Stanford Parser for the sentence shapes privacy policies
use.  The strategy is grammar-driven rather than learned:

1. POS-tag the sentence (if not already tagged).
2. Segment subordinate clauses (marked by "if", "when", "unless", ...)
   and relative clauses (WDT/WP).
3. Find verb groups (modal/auxiliary chains ending at a head verb) and
   the copular "be + able/unable" predicate.
4. Pick the root: head of the first finite verb group in the main
   region (the paper's ROOT-0 relation).
5. Attach subjects (nsubj / nsubjpass), objects (dobj), prepositional
   phrases (prep + pobj), NP coordination (cc + conj), infinitival
   complements (xcomp) and purpose/conditional clauses (advcl + mark),
   negation (neg), and NP-internal structure (det, poss, amod, nn).

The output relations are exactly the ones PPChecker's pattern matching
and element extraction query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memo import MISS, MemoCache
from repro.nlp.chunker import NounPhrase, chunk_covering, chunk_noun_phrases
from repro.nlp.deptree import ROOT_INDEX, DependencyTree
from repro.nlp.postag import pos_tag
from repro.nlp.tokenizer import Token, tokenize

_SUBORDINATORS = {
    "if", "when", "unless", "upon", "before", "after", "while",
    "because", "although", "though", "whereas", "once", "whenever",
    "until", "since",
}

# Verbs/adjectives taking an infinitival complement (xcomp).
_CONTROL_WORDS = {
    "allow", "permit", "able", "unable", "agree", "want", "need",
    "wish", "require", "continue", "begin", "start", "choose",
    "decide", "intend", "attempt", "try", "fail", "encourage",
    "ask", "authorize", "consent", "help", "enable",
}

_NEG_TOKENS = {"not", "never", "n't", "no", "hardly", "rarely",
               "seldom", "barely", "scarcely", "neither", "nor"}
_BE_LEMMA = "be"
_VERB_TAGS = {"VB", "VBP", "VBZ", "VBD", "VBN", "VBG"}
_FINITE_TAGS = {"VBP", "VBZ", "VBD", "MD", "VBN"}
_NOMINAL_TAGS = {"NN", "NNS", "NNP", "NNPS", "PRP", "CD"}


@dataclass
class VerbGroup:
    """A contiguous auxiliary chain ending at a head verb."""

    start: int
    end: int          # inclusive
    head: int         # index of the head verb
    auxes: list[int] = field(default_factory=list)
    negs: list[int] = field(default_factory=list)
    passive: bool = False
    infinitive: bool = False
    copular_pred: int | None = None  # JJ predicate for "be able"


@dataclass
class _Span:
    marker: int
    start: int
    end: int  # inclusive
    relative: bool = False


def _find_subordinate_spans(tokens: list[Token]) -> list[_Span]:
    spans: list[_Span] = []
    n = len(tokens)
    i = 0
    while i < n:
        tok = tokens[i]
        is_sub = tok.pos == "IN" and tok.lower in _SUBORDINATORS
        is_wrb = tok.pos == "WRB" and tok.lower in ("when", "whenever",
                                                    "where")
        is_rel = tok.pos in ("WDT", "WP") and i > 0 and tokens[
            i - 1
        ].pos in _NOMINAL_TAGS
        if is_sub or is_wrb or is_rel:
            j = i + 1
            while j < n and tokens[j].pos != ",":
                j += 1
            end = j - 1 if j < n else n - 1
            if end > i:
                spans.append(_Span(i, i, end, relative=is_rel))
            i = j + 1
            continue
        i += 1
    return spans


def _in_spans(index: int, spans: list[_Span]) -> _Span | None:
    for span in spans:
        if span.start <= index <= span.end:
            return span
    return None


def _find_verb_groups(tokens: list[Token]) -> list[VerbGroup]:
    groups: list[VerbGroup] = []
    n = len(tokens)
    i = 0
    while i < n:
        tok = tokens[i]
        tag = tok.pos
        starts_infinitive = (
            tag == "TO"
            and i + 1 < n
            and (
                tokens[i + 1].pos in _VERB_TAGS
                or (tokens[i + 1].pos == "RB" and i + 2 < n
                    and tokens[i + 2].pos in _VERB_TAGS)
            )
        )
        if tag == "MD" or tag in _VERB_TAGS or starts_infinitive:
            group = VerbGroup(start=i, end=i, head=i,
                              infinitive=starts_infinitive)
            auxes: list[int] = []
            negs: list[int] = []
            j = i
            head = -1
            last_aux_lemma = ""
            while j < n:
                t = tokens[j]
                if t.pos == "TO" and j == i:
                    auxes.append(j)
                    j += 1
                    continue
                if t.pos == "MD":
                    auxes.append(j)
                    last_aux_lemma = t.lemma
                    j += 1
                    continue
                if t.pos == "RB" or t.lower in _NEG_TOKENS and t.pos != "DT":
                    if t.lower in _NEG_TOKENS:
                        negs.append(j)
                    j += 1
                    continue
                if t.pos in _VERB_TAGS:
                    if t.lemma in ("be", "have", "do") and j + 1 < n and (
                        tokens[j + 1].pos in _VERB_TAGS
                        or tokens[j + 1].pos == "RB"
                        or tokens[j + 1].lower in _NEG_TOKENS
                        or (tokens[j + 1].pos == "JJ"
                            and tokens[j + 1].lower in ("able", "unable"))
                    ):
                        auxes.append(j)
                        last_aux_lemma = t.lemma
                        j += 1
                        continue
                    head = j
                    j += 1
                    break
                break
            if head == -1:
                # bare auxiliary chain ("we are ..." copula, or dangling)
                if auxes and tokens[auxes[-1]].pos in _VERB_TAGS:
                    head = auxes.pop()
                elif auxes:
                    head = auxes[-1]
                    auxes = auxes[:-1]
                else:
                    i += 1
                    continue
                j = max(j, head + 1)
            group.head = head
            group.auxes = auxes
            group.negs = negs
            group.end = j - 1
            head_tok = tokens[head]
            # passive: VBN head with a "be" auxiliary in the chain
            be_auxes = [a for a in auxes if tokens[a].lemma == _BE_LEMMA]
            group.passive = head_tok.pos == "VBN" and bool(be_auxes)
            # copular "be able/unable to"
            if head_tok.lemma == _BE_LEMMA and j < n and tokens[j].pos == "JJ" \
                    and tokens[j].lower in ("able", "unable"):
                group.copular_pred = j
                group.end = j
            groups.append(group)
            i = group.end + 1
            continue
        i += 1
    return groups


def _attach_np_internals(tree: DependencyTree, chunk: NounPhrase) -> None:
    tokens = tree.tokens
    head = chunk.head
    for k in chunk.indices():
        if k == head:
            continue
        tag = tokens[k].pos
        if tag in ("DT", "PDT"):
            tree.add(head, k, "det")
        elif tag == "PRP$":
            tree.add(head, k, "poss")
        elif tag in ("JJ", "JJR", "JJS"):
            tree.add(head, k, "amod")
        elif tag in ("NN", "NNS", "NNP", "NNPS") and k < head:
            tree.add(head, k, "nn")
        elif tag == "POS":
            prev = k - 1
            if prev >= chunk.start:
                tree.add(prev, k, "possessive")
                tree.add(head, prev, "poss")
        elif tag == "CD":
            tree.add(head, k, "num")
        else:
            tree.add(head, k, "dep")


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.tree = DependencyTree(tokens)
        self.spans = _find_subordinate_spans(tokens)
        self.groups = _find_verb_groups(tokens)
        in_groups = {
            idx
            for group in self.groups
            for idx in range(group.start, group.end + 1)
        }
        self.chunks = chunk_noun_phrases(tokens, exclude=in_groups)

    # -- helpers ----------------------------------------------------------

    def _group_span(self, group: VerbGroup) -> _Span | None:
        return _in_spans(group.head, self.spans)

    def _chunks_between(self, start: int, end: int) -> list[NounPhrase]:
        return [c for c in self.chunks if c.start >= start and c.end <= end]

    def _attach_verb_group(self, group: VerbGroup, gov: int) -> None:
        """aux/auxpass/neg arcs inside the group, headed at *gov*."""
        tokens = self.tokens
        be_auxes = [a for a in group.auxes if tokens[a].lemma == _BE_LEMMA]
        for a in group.auxes:
            if group.passive and be_auxes and a == be_auxes[-1]:
                self.tree.add(gov, a, "auxpass")
            elif group.copular_pred is not None and tokens[a].lemma == _BE_LEMMA:
                self.tree.add(gov, a, "cop")
            else:
                self.tree.add(gov, a, "aux")
        for nidx in group.negs:
            self.tree.add(gov, nidx, "neg")
        # a negation adverb directly before the group ("we never store")
        probe = group.start - 1
        while probe >= 0 and tokens[probe].pos == "RB":
            if tokens[probe].lower in _NEG_TOKENS:
                self.tree.add(gov, probe, "neg")
            probe -= 1
        if group.copular_pred is not None and tokens[group.head].lemma == _BE_LEMMA:
            self.tree.add(group.copular_pred, group.head, "cop")

    def _governor(self, group: VerbGroup) -> int:
        """The token that stands for the group in the tree."""
        if group.copular_pred is not None:
            return group.copular_pred
        return group.head

    def _attach_subject(self, group: VerbGroup, gov: int,
                        region: tuple[int, int]) -> None:
        candidates = [
            c for c in self.chunks
            if c.end < group.start
            and region[0] <= c.head <= region[1]
            and _in_spans(c.head, self.spans) is _in_spans(group.head, self.spans)
        ]
        if not candidates:
            return
        subj = candidates[-1]
        # skip chunks that are objects of a preposition (but a clause
        # marker like "if"/"when" before the chunk is not a preposition)
        def _prep_governed(chunk: NounPhrase) -> bool:
            if chunk.start == 0:
                return False
            prev = self.tokens[chunk.start - 1]
            if prev.pos == "TO":
                return True
            return prev.pos == "IN" and prev.lower not in _SUBORDINATORS

        while candidates and _prep_governed(subj):
            candidates.pop()
            if not candidates:
                return
            subj = candidates[-1]
        rel = "nsubjpass" if group.passive else "nsubj"
        self.tree.add(gov, subj.head, rel)
        _attach_np_internals(self.tree, subj)

    def _attach_postverbal(self, group: VerbGroup, gov: int,
                           stop: int) -> None:
        """dobj / prep+pobj / NP coordination after the verb up to *stop*."""
        tokens = self.tokens
        i = group.end + 1
        last_obj: int | None = None
        dobj_seen = False
        pending_cc: int | None = None
        attach_verb = group.head if group.copular_pred is None else gov
        while i <= stop:
            tok = tokens[i]
            tag = tok.pos
            is_prep = tag == "IN" or (
                tag == "TO"
                and i + 1 <= stop
                and tokens[i + 1].pos not in ("VB", "VBP", "RB")
            )
            if is_prep:
                chunk = self._next_chunk(i + 1, stop)
                if chunk is not None and chunk.start <= i + 2:
                    self.tree.add(attach_verb, i, "prep")
                    self.tree.add(i, chunk.head, "pobj")
                    _attach_np_internals(self.tree, chunk)
                    last_obj = chunk.head
                    i = chunk.end + 1
                    continue
                i += 1
                continue
            if tag == "CC":
                pending_cc = i
                i += 1
                continue
            if tag in (",", ":"):
                i += 1
                continue
            # "such as X" exemplification: skip "such", let "as" act
            # as the preposition introducing the example NP
            if tag == "PDT" and tok.lower == "such":
                i += 1
                continue
            chunk = chunk_covering(self.chunks, i)
            if chunk is not None and chunk.start == i:
                if last_obj is not None and (pending_cc is not None
                                             or dobj_seen):
                    self.tree.add(last_obj, chunk.head, "conj")
                    if pending_cc is not None:
                        self.tree.add(last_obj, pending_cc, "cc")
                        pending_cc = None
                else:
                    self.tree.add(attach_verb, chunk.head, "dobj")
                    dobj_seen = True
                _attach_np_internals(self.tree, chunk)
                last_obj = chunk.head
                i = chunk.end + 1
                continue
            if tag in ("RB",):
                if tok.lower in _NEG_TOKENS:
                    self.tree.add(attach_verb, i, "neg")
                i += 1
                continue
            break
        # stash for conj-object scanning by later groups
        self._last_obj_of_group = last_obj

    def _next_chunk(self, start: int, stop: int) -> NounPhrase | None:
        for chunk in self.chunks:
            if chunk.start >= start and chunk.end <= stop:
                return chunk
            if chunk.start > stop:
                return None
        return None

    # -- main -------------------------------------------------------------

    def parse(self) -> DependencyTree:
        tokens = self.tokens
        n = len(tokens)
        if n == 0:
            return self.tree

        main_groups = [
            g for g in self.groups
            if self._group_span(g) is None and not g.infinitive
        ]
        root_group: VerbGroup | None = main_groups[0] if main_groups else None
        if root_group is None and self.groups:
            root_group = self.groups[0]

        if root_group is None:
            # verbless fragment: root at the last NP head or token 0
            root_idx = self.chunks[-1].head if self.chunks else 0
            self.tree.add(ROOT_INDEX, root_idx, "root")
            for chunk in self.chunks:
                _attach_np_internals(self.tree, chunk)
                if chunk.head != root_idx:
                    self.tree.add(root_idx, chunk.head, "dep")
            self._attach_rest(root_idx)
            return self.tree

        root_gov = self._governor(root_group)
        self.tree.add(ROOT_INDEX, root_gov, "root")
        self._attach_verb_group(root_group, root_gov)
        self._attach_subject(root_group, root_gov, (0, root_group.start - 1)
                             if root_group.start > 0 else (0, 0))

        # stop postverbal scan at the first subordinate span or next group
        stop = n - 1
        for span in self.spans:
            if span.start > root_group.end:
                stop = min(stop, span.start - 1)
        for g in self.groups:
            if g.start > root_group.end:
                stop = min(stop, g.start - 1)
        self._attach_postverbal(root_group, root_gov, stop)

        prev_main_gov = root_gov
        for group in self.groups:
            if group is root_group:
                continue
            gov = self._governor(group)
            span = self._group_span(group)
            g_stop = n - 1
            for other in self.groups:
                if other.start > group.end:
                    g_stop = min(g_stop, other.start - 1)
            if span is not None:
                g_stop = min(g_stop, span.end)
            else:
                for sp in self.spans:
                    if sp.start > group.end:
                        g_stop = min(g_stop, sp.start - 1)

            if group.infinitive:
                # xcomp for control governors, advcl (purpose) otherwise
                gov_lemma = tokens[prev_main_gov].lemma
                rel = "xcomp" if gov_lemma in _CONTROL_WORDS else "advcl"
                self.tree.add(prev_main_gov, gov, rel)
                self._attach_verb_group(group, gov)
                self._attach_postverbal(group, gov, g_stop)
                continue
            if span is not None:
                head_rel = "rcmod" if span.relative else "advcl"
                attach_to = root_gov
                if span.relative:
                    # attach to the noun immediately before the marker
                    noun = span.marker - 1
                    if 0 <= noun < n and tokens[noun].pos in _NOMINAL_TAGS:
                        attach_to = noun
                self.tree.add(attach_to, gov, head_rel)
                self.tree.add(gov, span.marker, "mark")
                self._attach_verb_group(group, gov)
                self._attach_subject(group, gov, (span.start, group.start - 1))
                self._attach_postverbal(group, gov, g_stop)
                continue
            # further finite group in the main region: coordination
            prev_tok = tokens[group.start - 1] if group.start > 0 else None
            rel = "conj" if prev_tok is not None and prev_tok.pos == "CC" \
                else "dep"
            self.tree.add(root_gov, gov, rel)
            if prev_tok is not None and prev_tok.pos == "CC":
                self.tree.add(root_gov, group.start - 1, "cc")
            self._attach_verb_group(group, gov)
            self._attach_subject(group, gov, (0, group.start - 1))
            self._attach_postverbal(group, gov, g_stop)
            prev_main_gov = gov

        # NP internals for any chunk not yet attached
        for chunk in self.chunks:
            _attach_np_internals(self.tree, chunk)
        self._attach_rest(root_gov)
        return self.tree

    def _attach_rest(self, root_gov: int) -> None:
        for tok in self.tokens:
            if tok.index == root_gov:
                continue
            if self.tree.head_of(tok.index) is None:
                rel = "punct" if tok.pos in (".", ",", ":", "``", "''",
                                             "-LRB-", "-RRB-") else "dep"
                self.tree.add(root_gov, tok.index, rel)


#: sentence -> parsed dependency tree.  Corpus policies share template
#: sentences across thousands of apps, and one check consults the same
#: sentence in several stages; the cache makes each sentence pay for
#: tokenization, tagging, and parsing once per process.  Cached trees
#: are shared and read-only by convention (nothing outside this module
#: mutates a DependencyTree after construction).
_PARSE_CACHE = MemoCache("nlp_parse", max_entries=16384)


def parse(sentence: str | list[Token]) -> DependencyTree:
    """Parse a sentence (string or pre-tokenized) to a dependency tree.

    String inputs are memoized process-wide (disable with
    ``REPRO_NO_MEMO=1``); treat the returned tree as read-only.
    Pre-tokenized inputs always parse fresh -- their tags may differ
    from what the tagger would assign.
    """
    if not isinstance(sentence, str):
        tokens = sentence
        if tokens and not tokens[0].pos:
            pos_tag(tokens)
        return _Parser(tokens).parse()
    cached = _PARSE_CACHE.get(sentence)
    if cached is not MISS:
        return cached
    tokens = tokenize(sentence)
    if tokens and not tokens[0].pos:
        pos_tag(tokens)
    tree = _Parser(tokens).parse()
    _PARSE_CACHE.put(sentence, tree)
    return tree


__all__ = ["parse", "VerbGroup"]
