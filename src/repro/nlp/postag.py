"""Lexicon + rule part-of-speech tagger.

A two-pass tagger in the spirit of Brill (1992): a lexical pass assigns
the most likely tag from the lexicon / suffix heuristics, then a small
set of contextual rules repairs the ambiguities that matter for
dependency parsing of privacy-policy prose (noun/verb ambiguity, "that",
participles after auxiliaries).
"""

from __future__ import annotations

import re

from repro.nlp import lexicon
from repro.nlp.tokenizer import Token, lemmatize

_PUNCT_TAGS = {
    ".": ".", "!": ".", "?": ".", ",": ",", ";": ":", ":": ":",
    "(": "-LRB-", ")": "-RRB-", "\"": "``", "'": "''", "`": "``",
    "-": ":", "–": ":", "—": ":", "/": ":", "%": "NN", "$": "$",
    "“": "``", "”": "''", "‘": "``", "’": "''", "[": "-LRB-",
    "]": "-RRB-", "#": "#", "&": "CC", "*": ":", "•": ":",
}

_NUMBER_RE = re.compile(r"^\d[\d,.]*$")
_URLISH_RE = re.compile(r"(?:https?://|www\.|@.+\.)", re.IGNORECASE)


def _verb_tag_for_form(text_lower: str, lemma: str) -> str:
    """Morphology-based verb tag for a known verb lemma."""
    if text_lower == lemma:
        return "VBP"  # may be repaired to VB by context rules
    if text_lower.endswith("ing"):
        return "VBG"
    if text_lower.endswith("ed") or text_lower in ("kept", "held", "sent",
                                                   "sold", "told", "given",
                                                   "taken", "known", "seen",
                                                   "made", "written", "done",
                                                   "gotten", "chosen"):
        return "VBN"  # repaired to VBD when used finitely
    if text_lower.endswith("s"):
        return "VBZ"
    return "VBP"


def _lexical_tag(tok: Token) -> str:
    low = tok.lower
    if low in _PUNCT_TAGS:
        return _PUNCT_TAGS[low]
    if _NUMBER_RE.match(low):
        return "CD"
    if _URLISH_RE.search(tok.text):
        return "NN"
    closed = lexicon.closed_class_tag(low)
    if closed is not None:
        return closed

    lemma = tok.lemma or lemmatize(tok.text)
    in_verbs = lemma in lexicon.VERBS
    in_nouns = lemma in lexicon.NOUNS or low in lexicon.NOUNS
    in_adjs = low in lexicon.ADJECTIVES or lemma in lexicon.ADJECTIVES

    if in_adjs and not in_verbs:
        return "JJ"
    if in_verbs and in_nouns:
        # Ambiguous; default to noun, contextual rules promote to verb.
        return "NNS" if low.endswith("s") and low != lemma else "NN"
    if in_verbs:
        return _verb_tag_for_form(low, lemma)
    if in_nouns:
        return "NNS" if low.endswith("s") and lemma != low else "NN"

    # Suffix heuristics for unknown words.
    if low.endswith("ly"):
        return "RB"
    if low.endswith(("tion", "sion", "ment", "ness", "ance", "ence",
                     "ship", "ism", "ist", "ery", "age", "dom")):
        return "NN"
    if low.endswith(("ous", "ful", "ive", "ic", "ical", "able", "ible",
                     "ary", "ish", "less")):
        return "JJ"
    if low.endswith("ing"):
        return "VBG"
    if low.endswith("ed"):
        return "VBN"
    if tok.text[:1].isupper() and tok.index > 0:
        return "NNP"
    if low.endswith("s") and len(low) > 3 and not low.endswith("ss"):
        return "NNS"
    return "NN"


_BE_FORMS = {"be", "am", "is", "are", "was", "were", "been", "being",
             "'re", "'m"}
_HAVE_FORMS = {"have", "has", "had", "'ve"}
_NOMINAL = {"NN", "NNS", "NNP", "NNPS", "PRP", "CD"}
_VERBAL = {"VB", "VBP", "VBZ", "VBD", "VBN", "VBG", "MD"}


def _is_ambiguous(tok: Token) -> bool:
    lemma = tok.lemma or lemmatize(tok.text)
    return lemma in lexicon.NOUN_VERB_AMBIGUOUS or (
        lemma in lexicon.VERBS and (lemma in lexicon.NOUNS or tok.lower in lexicon.NOUNS)
    )


def pos_tag(tokens: list[Token]) -> list[Token]:
    """Tag *tokens* in place (and return them)."""
    if not tokens:
        return tokens
    tags = [_lexical_tag(t) for t in tokens]

    # ---------------- contextual repair rules ----------------
    for i, tok in enumerate(tokens):
        low = tok.lower
        lemma = tok.lemma or lemmatize(tok.text)
        prev_tag = tags[i - 1] if i > 0 else "<S>"
        prev_low = tokens[i - 1].lower if i > 0 else ""
        # skip intervening adverbs when looking back
        j = i - 1
        while j >= 0 and tags[j] == "RB":
            j -= 1
        back_tag = tags[j] if j >= 0 else "<S>"
        back_low = tokens[j].lower if j >= 0 else ""

        # "that": relativizer after a nominal, demonstrative before a
        # nominal ("process that information"), complementizer before a
        # new clause ("believe that we ...").
        if low == "that":
            nxt = tags[i + 1] if i + 1 < len(tokens) else "<E>"
            if prev_tag in _NOMINAL:
                tags[i] = "WDT"
            elif nxt in ("NN", "NNS", "NNP", "JJ"):
                tags[i] = "DT"
            elif prev_tag in _VERBAL or nxt in ("PRP", "DT", "PRP$"):
                tags[i] = "IN"
            else:
                tags[i] = "DT"
            continue

        # Ambiguous noun/verb resolution.
        if _is_ambiguous(tok):
            if back_tag == "MD" or back_low in ("do", "does", "did",
                                                "don't", "n't", "not"):
                tags[i] = "VB"
            elif back_tag == "TO":
                tags[i] = "VB"
            elif back_low in _BE_FORMS:
                if low.endswith("ing"):
                    tags[i] = "VBG"
                elif low.endswith("ed") or _verb_tag_for_form(low, lemma) == "VBN":
                    tags[i] = "VBN"
            elif back_low in _HAVE_FORMS and (
                low.endswith("ed") or _verb_tag_for_form(low, lemma) == "VBN"
            ):
                tags[i] = "VBN"
            elif back_tag == "PRP" and tags[i] in ("NN", "NNS"):
                tags[i] = _verb_tag_for_form(low, lemma)
            elif back_tag in ("DT", "PRP$", "JJ", "POS") :
                tags[i] = "NNS" if low.endswith("s") and low != lemma else "NN"
            continue

        # Base/VBP verbs after modal / "to" / do-support become VB.
        if tags[i] in ("VBP", "VBZ", "VBD", "VBN"):
            if back_tag == "MD" or back_tag == "TO" or back_low in (
                "do", "does", "did"
            ):
                tags[i] = "VB"
            elif back_low in _BE_FORMS and tags[i] in ("VBD", "VBN"):
                tags[i] = "VBN"
            elif back_low in _HAVE_FORMS and tags[i] in ("VBD", "VBN"):
                tags[i] = "VBN"
            elif tags[i] == "VBN":
                # VBN used finitely ("we collected your data") -> VBD,
                # unless preceded by be/have (handled above) or used as a
                # pre-nominal modifier ("collected data").
                nxt = tags[i + 1] if i + 1 < len(tokens) else "<E>"
                if back_tag in _NOMINAL and nxt != "IN" or nxt in ("DT", "PRP$"):
                    tags[i] = "VBD"

        # VBG directly after DT/PRP$/IN heading a nominal -> gerund noun
        # use stays VBG for the parser; nothing to do.

        # Participial modifier before a noun: "collected data",
        # "sell aggregated statistics".  A VBN after an auxiliary
        # (have/be/modal) stays verbal ("have collected data").
        if tags[i] in ("VBN", "VBG") and i + 1 < len(tokens) and tags[i + 1] in (
            "NN", "NNS"
        ):
            aux_before = (prev_low in _BE_FORMS or prev_low in _HAVE_FORMS
                          or prev_tag == "MD" or prev_tag == "TO")
            if not aux_before and (
                prev_tag in ("DT", "PRP$", "JJ", "IN", "<S>", ",")
                or prev_tag in _VERBAL
            ):
                tags[i] = "JJ"

    for tok, tag in zip(tokens, tags):
        tok.pos = tag
    return tokens


__all__ = ["pos_tag"]
