"""Part-of-speech lexicon.

Closed-class words are enumerated exhaustively; the open classes carry
the vocabulary that actually occurs in privacy policies, app
descriptions, and our corpus generator.  Unknown words fall back to the
suffix heuristics in :mod:`repro.nlp.postag`.

Tags are Penn Treebank: NN NNS NNP VB VBP VBZ VBD VBN VBG MD DT PDT PRP
PRP$ IN TO CC JJ JJR JJS RB RBR WDT WP WRB CD EX UH POS.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Closed classes
# ---------------------------------------------------------------------------

DETERMINERS = {
    "the": "DT", "a": "DT", "an": "DT", "this": "DT", "that": "DT",
    "these": "DT", "those": "DT", "any": "DT", "some": "DT", "no": "DT",
    "every": "DT", "each": "DT", "all": "PDT", "both": "PDT",
    "such": "PDT", "another": "DT", "either": "DT", "neither": "DT",
    "certain": "JJ",
}

PRONOUNS = {
    "i": "PRP", "you": "PRP", "he": "PRP", "she": "PRP", "it": "PRP",
    "we": "PRP", "they": "PRP", "me": "PRP", "him": "PRP", "her": "PRP",
    "us": "PRP", "them": "PRP", "itself": "PRP", "themselves": "PRP",
    "yourself": "PRP", "ourselves": "PRP", "myself": "PRP",
    "anyone": "NN", "someone": "NN", "everyone": "NN", "nobody": "NN",
    "anything": "NN", "something": "NN", "everything": "NN",
    "nothing": "NN", "none": "NN",
    "my": "PRP$", "your": "PRP$", "his": "PRP$", "its": "PRP$",
    "our": "PRP$", "their": "PRP$",
}

MODALS = {
    "will": "MD", "would": "MD", "can": "MD", "could": "MD",
    "may": "MD", "might": "MD", "shall": "MD", "should": "MD",
    "must": "MD", "'ll": "MD", "'d": "MD",
}

PREPOSITIONS = {
    "of": "IN", "in": "IN", "on": "IN", "at": "IN", "by": "IN",
    "for": "IN", "with": "IN", "from": "IN", "about": "IN",
    "into": "IN", "through": "IN", "during": "IN", "without": "IN",
    "within": "IN", "between": "IN", "under": "IN", "over": "IN",
    "after": "IN", "before": "IN", "since": "IN", "until": "IN",
    "upon": "IN", "via": "IN", "per": "IN", "regarding": "IN",
    "concerning": "IN", "including": "IN", "against": "IN",
    "among": "IN", "across": "IN", "towards": "IN", "toward": "IN",
    "if": "IN", "unless": "IN", "because": "IN", "while": "IN",
    "whereas": "IN", "although": "IN", "though": "IN", "as": "IN",
    "than": "IN", "except": "IN", "besides": "IN", "despite": "IN",
    "onto": "IN", "out": "IN", "off": "IN", "so": "IN", "that": "IN",
}

CONJUNCTIONS = {"and": "CC", "or": "CC", "but": "CC", "nor": "CC",
                "yet": "CC", "plus": "CC", "&": "CC"}

WH_WORDS = {
    "who": "WP", "whom": "WP", "what": "WP", "which": "WDT",
    "whose": "WP$", "when": "WRB", "where": "WRB", "why": "WRB",
    "how": "WRB", "whenever": "WRB", "wherever": "WRB",
}

ADVERBS = {
    "not": "RB", "never": "RB", "always": "RB", "also": "RB",
    "only": "RB", "just": "RB", "very": "RB", "too": "RB",
    "however": "RB", "therefore": "RB", "moreover": "RB",
    "furthermore": "RB", "otherwise": "RB", "additionally": "RB",
    "here": "RB", "there": "EX", "now": "RB", "then": "RB",
    "again": "RB", "already": "RB", "still": "RB", "yet": "RB",
    "hardly": "RB", "rarely": "RB", "seldom": "RB", "barely": "RB",
    "sometimes": "RB", "often": "RB", "usually": "RB",
    "automatically": "RB", "directly": "RB", "anonymously": "RB",
    "securely": "RB", "periodically": "RB", "immediately": "RB",
    "solely": "RB", "merely": "RB", "together": "RB",
    "please": "RB", "instead": "RB", "thereby": "RB", "hence": "RB",
    "thus": "RB", "accordingly": "RB", "further": "RB",
}

AUXILIARIES = {
    "be": "VB", "am": "VBP", "is": "VBZ", "are": "VBP", "was": "VBD",
    "were": "VBD", "been": "VBN", "being": "VBG",
    "have": "VBP", "has": "VBZ", "had": "VBD", "having": "VBG",
    "do": "VBP", "does": "VBZ", "did": "VBD",
    "'re": "VBP", "'m": "VBP", "'ve": "VBP",
}

# ---------------------------------------------------------------------------
# Open classes: verbs of the privacy domain.
# Base form listed; inflections are derived by the tagger via lemma.
# ---------------------------------------------------------------------------

VERBS = {
    # collect-category and friends
    "collect", "gather", "obtain", "acquire", "receive", "access",
    "record", "track", "monitor", "read", "request", "check", "know",
    "get", "take",
    # use-category
    "use", "process", "utilize", "employ", "analyze", "combine",
    "aggregate", "personalize", "customize", "serve",
    # retain-category
    "retain", "store", "keep", "save", "hold", "preserve", "cache",
    "log", "archive", "maintain",
    # disclose-category
    "disclose", "share", "transfer", "provide", "send", "transmit",
    "sell", "rent", "trade", "release", "distribute", "disseminate",
    "give", "report", "supply", "display", "expose", "forward",
    "upload", "post", "deliver", "pass", "reveal", "submit",
    # general verbs of policies & descriptions
    "agree", "allow", "permit", "enable", "disable", "require",
    "need", "want", "wish", "ask", "tell", "inform", "notify",
    "contact", "visit", "review", "update", "change", "modify",
    "delete", "remove", "erase", "correct", "opt", "choose",
    "consent", "help", "protect", "secure", "encrypt", "identify",
    "improve", "enhance", "develop", "create", "make", "offer",
    "include", "exclude", "contain", "apply", "comply", "govern",
    "describe", "explain", "state", "declare", "mention", "cover",
    "limit", "restrict", "prevent", "avoid", "stop", "cease",
    "install", "download", "register", "sign", "login", "logout",
    "click", "tap", "enter", "type", "browse", "navigate", "search",
    "find", "locate", "show", "view", "see", "play", "run",
    "manage", "operate", "work", "function", "perform", "conduct",
    "link", "connect", "integrate", "embed", "incorporate",
    "synchronize", "sync", "backup", "restore", "export", "import",
    "measure", "count", "calculate", "estimate", "determine",
    "respond", "reply", "answer", "support", "assist", "enable",
    "become", "remain", "continue", "begin", "start", "end",
    "terminate", "expire", "occur", "happen", "result", "lead",
    "refer", "relate", "associate", "correspond", "depend",
    "believe", "think", "consider", "regard", "treat", "deem",
    "encourage", "recommend", "suggest", "advise", "urge",
    "learn", "discover", "detect", "recognize", "understand",
    "accept", "reject", "decline", "refuse", "deny",
    "transmit", "broadcast", "stream", "sample", "capture",
    "scan", "photograph", "film", "say", "come", "go",
    # synonym-expansion vocabulary (repro.policy.synonyms)
    "harvest", "mine", "intercept", "extract", "retrieve", "fetch",
    "query", "solicit", "leverage", "exploit", "consume", "evaluate",
    "examine", "stash", "warehouse", "persist", "memorize", "publish",
    "leak", "surrender", "divulge", "present",
}

NOUNS = {
    # private-information resources
    "information", "data", "datum", "detail", "content",
    "location", "position", "latitude", "longitude", "geolocation",
    "address", "name", "username", "nickname", "surname",
    "email", "e-mail", "phone", "telephone", "number", "contact",
    "contacts", "calendar", "account", "password", "credential",
    "identifier", "id", "imei", "imsi", "iccid", "udid", "guid",
    "device", "hardware", "model", "manufacturer", "serial",
    "ip", "mac", "cookie", "beacon", "pixel", "token",
    "camera", "photo", "picture", "image", "video", "microphone",
    "audio", "voice", "recording", "sound", "photograph",
    "sms", "message", "text", "call", "history", "browser",
    "age", "gender", "birthday", "birthdate", "birth", "date",
    "profile", "preference", "interest", "demographic",
    "app", "application", "list", "package", "software",
    "wifi", "network", "carrier", "operator", "bluetooth", "gps",
    # policy vocabulary
    "policy", "privacy", "party", "user", "visitor", "customer",
    "member", "child", "person", "individual", "consumer",
    "service", "website", "site", "page", "server", "platform",
    "purpose", "reason", "time", "period", "duration", "law",
    "regulation", "right", "consent", "permission", "notice",
    "security", "safety", "protection", "measure", "practice",
    "advertiser", "advertising", "advertisement", "ad", "analytics",
    "partner", "affiliate", "subsidiary", "vendor", "provider",
    "company", "organization", "business", "entity", "agency",
    "government", "authority", "court", "order", "request",
    "section", "term", "condition", "agreement", "statement",
    "question", "feedback", "support", "contact", "change",
    "update", "amendment", "modification", "version", "effect",
    "library", "lib", "sdk", "kit", "tool", "feature", "function",
    "game", "player", "score", "level", "achievement",
    "weather", "map", "route", "navigation", "traffic", "forecast",
    "news", "music", "radio", "podcast", "book", "reader",
    "fitness", "health", "step", "workout", "heart", "rate",
    "shopping", "cart", "product", "item", "price", "payment",
    "transaction", "purchase", "order", "delivery", "wallet",
    "task", "reminder", "note", "document", "file", "folder",
    "storage", "backup", "cloud", "database", "record",
    "field", "force", "way", "thing", "part", "kind", "type",
    "example", "instance", "case", "basis", "behalf", "accordance",
    "usage", "behavior", "activity", "session", "event", "crash",
    "error", "diagnostic", "performance", "quality", "experience",
    "ringtone", "wallpaper", "theme", "widget", "keyboard",
    "flashlight", "scanner", "editor", "filter", "sticker",
    "identity", "signal", "internet", "world", "emergency",
}

ADJECTIVES = {
    "personal", "private", "sensitive", "confidential", "anonymous",
    "aggregate", "aggregated", "statistical", "demographic",
    "third", "third-party", "first", "second", "new", "old",
    "certain", "specific", "general", "various", "other", "same",
    "similar", "different", "additional", "further", "following",
    "above", "below", "applicable", "relevant", "necessary",
    "appropriate", "reasonable", "legal", "lawful", "unlawful",
    "free", "paid", "premium", "mobile", "online", "offline",
    "able", "unable", "available", "unavailable", "responsible",
    "liable", "subject", "effective", "current", "future", "prior",
    "precise", "coarse", "fine", "approximate", "exact", "real",
    "unique", "non-personal", "identifiable", "de-identified",
    "technical", "automatic", "optional", "mandatory", "required",
    "important", "best", "better", "easy", "simple", "quick",
    "fast", "smart", "popular", "local", "global", "social",
    "many", "few", "several", "own", "more", "most", "less",
    "least", "full", "complete", "entire", "whole", "limited",
    "great", "good",
}

# Words that are both noun and verb; the tagger disambiguates by context.
NOUN_VERB_AMBIGUOUS = {
    "use", "access", "record", "share", "request", "contact",
    "track", "log", "store", "process", "report", "need", "help",
    "support", "change", "update", "review", "display", "name",
    "email", "call", "text", "search", "backup", "cache", "order",
    "consent", "limit", "transfer", "release", "post", "note",
    "sign", "type", "filter", "measure", "purchase", "cover",
}


def closed_class_tag(word_lower: str) -> str | None:
    """Return the tag for a closed-class word, or None."""
    for table in (MODALS, PRONOUNS, CONJUNCTIONS, WH_WORDS, ADVERBS,
                  AUXILIARIES, DETERMINERS, PREPOSITIONS):
        if word_lower in table:
            return table[word_lower]
    if word_lower == "to":
        return "TO"
    if word_lower == "'s":
        return "POS"
    if word_lower == "'":
        return "POS"
    return None


__all__ = [
    "DETERMINERS", "PRONOUNS", "MODALS", "PREPOSITIONS", "CONJUNCTIONS",
    "WH_WORDS", "ADVERBS", "AUXILIARIES", "VERBS", "NOUNS", "ADJECTIVES",
    "NOUN_VERB_AMBIGUOUS", "closed_class_tag",
]
