"""Per-shard circuit breakers and the hedge-delay latency tracker.

The cluster front (:mod:`repro.service.cluster`) keeps one
:class:`CircuitBreaker` per shard, fed from every proxied request's
outcome.  The state machine is the classic three-state one:

- **closed** -- normal routing.  Hard failures (connection refused,
  5xx) and *slow successes* (latency over ``latency_threshold``, when
  configured) increment a consecutive-failure counter; any fast
  success resets it.  Reaching ``failure_threshold`` opens the
  breaker.
- **open** -- the shard is skipped at routing time (traffic falls
  through to the next live shard on the hash ring).  After
  ``open_seconds`` of cool-off the next routing attempt transitions
  to half-open.
- **half-open** -- exactly one probe request is let through.  A fast
  success closes the breaker; a failure (or slow success) re-opens
  it and restarts the cool-off.

All transitions run under a lock with an injectable clock, so the
chaos suite can drive the machine deterministically.  A breaker never
*fails* a request by itself: when every shard's breaker is open the
front still routes to the ring owner -- breakers shed load onto
healthy shards, they do not turn a brownout into an outage.

:class:`LatencyTracker` keeps a bounded window of observed request
latencies and answers the p95-derived hedge delay: the front waits
that long for the primary shard before racing a second, idempotent
request against another shard.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: gauge encoding for ``ppchecker_breaker_state{shard=...}``
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Three-state breaker over one downstream (shard)."""

    def __init__(self, *,
                 failure_threshold: int = 5,
                 latency_threshold: float | None = None,
                 open_seconds: float = 5.0,
                 clock: Callable[[], float] = time.monotonic,
                 on_transition: Callable[[str], None] | None = None,
                 ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if open_seconds <= 0:
            raise ValueError("open_seconds must be > 0")
        self.failure_threshold = failure_threshold
        #: a success slower than this (seconds) counts as a failure
        #: signal; None disables the latency signal
        self.latency_threshold = latency_threshold
        self.open_seconds = open_seconds
        self.clock = clock
        #: observes every state change (``on_transition(new_state)``),
        #: outside the lock -- the front counts transitions here
        self.on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    # -- state -------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def state_code(self) -> int:
        """0 closed / 1 half-open / 2 open (the gauge encoding)."""
        return STATE_CODES[self.state]

    def _transition_locked(self, state: str) -> Callable | None:
        if state == self._state:
            return None
        self._state = state
        callback = self.on_transition
        return (lambda: callback(state)) if callback else None

    # -- routing decision --------------------------------------------------

    def allow(self) -> bool:
        """Whether a request may be sent to this shard right now.

        Open: denied until the cool-off elapses, at which point the
        breaker half-opens and admits this caller as the single
        probe.  Half-open: denied while a probe is in flight.  A
        caller that gets ``True`` must follow up with
        :meth:`record_success` or :meth:`record_failure`.
        """
        notify = None
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self.clock() - self._opened_at < self.open_seconds:
                    return False
                notify = self._transition_locked(HALF_OPEN)
                self._probing = True
                allowed = True
            else:  # half-open
                if self._probing:
                    allowed = False
                else:
                    self._probing = True
                    allowed = True
        if notify is not None:
            notify()
        return allowed

    # -- outcome feedback --------------------------------------------------

    def record_success(self, seconds: float | None = None) -> None:
        """A request to the shard answered.  A *slow* success (over
        ``latency_threshold``) feeds the failure counter -- the
        brownout signal -- but still closes nothing."""
        if (self.latency_threshold is not None
                and seconds is not None
                and seconds > self.latency_threshold):
            self.record_failure()
            return
        notify = None
        with self._lock:
            self._failures = 0
            if self._state == HALF_OPEN:
                self._probing = False
                notify = self._transition_locked(CLOSED)
        if notify is not None:
            notify()

    def record_failure(self) -> None:
        """A request to the shard failed (or was brownout-slow)."""
        notify = None
        with self._lock:
            self._failures += 1
            if self._state == HALF_OPEN:
                # the probe failed: back to a fresh cool-off
                self._probing = False
                self._opened_at = self.clock()
                notify = self._transition_locked(OPEN)
            elif (self._state == CLOSED
                    and self._failures >= self.failure_threshold):
                self._opened_at = self.clock()
                notify = self._transition_locked(OPEN)
        if notify is not None:
            notify()


class LatencyTracker:
    """Bounded window of request latencies; answers the hedge delay.

    The hedge delay is the window's p95 (a request slower than 95% of
    its peers is *probably* stuck behind a browned-out shard), floored
    by ``min_delay`` so hedging never fires on normal jitter, and
    falling back to ``default_delay`` until the window has enough
    samples to say anything.
    """

    def __init__(self, window: int = 128, min_samples: int = 8,
                 default_delay: float = 1.0,
                 min_delay: float = 0.05) -> None:
        self.window = max(min_samples, window)
        self.min_samples = min_samples
        self.default_delay = default_delay
        self.min_delay = min_delay
        self._samples: list[float] = []
        self._next = 0
        self._lock = threading.Lock()

    def note(self, seconds: float) -> None:
        with self._lock:
            if len(self._samples) < self.window:
                self._samples.append(seconds)
            else:  # ring overwrite, oldest first
                self._samples[self._next] = seconds
                self._next = (self._next + 1) % self.window

    def p95(self) -> float | None:
        with self._lock:
            if len(self._samples) < self.min_samples:
                return None
            ordered = sorted(self._samples)
        index = min(len(ordered) - 1,
                    round(0.95 * (len(ordered) - 1)))
        return ordered[index]

    def hedge_delay(self) -> float:
        """Seconds to wait for the primary before racing a hedge."""
        p95 = self.p95()
        if p95 is None:
            return self.default_delay
        return max(self.min_delay, p95)


__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "STATE_CODES",
    "CircuitBreaker",
    "LatencyTracker",
]
