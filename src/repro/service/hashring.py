"""Consistent hashing: stable key -> shard placement for the cluster.

The sharded service (``ppchecker serve --shards N``) and the sharded
study plane route every job to one pipeline worker process by the
content hash of its input.  The placement function must be

- **deterministic across processes**: the accept process, a restarted
  supervisor, and a differential test harness must all agree -- so the
  ring hashes with :mod:`hashlib` (SHA-256), never the interpreter's
  seeded ``hash()``;
- **balanced**: keys spread evenly over shards (virtual nodes bound
  the skew);
- **stable under membership change**: when a shard dies or joins,
  only the keys owned by the affected arc move -- roughly ``1/N`` of
  the keyspace, not a full reshuffle (the property suite in
  ``tests/service/test_hashring_properties.py`` pins both bounds).

Everything is stdlib; a ring over a few dozen shards with the default
128 virtual nodes builds in well under a millisecond and answers
:meth:`HashRing.place` with one binary search.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

#: virtual nodes per shard; more nodes = tighter balance, linearly
#: larger ring.  128 keeps the max/mean key skew under ~1.35 for the
#: shard counts the service runs (2..64), pinned by the property suite.
DEFAULT_REPLICAS = 128


def stable_hash(key: str) -> int:
    """A 64-bit position derived from SHA-256 -- independent of
    ``PYTHONHASHSEED``, the platform, and the process."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over named shards.

    >>> ring = HashRing(["shard-0", "shard-1", "shard-2"])
    >>> ring.place("com.example.app")  # doctest: +SKIP
    'shard-1'

    Membership changes (:meth:`add` / :meth:`remove`) rebuild only the
    sorted point index; placements for keys not owned by the affected
    shard are unchanged (the minimal-remap property).
    """

    def __init__(self, shards: Iterable[str] = (),
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: list[int] = []      # sorted virtual-node positions
        self._owners: list[str] = []      # _owners[i] owns _points[i]
        self._shards: dict[str, list[int]] = {}
        for shard in shards:
            self.add(shard)

    # -- membership --------------------------------------------------------

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    def __len__(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> list[str]:
        """Current members, sorted (deterministic iteration order)."""
        return sorted(self._shards)

    def add(self, shard: str) -> None:
        """Add *shard*'s virtual nodes to the ring (idempotent)."""
        if shard in self._shards:
            return
        points = [stable_hash(f"{shard}#{replica}")
                  for replica in range(self.replicas)]
        self._shards[shard] = points
        for point in points:
            index = bisect.bisect_left(self._points, point)
            # ties between different shards' virtual nodes are broken
            # by owner name so insertion order never changes placement
            while (index < len(self._points)
                   and self._points[index] == point
                   and self._owners[index] < shard):
                index += 1
            self._points.insert(index, point)
            self._owners.insert(index, shard)

    def remove(self, shard: str) -> None:
        """Drop *shard* from the ring (idempotent)."""
        if shard not in self._shards:
            return
        del self._shards[shard]
        keep = [i for i, owner in enumerate(self._owners)
                if owner != shard]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    # -- placement ---------------------------------------------------------

    def place(self, key: str) -> str:
        """The shard owning *key*: the first virtual node at or after
        the key's position, wrapping at the top of the ring."""
        if not self._points:
            raise LookupError("hash ring is empty")
        index = bisect.bisect_right(self._points, stable_hash(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def preference(self, key: str) -> list[str]:
        """Every shard in ring order starting at *key*'s owner.

        ``preference(key)[0] == place(key)``; the rest are the
        distinct owners met walking the ring clockwise from the key's
        position.  This is the failover order the cluster front uses
        when a breaker has the primary open, and the source of the
        hedge shard: every front process computes the same list, so
        a key's first fallback is as deterministic as its owner.
        """
        if not self._points:
            raise LookupError("hash ring is empty")
        start = bisect.bisect_right(self._points, stable_hash(key))
        seen: list[str] = []
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == len(self._shards):
                    break
        return seen

    def place_many(self, keys: Sequence[str]) -> dict[str, str]:
        """``{key: shard}`` for every key (one binary search each)."""
        return {key: self.place(key) for key in keys}

    def assignments(self, keys: Sequence[str]) -> dict[str, list[str]]:
        """``{shard: [keys...]}`` preserving *keys* order; every
        current member appears, possibly with an empty list."""
        out: dict[str, list[str]] = {shard: [] for shard in self.shards}
        for key in keys:
            out[self.place(key)].append(key)
        return out


def ring_for(count: int, replicas: int = DEFAULT_REPLICAS) -> HashRing:
    """The canonical ring over ``count`` numbered shards
    (``shard-0`` .. ``shard-N-1``) -- what ``--shards N`` builds in
    every process that must agree on placement."""
    if count < 1:
        raise ValueError("shard count must be >= 1")
    return HashRing((shard_name(i) for i in range(count)),
                    replicas=replicas)


def shard_name(index: int) -> str:
    return f"shard-{index}"


__all__ = ["DEFAULT_REPLICAS", "HashRing", "ring_for", "shard_name",
           "stable_hash"]
