"""The long-running PPChecker check service (``ppchecker serve``).

A stdlib-only serving layer over :class:`repro.pipeline.Pipeline`:
a bounded job queue with backpressure, content-hash request
coalescing, a REST API returning the ``check --json`` schema, and a
Prometheus ``/metrics`` surface.  See ``docs/API.md`` ("REST API")
and ``DESIGN.md`` §10 for the design.

Embedding::

    from repro.service import ServiceConfig, start_service, ServiceClient

    handle = start_service(ServiceConfig(port=0, workers=4))
    client = ServiceClient(port=handle.port)
    report = client.check(bundle_doc)     # check --json schema
    handle.close()                        # graceful drain
"""

from repro.service.client import (
    CheckQuarantined,
    JobGone,
    ServiceBusy,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.jobs import Job, JobQueue, QueueFull, ServiceDraining
from repro.service.metrics import MetricsRegistry, ServiceMetrics
from repro.service.runner import PipelineRunner, ServiceConfig
from repro.service.hashring import HashRing, ring_for, shard_name
from repro.service.server import (
    DEADLINE_FIELD,
    DEADLINE_HEADER,
    CheckService,
    DeadlineExpired,
    ServiceHandle,
    read_port_file,
    serve,
    start_service,
)

__all__ = [
    "CheckQuarantined",
    "CheckService",
    "DEADLINE_FIELD",
    "DEADLINE_HEADER",
    "DeadlineExpired",
    "HashRing",
    "Job",
    "JobGone",
    "JobQueue",
    "MetricsRegistry",
    "PipelineRunner",
    "QueueFull",
    "ServiceBusy",
    "ServiceClient",
    "ServiceConfig",
    "ServiceDraining",
    "ServiceError",
    "ServiceHandle",
    "ServiceMetrics",
    "ServiceUnavailable",
    "read_port_file",
    "ring_for",
    "serve",
    "shard_name",
    "start_service",
]
