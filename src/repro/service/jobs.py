"""Jobs and the bounded queue feeding the service's worker pool.

A :class:`Job` is one unit of check work: an app bundle addressed by
the content hash of its canonical JSON document (the same
:func:`repro.hashing.fingerprint` the pipeline keys its stages with).
Jobs move ``queued -> running -> completed | quarantined``; any number
of HTTP requests may wait on one job (see
:mod:`repro.service.coalescing`).

:class:`JobQueue` is the backpressure point: a bounded FIFO whose
``put`` fails fast with :class:`QueueFull` when the service is over
capacity -- the server maps that to ``429 Retry-After`` instead of
buffering unboundedly.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING

from repro.pipeline.resilience import Deadline

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.checker import AppBundle

#: job lifecycle states
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
QUARANTINED = "quarantined"
#: parked by crash recovery after too many redeliveries (see
#: :mod:`repro.durability.service_log`); never runs again
DEADLETTERED = "deadlettered"
#: the request's deadline expired before (or while) the job ran; the
#: work was dropped, not failed -- resubmitting with a fresh budget
#: will run it
SHED = "shed"

TERMINAL_STATES = frozenset({COMPLETED, QUARANTINED, DEADLETTERED,
                             SHED})


class QueueFull(RuntimeError):
    """The job queue is at capacity; retry later."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        super().__init__(f"job queue full ({capacity} jobs)")


class ServiceDraining(RuntimeError):
    """The service is shutting down and rejects new work."""


class Job:
    """One coalescable unit of check work."""

    def __init__(self, job_id: str, key: str,
                 bundle: "AppBundle",
                 deadline: Deadline | None = None) -> None:
        self.id = job_id
        self.key = key
        self.bundle = bundle
        self.package = bundle.package
        self.state = QUEUED
        self.result: dict | None = None   # AppReport.to_dict()
        self.error: dict | None = None    # AppFailure.to_dict()
        self.waiters = 1                  # submissions riding this job
        self.deliveries = 0               # times a worker picked it up
        #: request-level wall-clock budget; an expired job is shed at
        #: dequeue instead of burning pipeline work
        self.deadline = deadline
        self._done = threading.Event()

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def finish(self, result: dict) -> None:
        self.result = result
        self.state = COMPLETED
        self._done.set()

    def quarantine(self, error: dict) -> None:
        self.error = error
        self.state = QUARANTINED
        self._done.set()

    def shed(self, error: dict) -> None:
        """Terminal: the deadline ran out before the work finished."""
        self.error = error
        self.state = SHED
        self._done.set()

    def extend_deadline(self, deadline: Deadline | None) -> None:
        """A coalesced submission rides this job; the job keeps the
        *loosest* budget any waiter asked for (``None`` = unbounded),
        so a short-deadline straggler never sheds work a patient
        waiter still wants."""
        if self.deadline is None:
            return
        if deadline is None:
            self.deadline = None
        elif deadline.expires_at > self.deadline.expires_at:
            self.deadline = deadline

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout)

    def to_dict(self) -> dict:
        """The job's REST rendering (``GET /v1/jobs/<id>``)."""
        doc: dict = {
            "id": self.id,
            "key": self.key,
            "package": self.package,
            "state": self.state,
        }
        if self.result is not None:
            doc["report"] = self.result
        if self.error is not None:
            doc["error"] = self.error
        return doc


class JobQueue:
    """Bounded, thread-safe FIFO of pending jobs."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self._jobs: deque[Job] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._jobs)

    def put(self, job: Job) -> None:
        """Enqueue, or fail fast with :class:`QueueFull`."""
        with self._not_empty:
            if len(self._jobs) >= self.capacity:
                raise QueueFull(self.capacity)
            self._jobs.append(job)
            self._not_empty.notify()

    def get(self, timeout: float | None = None) -> Job | None:
        """Dequeue the oldest job, or ``None`` on timeout (workers
        poll so they can observe their stop flag)."""
        with self._not_empty:
            if not self._jobs:
                self._not_empty.wait(timeout)
            if not self._jobs:
                return None
            return self._jobs.popleft()


__all__ = [
    "QUEUED",
    "RUNNING",
    "COMPLETED",
    "QUARANTINED",
    "DEADLETTERED",
    "SHED",
    "TERMINAL_STATES",
    "QueueFull",
    "ServiceDraining",
    "Job",
    "JobQueue",
]
